//! Kill-point crash-recovery suite for the durable model store
//! (DESIGN.md §16): a served mutation history is cut off at every record
//! boundary and mid-record, the store is reopened, and the recovered
//! system must land on the exact surviving generation and serve verdicts
//! bit-identical to the system that produced that generation — durability
//! is invisible to the cascade.

use magshield::core::artifact::{BundleMeta, ModelBundle};
use magshield::core::pipeline::{BootstrapConfig, DefenseSystem};
use magshield::core::registry::ModelRegistry;
use magshield::core::scenario::{bootstrap_with, ScenarioBuilder, UserContext};
use magshield::core::server::VerificationServer;
use magshield::core::session::SessionData;
use magshield::core::store::wal::scan_wal;
use magshield::core::store::{BASE_FILE, WAL_FILE};
use magshield::core::verdict::DefenseVerdict;
use magshield::ml::codec::BinaryCodec;
use magshield::simkit::rng::SimRng;
use magshield::voice::profile::SpeakerProfile;
use magshield::voice::synth::{FormantSynthesizer, SessionEffects};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("magshield-durable-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn meta(notes: &str) -> BundleMeta {
    BundleMeta {
        producer: "durable-store-tests".to_string(),
        ubm_speakers: 3,
        ubm_components: 8,
        em_iters: 4,
        use_isv: false,
        notes: notes.to_string(),
    }
}

fn utterance(speaker_id: u32, take: u64) -> Vec<f64> {
    let profile = SpeakerProfile::sample(speaker_id, &SimRng::from_seed(9_000 + speaker_id as u64));
    FormantSynthesizer::default().render_digits(
        &profile,
        "271828",
        SessionEffects::neutral(),
        &SimRng::from_seed(9_500 + take),
    )
}

/// The master history every kill point is cut from: a durable store that
/// served four mutations (enroll, enroll, swap, enroll — generations 2
/// through 5), plus the probe verdicts the live system produced at
/// *every* generation along the way.
struct MasterHistory {
    dir: PathBuf,
    user: UserContext,
    probes: Vec<SessionData>,
    /// `verdicts_by_generation[g - 1]` = probe verdicts served at
    /// generation `g` (1 = the golden base, 5 = the final state).
    verdicts_by_generation: Vec<Vec<DefenseVerdict>>,
}

fn master() -> &'static MasterHistory {
    static M: OnceLock<MasterHistory> = OnceLock::new();
    M.get_or_init(|| {
        let (trained, user) = bootstrap_with(&SimRng::from_seed(5151), BootstrapConfig::tiny());
        let bundle = ModelBundle::from_snapshot(meta("golden base"), &trained.models());
        let dir = tempdir("master");
        let system = DefenseSystem::create_durable(bundle, &dir).expect("create store");

        let probes: Vec<SessionData> = (0..2u64)
            .map(|i| ScenarioBuilder::genuine(&user).capture(&SimRng::from_seed(8_700 + i)))
            .collect();
        let serve = |sys: &DefenseSystem| probes.iter().map(|s| sys.verify(s)).collect();

        let mut verdicts_by_generation: Vec<Vec<DefenseVerdict>> = vec![serve(&system)];
        for speaker_id in [9001u32, 9002] {
            let u = utterance(speaker_id, speaker_id as u64);
            system
                .try_enroll_speaker(speaker_id, &[&u])
                .expect("journaled enrollment");
            verdicts_by_generation.push(serve(&system));
        }
        let swap = ModelBundle::from_snapshot(meta("mid-history swap"), &system.models());
        system.try_swap_bundle(swap).expect("journaled swap");
        verdicts_by_generation.push(serve(&system));
        let u = utterance(9003, 3);
        system
            .try_enroll_speaker(9003, &[&u])
            .expect("journaled enrollment");
        verdicts_by_generation.push(serve(&system));

        assert_eq!(
            system.generation(),
            5,
            "history publishes generations 2..=5"
        );
        MasterHistory {
            dir,
            user,
            probes,
            verdicts_by_generation,
        }
    })
}

/// Copies the master base plus the first `wal_len` bytes of the master
/// WAL into a fresh directory — one simulated crash image.
fn crash_image(tag: &str, wal_len: usize) -> PathBuf {
    let m = master();
    let dir = tempdir(tag);
    std::fs::copy(m.dir.join(BASE_FILE), dir.join(BASE_FILE)).expect("copy base");
    let wal = std::fs::read(m.dir.join(WAL_FILE)).expect("read master wal");
    assert!(wal_len <= wal.len());
    std::fs::write(dir.join(WAL_FILE), &wal[..wal_len]).expect("write cut wal");
    dir
}

/// Reopens a crash image and checks the recovered system against the
/// reference verdicts for `expected_generation`.
fn assert_recovers(dir: &Path, expected_generation: u64, expected_torn: usize) {
    let m = master();
    let (system, recovered) = DefenseSystem::open_durable(dir).expect("recovery");
    assert_eq!(recovered.generation, expected_generation);
    assert_eq!(recovered.torn_bytes_truncated, expected_torn);
    assert_eq!(system.generation(), expected_generation);
    let reference = &m.verdicts_by_generation[(expected_generation - 1) as usize];
    for (i, (probe, want)) in m.probes.iter().zip(reference).enumerate() {
        let got = system.verify(probe);
        assert_eq!(
            &got, want,
            "probe {i}: recovery at generation {expected_generation} changed the verdict"
        );
    }
}

/// The tentpole acceptance test: cut the WAL at every record boundary
/// and in the middle of every record, reopen, and require the exact
/// surviving generation with bit-identical verdicts. A boundary cut is a
/// clean shutdown at that generation; a mid-record cut is a torn append
/// whose partial bytes must be truncated away.
#[test]
fn every_kill_point_recovers_the_surviving_generation() {
    let m = master();
    let wal = std::fs::read(m.dir.join(WAL_FILE)).expect("read master wal");
    let scan = scan_wal(&wal).expect("master wal scans");
    assert_eq!(scan.records.len(), 4, "four journaled mutations");

    for (i, rec) in scan.records.iter().enumerate() {
        // Crash exactly before this record hit the disk.
        let dir = crash_image(&format!("boundary-{i}"), rec.offset);
        assert_recovers(&dir, 1 + i as u64, 0);
        std::fs::remove_dir_all(&dir).ok();

        // Crash with this record half-written (torn tail).
        let cut = rec.offset + rec.frame_len / 2;
        let dir = crash_image(&format!("torn-{i}"), cut);
        assert_recovers(&dir, 1 + i as u64, cut - rec.offset);
        std::fs::remove_dir_all(&dir).ok();
    }

    // No crash at all: the full log replays to the final generation.
    let dir = crash_image("clean", wal.len());
    assert_recovers(&dir, 5, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Corruption (a flipped bit mid-log, not a torn tail) stops replay at
/// the corrupt record: everything before it survives, everything from it
/// on is truncated away.
#[test]
fn corrupt_record_truncates_from_the_corruption() {
    let m = master();
    let wal = std::fs::read(m.dir.join(WAL_FILE)).expect("read master wal");
    let scan = scan_wal(&wal).expect("master wal scans");
    let victim = &scan.records[2];

    let dir = tempdir("bitflip");
    std::fs::copy(m.dir.join(BASE_FILE), dir.join(BASE_FILE)).expect("copy base");
    let mut bytes = wal.clone();
    bytes[victim.offset + victim.frame_len / 2] ^= 0x40;
    std::fs::write(dir.join(WAL_FILE), &bytes).expect("write corrupt wal");

    // Records 0 and 1 replay (generation 3); the corrupt record and the
    // valid one after it are both gone.
    assert_recovers(&dir, 3, bytes.len() - victim.offset);
    std::fs::remove_dir_all(&dir).ok();
}

/// Recovery is idempotent: reopening an already-recovered store (which
/// truncated its torn tail) replays to the same state with nothing left
/// to truncate.
#[test]
fn recovery_is_idempotent() {
    let m = master();
    let wal = std::fs::read(m.dir.join(WAL_FILE)).expect("read master wal");
    let scan = scan_wal(&wal).expect("master wal scans");
    let rec = &scan.records[3];
    let cut = rec.offset + rec.frame_len - 1; // one byte short of complete
    let dir = crash_image("idempotent", cut);
    assert_recovers(&dir, 4, cut - rec.offset);
    // Second open: the tail is already gone.
    assert_recovers(&dir, 4, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// The storage claim of the delta format: journaling an enrollment costs
/// at least 10× less than re-exporting the full bundle would.
#[test]
fn delta_records_are_ten_times_smaller_than_a_bundle_export() {
    let (trained, _) = bootstrap_with(&SimRng::from_seed(5252), BootstrapConfig::tiny());
    let bundle = ModelBundle::from_snapshot(meta("size probe"), &trained.models());
    let dir = tempdir("size");
    let system = DefenseSystem::create_durable(bundle, &dir).expect("create store");

    let before = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
    let u = utterance(9010, 10);
    system.try_enroll_speaker(9010, &[&u]).expect("journaled");
    let after = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
    let record_bytes = after - before;

    let full_export = ModelBundle::from_snapshot(meta("full re-export"), &system.models())
        .to_bytes()
        .len() as u64;
    assert!(
        full_export >= 10 * record_bytes,
        "delta record is {record_bytes} B but a full export is {full_export} B (< 10x)"
    );

    // And the record really is a delta, not the full-model fallback.
    let scan = scan_wal(&std::fs::read(dir.join(WAL_FILE)).unwrap()).expect("scans");
    assert_eq!(scan.records[0].record.op.kind(), "enroll-delta");
    std::fs::remove_dir_all(&dir).ok();
}

/// Recover-then-serve: a server spawned from a crash image serves the
/// recovered tenants, journals new enrollments over the wire, and those
/// enrollments survive the *next* crash.
#[test]
fn server_recovers_then_serves_and_new_enrollments_survive() {
    let m = master();
    let wal_len = std::fs::read(m.dir.join(WAL_FILE)).unwrap().len();
    let dir = crash_image("server", wal_len);

    let (server, recovered) = VerificationServer::spawn_durable(&dir, 2).expect("recover");
    assert_eq!(recovered.generation, 5);
    assert_eq!(recovered.records_replayed, 4);
    let client = server.client();
    let verdict = client
        .verify(&ScenarioBuilder::genuine(&m.user).capture(&SimRng::from_seed(8_710)))
        .expect("verdict");
    assert_eq!(
        verdict.generation,
        Some(5),
        "serves the recovered generation"
    );

    let generation = client
        .enroll(9020, &[utterance(9020, 20)])
        .expect("journaled enrollment over the wire");
    assert_eq!(generation, 6);
    server.shutdown();

    // The ack was written ahead: a second recovery still has speaker 9020.
    let (revived, recovered) = DefenseSystem::open_durable(&dir).expect("second recovery");
    assert_eq!(recovered.generation, 6);
    assert!(revived.is_enrolled(9020));
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression: an enrollment whose model was adapted from the pre-swap
/// UBM but journaled *after* a UBM-changing swap must ship as a full
/// record — a delta fingerprinted against the dead UBM would be ordered
/// after the swap record and fail reconstruction on replay, leaving the
/// store permanently unrecoverable.
#[test]
fn stale_engine_enrollment_after_ubm_swap_journals_a_full_record() {
    use magshield::core::store::{DurableStore, StoreMetrics};

    let (a, _) = bootstrap_with(&SimRng::from_seed(6161), BootstrapConfig::tiny());
    let (b, _) = bootstrap_with(&SimRng::from_seed(6262), BootstrapConfig::tiny());
    let bundle_a = ModelBundle::from_snapshot(meta("ubm A"), &a.models());
    let bundle_b = ModelBundle::from_snapshot(meta("ubm B"), &b.models());
    let dir = tempdir("stale-delta");
    let store = DurableStore::create(&dir, &bundle_a, StoreMetrics::detached()).expect("create");
    let registry = ModelRegistry::new(bundle_a.clone().into_snapshot());

    // The enrollment pipeline adapts a model off UBM A (its pinned
    // pre-swap snapshot)...
    let u = utterance(9050, 50);
    let stale = bundle_a.engine.enroll(9050, &[&u]);
    // ...but a swap to UBM B wins the journal lock first.
    store
        .journal_swap(&registry, bundle_b)
        .expect("journaled swap");
    let generation = store
        .journal_enroll(&registry, stale)
        .expect("journaled enroll");
    assert_eq!(generation, 3);

    // The stale model could not delta-encode against the new serving
    // UBM, so it fell back to a UBM-independent full record.
    let scan = scan_wal(&std::fs::read(dir.join(WAL_FILE)).unwrap()).expect("scans");
    assert_eq!(scan.records[1].record.op.kind(), "enroll-full");
    drop(store);

    let (revived, recovered) = DefenseSystem::open_durable(&dir).expect("recovers");
    assert_eq!(recovered.generation, 3);
    assert!(revived.is_enrolled(9050));
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression: concurrent `try_enroll_speaker` + UBM-changing
/// `try_swap_bundle` traffic must leave the store recoverable whatever
/// the interleaving — the delta prior is resolved under the store lock,
/// never from a pre-swap snapshot.
#[test]
fn concurrent_enroll_and_ubm_changing_swap_stays_recoverable() {
    let (a, _) = bootstrap_with(&SimRng::from_seed(6363), BootstrapConfig::tiny());
    let (b, _) = bootstrap_with(&SimRng::from_seed(6464), BootstrapConfig::tiny());
    let dir = tempdir("enroll-swap-race");
    let system =
        DefenseSystem::create_durable(ModelBundle::from_snapshot(meta("ubm A"), &a.models()), &dir)
            .expect("create store");
    let other = ModelBundle::from_snapshot(meta("ubm B"), &b.models());

    std::thread::scope(|s| {
        let enroller = system.clone();
        s.spawn(move || {
            for (i, id) in (9060u32..9064).enumerate() {
                let u = utterance(id, 60 + i as u64);
                enroller
                    .try_enroll_speaker(id, &[&u])
                    .expect("journaled enroll");
            }
        });
        let swapper = system.clone();
        s.spawn(move || {
            swapper.try_swap_bundle(other).expect("journaled swap");
        });
    });

    let final_generation = system.generation();
    assert_eq!(final_generation, 6, "four enrolls + one swap");
    drop(system);
    let (_, recovered) =
        DefenseSystem::open_durable(&dir).expect("recoverable whatever the interleaving");
    assert_eq!(recovered.generation, final_generation);
    std::fs::remove_dir_all(&dir).ok();
}

/// The convenience mutators journal too: a durable system has no
/// unjournaled side door that advances the generation without a WAL
/// record (which would poison every later record with a generation gap).
#[test]
fn convenience_mutators_journal_on_a_durable_system() {
    let (trained, _) = bootstrap_with(&SimRng::from_seed(5353), BootstrapConfig::tiny());
    let bundle = ModelBundle::from_snapshot(meta("side door"), &trained.models());
    let dir = tempdir("side-door");
    let system = DefenseSystem::create_durable(bundle, &dir).expect("create store");

    let u = utterance(9030, 30);
    assert_eq!(system.enroll_speaker(9030, &[&u]), 2);
    let swap = ModelBundle::from_snapshot(meta("side-door swap"), &system.models());
    assert_eq!(system.swap_bundle(swap).expect("valid bundle"), 3);
    drop(system);

    let (revived, recovered) = DefenseSystem::open_durable(&dir).expect("recovery");
    assert_eq!(recovered.generation, 3);
    assert_eq!(recovered.records_replayed, 2);
    assert!(revived.is_enrolled(9030));
    std::fs::remove_dir_all(&dir).ok();
}

/// Compaction after recovery folds the replayed history into the golden
/// base without changing a single verdict.
#[test]
fn compaction_after_recovery_preserves_verdicts() {
    let m = master();
    let wal_len = std::fs::read(m.dir.join(WAL_FILE)).unwrap().len();
    let dir = crash_image("compact", wal_len);

    let (system, _) = DefenseSystem::open_durable(&dir).expect("recovery");
    assert_eq!(system.compact_store().expect("compaction"), 5);
    // Reopen the compacted store: nothing to replay, same verdicts.
    assert_recovers(&dir, 5, 0);
    let scan = scan_wal(&std::fs::read(dir.join(WAL_FILE)).unwrap()).expect("scans");
    assert!(scan.records.is_empty(), "compaction emptied the log");
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Decision identity at *arbitrary* kill points: cutting the WAL at
    /// any byte offset past the header yields a recoverable store whose
    /// generation is the number of complete records before the cut and
    /// whose verdicts are bit-identical to the reference history at that
    /// generation. Checksums make a partial frame indistinguishable from
    /// garbage — no cut can fabricate a record that was never journaled.
    #[test]
    fn any_cut_point_recovers_a_served_generation(fraction in 0.0f64..1.0) {
        let m = master();
        let wal = std::fs::read(m.dir.join(WAL_FILE)).expect("read master wal");
        let scan = scan_wal(&wal).expect("master wal scans");
        let header_end = scan.records.first().map(|r| r.offset).unwrap_or(wal.len());
        let cut = header_end + ((wal.len() - header_end) as f64 * fraction) as usize;

        let survivors = scan
            .records
            .iter()
            .take_while(|r| r.offset + r.frame_len <= cut)
            .count();
        let expected_generation = 1 + survivors as u64;
        let torn = cut
            - scan
                .records
                .get(survivors)
                .map(|r| r.offset)
                .unwrap_or(cut);

        let dir = crash_image(&format!("prop-{cut}"), cut);
        let (system, recovered) = DefenseSystem::open_durable(&dir).expect("recovery");
        prop_assert_eq!(recovered.generation, expected_generation);
        prop_assert_eq!(recovered.torn_bytes_truncated, torn);
        let reference = &m.verdicts_by_generation[(expected_generation - 1) as usize];
        for (probe, want) in m.probes.iter().zip(reference) {
            prop_assert_eq!(&system.verify(probe), want);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Keep the master history's registry metadata honest: first generation
/// is the golden base's.
#[test]
fn master_history_starts_at_first_generation() {
    let m = master();
    let base = std::fs::read(m.dir.join(BASE_FILE)).unwrap();
    let golden = magshield::core::store::GoldenBase::from_bytes(&base).expect("decodes");
    assert_eq!(golden.generation, ModelRegistry::FIRST_GENERATION);
    assert_eq!(m.verdicts_by_generation.len(), 5);
}

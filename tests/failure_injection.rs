//! Failure-injection tests: the pipeline must reject (never panic on)
//! degraded, truncated or hostile sensor data.

use magshield::core::pipeline::{BootstrapConfig, DefenseSystem};
use magshield::core::scenario::{bootstrap_with, ScenarioBuilder, UserContext};
use magshield::core::server::protocol::{decode_frame, encode_request, Message};
use magshield::core::server::{VerificationServer, PANIC_FRAME};
use magshield::simkit::rng::SimRng;
use magshield::simkit::vec3::Vec3;
use std::sync::OnceLock;

fn fixture() -> &'static (DefenseSystem, UserContext) {
    static F: OnceLock<(DefenseSystem, UserContext)> = OnceLock::new();
    F.get_or_init(|| bootstrap_with(&SimRng::from_seed(3001), BootstrapConfig::tiny()))
}

fn genuine_session(seed: u64) -> magshield::core::session::SessionData {
    let (_, user) = fixture();
    ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(seed))
}

#[test]
fn truncated_audio_rejected_without_panic() {
    let (system, _) = fixture();
    let mut s = genuine_session(1);
    s.audio.truncate(100);
    let v = system.verify(&s);
    assert!(!v.accepted(), "a 2 ms recording cannot pass verification");
}

#[test]
fn empty_sensor_streams_rejected() {
    let (system, _) = fixture();
    for strip in 0..3 {
        let mut s = genuine_session(2);
        match strip {
            0 => s.mag_readings.clear(),
            1 => s.accel_readings.clear(),
            _ => s.gyro_readings.clear(),
        }
        assert!(!system.verify(&s).accepted());
    }
}

#[test]
fn saturated_magnetometer_rejected() {
    let (system, _) = fixture();
    let mut s = genuine_session(3);
    // A magnet slammed against the sensor: full-scale clipping.
    for r in s.mag_readings.iter_mut() {
        *r = Vec3::new(1200.0, 1200.0, 1200.0);
    }
    let v = system.verify(&s);
    assert!(!v.accepted(), "saturated magnetometer must reject");
}

#[test]
fn clipped_audio_degrades_gracefully() {
    let (system, _) = fixture();
    let mut s = genuine_session(4);
    for x in s.audio.iter_mut() {
        *x = x.signum() * x.abs().min(0.02); // crush to heavy clipping
    }
    // Must not panic; decision may be either way but scores stay finite.
    let v = system.verify(&s);
    for r in v.results() {
        assert!(r.attack_score.is_finite() || r.attack_score == f64::INFINITY);
    }
}

#[test]
fn nan_poisoned_session_rejected() {
    let (system, _) = fixture();
    let mut s = genuine_session(5);
    s.audio[1000] = f64::NAN;
    assert!(!system.verify(&s).accepted());
    let mut s2 = genuine_session(6);
    s2.gyro_readings[10] = Vec3::new(f64::INFINITY, 0.0, 0.0);
    assert!(!system.verify(&s2).accepted());
}

#[test]
fn sensor_dropout_mid_session_rejected_or_flagged() {
    let (system, _) = fixture();
    let mut s = genuine_session(7);
    // Magnetometer dies halfway: stream truncated.
    let half = s.mag_readings.len() / 2;
    s.mag_readings.truncate(half);
    let v = system.verify(&s);
    // The shortened magnitude trace loses the close-in segment; the
    // pipeline must stay well-defined.
    for r in v.results() {
        assert!(!r.attack_score.is_nan());
    }
}

#[test]
fn stationary_phone_rejected() {
    // An attacker who props the phone on a stand: no approach, no sweep,
    // and a static magnetic scene (all three sensors agree the phone
    // never moved).
    let (system, _) = fixture();
    let mut s = genuine_session(8);
    for a in s.accel_readings.iter_mut() {
        *a = Vec3::ZERO;
    }
    for g in s.gyro_readings.iter_mut() {
        *g = Vec3::ZERO;
    }
    let earth = s.earth_reference;
    for m in s.mag_readings.iter_mut() {
        *m = earth;
    }
    let v = system.verify(&s);
    assert!(!v.accepted(), "no protocol motion → reject");
}

#[test]
fn fuzzed_protocol_frames_never_panic() {
    let frame = encode_request(1, &genuine_session(9));
    let mut rng = SimRng::from_seed(10);
    // Random corruptions of a valid frame.
    for _ in 0..200 {
        let mut f = frame.clone();
        let flips = 1 + rng.index(8);
        for _ in 0..flips {
            let i = rng.index(f.len());
            f[i] ^= 1 << rng.index(8);
        }
        let _ = decode_frame(&f); // must not panic
    }
    // Random garbage of random lengths.
    for _ in 0..200 {
        let n = rng.index(256);
        let mut g = vec![0u8; n];
        for b in g.iter_mut() {
            *b = rng.index(256) as u8;
        }
        let _ = decode_frame(&g);
    }
}

#[test]
fn worker_panic_releases_queue_depth_and_pool_survives() {
    let (system, user) = fixture();
    let server = VerificationServer::spawn(system.with_fresh_obs(), 2);
    let client = server.client();
    // Drive a worker into a panic mid-job. The reply must be an error
    // frame, not a hang or a dead connection.
    let raw = client
        .send_raw(PANIC_FRAME.to_vec())
        .expect("panicking job still answers");
    match decode_frame(&raw) {
        Ok(Message::Error { message, .. }) => {
            assert!(message.contains("panic"), "unexpected error: {message}");
        }
        other => panic!("expected an error reply, got {other:?}"),
    }
    assert_eq!(server.metrics().counter("server.worker.panics").get(), 1);
    assert_eq!(
        server.metrics().gauge("server.queue.depth").get(),
        0,
        "the RAII guard must restore the gauge even through a panic"
    );
    // The pool survives: a normal request still gets a full verdict.
    let session = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(12));
    let verdict = client.verify(&session).expect("worker alive after panic");
    assert!(verdict.results().count() >= 4, "all components ran");
    assert_eq!(server.metrics().gauge("server.queue.depth").get(), 0);
    server.shutdown();
}

#[test]
fn server_survives_hostile_then_valid_traffic() {
    let (system, user) = fixture();
    let server = VerificationServer::spawn(system.clone(), 2);
    let client = server.client();
    // Hostile garbage first.
    for seed in 0..5u64 {
        let mut rng = SimRng::from_seed(seed);
        let n = 4 + rng.index(64);
        let mut g = vec![0u8; n];
        for b in g.iter_mut() {
            *b = rng.index(256) as u8;
        }
        let _ = client.send_raw(g).expect("server keeps replying");
    }
    // Then a legitimate request still gets a full verdict (this test is
    // about server survival, not the verdict itself).
    let session = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(11));
    let verdict = client.verify(&session).expect("server alive");
    assert_eq!(verdict.results().count(), 4, "all components ran");
    assert!(server.stats().protocol_errors >= 5);
    assert_eq!(server.stats().processed, 1);
    server.shutdown();
}

//! Golden-artifact compatibility gate (runs in CI): committed bundle
//! files must keep decoding under the current codec. If the v1 test
//! fails, an encoding change broke compatibility with already-shipped
//! bundles — bump the artifact's format version (and keep a decode path
//! for the old one) instead of silently changing the layout.
//!
//! Two goldens are committed, one per format generation:
//!
//! - `golden_bundle_v1.bin` — written before the MCFG/MFEX v2 bump
//!   (pre-`asv_quantized`, pre-`fused_frontend`). Decode-only: the
//!   current encoder intentionally writes the newer layout, so v1 bytes
//!   are never reproduced, only accepted.
//! - `golden_bundle_v2.bin` — written by the current encoder. This one
//!   must re-encode byte-identically, which is the determinism gate for
//!   the *current* layout.
//!
//! Both were produced by the `train_bundle` example:
//! `cargo run --example train_bundle -- --tiny --seed 424242
//!  --notes "golden artifact vN" --out results/golden_bundle_vN.bin`.
//!
//! A third golden covers the durable store's on-disk format:
//!
//! - `golden_wal_v1.bin` — a write-ahead log of three delta enrollments
//!   (speakers 9001–9003) on top of `golden_bundle_v2.bin`, produced by
//!   the deterministic demo-store builder:
//!   `cargo run --example store_admin -- demo DIR
//!    --bundle results/golden_bundle_v2.bin` (then commit `DIR/wal.log`).
//!   It must keep replaying to the pinned generation and speaker set,
//!   and re-encoding every record must reproduce the file byte for byte.

use magshield::core::artifact::ModelBundle;
use magshield::core::pipeline::DefenseSystem;
use magshield::core::registry::ModelRegistry;
use magshield::core::store::admin::{DEMO_SEED, DEMO_SPEAKERS};
use magshield::core::store::wal::scan_wal;
use magshield::core::store::{GoldenBase, TailStatus, BASE_FILE, WAL_FILE};
use magshield::core::trainer::TRAINER_PRODUCER;
use magshield::ml::codec::BinaryCodec;

const GOLDEN_V1: &[u8] = include_bytes!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/results/golden_bundle_v1.bin"
));

const GOLDEN_V2: &[u8] = include_bytes!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/results/golden_bundle_v2.bin"
));

#[test]
fn golden_v1_bundle_still_decodes() {
    let bundle = ModelBundle::from_bytes(GOLDEN_V1).expect(
        "codec format break: the committed v1 bundle no longer decodes — \
         keep a decode path for every shipped format version",
    );
    bundle.validate().expect("golden bundle validates");
    assert_eq!(bundle.meta.producer, TRAINER_PRODUCER);
    assert_eq!(bundle.meta.notes, "golden artifact v1");
    assert_eq!(bundle.speakers.len(), 1);
    // Fields the v1 layout predates must come back as their defaults.
    assert!(!bundle.config.asv_quantized);
}

#[test]
fn golden_v1_bundle_migrates_to_a_stable_current_encoding() {
    // Re-encoding a v1 bundle upgrades it to the current layout, so the
    // bytes legitimately differ from the v1 file. What must hold is that
    // the upgraded bytes are a fixpoint: decode → encode reproduces them
    // exactly, proving the migration lands on the deterministic current
    // format rather than drifting on every pass.
    let bundle = ModelBundle::from_bytes(GOLDEN_V1).expect("decodes");
    let upgraded = bundle.to_bytes();
    let reread = ModelBundle::from_bytes(&upgraded).expect("upgraded bytes decode");
    reread.validate().expect("upgraded bundle validates");
    assert_eq!(
        reread.to_bytes(),
        upgraded,
        "current-version encoding must be a decode/encode fixpoint"
    );
}

#[test]
fn golden_v2_bundle_reencodes_byte_identically() {
    // Encoding is deterministic, so decode → encode must reproduce the
    // current-generation file exactly; a mismatch means the writer
    // changed format without a version bump even though the reader still
    // accepts the old bytes.
    let bundle = ModelBundle::from_bytes(GOLDEN_V2).expect("decodes");
    bundle.validate().expect("golden bundle validates");
    assert_eq!(bundle.meta.notes, "golden artifact v2");
    assert_eq!(
        bundle.to_bytes(),
        GOLDEN_V2,
        "encoder no longer reproduces the v2 layout"
    );
}

#[test]
fn golden_bundles_boot_a_serving_system() {
    for golden in [GOLDEN_V1, GOLDEN_V2] {
        let bundle = ModelBundle::from_bytes(golden).expect("decodes");
        let speaker = bundle.speakers[0].speaker_id;
        let system = DefenseSystem::from_bundle(bundle).expect("boots");
        assert_eq!(system.generation(), ModelRegistry::FIRST_GENERATION);
        assert!(system.is_enrolled(speaker));
    }
}

const GOLDEN_WAL: &[u8] = include_bytes!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/results/golden_wal_v1.bin"
));

/// Reassembles the committed store from its two goldens (the v2 bundle
/// as base, the WAL fixture as log) in a scratch directory.
fn golden_store_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("magshield-goldenwal-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let base = GoldenBase {
        generation: ModelRegistry::FIRST_GENERATION,
        bundle: ModelBundle::from_bytes(GOLDEN_V2).expect("v2 bundle decodes"),
    };
    std::fs::write(dir.join(BASE_FILE), base.to_bytes()).expect("write base");
    std::fs::write(dir.join(WAL_FILE), GOLDEN_WAL).expect("write wal");
    dir
}

#[test]
fn golden_wal_replays_to_the_pinned_state() {
    // Replay compatibility: the committed log must keep recovering the
    // exact generation and speaker set it was written with. A failure
    // means a WAL format or replay-semantics change broke recovery of
    // already-shipped stores — bump the record format version (and keep
    // a decode path) instead.
    let dir = golden_store_dir("replay");
    let (system, recovered) = DefenseSystem::open_durable(&dir)
        .expect("store format break: the committed golden WAL no longer replays");
    assert_eq!(
        recovered.generation,
        ModelRegistry::FIRST_GENERATION + DEMO_SPEAKERS.len() as u64
    );
    assert_eq!(recovered.records_replayed, DEMO_SPEAKERS.len());
    assert_eq!(recovered.torn_bytes_truncated, 0);
    for id in DEMO_SPEAKERS {
        assert!(
            system.is_enrolled(id),
            "speaker {id} lost from the golden WAL (demo seed {DEMO_SEED})"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn golden_wal_reencodes_byte_identically() {
    // Determinism gate for the current record layout: every frame in the
    // committed log must be a decode → encode fixpoint, and the frames
    // must tile the file exactly (header included).
    let scan = scan_wal(GOLDEN_WAL).expect("golden WAL scans");
    assert_eq!(scan.tail, TailStatus::Clean);
    let mut reencoded = scan.header.to_bytes();
    for rec in &scan.records {
        assert_eq!(rec.offset, reencoded.len(), "frames tile the log");
        reencoded.extend_from_slice(&rec.record.to_bytes());
    }
    assert_eq!(
        reencoded, GOLDEN_WAL,
        "encoder no longer reproduces the committed WAL layout"
    );
}

//! Golden-artifact compatibility gate (runs in CI): a committed bundle
//! file must keep decoding under the current codec. If this test fails,
//! an encoding change broke compatibility with already-shipped bundles —
//! bump the artifact's format version (and keep a decode path for v1)
//! instead of silently changing the layout.
//!
//! The golden file was produced by the `train_bundle` example:
//! `cargo run --example train_bundle -- --tiny --seed 424242
//!  --notes "golden artifact v1" --out results/golden_bundle_v1.bin`.

use magshield::core::artifact::ModelBundle;
use magshield::core::pipeline::DefenseSystem;
use magshield::core::registry::ModelRegistry;
use magshield::core::trainer::TRAINER_PRODUCER;
use magshield::ml::codec::BinaryCodec;

const GOLDEN: &[u8] = include_bytes!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/results/golden_bundle_v1.bin"
));

#[test]
fn golden_bundle_still_decodes() {
    let bundle = ModelBundle::from_bytes(GOLDEN).expect(
        "codec format break: the committed v1 bundle no longer decodes — \
         bump the format version rather than changing the layout in place",
    );
    bundle.validate().expect("golden bundle validates");
    assert_eq!(bundle.meta.producer, TRAINER_PRODUCER);
    assert_eq!(bundle.meta.notes, "golden artifact v1");
    assert_eq!(bundle.speakers.len(), 1);
}

#[test]
fn golden_bundle_reencodes_byte_identically() {
    // Encoding is deterministic, so decode → encode must reproduce the
    // file exactly; a mismatch means the writer changed format without a
    // version bump even though the reader still accepts the old bytes.
    let bundle = ModelBundle::from_bytes(GOLDEN).expect("decodes");
    assert_eq!(
        bundle.to_bytes(),
        GOLDEN,
        "encoder no longer reproduces the v1 layout"
    );
}

#[test]
fn golden_bundle_boots_a_serving_system() {
    let bundle = ModelBundle::from_bytes(GOLDEN).expect("decodes");
    let speaker = bundle.speakers[0].speaker_id;
    let system = DefenseSystem::from_bundle(bundle).expect("boots");
    assert_eq!(system.generation(), ModelRegistry::FIRST_GENERATION);
    assert!(system.is_enrolled(speaker));
}

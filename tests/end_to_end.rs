//! End-to-end integration tests spanning every workspace crate: bootstrap
//! a trained system, then drive genuine sessions and the full attack
//! taxonomy through the cascade and the client/server runtime.

use magshield::core::pipeline::{BootstrapConfig, DefenseSystem};
use magshield::core::scenario::{bootstrap_with, ScenarioBuilder, SourceKind, UserContext};
use magshield::core::server::VerificationServer;
use magshield::core::verdict::Component;
use magshield::physics::acoustics::tube::SoundTube;
use magshield::physics::magnetics::interference::EmfEnvironment;
use magshield::simkit::rng::SimRng;
use magshield::simkit::vec3::Vec3;
use magshield::voice::attacks::AttackKind;
use magshield::voice::devices::table_iv_catalog;
use magshield::voice::profile::SpeakerProfile;
use std::sync::OnceLock;

fn fixture() -> &'static (DefenseSystem, UserContext) {
    static F: OnceLock<(DefenseSystem, UserContext)> = OnceLock::new();
    F.get_or_init(|| bootstrap_with(&SimRng::from_seed(2017), BootstrapConfig::tiny()))
}

fn attacker() -> SpeakerProfile {
    SpeakerProfile::sample(404, &SimRng::from_seed(9))
}

#[test]
fn genuine_sessions_accepted() {
    let (system, user) = fixture();
    for i in 0..5u64 {
        let s = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(7000 + i));
        let v = system.verify(&s);
        assert!(
            v.accepted(),
            "genuine session {i} rejected: {:?}",
            v.results()
                .map(|r| (r.component, r.attack_score))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn all_machine_attack_types_rejected() {
    let (system, user) = fixture();
    let dev = table_iv_catalog()[0].clone();
    for kind in AttackKind::machine_based() {
        let s = ScenarioBuilder::machine_attack(user, kind, dev.clone(), attacker())
            .at_distance(0.05)
            .capture(&SimRng::from_seed(8000));
        let v = system.verify(&s);
        assert!(
            !v.accepted(),
            "{kind:?} through a PC speaker must be rejected"
        );
        // The loudspeaker detector specifically must fire (the magnet).
        assert!(
            v.result_of(Component::Loudspeaker).unwrap().attack_score >= 1.0,
            "{kind:?}: loudspeaker detector should flag the magnet"
        );
    }
}

#[test]
fn shielded_speaker_rejected_close_in() {
    let (system, user) = fixture();
    let dev = table_iv_catalog()[0].clone();
    let s = ScenarioBuilder::machine_attack(user, AttackKind::Replay, dev, attacker())
        .at_distance(0.05)
        .with_shielding()
        .capture(&SimRng::from_seed(8100));
    assert!(
        !system.verify(&s).accepted(),
        "Mu-metal shield at 5 cm must fail"
    );
}

#[test]
fn sound_tube_attack_rejected() {
    let (system, user) = fixture();
    let dev = table_iv_catalog()[0].clone();
    let mut b = ScenarioBuilder::machine_attack(user, AttackKind::Replay, dev.clone(), attacker())
        .at_distance(0.05);
    b.source = SourceKind::DeviceViaTube {
        device: dev,
        tube: SoundTube::new(0.30, 0.0125),
    };
    let s = b.capture(&SimRng::from_seed(8200));
    assert!(!system.verify(&s).accepted(), "sound-tube attack must fail");
}

#[test]
fn off_center_pivot_rejected_by_ranging() {
    let (system, user) = fixture();
    let dev = table_iv_catalog()[0].clone();
    let s = ScenarioBuilder::machine_attack(user, AttackKind::Replay, dev, attacker())
        .at_distance(0.25)
        .with_off_center_pivot(Vec3::new(0.0, -0.20, 0.0))
        .capture(&SimRng::from_seed(8300));
    let v = system.verify(&s);
    assert!(!v.accepted());
    assert!(
        v.result_of(Component::Distance).unwrap().attack_score >= 1.0,
        "faked sweep geometry should trip the distance/ranging component: {:?}",
        v.result_of(Component::Distance)
    );
}

#[test]
fn genuine_still_accepted_near_computer() {
    let (system, user) = fixture();
    // Computer 40 cm away — the benign end of Fig. 14(a).
    let env = EmfEnvironment::near_computer(Vec3::new(0.0, 0.40, 0.0));
    let s = ScenarioBuilder::genuine(user)
        .in_environment(env)
        .capture(&SimRng::from_seed(8400));
    assert!(system.verify(&s).accepted());
}

#[test]
fn car_environment_inflates_false_rejections() {
    let (system, user) = fixture();
    let mut rejected = 0;
    for i in 0..8u64 {
        let s = ScenarioBuilder::genuine(user)
            .in_environment(EmfEnvironment::in_car())
            .capture(&SimRng::from_seed(8500 + i));
        if !system.verify(&s).accepted() {
            rejected += 1;
        }
    }
    assert!(
        rejected >= 2,
        "car EMF should cause false rejections at fixed thresholds (Fig. 14b), got {rejected}/8"
    );
}

#[test]
fn adaptive_thresholds_recover_car_usability() {
    let (system, user) = fixture();
    use magshield::core::adaptive::{adapted_config, calibrate};
    use magshield::physics::magnetics::scene::MagneticScene;
    let scene = MagneticScene::quiet().with_environment(EmfEnvironment::in_car());
    let stationary = scene.sample_along(
        &vec![Vec3::new(0.05, -0.15, 0.0); 300],
        100.0,
        &SimRng::from_seed(8600),
    );
    let adapted = adapted_config(system.config, calibrate(&stationary));
    let mut fixed_rej = 0;
    let mut adapted_rej = 0;
    for i in 0..8u64 {
        let s = ScenarioBuilder::genuine(user)
            .in_environment(EmfEnvironment::in_car())
            .capture(&SimRng::from_seed(8700 + i));
        if !system.verify(&s).accepted() {
            fixed_rej += 1;
        }
        if !system.verify_with_config(&s, &adapted).accepted() {
            adapted_rej += 1;
        }
    }
    assert!(
        adapted_rej < fixed_rej,
        "adaptation should reduce car FRR: fixed {fixed_rej}/8, adapted {adapted_rej}/8"
    );
}

#[test]
fn server_round_trip_matches_local_verdict() {
    let (system, user) = fixture();
    let server = VerificationServer::spawn(system.clone(), 2);
    let client = server.client();
    let session = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(8800));
    let local = system.verify(&session);
    let remote = client.verify(&session).expect("server reachable");
    assert_eq!(local.decision, remote.decision);
    assert_eq!(local.stages.len(), remote.stages.len());
    for (l, r) in local.results().zip(remote.results()) {
        assert_eq!(l.component, r.component);
        assert!((l.attack_score - r.attack_score).abs() < 1e-9);
    }
    server.shutdown();
}

#[test]
fn short_circuit_skips_asv_but_agrees_with_full_evaluation() {
    use magshield::core::cascade::ExecutionPolicy;
    let (system, user) = fixture();
    // Fresh registries so histogram counts below are owned by this test.
    let full_sys = system.with_fresh_obs();
    let short_sys = system.with_fresh_obs();
    let dev = table_iv_catalog()[0].clone();
    let s = ScenarioBuilder::machine_attack(user, AttackKind::Replay, dev, attacker())
        .at_distance(0.05)
        .capture(&SimRng::from_seed(9100));

    let full = full_sys.verify_with_policy(&s, ExecutionPolicy::FullEvaluation);
    let (short, trace) = short_sys
        .cascade()
        .with_policy(ExecutionPolicy::ShortCircuit)
        .run(&s, &short_sys.config, short_sys.obs());

    // Same decision either way; the replay magnet fires at the first stage.
    assert!(!full.accepted() && !short.accepted());
    assert_eq!(full.decision, short.decision);

    // The ASV back end was skipped, not run: the verdict carries a Skipped
    // outcome naming the stage that short-circuited it, the trace has a
    // matching skipped entry, and its latency histogram recorded nothing.
    let skipped = short
        .skipped_of(Component::SpeakerIdentity)
        .expect("speaker_id should be short-circuited");
    assert_eq!(skipped.cause, Component::Loudspeaker);
    let t = trace.component("speaker_id").expect("trace entry");
    assert!(t.skipped && t.duration_s == 0.0);
    assert_eq!(
        short_sys
            .metrics()
            .histogram("pipeline.speaker_id.seconds")
            .count(),
        0,
        "skipped stage must not contribute a latency sample"
    );
    assert!(
        short_sys
            .metrics()
            .counter("pipeline.speaker_id.skipped")
            .get()
            >= 1
    );
    // Full evaluation, by contrast, ran every stage.
    assert_eq!(full.skipped().count(), 0);
    assert!(
        full_sys
            .metrics()
            .histogram("pipeline.speaker_id.seconds")
            .count()
            >= 1
    );
}

#[test]
fn traced_session_exports_complete_component_spans() {
    let (system, user) = fixture();
    let session = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(9000));
    let (verdict, trace) = system.verify_traced(&session);
    assert!(verdict.accepted(), "genuine session should verify");
    assert!(trace.accepted);
    assert!(trace.total_s > 0.0);

    const STAGES: [&str; 4] = ["distance", "sound_field", "loudspeaker", "speaker_id"];
    for stage in STAGES {
        let c = trace
            .component(stage)
            .unwrap_or_else(|| panic!("trace missing cascade component {stage}"));
        assert!(
            c.duration_s > 0.0,
            "{stage} duration must be strictly positive"
        );
        assert!(
            (c.threshold_margin - (1.0 - c.attack_score)).abs() < 1e-12,
            "{stage} margin should be 1 - attack_score"
        );
    }

    // The span collector must hold a `verify` root whose children cover
    // every cascade stage, each strictly positive. The fixture (and its
    // collector) is shared across tests, so look for a satisfying root
    // rather than assuming the collector holds only our records.
    let records = system.tracer().records();
    let complete_root = records
        .iter()
        .filter(|r| r.parent.is_none() && r.name == "verify")
        .any(|root| {
            STAGES.iter().all(|stage| {
                records
                    .iter()
                    .any(|c| c.parent == Some(root.id) && c.name == *stage && c.duration_s > 0.0)
            })
        });
    assert!(
        complete_root,
        "no verify span with all cascade component children"
    );

    // The shared registry must hold a latency histogram per stage.
    for stage in STAGES {
        let h = system
            .metrics()
            .histogram(&format!("pipeline.{stage}.seconds"));
        assert!(
            h.count() >= 1,
            "pipeline.{stage}.seconds should have samples"
        );
        assert!(h.snapshot().quantile(0.5) > 0.0);
    }
}

#[test]
fn verdicts_are_deterministic() {
    let (system, user) = fixture();
    let s = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(8900));
    let a = system.verify(&s);
    let b = system.verify(&s);
    assert_eq!(a, b);
}

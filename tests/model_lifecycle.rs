//! Model-lifecycle integration tests for the training/serving split:
//! a trained [`ModelBundle`] round-trips through its binary codec into a
//! serving [`DefenseSystem`] with bit-identical verdicts, online
//! enrollment lands against a running server without a restart, and
//! concurrent hot-swaps under batch load never yield a verdict that
//! mixes model generations.

use magshield::core::artifact::{BundleMeta, ModelBundle};
use magshield::core::batch::{AdmissionPolicy, BatchConfig, BatchEngine, BatchOutcome};
use magshield::core::cascade::ExecutionPolicy;
use magshield::core::pipeline::{BootstrapConfig, DefenseSystem};
use magshield::core::registry::ModelRegistry;
use magshield::core::scenario::{bootstrap_with, ScenarioBuilder, UserContext};
use magshield::core::server::VerificationServer;
use magshield::core::session::SessionData;
use magshield::core::trainer::Trainer;
use magshield::core::verdict::StageOutcome;
use magshield::ml::codec::BinaryCodec;
use magshield::simkit::rng::SimRng;
use magshield::voice::attacks::AttackKind;
use magshield::voice::devices::table_iv_catalog;
use magshield::voice::profile::SpeakerProfile;
use magshield::voice::synth::{FormantSynthesizer, SessionEffects};
use std::collections::BTreeSet;
use std::sync::OnceLock;
use std::time::Duration;

fn fixture() -> &'static (DefenseSystem, UserContext) {
    static F: OnceLock<(DefenseSystem, UserContext)> = OnceLock::new();
    F.get_or_init(|| bootstrap_with(&SimRng::from_seed(5150), BootstrapConfig::tiny()))
}

fn meta(notes: &str) -> BundleMeta {
    BundleMeta {
        producer: "model-lifecycle-tests".to_string(),
        ubm_speakers: 3,
        ubm_components: 8,
        em_iters: 4,
        use_isv: false,
        notes: notes.to_string(),
    }
}

/// An isolated system serving the shared fixture's models from a fresh
/// registry, so enroll/swap cannot leak into other tests' fixture.
fn isolated_system() -> DefenseSystem {
    let bundle = ModelBundle::from_snapshot(meta("isolated"), &fixture().0.models());
    DefenseSystem::from_bundle(bundle).expect("fixture models are valid")
}

/// The headline acceptance criterion of the training/serving split:
/// `Trainer::train → to_bytes → from_bytes → DefenseSystem::from_bundle`
/// serves verdicts bit-identical to the legacy bootstrap path on the
/// same seeds — serialization is invisible to the cascade.
#[test]
fn serialized_bundle_serves_bit_identical_verdicts() {
    let rng = SimRng::from_seed(2024);
    let (old, user) = bootstrap_with(&rng, BootstrapConfig::tiny());
    // The trainer consumes the exact RNG stream `bootstrap_with` handed
    // to the legacy path, so the two systems share their models.
    let bundle = Trainer::new(BootstrapConfig::tiny())
        .train(&user, &SimRng::from_seed(2024).fork("bootstrap"));
    let bytes = bundle.to_bytes();
    let revived = DefenseSystem::from_bundle(ModelBundle::from_bytes(&bytes).expect("decodes"))
        .expect("validates");

    let attacker = SpeakerProfile::sample(404, &SimRng::from_seed(9));
    let mut sessions: Vec<SessionData> = (0..3u64)
        .map(|i| ScenarioBuilder::genuine(&user).capture(&SimRng::from_seed(8100 + i)))
        .collect();
    sessions.push(
        ScenarioBuilder::machine_attack(
            &user,
            AttackKind::Replay,
            table_iv_catalog()[0].clone(),
            attacker,
        )
        .at_distance(0.05)
        .capture(&SimRng::from_seed(8200)),
    );
    for (i, s) in sessions.iter().enumerate() {
        let a = old.verify(s);
        let b = revived.verify(s);
        assert_eq!(a, b, "session {i}: serialized system diverged");
        for (x, y) in a.stages.iter().zip(&b.stages) {
            if let (StageOutcome::Ran(rx), StageOutcome::Ran(ry)) = (x, y) {
                assert_eq!(
                    rx.attack_score.to_bits(),
                    ry.attack_score.to_bits(),
                    "session {i}: {:?} score drifted across serialization",
                    rx.component
                );
            }
        }
    }
}

/// Online enrollment against a live server: a speaker unknown at spawn
/// time enrolls over the wire, the registry generation advances, and
/// subsequent verdicts are stamped with the new generation — no restart.
#[test]
fn online_enrollment_lands_without_restart() {
    let server = VerificationServer::spawn(isolated_system(), 2);
    let client = server.client();

    let newcomer = SpeakerProfile::sample(7070, &SimRng::from_seed(600));
    let synth = FormantSynthesizer::default();
    let utterances: Vec<Vec<f64>> = (0..2)
        .map(|k| {
            synth.render_digits(
                &newcomer,
                "582931",
                SessionEffects::neutral(),
                &SimRng::from_seed(601 + k),
            )
        })
        .collect();
    let generation = client
        .enroll(7070, &utterances)
        .expect("enrollment over the wire");
    assert_eq!(generation, ModelRegistry::FIRST_GENERATION + 1);

    let (_, user) = fixture();
    let verdict = client
        .verify(&ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(610)))
        .expect("verdict");
    assert_eq!(
        verdict.generation,
        Some(generation),
        "post-enrollment verdicts serve the new generation"
    );
    server.shutdown();
}

/// Hot-swap under load: the batch engine verifies a steady stream while
/// a background thread swaps whole bundle generations into the shared
/// registry. Every verdict must be attributable to exactly one
/// generation (its stamp), nothing may shed or stall, and the registry
/// must land on the final generation.
#[test]
fn hot_swap_under_load_never_mixes_generations() {
    const SWAPS: u64 = 12;
    let system = isolated_system();
    let control = system.clone(); // shares the registry with the engine
    let engine = BatchEngine::spawn(
        system,
        BatchConfig {
            workers: 2,
            queue_capacity: 16,
            max_batch: 4,
            policy: ExecutionPolicy::ShortCircuit,
            admission: AdmissionPolicy::Backpressure,
            batch_deadline: None,
        },
    );
    let (_, user) = fixture();
    let sessions: Vec<SessionData> = (0..48u64)
        .map(|i| ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(8300 + i)))
        .collect();

    let swapper = std::thread::spawn(move || {
        for k in 0..SWAPS {
            // Each swap exports the current serving state as the next
            // generation — no retraining on the swap path.
            let bundle = ModelBundle::from_snapshot(meta(&format!("swap {k}")), &control.models());
            control.swap_bundle(bundle).expect("valid bundle");
            std::thread::sleep(Duration::from_millis(2));
        }
        control.generation()
    });

    let tickets: Vec<_> = sessions
        .into_iter()
        .map(|s| engine.submit(s).expect("backpressure never sheds"))
        .collect();
    let mut seen = BTreeSet::new();
    for (i, t) in tickets.into_iter().enumerate() {
        match t.wait() {
            BatchOutcome::Verdict(v) => {
                let g = v
                    .generation
                    .expect("every served verdict carries its generation");
                assert!(
                    (ModelRegistry::FIRST_GENERATION..=ModelRegistry::FIRST_GENERATION + SWAPS)
                        .contains(&g),
                    "session {i}: generation {g} was never published"
                );
                seen.insert(g);
            }
            BatchOutcome::Shed(r) => panic!("session {i} shed with {r} under backpressure"),
        }
    }
    let final_generation = swapper.join().expect("swapper lives");
    assert_eq!(final_generation, ModelRegistry::FIRST_GENERATION + SWAPS);
    assert!(!seen.is_empty(), "throughput stalled: no verdicts at all");
    engine.shutdown();
}

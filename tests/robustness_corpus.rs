//! Attack-corpus invariants behind the security gate.
//!
//! The robustness matrix is only a regression gate if its corpus is
//! reproducible: the same seed must yield a bit-identical corpus on
//! every run, and every generated session must be well-formed enough to
//! survive the deployment path (protocol v6 framing included). These
//! tests pin both properties for every attack family.

use magshield::core::robustness::{attack_sessions, AttackFamily, EnvKind};
use magshield::core::scenario::UserContext;
use magshield::core::server::protocol::{
    decode_frame, encode_request, encode_stream_chunk, encode_stream_open, Message,
};
use magshield::core::session::SessionData;
use magshield::core::stream::{chunk_session, StreamConfig, StreamOpenInfo};
use magshield::simkit::rng::SimRng;
use proptest::prelude::*;

fn corpus_user(seed: u64) -> (UserContext, SimRng) {
    let rng = SimRng::from_seed(seed);
    (UserContext::sample(&rng.fork("user")), rng)
}

fn family_session(family: AttackFamily, seed: u64) -> SessionData {
    let (user, rng) = corpus_user(seed);
    attack_sessions(&user, family, EnvKind::Desktop, 1, &rng.fork("corpus"))
        .pop()
        .expect("one session")
}

/// Same seed ⇒ bit-identical corpus, for every family and environment.
/// `SessionData` derives `PartialEq` over every raw sample vector, so
/// this is full bitwise equality of the generated sensor data.
#[test]
fn corpus_is_deterministic_under_a_fixed_seed() {
    let (user_a, rng_a) = corpus_user(20170605);
    let (user_b, rng_b) = corpus_user(20170605);
    for family in AttackFamily::all() {
        for env in EnvKind::all() {
            let a = attack_sessions(&user_a, family, env, 3, &rng_a.fork("corpus"));
            let b = attack_sessions(&user_b, family, env, 3, &rng_b.fork("corpus"));
            assert_eq!(
                a, b,
                "{family:?}/{env:?}: same seed must reproduce the corpus bit-identically"
            );
        }
    }
}

/// Different seeds must not collide — a constant corpus would also pass
/// the determinism test while gating nothing.
#[test]
fn corpus_varies_with_the_seed() {
    for family in AttackFamily::all() {
        let a = family_session(family, 1);
        let b = family_session(family, 2);
        assert_ne!(a, b, "{family:?}: different seeds must differ");
    }
}

/// Every family's session survives a one-shot protocol round trip: the
/// verify-request frame decodes back to the identical session.
#[test]
fn every_family_round_trips_a_verify_request() {
    for (i, family) in AttackFamily::all().into_iter().enumerate() {
        let session = family_session(family, 77);
        let frame = encode_request(1000 + i as u64, &session);
        match decode_frame(&frame).expect("frame decodes") {
            Message::VerifyRequest {
                request_id,
                session: decoded,
            } => {
                assert_eq!(request_id, 1000 + i as u64);
                assert_eq!(decoded, session, "{family:?}: session must round-trip");
            }
            other => panic!("{family:?}: unexpected frame {other:?}"),
        }
    }
}

/// Every family's session survives protocol v6 stream framing: the open
/// frame round-trips its metadata and every chunk decodes bit-identical.
#[test]
fn every_family_round_trips_stream_frames() {
    for family in AttackFamily::all() {
        let session = family_session(family, 99);
        let info = StreamOpenInfo::for_session(&session);
        let open = encode_stream_open(7, 1, &info, StreamConfig::default());
        match decode_frame(&open).expect("open decodes") {
            Message::StreamOpen {
                info: decoded_info, ..
            } => {
                assert_eq!(decoded_info.claimed_speaker, info.claimed_speaker);
                assert_eq!(decoded_info.dual_mic, info.dual_mic);
            }
            other => panic!("{family:?}: unexpected frame {other:?}"),
        }
        for (ci, chunk) in chunk_session(&session, 1024).iter().enumerate() {
            let frame = encode_stream_chunk(7, 1, chunk);
            match decode_frame(&frame).expect("chunk decodes") {
                Message::StreamChunk { chunk: decoded, .. } => {
                    assert_eq!(&decoded, chunk, "{family:?} chunk {ci} must round-trip");
                }
                other => panic!("{family:?}: unexpected frame {other:?}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Protocol v6 chunk framing is lossless for every attack family at
    /// any chunk granularity: re-concatenating the decoded chunks
    /// reproduces the session's raw streams exactly.
    #[test]
    fn chunked_corpus_survives_v6_framing(
        family_idx in 0usize..8,
        chunk_audio in 64usize..4096,
        seed in 1u64..500,
    ) {
        let family = AttackFamily::all()[family_idx];
        let session = family_session(family, seed);
        let mut audio = Vec::new();
        let mut mag = Vec::new();
        for chunk in chunk_session(&session, chunk_audio) {
            let frame = encode_stream_chunk(3, 9, &chunk);
            let decoded = match decode_frame(&frame).expect("chunk decodes") {
                Message::StreamChunk { chunk, .. } => chunk,
                other => panic!("unexpected frame {other:?}"),
            };
            prop_assert_eq!(&decoded, &chunk);
            audio.extend_from_slice(&decoded.audio);
            mag.extend_from_slice(&decoded.mag);
        }
        prop_assert_eq!(audio, session.audio);
        prop_assert_eq!(mag, session.mag_readings);
    }
}

//! Property-based tests (proptest) on cross-crate invariants.

use magshield::dsp::complex::Complex;
use magshield::dsp::fft::{fft, ifft};
use magshield::dsp::mel::{dct2, hz_to_mel, mel_to_hz};
use magshield::dsp::phase::unwrap_phase;
use magshield::ml::circlefit::fit_circle;
use magshield::ml::metrics::{det_curve, equal_error_rate};
use magshield::physics::magnetics::dipole::MagneticDipole;
use magshield::simkit::series::TimeSeries;
use magshield::simkit::units::{db_to_ratio, ratio_to_db};
use magshield::simkit::vec3::Vec3;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT followed by IFFT reproduces the input.
    #[test]
    fn fft_round_trip(values in prop::collection::vec(-100.0f64..100.0, 1..64)) {
        let n = values.len().next_power_of_two();
        let mut buf: Vec<Complex> = values.iter().map(|&v| Complex::new(v, 0.0)).collect();
        buf.resize(n, Complex::ZERO);
        let orig = buf.clone();
        fft(&mut buf);
        ifft(&mut buf);
        for (a, b) in orig.iter().zip(&buf) {
            prop_assert!((a.re - b.re).abs() < 1e-6);
            prop_assert!((a.im - b.im).abs() < 1e-6);
        }
    }

    /// Parseval: FFT preserves energy (up to the 1/N convention).
    #[test]
    fn fft_parseval(values in prop::collection::vec(-10.0f64..10.0, 8..32)) {
        let n = values.len().next_power_of_two();
        let mut buf: Vec<Complex> = values.iter().map(|&v| Complex::new(v, 0.0)).collect();
        buf.resize(n, Complex::ZERO);
        let time_e: f64 = values.iter().map(|v| v * v).sum();
        fft(&mut buf);
        let freq_e: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time_e - freq_e).abs() <= 1e-6 * (1.0 + time_e));
    }

    /// Unwrapped phase differs from each wrapped input by a multiple of 2π
    /// and never jumps more than π between samples.
    #[test]
    fn unwrap_phase_invariants(raw in prop::collection::vec(-20.0f64..20.0, 2..64)) {
        // Build wrapped inputs from arbitrary phases.
        let wrapped: Vec<f64> = raw
            .iter()
            .map(|&p| {
                let mut a = p % std::f64::consts::TAU;
                if a > std::f64::consts::PI { a -= std::f64::consts::TAU; }
                if a <= -std::f64::consts::PI { a += std::f64::consts::TAU; }
                a
            })
            .collect();
        let un = unwrap_phase(&wrapped);
        prop_assert_eq!(un.len(), wrapped.len());
        for (u, w) in un.iter().zip(&wrapped) {
            let k = (u - w) / std::f64::consts::TAU;
            prop_assert!((k - k.round()).abs() < 1e-9, "offset must be a 2π multiple");
        }
        for pair in un.windows(2) {
            prop_assert!((pair[1] - pair[0]).abs() <= std::f64::consts::PI + 1e-9);
        }
    }

    /// dB ↔ linear ratio conversions are mutually inverse.
    #[test]
    fn db_ratio_round_trip(r in 1e-5f64..1e5) {
        let back = db_to_ratio(ratio_to_db(r));
        prop_assert!((back - r).abs() / r < 1e-9);
    }

    /// Mel scale is monotone and invertible.
    #[test]
    fn mel_scale_invertible(hz in 0.0f64..24_000.0) {
        let m = hz_to_mel(hz);
        prop_assert!((mel_to_hz(m) - hz).abs() < 1e-6);
        prop_assert!(hz_to_mel(hz + 1.0) > m);
    }

    /// DCT-II with all coefficients preserves energy (orthonormality).
    #[test]
    fn dct2_energy(values in prop::collection::vec(-10.0f64..10.0, 1..32)) {
        let c = dct2(&values, values.len());
        let ev: f64 = values.iter().map(|v| v * v).sum();
        let ec: f64 = c.iter().map(|v| v * v).sum();
        prop_assert!((ev - ec).abs() <= 1e-8 * (1.0 + ev));
    }

    /// EER is bounded by [0, 1] and zero for perfectly separated scores.
    #[test]
    fn eer_bounds(
        genuine in prop::collection::vec(0.0f64..100.0, 1..40),
        impostor in prop::collection::vec(-100.0f64..0.0, 1..40),
    ) {
        let eer = equal_error_rate(&genuine, &impostor);
        prop_assert!((0.0..=1.0).contains(&eer));
        // These classes are separated at threshold 0 by construction.
        prop_assert!(eer.abs() < 1e-12);
    }

    /// DET curves are monotone in both error axes.
    #[test]
    fn det_monotonicity(
        genuine in prop::collection::vec(-50.0f64..50.0, 1..30),
        impostor in prop::collection::vec(-50.0f64..50.0, 1..30),
    ) {
        let curve = det_curve(&genuine, &impostor);
        for w in curve.windows(2) {
            prop_assert!(w[1].rates.frr >= w[0].rates.frr - 1e-12);
            prop_assert!(w[1].rates.far <= w[0].rates.far + 1e-12);
        }
    }

    /// Dipole magnitude decays monotonically along any fixed ray.
    #[test]
    fn dipole_monotone_decay(
        mx in -1.0f64..1.0, my in -1.0f64..1.0, mz in -1.0f64..1.0,
        dx in -1.0f64..1.0, dy in -1.0f64..1.0, dz in -1.0f64..1.0,
    ) {
        prop_assume!(Vec3::new(mx, my, mz).norm() > 0.1);
        prop_assume!(Vec3::new(dx, dy, dz).norm() > 0.1);
        let dip = MagneticDipole::new(Vec3::ZERO, Vec3::new(mx, my, mz) * 0.01);
        let dir = Vec3::new(dx, dy, dz).normalized();
        let mut prev = f64::INFINITY;
        for k in 1..8 {
            let b = dip.field_at(dir * (0.02 * k as f64)).norm();
            prop_assert!(b <= prev + 1e-12, "field must decay along the ray");
            prev = b;
        }
    }

    /// Circle fitting recovers exact circles regardless of pose.
    #[test]
    fn circle_fit_exact(
        cx in -10.0f64..10.0, cy in -10.0f64..10.0, r in 0.01f64..10.0,
        from in 0.0f64..3.0, span in 0.8f64..5.0,
    ) {
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let a = from + span * i as f64 / 19.0;
                (cx + r * a.cos(), cy + r * a.sin())
            })
            .collect();
        let c = fit_circle(&pts).expect("non-degenerate arc");
        prop_assert!((c.radius - r).abs() < 1e-6 * (1.0 + r));
        prop_assert!((c.cx - cx).abs() < 1e-6 * (1.0 + cx.abs()));
    }

    /// TimeSeries resampling preserves duration and bounded values.
    #[test]
    fn resample_preserves_bounds(
        values in prop::collection::vec(-1.0f64..1.0, 4..128),
        factor in 0.3f64..3.0,
    ) {
        let ts = TimeSeries::from_samples(100.0, values);
        let r = ts.resampled(100.0 * factor);
        prop_assert!((r.duration() - ts.duration()).abs() < 0.05);
        // Linear interpolation cannot exceed the input range.
        prop_assert!(r.max() <= ts.max() + 1e-12);
        prop_assert!(r.min() >= ts.min() - 1e-12);
    }
}

mod verdict_monotonicity {
    use magshield::core::verdict::{Component, ComponentResult, DefenseVerdict};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Raising any component's attack score can never flip a verdict
        /// from Reject to Accept (cascade monotonicity).
        #[test]
        fn raising_scores_never_helps(
            scores in prop::collection::vec(0.0f64..3.0, 1..4),
            bump in 0.0f64..2.0,
            idx in 0usize..4,
        ) {
            let mk = |scores: &[f64]| {
                DefenseVerdict::from_results(
                    scores
                        .iter()
                        .map(|&s| ComponentResult {
                            component: Component::Distance,
                            attack_score: s,
                            detail: String::new(),
                        })
                        .collect(),
                )
            };
            let base = mk(&scores);
            let mut bumped = scores.clone();
            let i = idx % bumped.len();
            bumped[i] += bump;
            let worse = mk(&bumped);
            if !base.accepted() {
                prop_assert!(!worse.accepted(), "adding attack evidence must not flip to Accept");
            }
            prop_assert!(worse.combined_score() >= base.combined_score() - 1e-12);
        }
    }
}

mod protocol_round_trip {
    use magshield::core::server::protocol::{decode_frame, encode_request, Message};
    use magshield::core::session::SessionData;
    use magshield::simkit::vec3::Vec3;
    use proptest::prelude::*;

    fn vec3_strategy() -> impl Strategy<Value = Vec3> {
        (-100.0f64..100.0, -100.0f64..100.0, -100.0f64..100.0)
            .prop_map(|(x, y, z)| Vec3::new(x, y, z))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any session round-trips bit-exactly through the wire protocol.
        #[test]
        fn session_round_trip(
            claimed in 0u32..1000,
            audio in prop::collection::vec(-1.0f64..1.0, 0..200),
            mags in prop::collection::vec(vec3_strategy(), 0..50),
            sweep in 0.0f64..5.0,
            id in 0u64..u64::MAX,
        ) {
            let session = SessionData {
                claimed_speaker: claimed,
                audio,
                audio2: None,
                audio_rate: 48_000.0,
                pilot_hz: 18_000.0,
                mag_readings: mags.clone(),
                accel_readings: mags.clone(),
                gyro_readings: mags,
                imu_rate: 100.0,
                sweep_start_s: sweep,
                earth_reference: Vec3::new(0.0, 28.0, -39.0),
            };
            let frame = encode_request(id, &session);
            match decode_frame(&frame).expect("valid frame decodes") {
                Message::VerifyRequest { request_id, session: s } => {
                    prop_assert_eq!(request_id, id);
                    prop_assert_eq!(s, session);
                }
                other => prop_assert!(false, "wrong message {:?}", other),
            }
        }
    }
}

//! Batch-engine integration tests: admission control and graceful
//! shutdown under load. The contract under test: every submitted session
//! resolves to exactly one outcome — a verdict for admitted work, a
//! distinct shed for refused work — never a silent drop.

use magshield::core::batch::{AdmissionPolicy, BatchConfig, BatchEngine, BatchOutcome, ShedReason};
use magshield::core::cascade::ExecutionPolicy;
use magshield::core::pipeline::{BootstrapConfig, DefenseSystem};
use magshield::core::scenario::{bootstrap_with, ScenarioBuilder, UserContext};
use magshield::core::session::SessionData;
use magshield::simkit::rng::SimRng;
use std::sync::OnceLock;

fn fixture() -> &'static (DefenseSystem, UserContext) {
    static F: OnceLock<(DefenseSystem, UserContext)> = OnceLock::new();
    F.get_or_init(|| bootstrap_with(&SimRng::from_seed(4001), BootstrapConfig::tiny()))
}

fn session(seed: u64) -> SessionData {
    let (_, user) = fixture();
    ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(seed))
}

#[test]
fn graceful_shutdown_under_load_never_drops_a_session() {
    let (system, _) = fixture();
    let engine = BatchEngine::spawn(
        system.with_fresh_obs(),
        BatchConfig {
            workers: 2,
            queue_capacity: 8, // small on purpose: rapid submits may shed
            max_batch: 4,
            policy: ExecutionPolicy::ShortCircuit,
            admission: AdmissionPolicy::Shed,
            batch_deadline: None,
        },
    );
    // Pre-capture so the submit loop outpaces the workers.
    let sessions: Vec<SessionData> = (0..40).map(|i| session(100 + i)).collect();
    let submissions: Vec<_> = sessions.into_iter().map(|s| engine.submit(s)).collect();
    // Trigger shutdown mid-drain: the workers are still chewing through
    // the queue at this point.
    engine.initiate_shutdown();
    // Late arrivals see a distinct, immediate shed — not silence.
    assert_eq!(
        engine.submit(session(999)).err(),
        Some(ShedReason::ShuttingDown)
    );
    let mut verdicts = 0u64;
    let mut shed_full = 0u64;
    for sub in submissions {
        match sub {
            // Graceful: every admitted session still gets its verdict,
            // even though shutdown started while it sat in the queue.
            Ok(ticket) => match ticket.wait() {
                BatchOutcome::Verdict(_) => verdicts += 1,
                BatchOutcome::Shed(r) => panic!("admitted session shed with {r}"),
            },
            Err(r) => {
                assert_eq!(r, ShedReason::QueueFull, "only queue-full sheds expected");
                shed_full += 1;
            }
        }
    }
    assert_eq!(verdicts + shed_full, 40, "every session accounted for");
    assert!(verdicts > 0, "the admitted work was drained, not discarded");
    let registry = engine.metrics().clone();
    engine.shutdown();
    assert_eq!(registry.counter("batch.verdicts").get(), verdicts);
    assert_eq!(registry.counter("batch.shed.queue_full").get(), shed_full);
    // +1 for the post-shutdown submission.
    assert_eq!(registry.counter("batch.shed").get(), shed_full + 1);
    assert_eq!(registry.counter("batch.shed.shutdown").get(), 1);
    assert_eq!(
        registry.gauge("batch.queue.depth").get(),
        0,
        "no leaked slots"
    );
    assert_eq!(
        registry.gauge("batch.inflight").get(),
        0,
        "no leaked claims"
    );
}

#[test]
fn backpressure_shutdown_drains_every_admitted_session() {
    let (system, _) = fixture();
    let engine = BatchEngine::spawn(
        system.with_fresh_obs(),
        BatchConfig {
            workers: 2,
            queue_capacity: 4,
            max_batch: 4,
            policy: ExecutionPolicy::FullEvaluation,
            admission: AdmissionPolicy::Backpressure,
            batch_deadline: None,
        },
    );
    // Backpressure admission never refuses: all 12 are admitted (some
    // submits block until the workers free queue slots).
    let tickets: Vec<_> = (0..12)
        .map(|i| {
            engine
                .submit(session(200 + i))
                .expect("backpressure admits")
        })
        .collect();
    engine.initiate_shutdown();
    for t in tickets {
        assert!(
            matches!(t.wait(), BatchOutcome::Verdict(_)),
            "admitted sessions drain to verdicts through shutdown"
        );
    }
    engine.shutdown();
}

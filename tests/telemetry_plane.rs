//! End-to-end telemetry-plane tests (protocol v5, DESIGN.md §12): a
//! shed storm through the [`BatchEngine`] must surface as a degraded
//! SLO health verdict *over the wire*, labeled metrics and exemplars
//! must survive the scrape, and a panicking worker pool must never
//! report `Healthy`.

use magshield::core::batch::{AdmissionPolicy, BatchConfig, BatchEngine, ShedReason};
use magshield::core::cascade::ExecutionPolicy;
use magshield::core::pipeline::{BootstrapConfig, DefenseSystem};
use magshield::core::scenario::{bootstrap_with, ScenarioBuilder, UserContext};
use magshield::core::server::{ServerConfig, VerificationServer, PANIC_FRAME};
use magshield::core::session::SessionData;
use magshield::obs::slo::HealthState;
use magshield::simkit::rng::SimRng;
use std::sync::OnceLock;

fn fixture() -> &'static (DefenseSystem, UserContext) {
    static F: OnceLock<(DefenseSystem, UserContext)> = OnceLock::new();
    F.get_or_init(|| bootstrap_with(&SimRng::from_seed(6001), BootstrapConfig::tiny()))
}

fn session(seed: u64) -> SessionData {
    let (_, user) = fixture();
    ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(seed))
}

/// The acceptance scenario: flood a paused batch engine until admission
/// sheds, then watch the server's SLO engine call it over the wire.
#[test]
fn shed_storm_degrades_health_over_the_wire() {
    let (system, _) = fixture();
    // One system, one registry: the engine sheds into the same metrics
    // the server's health endpoint evaluates.
    let system = system.with_fresh_obs();
    let engine = BatchEngine::spawn_paused(
        system.clone(),
        BatchConfig {
            workers: 1,
            queue_capacity: 2, // tiny on purpose: the storm must shed
            max_batch: 4,
            policy: ExecutionPolicy::ShortCircuit,
            admission: AdmissionPolicy::Shed,
            batch_deadline: None,
        },
    );
    let srv = VerificationServer::spawn_with_config(
        system,
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    );
    let client = srv.client();

    // Before the storm: healthy.
    assert_eq!(client.health().expect("health").state, HealthState::Healthy);

    // The storm: with no workers draining the 2-slot queue, every
    // submission past the second sheds with `QueueFull`.
    let s = session(42);
    let mut sheds = 0u64;
    for _ in 0..32 {
        if let Err(reason) = engine.submit(s.clone()) {
            assert_eq!(reason, ShedReason::QueueFull);
            sheds += 1;
        }
    }
    assert!(
        sheds >= 30,
        "paused engine must shed the flood, got {sheds}"
    );

    // Over the wire: the shed-ratio guard (sheds vs verdicts served)
    // trips past Degraded — here everything shed, so Unhealthy.
    let report = client.health().expect("health");
    assert!(
        report.state >= HealthState::Degraded,
        "shed storm must degrade health, got {report:?}"
    );
    assert!(
        report.notes.iter().any(|n| n.contains("shed")),
        "the verdict must say why: {report:?}"
    );

    // The labeled evidence is scrapeable too.
    let (snap, exposition) = client.metrics().expect("metrics");
    let shed_total: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("batch.shed{"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(
        shed_total, sheds,
        "labeled shed series must sum to the storm"
    );
    assert!(
        snap.counters
            .keys()
            .any(|k| k.contains("shed_reason=\"queue_full\"")),
        "shed reason label must survive the wire: {:?}",
        snap.counters.keys().collect::<Vec<_>>()
    );
    assert!(exposition.contains("shed_reason=\"queue_full\""));

    engine.shutdown();
    srv.shutdown();
}

/// Satellite: a panicking worker pool must never scrape `Healthy`
/// (`server.worker.panics` feeds the health guards).
#[test]
fn worker_panic_degrades_health_over_the_wire() {
    let (system, _) = fixture();
    let srv = VerificationServer::spawn(system.with_fresh_obs(), 1);
    let client = srv.client();
    assert_eq!(client.health().expect("health").state, HealthState::Healthy);

    // Inject a worker panic; the pool survives and answers the scrape.
    let _ = client.send_raw(PANIC_FRAME.to_vec()).expect("error reply");
    let report = client.health().expect("health after panic");
    assert!(
        report.state >= HealthState::Degraded,
        "a worker panic must not scrape Healthy: {report:?}"
    );
    assert!(
        report.notes.iter().any(|n| n.contains("panic")),
        "the verdict must name the panic: {report:?}"
    );
    srv.shutdown();
}

/// Labeled stage metrics and their exemplars survive the wire scrape,
/// and the exemplar trace id matches the session's trace record.
#[test]
fn stage_exemplars_link_scrape_to_traces() {
    let (system, user) = fixture();
    let system = system.with_fresh_obs();
    let srv = VerificationServer::spawn(system, 1);
    let client = srv.client();
    let s = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(77));
    let claimed = s.claimed_speaker;
    client.verify(&s).expect("verdict");

    let (snap, _) = client.metrics().expect("metrics");
    let (key, hist) = snap
        .histograms
        .iter()
        .find(|(k, _)| k.starts_with("pipeline.stage.seconds{"))
        .expect("labeled stage histogram on the wire");
    assert!(key.contains("stage=\""), "stage label present: {key}");
    assert!(
        key.contains("policy=\"full\""),
        "policy label present: {key}"
    );
    assert!(
        hist.exemplars
            .iter()
            .any(|e| e.trace_id == format!("speaker-{claimed}")),
        "exemplar must carry the session's trace id: {hist:?}"
    );
    srv.shutdown();
}

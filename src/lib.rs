#![warn(missing_docs)]

//! # magshield
//!
//! A software-only defense against voice impersonation attacks on
//! smartphones — a from-scratch Rust reproduction of the ICDCS 2017 paper
//! *"You Can Hear But You Cannot Steal: Defending against Voice
//! Impersonation Attacks on Smartphones"* (Chen, Ren, Piao, Wang, Wang,
//! Weng, Su, Mohaisen).
//!
//! The facade re-exports the workspace crates:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | the four-component defense cascade, scenarios, client/server |
//! | [`asv`] | GMM–UBM / ISV speaker verification |
//! | [`voice`] | formant speech synthesis, attack models, device catalog |
//! | [`trajectory`] | phase ranging + IMU trajectory reconstruction |
//! | [`sensors`] | smartphone sensor models (AK8975 magnetometer, IMU, mic) |
//! | [`physics`] | magnetics (dipoles, shielding, EMF) and acoustics |
//! | [`ml`] | GMM/EM, SVM, PCA, circle fit, FAR/FRR/EER metrics |
//! | [`dsp`] | FFT, STFT, Goertzel, MFCC, filters, VAD |
//! | [`obs`] | metrics registry, span tracing, pipeline latency traces |
//! | [`simkit`] | deterministic RNG, units, time series, noise |
//!
//! # Quickstart
//!
//! ```no_run
//! use magshield::core::scenario::{self, ScenarioBuilder};
//! use magshield::simkit::rng::SimRng;
//!
//! let rng = SimRng::from_seed(7);
//! let (system, user) = scenario::bootstrap_system(&rng);
//! let session = ScenarioBuilder::genuine(&user).capture(&rng.fork("demo"));
//! assert!(system.verify(&session).accepted());
//! ```

pub use magshield_asv as asv;
pub use magshield_core as core;
pub use magshield_dsp as dsp;
pub use magshield_ml as ml;
pub use magshield_obs as obs;
pub use magshield_physics as physics;
pub use magshield_sensors as sensors;
pub use magshield_simkit as simkit;
pub use magshield_trajectory as trajectory;
pub use magshield_voice as voice;

//! The magshield command-line tool: run verification scenarios against the
//! trained defense without writing code.
//!
//! ```text
//! magshield demo                         quickstart: genuine vs replay
//! magshield devices                      list the Table IV device catalog
//! magshield verify [OPTIONS]             run one scenario
//!   --attack replay|morphing|synthesis|mimicry|none
//!   --device <substring of a catalog name>     (default: Logitech)
//!   --distance <cm>                             (default: 5)
//!   --env quiet|computer|car                    (default: quiet)
//!   --shielded                                  Mu-metal around the device
//!   --seed <n>                                  (default: 2017)
//! ```

use magshield::core::pipeline::DefenseSystem;
use magshield::core::scenario::{self, ScenarioBuilder, UserContext};
use magshield::physics::magnetics::interference::EmfEnvironment;
use magshield::simkit::rng::SimRng;
use magshield::simkit::vec3::Vec3;
use magshield::voice::attacks::AttackKind;
use magshield::voice::devices::table_iv_catalog;
use magshield::voice::profile::SpeakerProfile;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("demo") => demo(),
        Some("devices") => devices(),
        Some("verify") => verify(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command: {other}\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "magshield — voice-impersonation defense (ICDCS 2017 reproduction)\n\n\
         USAGE:\n  magshield demo\n  magshield devices\n  magshield verify [OPTIONS]\n\n\
         VERIFY OPTIONS:\n  \
         --attack replay|morphing|synthesis|mimicry|none   (default: none = genuine)\n  \
         --device <catalog-name substring>                 (default: Logitech)\n  \
         --distance <cm>                                   (default: 5)\n  \
         --env quiet|computer|car                          (default: quiet)\n  \
         --shielded\n  \
         --seed <n>                                        (default: 2017)"
    );
}

fn bootstrap(seed: u64) -> (DefenseSystem, UserContext, SimRng) {
    eprintln!("training the defense system (seed {seed})...");
    let rng = SimRng::from_seed(seed);
    let (system, user) = scenario::bootstrap_system(&rng);
    (system, user, rng)
}

fn print_verdict(v: &magshield::core::verdict::DefenseVerdict) {
    use magshield::core::verdict::StageOutcome;
    println!("verdict: {:?}", v.decision);
    if let Some(reason) = &v.invalid {
        println!("  (invalid session: {reason})");
    }
    for stage in &v.stages {
        match stage {
            StageOutcome::Ran(r) => println!(
                "  {:<16} score {:>5.2}  {}",
                format!("{:?}", r.component),
                r.attack_score,
                r.detail
            ),
            StageOutcome::Skipped(s) => println!(
                "  {:<16} skipped     short-circuited by {:?}",
                format!("{:?}", s.component),
                s.cause
            ),
        }
    }
}

fn demo() -> ExitCode {
    let (system, user, rng) = bootstrap(2017);
    println!("\n--- genuine session ---");
    let s = ScenarioBuilder::genuine(&user).capture(&rng.fork("cli-genuine"));
    print_verdict(&system.verify(&s));
    println!("\n--- replay attack via Logitech LS21 at 5 cm ---");
    let attacker = SpeakerProfile::sample(99, &rng.fork("cli-attacker"));
    let s = ScenarioBuilder::machine_attack(
        &user,
        AttackKind::Replay,
        table_iv_catalog()[0].clone(),
        attacker,
    )
    .at_distance(0.05)
    .capture(&rng.fork("cli-attack"));
    print_verdict(&system.verify(&s));
    ExitCode::SUCCESS
}

fn devices() -> ExitCode {
    println!(
        "{:<46} {:>8} {:>10} {:>14}",
        "device", "magnet", "aperture", "passband"
    );
    println!("{}", "-".repeat(82));
    for d in table_iv_catalog() {
        println!(
            "{:<46} {:>6.0}µT {:>8.0}mm {:>7.0}-{:.0}Hz",
            d.name,
            d.magnet_ut_at_3cm,
            d.aperture_radius_m * 1000.0,
            d.low_hz,
            d.high_hz
        );
    }
    ExitCode::SUCCESS
}

fn verify(args: &[String]) -> ExitCode {
    let mut attack = "none".to_string();
    let mut device = "Logitech".to_string();
    let mut distance_cm = 5.0f64;
    let mut env = "quiet".to_string();
    let mut shielded = false;
    let mut seed = 2017u64;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Option<String> {
            match it.next() {
                Some(v) => Some(v.clone()),
                None => {
                    eprintln!("{name} needs a value");
                    None
                }
            }
        };
        match a.as_str() {
            "--attack" => match take("--attack") {
                Some(v) => attack = v,
                None => return ExitCode::FAILURE,
            },
            "--device" => match take("--device") {
                Some(v) => device = v,
                None => return ExitCode::FAILURE,
            },
            "--distance" => match take("--distance").and_then(|v| v.parse().ok()) {
                Some(v) => distance_cm = v,
                None => {
                    eprintln!("--distance needs a number (cm)");
                    return ExitCode::FAILURE;
                }
            },
            "--env" => match take("--env") {
                Some(v) => env = v,
                None => return ExitCode::FAILURE,
            },
            "--shielded" => shielded = true,
            "--seed" => match take("--seed").and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown option: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let kind = match attack.as_str() {
        "none" => None,
        "replay" => Some(AttackKind::Replay),
        "morphing" => Some(AttackKind::Morphing),
        "synthesis" => Some(AttackKind::Synthesis),
        "mimicry" => Some(AttackKind::HumanMimicry),
        other => {
            eprintln!("unknown attack kind: {other}");
            return ExitCode::FAILURE;
        }
    };
    let environment = match env.as_str() {
        "quiet" => EmfEnvironment::quiet(),
        "computer" => EmfEnvironment::near_computer(Vec3::new(0.30, 0.0, 0.0)),
        "car" => EmfEnvironment::in_car(),
        other => {
            eprintln!("unknown environment: {other}");
            return ExitCode::FAILURE;
        }
    };

    let (system, user, rng) = bootstrap(seed);
    let builder = match kind {
        None => ScenarioBuilder::genuine(&user),
        Some(AttackKind::HumanMimicry) => {
            let attacker = SpeakerProfile::sample(77, &rng.fork("cli-mimic"));
            ScenarioBuilder::mimicry_attack(&user, attacker)
        }
        Some(k) => {
            let Some(dev) = table_iv_catalog()
                .into_iter()
                .find(|d| d.name.to_lowercase().contains(&device.to_lowercase()))
            else {
                eprintln!("no catalog device matches '{device}' (try `magshield devices`)");
                return ExitCode::FAILURE;
            };
            println!("device: {}", dev.name);
            let attacker = SpeakerProfile::sample(77, &rng.fork("cli-attacker"));
            let mut b = ScenarioBuilder::machine_attack(&user, k, dev, attacker);
            if shielded {
                b = b.with_shielding();
            }
            b
        }
    };
    let session = builder
        .at_distance(distance_cm / 100.0)
        .in_environment(environment)
        .capture(&rng.fork("cli-session"));
    let verdict = system.verify(&session);
    print_verdict(&verdict);
    if verdict.accepted() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

//! Dual-microphone quick unlock — the §VII extension on a Nexus 4.
//!
//! With two microphones the sound-level difference (SLD) between them is
//! an absolute range cue, so the protocol's approach segment can shrink
//! from a full second to a flick of the wrist. This example runs the
//! shortened protocol for the genuine user and for a distant replay rig
//! and prints the SLD evidence.
//!
//! ```sh
//! cargo run --release --example dual_mic_unlock
//! ```

use magshield::core::components::sld;
use magshield::core::scenario::{self, ScenarioBuilder};
use magshield::sensors::phone::PhoneModel;
use magshield::simkit::rng::SimRng;
use magshield::voice::attacks::AttackKind;
use magshield::voice::devices::table_iv_catalog;
use magshield::voice::profile::SpeakerProfile;

fn main() {
    let rng = SimRng::from_seed(4242);
    println!("training the defense system...");
    let (system, mut user) = scenario::bootstrap_system(&rng);
    user.phone = PhoneModel::Nexus4; // the dual-microphone testbed device
    println!(
        "user {} now unlocks with a {} — two microphones, 9 cm apart\n",
        user.profile.id,
        user.phone.label()
    );

    let shorten = |mut b: ScenarioBuilder| {
        b.motion.approach_s = 0.3; // barely any approach
        b.motion.start_distance_m = b.motion.end_distance_m + 0.04;
        b
    };
    let mut config = system.config;
    config.min_approach_m = 0.01; // the shortened protocol's expectation

    // Genuine quick unlock at 5 cm.
    let session = shorten(ScenarioBuilder::genuine(&user)).capture(&rng.fork("quick"));
    if let Some(a) = sld::measure(&session) {
        println!(
            "genuine quick unlock: SLD {:.1} dB → source at {:.1} cm",
            a.sld_db,
            a.implied_distance_m * 100.0
        );
    }
    let verdict = system.verify_with_config(&session, &config);
    println!("  verdict: {:?}", verdict.decision);

    // A replay rig 25 cm away tries the same quick gesture.
    let attacker = SpeakerProfile::sample(21, &rng.fork("attacker"));
    let rig = shorten(
        ScenarioBuilder::machine_attack(
            &user,
            AttackKind::Replay,
            table_iv_catalog()[7].clone(), // Pioneer floor speaker
            attacker,
        )
        .at_distance(0.25),
    )
    .capture(&rng.fork("rig"));
    if let Some(a) = sld::measure(&rig) {
        println!(
            "\nreplay rig at 25 cm: SLD {:.1} dB → source at {:.1} cm (needs ≤ {:.0} cm)",
            a.sld_db,
            a.implied_distance_m * 100.0,
            config.distance_threshold_m * config.distance_tolerance * 100.0
        );
    }
    let verdict = system.verify_with_config(&rig, &config);
    println!("  verdict: {:?}", verdict.decision);
    println!("\nthe level gradient between the mics cannot be faked by playing louder —");
    println!("loudness raises both channels; only proximity tilts them.");
}

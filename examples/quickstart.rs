//! Quickstart: train the defense, verify a genuine session, then watch it
//! stop a replay attack.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use magshield::core::scenario::{self, ScenarioBuilder};
use magshield::core::verdict::Component;
use magshield::simkit::rng::SimRng;
use magshield::voice::attacks::AttackKind;
use magshield::voice::devices::table_iv_catalog;
use magshield::voice::profile::SpeakerProfile;

fn main() {
    let rng = SimRng::from_seed(2017);

    println!("training the defense system (UBM, speaker model, sound-field SVM)...");
    let (system, user) = scenario::bootstrap_system(&rng);
    println!(
        "enrolled user {} with passphrase \"{}\" on a {}\n",
        user.profile.id,
        user.passphrase,
        user.phone.label()
    );

    // --- Genuine session -------------------------------------------------
    let session = ScenarioBuilder::genuine(&user).capture(&rng.fork("genuine"));
    let verdict = system.verify(&session);
    println!("genuine session → {:?}", verdict.decision);
    for r in verdict.results() {
        println!(
            "  {:?}: score {:.2}  [{}]",
            r.component, r.attack_score, r.detail
        );
    }

    // --- Replay attack ----------------------------------------------------
    let speaker = table_iv_catalog()[0].clone(); // Logitech LS21
    let attacker = SpeakerProfile::sample(77, &rng.fork("attacker"));
    println!(
        "\nreplaying a covert recording through a {} ...",
        speaker.name
    );
    let attack = ScenarioBuilder::machine_attack(&user, AttackKind::Replay, speaker, attacker)
        .at_distance(0.05)
        .capture(&rng.fork("attack"));
    let verdict = system.verify(&attack);
    println!("replay attack → {:?}", verdict.decision);
    for r in verdict.results() {
        println!(
            "  {:?}: score {:.2}  [{}]",
            r.component, r.attack_score, r.detail
        );
    }
    let ld = verdict.result_of(Component::Loudspeaker).expect("ran");
    println!(
        "\nthe magnetometer saw the loudspeaker: loudspeaker-detector score {:.1} (boundary 1.0)",
        ld.attack_score
    );
}

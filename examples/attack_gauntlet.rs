//! Attack gauntlet: run every attack class of §III-A against the trained
//! defense and report which component stops each one.
//!
//! Covers the paper's threat taxonomy end to end: replay / morphing /
//! synthesis through conventional loudspeakers and earphones, a Mu-metal
//! shielded speaker, a sound-tube rig, an electrostatic panel, and a live
//! human imitator.
//!
//! ```sh
//! cargo run --release --example attack_gauntlet
//! ```

use magshield::core::scenario::{self, ScenarioBuilder, SourceKind};
use magshield::core::verdict::DefenseVerdict;
use magshield::physics::acoustics::tube::SoundTube;
use magshield::simkit::rng::SimRng;
use magshield::simkit::vec3::Vec3;
use magshield::voice::attacks::AttackKind;
use magshield::voice::devices::{table_iv_catalog, unconventional_catalog};
use magshield::voice::profile::SpeakerProfile;

fn blocking_components(v: &DefenseVerdict) -> String {
    let names: Vec<&str> = v
        .results()
        .filter(|r| r.attack_score >= 1.0)
        .map(|r| r.component.name())
        .collect();
    if names.is_empty() {
        "-".into()
    } else {
        names.join("+")
    }
}

fn main() {
    let rng = SimRng::from_seed(1337);
    println!("training the defense system...");
    let (system, user) = scenario::bootstrap_system(&rng);
    let attacker = SpeakerProfile::sample(88, &rng.fork("attacker"));
    let catalog = table_iv_catalog();
    let pc_speaker = catalog[0].clone();
    let earphone = catalog
        .iter()
        .find(|d| d.name.contains("EarPods"))
        .unwrap()
        .clone();
    let esl = unconventional_catalog()[0].clone();

    println!("\n{:<44} {:>8}  blocked by", "scenario", "verdict");
    println!("{}", "-".repeat(76));

    let run = |name: &str, builder: ScenarioBuilder, seed: &str| {
        let session = builder.capture(&rng.fork(seed));
        let v = system.verify(&session);
        println!(
            "{:<44} {:>8}  {}",
            name,
            format!("{:?}", v.decision),
            blocking_components(&v)
        );
        v.accepted()
    };

    // Genuine baseline.
    let ok = run("genuine user", ScenarioBuilder::genuine(&user), "genuine");
    assert!(ok, "genuine baseline must pass");

    // Machine-based attacks through a PC loudspeaker.
    for kind in AttackKind::machine_based() {
        let name = format!("{kind:?} via {}", pc_speaker.name);
        run(
            &name,
            ScenarioBuilder::machine_attack(&user, kind, pc_speaker.clone(), attacker.clone())
                .at_distance(0.05),
            &format!("atk-{kind:?}"),
        );
    }

    // Earphone replay (magnet too small → the sound field must catch it).
    run(
        "Replay via Apple EarPods (earphone)",
        ScenarioBuilder::machine_attack(
            &user,
            AttackKind::Replay,
            earphone.clone(),
            attacker.clone(),
        )
        .at_distance(0.05),
        "atk-earphone",
    );

    // Mu-metal shielded loudspeaker (§VI).
    run(
        "Replay via shielded Logitech LS21",
        ScenarioBuilder::machine_attack(
            &user,
            AttackKind::Replay,
            pc_speaker.clone(),
            attacker.clone(),
        )
        .at_distance(0.05)
        .with_shielding(),
        "atk-shield",
    );

    // Sound-tube attack (§VII).
    {
        let mut b = ScenarioBuilder::machine_attack(
            &user,
            AttackKind::Replay,
            pc_speaker.clone(),
            attacker.clone(),
        )
        .at_distance(0.05);
        b.source = SourceKind::DeviceViaTube {
            device: pc_speaker.clone(),
            tube: SoundTube::new(0.30, 0.0125),
        };
        run("Replay via 30 cm sound tube", b, "atk-tube");
    }

    // Off-center rig: speaker 25 cm away, hand sweep faking closeness.
    run(
        "Replay, speaker 25 cm away, fake pivot",
        ScenarioBuilder::machine_attack(
            &user,
            AttackKind::Replay,
            pc_speaker.clone(),
            attacker.clone(),
        )
        .at_distance(0.25)
        .with_off_center_pivot(Vec3::new(0.0, -0.20, 0.0)),
        "atk-pivot",
    );

    // Electrostatic panel (§VII).
    run(
        "Synthesis via electrostatic panel (ESL)",
        ScenarioBuilder::machine_attack(&user, AttackKind::Synthesis, esl, attacker.clone())
            .at_distance(0.05),
        "atk-esl",
    );

    // Live human imitator.
    run(
        "human mimicry (live voice)",
        ScenarioBuilder::mimicry_attack(&user, attacker.clone()),
        "atk-mimic",
    );

    println!("\nall machine-based deliveries must be rejected; see EXPERIMENTS.md for rates.");
}

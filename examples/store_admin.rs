//! Durable-store admin tool: inspect a store directory, build the
//! deterministic demo store, or force a compaction.
//!
//! ```sh
//! cargo run --release --example store_admin -- demo /tmp/store --bundle user.bundle
//! cargo run --release --example store_admin -- inspect /tmp/store
//! cargo run --release --example store_admin -- compact /tmp/store
//! ```
//!
//! `inspect` is read-only: it decodes the golden base, scans the WAL
//! frame by frame (every checksum validated) and prints generations,
//! per-kind record counts and tail status — a torn tail is reported,
//! not repaired. `compact` recovers the store (replaying the log) and
//! folds it into a fresh golden base.

use magshield::core::pipeline::DefenseSystem;
use magshield::core::store::admin::{build_demo_store, inspect};
use magshield::core::ModelBundle;
use magshield::ml::codec::BinaryCodec;
use std::path::Path;

fn usage() -> ! {
    eprintln!("usage: store_admin inspect DIR");
    eprintln!("       store_admin compact DIR");
    eprintln!("       store_admin demo DIR --bundle PATH");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, dir) = match (args.first(), args.get(1)) {
        (Some(c), Some(d)) => (c.as_str(), Path::new(d)),
        _ => usage(),
    };
    match cmd {
        "inspect" => {
            let report = inspect(dir).unwrap_or_else(|e| {
                eprintln!("inspect failed: {e}");
                std::process::exit(1);
            });
            print!("{report}");
        }
        "compact" => {
            let (system, recovered) = DefenseSystem::open_durable(dir).unwrap_or_else(|e| {
                eprintln!("recovery failed: {e}");
                std::process::exit(1);
            });
            println!(
                "recovered generation {} ({} record(s) replayed, {} torn byte(s) truncated)",
                recovered.generation, recovered.records_replayed, recovered.torn_bytes_truncated
            );
            let generation = system.compact_store().unwrap_or_else(|e| {
                eprintln!("compaction failed: {e}");
                std::process::exit(1);
            });
            println!("compacted into golden base at generation {generation}");
            print!("{}", inspect(dir).expect("inspect after compaction"));
        }
        "demo" => {
            let bundle_path = match (args.get(2).map(String::as_str), args.get(3)) {
                (Some("--bundle"), Some(p)) => p,
                _ => usage(),
            };
            let bytes = std::fs::read(bundle_path).unwrap_or_else(|e| {
                eprintln!("read {bundle_path}: {e}");
                std::process::exit(1);
            });
            let bundle = ModelBundle::from_bytes(&bytes).unwrap_or_else(|e| {
                eprintln!("decode {bundle_path}: {e}");
                std::process::exit(1);
            });
            let system = build_demo_store(dir, bundle).unwrap_or_else(|e| {
                eprintln!("demo store failed: {e}");
                std::process::exit(1);
            });
            println!(
                "built demo store at {} (generation {})",
                dir.display(),
                system.generation()
            );
            print!("{}", inspect(dir).expect("inspect demo store"));
        }
        _ => usage(),
    }
}

//! Voice-unlock service: the client/server deployment of §V.
//!
//! Spawns the verification server with a worker pool, then drives it from
//! several concurrent "phone" clients over the binary wire protocol —
//! genuine unlocks, a replay attack, and a corrupted frame.
//!
//! ```sh
//! cargo run --release --example voice_unlock_server
//! ```

use magshield::core::batch::BatchOutcome;
use magshield::core::scenario::{self, ScenarioBuilder};
use magshield::core::server::VerificationServer;
use magshield::core::trainer::{BootstrapConfig, Trainer};
use magshield::simkit::rng::SimRng;
use magshield::voice::attacks::AttackKind;
use magshield::voice::devices::table_iv_catalog;
use magshield::voice::profile::SpeakerProfile;
use magshield::voice::synth::{FormantSynthesizer, SessionEffects};
use std::time::Instant;

fn main() {
    let rng = SimRng::from_seed(5005);
    println!("training the defense system...");
    let (system, user) = scenario::bootstrap_system(&rng);

    println!("spawning verification server with 4 workers...");
    let server = VerificationServer::spawn(system, 4);

    // Three concurrent genuine unlock attempts.
    let started = Instant::now();
    let mut handles = Vec::new();
    for i in 0..3u64 {
        let client = server.client();
        let session = ScenarioBuilder::genuine(&user).capture(&rng.fork_indexed("unlock", i));
        handles.push(std::thread::spawn(move || {
            let t0 = Instant::now();
            let verdict = client.verify(&session).expect("server reachable");
            (verdict.accepted(), t0.elapsed())
        }));
    }
    for (i, h) in handles.into_iter().enumerate() {
        let (accepted, dt) = h.join().unwrap();
        println!(
            "  unlock #{i}: {} in {:.1} ms",
            if accepted { "ACCEPTED" } else { "REJECTED" },
            dt.as_secs_f64() * 1000.0
        );
    }
    println!(
        "  3 concurrent unlocks done in {:.1} ms wall",
        started.elapsed().as_secs_f64() * 1000.0
    );

    // A batch request (protocol v3): one frame carries a morning rush of
    // unlock attempts; the server runs the cheap cascade stages
    // stage-major across the whole batch, pruning the expensive ASV work
    // for sessions already rejected.
    let rush: Vec<_> = (0..8u64)
        .map(|i| ScenarioBuilder::genuine(&user).capture(&rng.fork_indexed("rush", i)))
        .collect();
    let t0 = Instant::now();
    let outcomes = server
        .client()
        .verify_batch(&rush)
        .expect("server reachable");
    let accepted = outcomes
        .iter()
        .filter(|o| matches!(o, BatchOutcome::Verdict(v) if v.accepted()))
        .count();
    println!(
        "  batch of {}: {accepted} accepted, {} shed, in {:.1} ms wall",
        rush.len(),
        outcomes.iter().filter(|o| o.is_shed()).count(),
        t0.elapsed().as_secs_f64() * 1000.0
    );

    // A replay attack arrives at the same service.
    let attacker = SpeakerProfile::sample(13, &rng.fork("attacker"));
    let attack = ScenarioBuilder::machine_attack(
        &user,
        AttackKind::Replay,
        table_iv_catalog()[4].clone(), // Bose SoundLink Mini
        attacker,
    )
    .at_distance(0.05)
    .capture(&rng.fork("attack"));
    let verdict = server.client().verify(&attack).expect("server reachable");
    println!(
        "  replay attack via Bose SoundLink Mini: {}",
        if verdict.accepted() {
            "ACCEPTED (!)"
        } else {
            "REJECTED"
        }
    );

    // Model lifecycle over the wire (protocol v4): a second family
    // member enrolls against the running server — no restart — and a
    // freshly trained bundle hot-swaps in while the pool keeps serving.
    let newcomer = SpeakerProfile::sample(2002, &rng.fork("newcomer"));
    let synth = FormantSynthesizer::default();
    let utterances: Vec<Vec<f64>> = (0..2u64)
        .map(|k| {
            synth.render_digits(
                &newcomer,
                "582931",
                SessionEffects::neutral(),
                &rng.fork_indexed("enroll", k),
            )
        })
        .collect();
    let generation = server
        .client()
        .enroll(2002, &utterances)
        .expect("server reachable");
    println!("  enrolled speaker 2002 online → registry generation {generation}");

    let retrained = Trainer::new(BootstrapConfig::default())
        .with_notes("nightly retrain")
        .train(&user, &rng.fork("retrain"));
    let generation = server
        .client()
        .swap_bundle(&retrained)
        .expect("server reachable");
    let verdict = server
        .client()
        .verify(&ScenarioBuilder::genuine(&user).capture(&rng.fork("post-swap")))
        .expect("server reachable");
    println!(
        "  hot-swapped retrained bundle → generation {generation}; next unlock {} (served by generation {})",
        if verdict.accepted() { "ACCEPTED" } else { "REJECTED" },
        verdict.generation.unwrap_or(0),
    );
    // A corrupted frame exercises the protocol error path.
    let raw_reply = server
        .client()
        .send_raw(vec![0xDE, 0xAD, 0xBE, 0xEF])
        .expect("server reachable");
    println!("  corrupted frame → {} byte error reply", raw_reply.len());

    // Server-side observability over the wire: a stats round trip returns
    // queue/compute latency histograms and per-worker counters.
    let stats = server.client().stats().expect("server reachable");
    println!(
        "\nserver stats: {} verified, {} protocol errors, queue depth {}",
        stats.processed, stats.protocol_errors, stats.queue_depth
    );
    println!(
        "  compute latency:  p50={:.1} ms  p95={:.1} ms  p99={:.1} ms  max={:.1} ms",
        stats.compute.quantile(0.50) * 1e3,
        stats.compute.quantile(0.95) * 1e3,
        stats.compute.quantile(0.99) * 1e3,
        stats.compute.max_s() * 1e3,
    );
    println!(
        "  queue wait:       p50={:.2} ms  p99={:.2} ms",
        stats.queue_wait.quantile(0.50) * 1e3,
        stats.queue_wait.quantile(0.99) * 1e3,
    );
    println!("  per-worker processed: {:?}", stats.per_worker_processed);
    server.shutdown();
}

//! Offline trainer: produce a versioned model-bundle file the server
//! loads — the training half of the train-once / serve-many split.
//!
//! ```sh
//! cargo run --release --example train_bundle -- --seed 424242 --out user.bundle
//! cargo run --release --example train_bundle -- --tiny --notes "golden artifact"
//! ```
//!
//! The output file is the bundle's own checksummed binary encoding
//! (`ModelBundle::to_bytes`); hand it to `DefenseSystem::from_bundle`
//! after `ModelBundle::from_bytes`, or push it into a running server
//! with `Client::swap_bundle`.

use magshield::core::scenario::UserContext;
use magshield::core::trainer::{BootstrapConfig, Trainer};
use magshield::ml::codec::BinaryCodec;
use magshield::simkit::rng::SimRng;

fn main() {
    let mut seed = 424242u64;
    let mut out = String::from("user.bundle");
    let mut notes = String::new();
    let mut cfg = BootstrapConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--out" => out = args.next().expect("--out PATH"),
            "--notes" => notes = args.next().expect("--notes TEXT"),
            "--tiny" => cfg = BootstrapConfig::tiny(),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: train_bundle [--seed N] [--out PATH] [--notes TEXT] [--tiny]");
                std::process::exit(2);
            }
        }
    }

    let rng = SimRng::from_seed(seed);
    let user = UserContext::sample(&rng.fork("user"));
    println!(
        "training bundle (seed {seed}, {} UBM components, {} EM iters)...",
        cfg.ubm_components, cfg.em_iters
    );
    let bundle = Trainer::new(cfg)
        .with_notes(notes)
        .train(&user, &rng.fork("bootstrap"));
    let bytes = bundle.to_bytes();
    std::fs::write(&out, &bytes).expect("write bundle file");
    println!(
        "wrote {out}: {} bytes, producer {:?}, {} speaker(s) [{}], {} sound-field bins",
        bytes.len(),
        bundle.meta.producer,
        bundle.speakers.len(),
        bundle
            .speakers
            .iter()
            .map(|m| m.speaker_id.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        bundle.config.sound_field_bins,
    );
    println!("training is deterministic: the same seed reproduces this file byte for byte");
}

//! Magnetic survey: reproduce the physics views behind Figs. 10 and 12 —
//! the polar field pattern of a loudspeaker and the field-vs-distance
//! decay that sets the 6 cm detection threshold.
//!
//! ```sh
//! cargo run --release --example magnetic_survey
//! ```

use magshield::physics::magnetics::dipole::MagneticDipole;
use magshield::physics::magnetics::earth::EarthField;
use magshield::physics::magnetics::shielding::Shield;
use magshield::sensors::magnetometer::{Magnetometer, MagnetometerSpec};
use magshield::simkit::rng::SimRng;
use magshield::simkit::vec3::Vec3;
use magshield::voice::devices::table_iv_catalog;

fn bar(value: f64, full_scale: f64, width: usize) -> String {
    let n = ((value / full_scale) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    "#".repeat(n)
}

fn main() {
    let catalog = table_iv_catalog();
    let ls21 = &catalog[0];
    println!(
        "device: {}  (calibrated {} µT at 3 cm)\n",
        ls21.name, ls21.magnet_ut_at_3cm
    );
    let magnet = MagneticDipole::calibrated(Vec3::ZERO, Vec3::Y, ls21.magnet_ut_at_3cm, 0.03);

    // --- Fig. 10: polar scan at 3 cm -------------------------------------
    println!("polar field magnitude at 3 cm (Fig. 10 view):");
    for deg in (0..360).step_by(20) {
        let a = (deg as f64).to_radians();
        let p = Vec3::new(0.03 * a.sin(), 0.03 * a.cos(), 0.0);
        let b = magnet.field_at(p).norm();
        println!("  {deg:>3}°  {b:7.1} µT  {}", bar(b, 320.0, 40));
    }

    // --- Fig. 12 driver: |B| vs distance, bare and shielded --------------
    let earth = EarthField::typical().field_at();
    let shield = Shield::mu_metal();
    let mut mag = Magnetometer::new(MagnetometerSpec::ak8975(), SimRng::from_seed(1));
    println!(
        "\nfield vs distance on-axis (Earth field {:.1} µT, AK8975 noise ~0.4 µT):",
        earth.norm()
    );
    println!(
        "{:>6} {:>12} {:>12} {:>14}",
        "d (cm)", "bare (µT)", "shielded", "sensor reads"
    );
    for d_cm in [2.0f64, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0] {
        let p = Vec3::new(0.0, d_cm / 100.0, 0.0);
        let bare = magnet.field_at(p).norm();
        let shielded = shield.field_at(magnet, earth, p).norm();
        let reading = mag.read(magnet.field_at(p) + earth).norm();
        println!("{d_cm:>6.0} {bare:>12.2} {shielded:>12.2} {reading:>14.2}");
    }
    println!(
        "\nbelow ~{} µT of anomaly the AK8975 noise floor hides the speaker —\n\
         that is why the paper pins the distance threshold Dt at 6 cm.",
        2.5
    );
}

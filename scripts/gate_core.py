"""Shared comparison core for the CI regression gates.

`bench_gate.py` (performance) and `security_gate.py` (robustness) are
thin CLIs over this module: JSON loading, metric extraction, tolerance
math and the pass/fail report all live here so the two gates cannot
drift apart on semantics.

Tolerance modes:

* relative (`absolute=False`): the limit is `base * (1 ± tolerance)` —
  right for throughput-style metrics whose scale is arbitrary;
* absolute (`absolute=True`): the limit is `base ± tolerance` in the
  metric's own unit — right for percentages like EER, where a relative
  tolerance degenerates at base 0.
"""

import json


def load(path):
    """Parses the JSON document at `path` (raises OSError/ValueError)."""
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def gated_metrics(doc):
    """Extracts {name: (value, direction)} from a gate artifact.

    Understands the generic shape (top-level `"metrics"` object mapping
    name -> {"value": float, "direction": "higher"|"lower"}) and the
    legacy throughput shape (top-level `peak_sessions_per_sec`, gated
    higher-is-better). Raises ValueError when neither is present.
    """
    out = {}
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        for name, spec in metrics.items():
            direction = spec.get("direction", "higher")
            if direction not in ("higher", "lower"):
                raise ValueError(f"metric {name}: bad direction {direction!r}")
            out[name] = (float(spec["value"]), direction)
    if "peak_sessions_per_sec" in doc:
        out["peak_sessions_per_sec"] = (
            float(doc["peak_sessions_per_sec"]),
            "higher",
        )
    if not out:
        raise ValueError(
            "no gateable metrics (expected 'metrics' object or "
            "'peak_sessions_per_sec')"
        )
    return out


def metric_limit(base, direction, tolerance, absolute=False):
    """The worst acceptable current value for a baseline of `base`."""
    delta = tolerance if absolute else abs(base) * tolerance
    if direction == "higher":
        return base - delta
    return base + delta


def within(cur, limit, direction):
    """True when `cur` is on the acceptable side of `limit`."""
    if direction == "higher":
        return cur >= limit
    return cur <= limit


def compare_metrics(baseline, current, tolerance, gate_name, absolute=False):
    """Gates every metric present in BOTH dicts; reports the rest.

    `baseline`/`current` map name -> (value, direction). Metrics only
    one side has are reported but not gated, so adding a new metric
    doesn't fail the gate until its baseline is committed. Returns the
    list of failed metric names; prints one line per metric.
    """
    failed = []
    tol_label = f"{tolerance:g}pp" if absolute else f"{tolerance:.0%}"
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline or name not in current:
            side = "baseline" if name not in current else "current"
            print(f"{gate_name}: {name}: only in {side} — not gated")
            continue
        base, direction = baseline[name]
        cur = current[name][0]
        limit = metric_limit(base, direction, tolerance, absolute=absolute)
        ok = within(cur, limit, direction)
        bound = "floor" if direction == "higher" else "ceiling"
        print(
            f"{gate_name}: {name}: baseline {base:.2f}, current {cur:.2f}, "
            f"{bound} {limit:.2f} ({tol_label} tolerance) -> "
            f"{'PASS' if ok else 'FAIL'}"
        )
        if not ok:
            failed.append(name)
    return failed


def soft_pass_summary(gate_name, baseline_path, current):
    """Prints the missing-baseline soft-pass line for `current` metrics."""
    summary = ", ".join(f"{k} {v:.2f}" for k, (v, _) in sorted(current.items()))
    print(
        f"{gate_name}: no baseline at {baseline_path} — soft pass "
        f"(current: {summary}; commit the uploaded artifact to "
        f"enable the gate)"
    )

"""Unit tests for security_gate.py (CI `gate-selftest`).

Run from the repo root with:

    python3 -m unittest discover -s scripts
"""

import copy
import json
import os
import tempfile
import unittest

import security_gate


def cell(family, environment, policy, far=0.0, eer=0.0):
    return {
        "family": family,
        "environment": environment,
        "policy": policy,
        "attacks": 4,
        "genuine": 8,
        "far_pct": far,
        "frr_pct": 12.5,
        "eer_pct": eer,
    }


def doc(cells, families):
    return {
        "experiment": "robustness",
        "quick": True,
        "cells": cells,
        "families": {
            name: {"far_pct": far} for name, far in families.items()
        },
    }


BASELINE = doc(
    [
        cell("replay", "quiet", "short_circuit", far=0.0, eer=0.0),
        cell("replay", "car_cabin", "short_circuit", far=0.0, eer=12.5),
        cell("mimicry", "quiet", "short_circuit", far=25.0, eer=12.5),
    ],
    {"replay": 0.0, "mimicry": 25.0},
)


class SecurityGateTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, payload):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as f:
            if isinstance(payload, str):
                f.write(payload)
            else:
                json.dump(payload, f)
        return path

    def run_gate(self, baseline, current, *extra):
        return security_gate.main(["security_gate.py", baseline, current, *extra])

    def test_identical_run_passes(self):
        base = self.write("base.json", BASELINE)
        cur = self.write("cur.json", BASELINE)
        self.assertEqual(self.run_gate(base, cur), 0)

    def test_eer_within_tolerance_passes(self):
        current = copy.deepcopy(BASELINE)
        current["cells"][1]["eer_pct"] = 20.0  # +7.5pp under the 10pp default
        base = self.write("base.json", BASELINE)
        cur = self.write("cur.json", current)
        self.assertEqual(self.run_gate(base, cur), 0)

    def test_eer_regression_beyond_tolerance_fails(self):
        current = copy.deepcopy(BASELINE)
        current["cells"][1]["eer_pct"] = 30.0  # +17.5pp
        base = self.write("base.json", BASELINE)
        cur = self.write("cur.json", current)
        self.assertEqual(self.run_gate(base, cur), 1)
        # A looser explicit tolerance lets the same drift through.
        self.assertEqual(
            self.run_gate(base, cur, "--eer-tolerance-pp", "20.0"), 0
        )

    def test_any_family_far_rise_fails(self):
        current = copy.deepcopy(BASELINE)
        current["families"]["replay"]["far_pct"] = 0.01  # tiny but a rise
        base = self.write("base.json", BASELINE)
        cur = self.write("cur.json", current)
        self.assertEqual(self.run_gate(base, cur), 1)

    def test_far_drop_and_frr_drift_pass(self):
        current = copy.deepcopy(BASELINE)
        current["families"]["mimicry"]["far_pct"] = 10.0  # improvement
        for c in current["cells"]:
            c["frr_pct"] = 50.0  # FRR is not gated
        base = self.write("base.json", BASELINE)
        cur = self.write("cur.json", current)
        self.assertEqual(self.run_gate(base, cur), 0)

    def test_new_cell_or_family_is_not_gated(self):
        current = copy.deepcopy(BASELINE)
        current["cells"].append(
            cell("new_attack", "quiet", "short_circuit", far=100.0, eer=50.0)
        )
        current["families"]["new_attack"] = {"far_pct": 100.0}
        base = self.write("base.json", BASELINE)
        cur = self.write("cur.json", current)
        self.assertEqual(self.run_gate(base, cur), 0)

    def test_missing_baseline_soft_passes(self):
        cur = self.write("cur.json", BASELINE)
        missing = os.path.join(self.dir.name, "nope.json")
        self.assertEqual(self.run_gate(missing, cur), 0)

    def test_malformed_current_fails(self):
        base = self.write("base.json", BASELINE)
        cur = self.write("cur.json", "{not json")
        self.assertEqual(self.run_gate(base, cur), 1)

    def test_current_without_robustness_shape_fails(self):
        base = self.write("base.json", BASELINE)
        cur = self.write("cur.json", {"metrics": {}})
        self.assertEqual(self.run_gate(base, cur), 1)

    def test_malformed_baseline_fails_hard(self):
        # A corrupt committed baseline is a repo bug, not a soft pass.
        base = self.write("base.json", {"cells": [], "families": {}})
        cur = self.write("cur.json", BASELINE)
        self.assertEqual(self.run_gate(base, cur), 1)

    def test_usage_error(self):
        self.assertEqual(security_gate.main(["security_gate.py"]), 1)

    def test_committed_baseline_gates_itself(self):
        # The real committed artifact must pass against itself — this is
        # the same invariant the CI job relies on.
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        committed = os.path.join(repo, "results", "BENCH_robustness.json")
        if not os.path.exists(committed):
            self.skipTest("no committed baseline yet")
        self.assertEqual(self.run_gate(committed, committed), 0)


if __name__ == "__main__":
    unittest.main()

#!/usr/bin/env python3
"""Bench-regression gate for the CI `bench-gate` job.

Compares a fresh `exp_throughput --quick` run against the committed
baseline (`results/BENCH_throughput.json`) and fails the job when peak
throughput regressed by more than the tolerance (default 20%).

  bench_gate.py <baseline.json> <current.json> [--tolerance 0.20]

Exit codes: 0 pass (including the soft-pass when the baseline file is
missing — a fresh branch should not be blocked on a number it cannot
have yet), 1 regression or unreadable current run.
"""

import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    baseline_path, current_path = args
    tolerance = 0.20
    for i, a in enumerate(argv):
        if a == "--tolerance":
            tolerance = float(argv[i + 1])

    try:
        current = load(current_path)
    except (OSError, ValueError) as e:
        print(f"bench-gate: cannot read current run {current_path}: {e}")
        return 1
    cur_peak = float(current["peak_sessions_per_sec"])

    try:
        baseline = load(baseline_path)
    except OSError:
        # Soft pass: no baseline committed yet. The fresh JSON is uploaded
        # as an artifact so it can be committed as the new baseline.
        print(
            f"bench-gate: no baseline at {baseline_path} — soft pass "
            f"(current peak {cur_peak:.1f} sessions/sec; commit the "
            f"uploaded artifact to enable the gate)"
        )
        return 0
    except ValueError as e:
        print(f"bench-gate: baseline {baseline_path} is not valid JSON: {e}")
        return 1

    base_peak = float(baseline["peak_sessions_per_sec"])
    floor = base_peak * (1.0 - tolerance)
    verdict = "PASS" if cur_peak >= floor else "FAIL"
    print(
        f"bench-gate: baseline {base_peak:.1f} sessions/sec, "
        f"current {cur_peak:.1f}, floor {floor:.1f} "
        f"({tolerance:.0%} tolerance) -> {verdict}"
    )
    if cur_peak < floor:
        print(
            "bench-gate: peak throughput regressed beyond tolerance. "
            "If the slowdown is intentional, regenerate the baseline with "
            "`cargo run --release -p magshield-bench --bin exp_throughput "
            "-- --quick` and commit results/BENCH_throughput.json."
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

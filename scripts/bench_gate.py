#!/usr/bin/env python3
"""Bench-regression gate for the CI `bench-gate` job.

Compares a fresh benchmark run against its committed baseline and fails
the job when any gated metric regressed by more than the tolerance.

  bench_gate.py <baseline.json> <current.json> [--tolerance 0.20]

Two artifact shapes are understood:

* Throughput (`results/BENCH_throughput.json`): a single top-level
  `peak_sessions_per_sec` number, gated higher-is-better.
* Generic (`results/BENCH_kernels.json`): a top-level `"metrics"` object
  mapping name -> {"value": float, "direction": "higher"|"lower"}.
  Every metric present in BOTH files is gated in its stated direction;
  metrics only one side has are reported but not gated (so adding a new
  kernel doesn't fail the gate until its baseline is committed). For
  the kernels artifact this covers the fast-path ratios
  (`llr_prepared_exact_speedup`, `llr_pruned_speedup`) and the fused /
  batched tentpole ratios (`extract_fused_speedup`,
  `llr_batched_speedup`). The quantized-vs-exact ratio is deliberately
  informational only (under `"info"` as `llr_quantized_speedup`):
  quantization trades wall clock for a 4x smaller model, so a
  higher-is-better gate on it would punish the intended tradeoff.

The comparison math is shared with `security_gate.py` via `gate_core`.

Exit codes: 0 pass (including the soft-pass when the baseline file is
missing — a fresh branch should not be blocked on a number it cannot
have yet), 1 regression or unreadable current run.
"""

import sys

import gate_core


def main(argv):
    args = []
    tolerance = 0.20
    it = iter(argv[1:])
    for a in it:
        if a == "--tolerance":
            tolerance = float(next(it, "0.20"))
        elif a.startswith("--tolerance="):
            tolerance = float(a.split("=", 1)[1])
        elif not a.startswith("--"):
            args.append(a)
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    baseline_path, current_path = args

    try:
        current = gate_core.gated_metrics(gate_core.load(current_path))
    except (OSError, ValueError, KeyError) as e:
        print(f"bench-gate: cannot read current run {current_path}: {e}")
        return 1

    try:
        baseline = gate_core.gated_metrics(gate_core.load(baseline_path))
    except OSError:
        # Soft pass: no baseline committed yet. The fresh JSON is uploaded
        # as an artifact so it can be committed as the new baseline.
        gate_core.soft_pass_summary("bench-gate", baseline_path, current)
        return 0
    except (ValueError, KeyError) as e:
        print(f"bench-gate: baseline {baseline_path} is not usable: {e}")
        return 1

    failed = gate_core.compare_metrics(baseline, current, tolerance, "bench-gate")
    if failed:
        print(
            f"bench-gate: regressed beyond tolerance: {', '.join(failed)}. "
            "If the slowdown is intentional, regenerate the baseline with "
            "the matching magshield-bench binary (exp_throughput / "
            "exp_kernels, `--quick`) and commit the refreshed results/ "
            "JSON."
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Bench-regression gate for the CI `bench-gate` job.

Compares a fresh benchmark run against its committed baseline and fails
the job when any gated metric regressed by more than the tolerance.

  bench_gate.py <baseline.json> <current.json> [--tolerance 0.20]

Two artifact shapes are understood:

* Throughput (`results/BENCH_throughput.json`): a single top-level
  `peak_sessions_per_sec` number, gated higher-is-better.
* Generic (`results/BENCH_kernels.json`): a top-level `"metrics"` object
  mapping name -> {"value": float, "direction": "higher"|"lower"}.
  Every metric present in BOTH files is gated in its stated direction;
  metrics only one side has are reported but not gated (so adding a new
  kernel doesn't fail the gate until its baseline is committed).

Exit codes: 0 pass (including the soft-pass when the baseline file is
missing — a fresh branch should not be blocked on a number it cannot
have yet), 1 regression or unreadable current run.
"""

import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def gated_metrics(doc):
    """Extracts {name: (value, direction)} from either artifact shape."""
    out = {}
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        for name, spec in metrics.items():
            direction = spec.get("direction", "higher")
            if direction not in ("higher", "lower"):
                raise ValueError(f"metric {name}: bad direction {direction!r}")
            out[name] = (float(spec["value"]), direction)
    if "peak_sessions_per_sec" in doc:
        out["peak_sessions_per_sec"] = (
            float(doc["peak_sessions_per_sec"]),
            "higher",
        )
    if not out:
        raise ValueError(
            "no gateable metrics (expected 'metrics' object or "
            "'peak_sessions_per_sec')"
        )
    return out


def main(argv):
    args = []
    tolerance = 0.20
    it = iter(argv[1:])
    for a in it:
        if a == "--tolerance":
            tolerance = float(next(it, "0.20"))
        elif a.startswith("--tolerance="):
            tolerance = float(a.split("=", 1)[1])
        elif not a.startswith("--"):
            args.append(a)
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    baseline_path, current_path = args

    try:
        current = gated_metrics(load(current_path))
    except (OSError, ValueError, KeyError) as e:
        print(f"bench-gate: cannot read current run {current_path}: {e}")
        return 1

    try:
        baseline = gated_metrics(load(baseline_path))
    except OSError:
        # Soft pass: no baseline committed yet. The fresh JSON is uploaded
        # as an artifact so it can be committed as the new baseline.
        summary = ", ".join(f"{k} {v:.2f}" for k, (v, _) in sorted(current.items()))
        print(
            f"bench-gate: no baseline at {baseline_path} — soft pass "
            f"(current: {summary}; commit the uploaded artifact to "
            f"enable the gate)"
        )
        return 0
    except (ValueError, KeyError) as e:
        print(f"bench-gate: baseline {baseline_path} is not usable: {e}")
        return 1

    failed = []
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline or name not in current:
            side = "baseline" if name not in current else "current"
            print(f"bench-gate: {name}: only in {side} — not gated")
            continue
        base, direction = baseline[name]
        cur = current[name][0]
        if direction == "higher":
            limit = base * (1.0 - tolerance)
            ok = cur >= limit
            bound = "floor"
        else:
            limit = base * (1.0 + tolerance)
            ok = cur <= limit
            bound = "ceiling"
        print(
            f"bench-gate: {name}: baseline {base:.2f}, current {cur:.2f}, "
            f"{bound} {limit:.2f} ({tolerance:.0%} tolerance) -> "
            f"{'PASS' if ok else 'FAIL'}"
        )
        if not ok:
            failed.append(name)

    if failed:
        print(
            f"bench-gate: regressed beyond tolerance: {', '.join(failed)}. "
            "If the slowdown is intentional, regenerate the baseline with "
            "the matching magshield-bench binary (exp_throughput / "
            "exp_kernels, `--quick`) and commit the refreshed results/ "
            "JSON."
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Security-regression gate for the CI `security-gate` job.

Compares a fresh `exp_robustness --quick` run against the committed
baseline (`results/BENCH_robustness.json`) and fails the build when the
defense got measurably easier to fool:

* **Per-cell EER** (`"cells"` array, keyed family/environment/policy):
  every cell present in BOTH files must keep its EER within
  `--eer-tolerance-pp` percentage points of the baseline (absolute
  tolerance — a relative one degenerates at EER 0). Cells only one side
  has are reported, not gated, so adding an attack family doesn't fail
  the build until its baseline is committed.
* **Per-family FAR** (`"families"` object): a family's aggregate false
  accept rate must not rise at all (beyond `--far-tolerance-pp`,
  default 0 with a tiny float epsilon). FRR may drift — an
  over-rejecting defense is annoying; an over-accepting one is broken.
* Any top-level `"metrics"` object is reported via the shared
  `gate_core` comparison for context, but the cell/family checks above
  are what gate.

  security_gate.py <baseline.json> <current.json>
      [--eer-tolerance-pp 10.0] [--far-tolerance-pp 0.0]

Exit codes: 0 pass (including the soft-pass when the baseline file is
missing — a fresh branch cannot have one yet), 1 regression or
unreadable/malformed input.
"""

import sys

import gate_core

# One float ulp of slack so a bit-identical FAR never trips the
# strict no-rise check through formatting round-trips.
FAR_EPSILON_PP = 1e-9


def cell_key(cell):
    """Stable identity of a matrix cell."""
    return (cell["family"], cell["environment"], cell["policy"])


def extract(doc):
    """Pulls {cell_key: eer_pct} and {family: far_pct} from a gate JSON.

    Raises ValueError when the document lacks the robustness shape.
    """
    cells = doc.get("cells")
    families = doc.get("families")
    if not isinstance(cells, list) or not isinstance(families, dict):
        raise ValueError("expected 'cells' array and 'families' object")
    eer = {}
    for cell in cells:
        eer[cell_key(cell)] = float(cell["eer_pct"])
    far = {name: float(spec["far_pct"]) for name, spec in families.items()}
    if not eer or not far:
        raise ValueError("empty 'cells' or 'families'")
    return eer, far


def gate_cells(base_eer, cur_eer, tolerance_pp):
    """Gates per-cell EER; returns failed cell labels."""
    failed = []
    for key in sorted(set(base_eer) | set(cur_eer)):
        label = "/".join(key)
        if key not in base_eer or key not in cur_eer:
            side = "baseline" if key not in cur_eer else "current"
            print(f"security-gate: cell {label}: only in {side} — not gated")
            continue
        base, cur = base_eer[key], cur_eer[key]
        limit = gate_core.metric_limit(base, "lower", tolerance_pp, absolute=True)
        ok = gate_core.within(cur, limit, "lower")
        if not ok:
            print(
                f"security-gate: cell {label}: EER {base:.2f}% -> {cur:.2f}% "
                f"(ceiling {limit:.2f}%, +{tolerance_pp:g}pp) -> FAIL"
            )
            failed.append(label)
    worst = max(
        (cur_eer[k] - base_eer[k] for k in set(base_eer) & set(cur_eer)),
        default=0.0,
    )
    print(
        f"security-gate: {len(set(base_eer) & set(cur_eer))} cells gated, "
        f"worst EER drift {worst:+.2f}pp (tolerance +{tolerance_pp:g}pp)"
    )
    return failed


def gate_families(base_far, cur_far, tolerance_pp):
    """Gates per-family FAR no-rise; returns failed family names."""
    failed = []
    for name in sorted(set(base_far) | set(cur_far)):
        if name not in base_far or name not in cur_far:
            side = "baseline" if name not in cur_far else "current"
            print(f"security-gate: family {name}: only in {side} — not gated")
            continue
        base, cur = base_far[name], cur_far[name]
        limit = base + tolerance_pp + FAR_EPSILON_PP
        ok = cur <= limit
        print(
            f"security-gate: family {name}: FAR {base:.2f}% -> {cur:.2f}% "
            f"(no-rise) -> {'PASS' if ok else 'FAIL'}"
        )
        if not ok:
            failed.append(name)
    return failed


def main(argv):
    args = []
    eer_tolerance_pp = 10.0
    far_tolerance_pp = 0.0
    it = iter(argv[1:])
    for a in it:
        if a == "--eer-tolerance-pp":
            eer_tolerance_pp = float(next(it, "10.0"))
        elif a.startswith("--eer-tolerance-pp="):
            eer_tolerance_pp = float(a.split("=", 1)[1])
        elif a == "--far-tolerance-pp":
            far_tolerance_pp = float(next(it, "0.0"))
        elif a.startswith("--far-tolerance-pp="):
            far_tolerance_pp = float(a.split("=", 1)[1])
        elif not a.startswith("--"):
            args.append(a)
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    baseline_path, current_path = args

    try:
        cur_doc = gate_core.load(current_path)
        cur_eer, cur_far = extract(cur_doc)
    except (OSError, ValueError, KeyError, TypeError) as e:
        print(f"security-gate: cannot read current run {current_path}: {e}")
        return 1

    try:
        base_doc = gate_core.load(baseline_path)
    except OSError:
        # Soft pass: no baseline committed yet. The fresh JSON is uploaded
        # as an artifact so it can be committed as the new baseline.
        summary = ", ".join(f"{k} {v:.2f}%" for k, v in sorted(cur_far.items()))
        print(
            f"security-gate: no baseline at {baseline_path} — soft pass "
            f"(current family FAR: {summary}; commit the uploaded artifact "
            f"to enable the gate)"
        )
        return 0
    try:
        base_eer, base_far = extract(base_doc)
    except (ValueError, KeyError, TypeError) as e:
        print(f"security-gate: baseline {baseline_path} is not usable: {e}")
        return 1

    # Context-only: summary metrics through the shared comparison.
    try:
        gate_core.compare_metrics(
            gate_core.gated_metrics(base_doc),
            gate_core.gated_metrics(cur_doc),
            eer_tolerance_pp,
            "security-gate (summary)",
            absolute=True,
        )
    except ValueError:
        pass  # no summary metrics block — the cell/family gates still run

    failed = gate_cells(base_eer, cur_eer, eer_tolerance_pp)
    failed += gate_families(base_far, cur_far, far_tolerance_pp)
    if failed:
        print(
            f"security-gate: security regression: {', '.join(failed)}. "
            "If the shift is an intentional trade-off, regenerate the "
            "baseline with `cargo run --release -p magshield-bench --bin "
            "exp_robustness -- --quick` and commit the refreshed "
            "results/BENCH_robustness.json with a justification."
        )
        return 1
    print("security-gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

"""Unit tests for bench_gate.py / gate_core.py (CI `gate-selftest`).

Run from the repo root with:

    python3 -m unittest discover -s scripts
"""

import json
import os
import tempfile
import unittest

import bench_gate
import gate_core


def write_json(dirname, name, doc):
    path = os.path.join(dirname, name)
    with open(path, "w", encoding="utf-8") as f:
        if isinstance(doc, str):
            f.write(doc)
        else:
            json.dump(doc, f)
    return path


def metrics_doc(**values):
    return {
        "metrics": {
            name: {"value": value, "direction": direction}
            for name, (value, direction) in values.items()
        }
    }


class GateCoreToleranceTest(unittest.TestCase):
    def test_relative_limit_higher_is_a_floor(self):
        self.assertAlmostEqual(gate_core.metric_limit(100.0, "higher", 0.20), 80.0)
        self.assertTrue(gate_core.within(80.0, 80.0, "higher"))
        self.assertFalse(gate_core.within(79.9, 80.0, "higher"))

    def test_relative_limit_lower_is_a_ceiling(self):
        self.assertAlmostEqual(gate_core.metric_limit(10.0, "lower", 0.20), 12.0)
        self.assertTrue(gate_core.within(12.0, 12.0, "lower"))
        self.assertFalse(gate_core.within(12.1, 12.0, "lower"))

    def test_absolute_tolerance_works_at_base_zero(self):
        # Relative tolerance is degenerate at base 0 — absolute is not.
        self.assertAlmostEqual(gate_core.metric_limit(0.0, "lower", 0.20), 0.0)
        self.assertAlmostEqual(
            gate_core.metric_limit(0.0, "lower", 2.5, absolute=True), 2.5
        )

    def test_compare_gates_only_the_intersection(self):
        baseline = {"a": (100.0, "higher"), "old": (1.0, "lower")}
        current = {"a": (85.0, "higher"), "new": (2.0, "lower")}
        failed = gate_core.compare_metrics(baseline, current, 0.20, "t")
        self.assertEqual(failed, [])

    def test_compare_flags_a_regression(self):
        baseline = {"a": (100.0, "higher")}
        current = {"a": (70.0, "higher")}
        failed = gate_core.compare_metrics(baseline, current, 0.20, "t")
        self.assertEqual(failed, ["a"])

    def test_gated_metrics_rejects_bad_direction(self):
        with self.assertRaises(ValueError):
            gate_core.gated_metrics(
                {"metrics": {"x": {"value": 1.0, "direction": "sideways"}}}
            )

    def test_gated_metrics_rejects_empty_doc(self):
        with self.assertRaises(ValueError):
            gate_core.gated_metrics({"unrelated": 1})


class BenchGateCliTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def run_gate(self, baseline, current, *extra):
        return bench_gate.main(["bench_gate.py", baseline, current, *extra])

    def test_pass_within_tolerance(self):
        base = write_json(
            self.dir.name, "base.json", metrics_doc(tput=(100.0, "higher"))
        )
        cur = write_json(
            self.dir.name, "cur.json", metrics_doc(tput=(90.0, "higher"))
        )
        self.assertEqual(self.run_gate(base, cur), 0)

    def test_fail_beyond_tolerance(self):
        base = write_json(
            self.dir.name, "base.json", metrics_doc(tput=(100.0, "higher"))
        )
        cur = write_json(
            self.dir.name, "cur.json", metrics_doc(tput=(70.0, "higher"))
        )
        self.assertEqual(self.run_gate(base, cur), 1)

    def test_tolerance_flag_is_honoured(self):
        base = write_json(
            self.dir.name, "base.json", metrics_doc(tput=(100.0, "higher"))
        )
        cur = write_json(
            self.dir.name, "cur.json", metrics_doc(tput=(70.0, "higher"))
        )
        self.assertEqual(self.run_gate(base, cur, "--tolerance", "0.40"), 0)
        self.assertEqual(self.run_gate(base, cur, "--tolerance=0.40"), 0)

    def test_missing_baseline_soft_passes(self):
        cur = write_json(
            self.dir.name, "cur.json", metrics_doc(tput=(100.0, "higher"))
        )
        missing = os.path.join(self.dir.name, "nope.json")
        self.assertEqual(self.run_gate(missing, cur), 0)

    def test_malformed_current_fails(self):
        base = write_json(
            self.dir.name, "base.json", metrics_doc(tput=(100.0, "higher"))
        )
        cur = write_json(self.dir.name, "cur.json", "{not json")
        self.assertEqual(self.run_gate(base, cur), 1)

    def test_malformed_baseline_fails_hard(self):
        # An unreadable committed baseline is a repo bug, not a soft pass.
        base = write_json(self.dir.name, "base.json", "{not json")
        cur = write_json(
            self.dir.name, "cur.json", metrics_doc(tput=(100.0, "higher"))
        )
        self.assertEqual(self.run_gate(base, cur), 1)

    def test_legacy_throughput_shape(self):
        base = write_json(
            self.dir.name, "base.json", {"peak_sessions_per_sec": 100.0}
        )
        cur = write_json(
            self.dir.name, "cur.json", {"peak_sessions_per_sec": 85.0}
        )
        self.assertEqual(self.run_gate(base, cur), 0)
        cur_bad = write_json(
            self.dir.name, "cur2.json", {"peak_sessions_per_sec": 60.0}
        )
        self.assertEqual(self.run_gate(base, cur_bad), 1)

    def test_usage_error(self):
        self.assertEqual(bench_gate.main(["bench_gate.py", "one-arg"]), 1)


if __name__ == "__main__":
    unittest.main()

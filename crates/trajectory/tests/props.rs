//! Property-based tests for the trajectory stack.

use magshield_simkit::vec3::Vec3;
use magshield_trajectory::motion::{MotionParams, SessionMotion};
use magshield_trajectory::ranging::{analyze, render_received_pilot};
use magshield_trajectory::reconstruct::reconstruct;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Motion generation invariants: distances shrink monotonically during
    /// the approach and stay constant during the sweep, for any protocol
    /// geometry.
    #[test]
    fn motion_invariants(
        start in 0.12f64..0.35,
        end in 0.03f64..0.1,
        sweep_deg in 30.0f64..120.0,
    ) {
        prop_assume!(start > end + 0.02);
        let m = SessionMotion::generate(MotionParams {
            start_distance_m: start,
            end_distance_m: end,
            sweep_angle_rad: sweep_deg.to_radians(),
            ..MotionParams::default()
        });
        let d = m.distances();
        // Approach is non-increasing.
        for w in d[..m.sweep_start].windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9);
        }
        // Sweep holds the end distance.
        for &x in &d[m.sweep_start..] {
            prop_assert!((x - end).abs() < 1e-6);
        }
        // Heading spans the requested arc.
        let span = m.samples.last().unwrap().heading - m.samples[m.sweep_start].heading;
        prop_assert!((span - sweep_deg.to_radians()).abs() < 0.05);
    }

    /// Perfect-sensor reconstruction recovers the sweep radius for any
    /// end distance in the protocol range.
    #[test]
    fn reconstruction_recovers_radius(end_cm in 4.0f64..12.0) {
        let end = end_cm / 100.0;
        let m = SessionMotion::generate(MotionParams {
            end_distance_m: end,
            start_distance_m: end + 0.15,
            ..MotionParams::default()
        });
        let mags: Vec<Option<f64>> = m.samples.iter().map(|s| Some(s.heading)).collect();
        let est = reconstruct(
            &m.body_accelerations(),
            &m.angular_rates(),
            &mags,
            m.sweep_start,
            m.params.sample_rate_hz,
        );
        let d = est.distance_m.expect("fit succeeds with perfect sensors");
        prop_assert!((d - end).abs() < 0.015, "true {end}, est {d}");
    }

    /// Pilot ranging: the approach displacement estimate matches the
    /// commanded approach for any pilot in the usable band.
    #[test]
    fn ranging_tracks_approach(pilot_khz in 17.0f64..21.0, travel_cm in 5.0f64..18.0) {
        let fs = 48_000.0;
        let pilot = pilot_khz * 1000.0;
        let travel = travel_cm / 100.0;
        let n = 24_000;
        let d: Vec<f64> = (0..n)
            .map(|i| 0.05 + travel * (1.0 - i as f64 / n as f64))
            .collect();
        let rec = render_received_pilot(pilot, fs, &d);
        let a = analyze(&rec, fs, pilot, 0.5);
        prop_assert!(
            (a.approach_displacement_m + travel).abs() < 0.01,
            "travel {travel}, measured {}",
            a.approach_displacement_m
        );
    }

    /// Off-center pivots always create true-distance ripple during the
    /// sweep proportional to the pivot offset.
    #[test]
    fn off_center_ripple_grows(offset_cm in 5.0f64..25.0) {
        let offset = offset_cm / 100.0;
        let p = MotionParams::default();
        let m = SessionMotion::generate_off_center(p, Vec3::new(0.0, -offset, 0.0));
        let d = m.distances();
        let (lo, hi) = d[m.sweep_start..]
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &x| (l.min(x), h.max(x)));
        prop_assert!(hi - lo > 0.1 * offset, "ripple {} for offset {offset}", hi - lo);
    }
}

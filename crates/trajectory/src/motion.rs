//! Ground-truth motion scenarios for verification sessions.
//!
//! The protocol motion has two segments:
//!
//! 1. **approach** — a straight-line move from the hold position toward
//!    the sound source, smoothstep velocity profile (hands accelerate and
//!    decelerate smoothly);
//! 2. **sweep** — an arc at (approximately) constant range around the
//!    source, the segment whose curvature encodes absolute distance.
//!
//! The scenario produces exact positions, world accelerations, headings
//! and angular rates at the IMU rate; the sensors crate corrupts them into
//! realistic readings.

use magshield_simkit::interp::smoothstep;
use magshield_simkit::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Parameters of a protocol-compliant session motion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotionParams {
    /// Sound-source position in the scene (m). Motion stays in its z-plane.
    pub source: Vec3,
    /// Initial phone–source distance (m), e.g. 0.20 (held near the head).
    pub start_distance_m: f64,
    /// Final phone–source distance (m) — the quantity the defense checks
    /// against the threshold `Dt`.
    pub end_distance_m: f64,
    /// Approach duration (s).
    pub approach_s: f64,
    /// Sweep arc span (radians).
    pub sweep_angle_rad: f64,
    /// Sweep duration (s).
    pub sweep_s: f64,
    /// IMU sample rate (Hz).
    pub sample_rate_hz: f64,
}

impl Default for MotionParams {
    fn default() -> Self {
        Self {
            source: Vec3::ZERO,
            start_distance_m: 0.20,
            end_distance_m: 0.05,
            approach_s: 1.0,
            sweep_angle_rad: 80f64.to_radians(),
            sweep_s: 1.0,
            sample_rate_hz: 100.0,
        }
    }
}

/// One sample of ground-truth kinematics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionSample {
    /// Phone position (m).
    pub position: Vec3,
    /// Phone velocity (m/s).
    pub velocity: Vec3,
    /// Phone acceleration in the world frame (m/s²).
    pub acceleration: Vec3,
    /// Phone heading: angle of the facing direction in the plane
    /// (radians, 0 = facing −y toward the source in the default layout).
    pub heading: f64,
    /// Angular rate about +z (rad/s).
    pub angular_rate: f64,
}

/// A realized session motion.
#[derive(Debug, Clone)]
pub struct SessionMotion {
    /// Parameters used.
    pub params: MotionParams,
    /// Per-sample kinematics.
    pub samples: Vec<MotionSample>,
    /// Index where the sweep segment starts.
    pub sweep_start: usize,
}

impl SessionMotion {
    /// Generates the protocol motion: approach along −y toward the source,
    /// then sweep an arc of `sweep_angle_rad` at the final distance.
    ///
    /// # Panics
    ///
    /// Panics if distances are non-positive or the end distance exceeds
    /// the start distance.
    pub fn generate(params: MotionParams) -> Self {
        assert!(
            params.end_distance_m > 0.0 && params.start_distance_m > params.end_distance_m,
            "need start > end > 0 (got {} → {})",
            params.start_distance_m,
            params.end_distance_m
        );
        let fs = params.sample_rate_hz;
        let dt = 1.0 / fs;
        let n_app = (params.approach_s * fs) as usize;
        let n_swp = (params.sweep_s * fs) as usize;
        let mut samples = Vec::with_capacity(n_app + n_swp);

        // Approach: radial line below the source (phone at source + (0, -d)).
        let d0 = params.start_distance_m;
        let d1 = params.end_distance_m;
        let radial = |t: f64| d0 + (d1 - d0) * smoothstep(t);
        for i in 0..n_app {
            let t = i as f64 / n_app as f64;
            let d = radial(t);
            // Derivatives of the smoothstep radius, numerically.
            let eps = 1e-4;
            let dd = (radial(t + eps) - radial(t - eps)) / (2.0 * eps) / params.approach_s;
            let ddd = (radial(t + eps) - 2.0 * d + radial(t - eps))
                / (eps * eps)
                / (params.approach_s * params.approach_s);
            samples.push(MotionSample {
                position: params.source + Vec3::new(0.0, -d, 0.0),
                velocity: Vec3::new(0.0, -dd, 0.0),
                acceleration: Vec3::new(0.0, -ddd, 0.0),
                heading: 0.0,
                angular_rate: 0.0,
            });
        }

        // Sweep: arc of radius d1 centered at the source, starting at the
        // approach end angle (−90° in scene terms), smoothstep angular
        // profile so the ends have zero velocity (natural pauses → ZUPT).
        let sweep_start = samples.len();
        let theta0 = -std::f64::consts::FRAC_PI_2;
        let theta = |t: f64| theta0 + params.sweep_angle_rad * smoothstep(t);
        for i in 0..n_swp {
            let t = i as f64 / n_swp as f64;
            let th = theta(t);
            let eps = 1e-4;
            let w = (theta(t + eps) - theta(t - eps)) / (2.0 * eps) / params.sweep_s;
            let a = (theta(t + eps) - 2.0 * th + theta(t - eps))
                / (eps * eps)
                / (params.sweep_s * params.sweep_s);
            let pos = params.source + Vec3::new(d1 * th.cos(), d1 * th.sin(), 0.0);
            let vel = Vec3::new(-d1 * th.sin(), d1 * th.cos(), 0.0) * w;
            // a_world = r(θ̈ t̂ − θ̇² r̂)
            let acc = Vec3::new(-d1 * th.sin(), d1 * th.cos(), 0.0) * a
                + Vec3::new(d1 * th.cos(), d1 * th.sin(), 0.0) * (-w * w);
            samples.push(MotionSample {
                position: pos,
                velocity: vel,
                acceleration: acc,
                // The phone keeps facing the source: heading tracks θ.
                heading: th - theta0,
                angular_rate: w,
            });
        }
        let _ = dt;
        SessionMotion {
            params,
            samples,
            sweep_start,
        }
    }

    /// An attacker's rig: the same hand motion executed around a pivot at
    /// `fake_center`, while the actual sound source sits elsewhere
    /// (`params.source`). Geometry is identical to a genuine session; only
    /// the relationship to the sound source differs — which is what the
    /// ranging consistency check detects.
    pub fn generate_off_center(params: MotionParams, fake_center: Vec3) -> Self {
        let shifted = MotionParams {
            source: fake_center,
            ..params
        };
        let mut m = Self::generate(shifted);
        m.params.source = params.source;
        m
    }

    /// Per-sample positions.
    pub fn positions(&self) -> Vec<Vec3> {
        self.samples.iter().map(|s| s.position).collect()
    }

    /// Per-sample true phone–source distances (m).
    pub fn distances(&self) -> Vec<f64> {
        self.samples
            .iter()
            .map(|s| (s.position - self.params.source).norm())
            .collect()
    }

    /// Body-frame specific-force readings the accelerometer would see
    /// (gravity removed by the platform's linear-acceleration fusion, as
    /// Android exposes; rotated into the phone frame by heading).
    pub fn body_accelerations(&self) -> Vec<Vec3> {
        self.samples
            .iter()
            .map(|s| s.acceleration.rotated_z(-s.heading))
            .collect()
    }

    /// True angular-rate vectors (rad/s) for the gyroscope.
    pub fn angular_rates(&self) -> Vec<Vec3> {
        self.samples
            .iter()
            .map(|s| Vec3::new(0.0, 0.0, s.angular_rate))
            .collect()
    }

    /// Total duration (s).
    pub fn duration(&self) -> f64 {
        self.samples.len() as f64 / self.params.sample_rate_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approach_ends_at_target_distance() {
        let m = SessionMotion::generate(MotionParams::default());
        let d = m.distances();
        assert!((d[0] - 0.20).abs() < 1e-9);
        assert!((d[m.sweep_start - 1] - 0.05).abs() < 1e-3);
    }

    #[test]
    fn sweep_holds_constance_distance() {
        let m = SessionMotion::generate(MotionParams::default());
        for &d in &m.distances()[m.sweep_start..] {
            assert!((d - 0.05).abs() < 1e-9, "sweep distance {d}");
        }
    }

    #[test]
    fn sweep_spans_requested_angle() {
        let m = SessionMotion::generate(MotionParams::default());
        let span = m.samples.last().unwrap().heading - m.samples[m.sweep_start].heading;
        assert!((span - 80f64.to_radians()).abs() < 0.02, "span {span}");
    }

    #[test]
    fn velocities_are_zero_at_segment_ends() {
        let m = SessionMotion::generate(MotionParams::default());
        assert!(m.samples[0].velocity.norm() < 1e-3);
        assert!(m.samples[m.sweep_start].velocity.norm() < 1e-2);
        assert!(m.samples.last().unwrap().velocity.norm() < 1e-2);
    }

    #[test]
    fn positions_integrate_velocities() {
        let m = SessionMotion::generate(MotionParams::default());
        let dt = 1.0 / m.params.sample_rate_hz;
        // Midpoint check on the sweep: finite-difference of position ≈ v.
        let i = m.sweep_start + 50;
        let fd = (m.samples[i + 1].position - m.samples[i - 1].position) / (2.0 * dt);
        assert!((fd - m.samples[i].velocity).norm() < 0.01);
    }

    #[test]
    fn off_center_motion_has_same_shape_different_source() {
        let p = MotionParams::default();
        let genuine = SessionMotion::generate(p);
        let off = SessionMotion::generate_off_center(p, Vec3::new(0.0, 0.30, 0.0));
        assert_eq!(genuine.samples.len(), off.samples.len());
        // The attack arc pivots around the fake center, so true source
        // distances vary during the sweep.
        let d = off.distances();
        let (lo, hi) = d[off.sweep_start..]
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &x| {
                (l.min(x), h.max(x))
            });
        assert!(
            hi - lo > 0.01,
            "off-center sweep should vary distance: {lo}..{hi}"
        );
    }

    #[test]
    #[should_panic(expected = "need start > end")]
    fn rejects_bad_distances() {
        SessionMotion::generate(MotionParams {
            start_distance_m: 0.05,
            end_distance_m: 0.10,
            ..Default::default()
        });
    }
}

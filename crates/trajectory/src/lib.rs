#![warn(missing_docs)]

//! # magshield-trajectory
//!
//! The sound-source distance verification substrate (§IV-B1 of the paper):
//! reconstruct the phone's motion in the pre-defined 2-D approach plane
//! from inertial and acoustic data, and estimate the phone-to-source
//! distance.
//!
//! The paper's protocol (Fig. 3): the user holds the phone near the head,
//! then moves it toward the mouth while speaking, sweeping it across the
//! sound source. The phone emits an inaudible pilot tone whose received
//! phase tracks path-length changes (λ < 2 cm, so centimetre motion is
//! many cycles); the IMU provides heading and translation. The sweep arc's
//! curvature — recovered by least-squares circle fitting \[17\] — yields
//! the *absolute* distance to the pivot (the sound source), which relative
//! phase alone cannot provide.
//!
//! * [`motion`] — ground-truth motion scenarios (approach + sweep) with
//!   exact IMU signals;
//! * [`reconstruct`] — heading fusion, ZUPT-corrected dead reckoning, and
//!   circle-fit distance estimation;
//! * [`ranging`] — pilot-tone phase ranging and the sweep-consistency
//!   check that exposes off-center (attacker-geometry) sound sources.

pub mod motion;
pub mod ranging;
pub mod reconstruct;

pub use motion::SessionMotion;
pub use ranging::RangingAnalysis;
pub use reconstruct::TrajectoryEstimate;

//! Pilot-tone phase ranging and sweep consistency.
//!
//! The phone emits an inaudible pilot (>16 kHz, §IV-B1); the received
//! phase tracks the phone–source path length at sub-centimeter precision
//! (Fig. 6 shows the corresponding spectrograph). Two measurements matter
//! to the defense:
//!
//! 1. **approach displacement** — how far the phone actually closed in on
//!    the sound source during the approach segment;
//! 2. **sweep consistency** — during the sweep the phone's distance to a
//!    *genuine* (circle-center) source is constant, so pilot phase is
//!    flat; an attacker whose loudspeaker sits away from the sweep pivot
//!    produces a distance ripple the phase exposes.

use magshield_dsp::phase::{phase_to_displacement, PhaseTracker};
use magshield_physics::acoustics::medium::SPEED_OF_SOUND;
use serde::{Deserialize, Serialize};

/// Results of pilot-phase analysis over a session recording.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RangingAnalysis {
    /// Phone–source path-length change over the approach segment (m);
    /// negative = the phone closed in.
    pub approach_displacement_m: f64,
    /// Peak-to-peak distance ripple during the sweep segment (m).
    pub sweep_ripple_m: f64,
    /// Mean pilot amplitude over the session (confidence proxy).
    pub pilot_amplitude: f64,
    /// Median pilot amplitude over the sweep segment. Because the phone
    /// emits the pilot at a factory-known level through its own mic chain,
    /// this amplitude is an *absolute* range measurement: `d ≈ K / amp`
    /// with a per-device calibration constant `K`.
    pub sweep_amplitude: f64,
}

/// Analyzes a microphone recording containing the pilot tone.
///
/// `sweep_start_s` marks the approach/sweep boundary in seconds.
///
/// The recording's pilot component is assumed to arrive over the direct
/// (one-way) phone→source→phone... in our capture model the pilot travels
/// phone→scene and the *received* pilot at the phone's mic is the
/// reflection/leak whose path length follows the phone–source distance, so
/// phase displacement maps 1:1 to distance change.
pub fn analyze(
    recording: &[f64],
    sample_rate: f64,
    pilot_hz: f64,
    sweep_start_s: f64,
) -> RangingAnalysis {
    let tracker = PhaseTracker::new(pilot_hz, sample_rate);
    let track = tracker.track(recording, sample_rate);
    if track.phase.len() < 4 {
        return RangingAnalysis {
            approach_displacement_m: 0.0,
            sweep_ripple_m: 0.0,
            pilot_amplitude: 0.0,
            sweep_amplitude: 0.0,
        };
    }
    // Split frames into approach and sweep by time.
    let split = track
        .times
        .iter()
        .position(|&t| t >= sweep_start_s)
        .unwrap_or(track.phase.len());

    let displacement = |a: usize, b: usize| -> f64 {
        if b <= a + 1 {
            return 0.0;
        }
        phase_to_displacement(
            track.phase[b - 1] - track.phase[a],
            pilot_hz,
            SPEED_OF_SOUND,
        )
    };
    let approach_displacement_m = displacement(0, split);

    // Sweep ripple: peak-to-peak of the displacement curve within the sweep.
    let sweep_ripple_m = if split + 1 < track.phase.len() {
        let base = track.phase[split];
        let (lo, hi) = track.phase[split..]
            .iter()
            .map(|&p| phase_to_displacement(p - base, pilot_hz, SPEED_OF_SOUND))
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), d| {
                (l.min(d), h.max(d))
            });
        hi - lo
    } else {
        0.0
    };

    let pilot_amplitude = if track.amplitude.is_empty() {
        0.0
    } else {
        track.amplitude.iter().sum::<f64>() / track.amplitude.len() as f64
    };
    let sweep_amplitude = if split < track.amplitude.len() {
        let mut a: Vec<f64> = track.amplitude[split..].to_vec();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        a[a.len() / 2]
    } else {
        0.0
    };

    RangingAnalysis {
        approach_displacement_m,
        sweep_ripple_m,
        pilot_amplitude,
        sweep_amplitude,
    }
}

/// Renders the pilot tone as received at the phone when the phone–source
/// distance follows `distance_m` (one value per audio sample): exact
/// delay phase and 1/r amplitude (unity gain at the 10 cm reference).
///
/// The pilot sits near Nyquist, where a sample-domain fractional-delay
/// line (e.g. [`render_path`]'s linear interpolation) attenuates by up to
/// ~12 dB depending on the fractional part of the delay; since the pilot
/// is a known sinusoid we evaluate the delayed waveform analytically
/// instead.
///
/// [`render_path`]: magshield_physics::acoustics::propagation::render_path
pub fn render_received_pilot(pilot_hz: f64, sample_rate: f64, distance_m: &[f64]) -> Vec<f64> {
    const REF_M: f64 = 0.10;
    distance_m
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let t = i as f64 / sample_rate;
            let gain = REF_M / d.max(REF_M * 0.1);
            gain * (std::f64::consts::TAU * pilot_hz * (t - d / SPEED_OF_SOUND)).cos()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 48_000.0;
    const PILOT: f64 = 18_000.0;

    fn distance_profile(n_app: usize, n_swp: usize, ripple: f64) -> Vec<f64> {
        let mut d = Vec::new();
        for i in 0..n_app {
            let t = i as f64 / n_app as f64;
            d.push(0.20 - 0.15 * t);
        }
        for i in 0..n_swp {
            let t = i as f64 / n_swp as f64;
            d.push(0.05 + ripple * (std::f64::consts::TAU * 1.5 * t).sin());
        }
        d
    }

    #[test]
    fn approach_displacement_measured() {
        let d = distance_profile(48_000, 48_000, 0.0);
        let rec = render_received_pilot(PILOT, FS, &d);
        let a = analyze(&rec, FS, PILOT, 1.0);
        assert!(
            (a.approach_displacement_m + 0.15).abs() < 0.01,
            "approach displacement {} should be ≈ −0.15",
            a.approach_displacement_m
        );
    }

    #[test]
    fn genuine_sweep_has_low_ripple() {
        let d = distance_profile(48_000, 48_000, 0.0);
        let rec = render_received_pilot(PILOT, FS, &d);
        let a = analyze(&rec, FS, PILOT, 1.0);
        assert!(a.sweep_ripple_m < 0.005, "ripple {}", a.sweep_ripple_m);
    }

    #[test]
    fn off_center_sweep_exposed_by_ripple() {
        // Attacker pivot 10 cm from the loudspeaker → centimetres of
        // distance ripple during the sweep.
        let d = distance_profile(48_000, 48_000, 0.02);
        let rec = render_received_pilot(PILOT, FS, &d);
        let a = analyze(&rec, FS, PILOT, 1.0);
        assert!(
            a.sweep_ripple_m > 0.02,
            "ripple {} should expose the off-center source",
            a.sweep_ripple_m
        );
    }

    #[test]
    fn amplitude_grows_as_phone_approaches() {
        let d = distance_profile(48_000, 0, 0.0);
        let rec = render_received_pilot(PILOT, FS, &d);
        let tracker = PhaseTracker::new(PILOT, FS);
        let track = tracker.track(&rec, FS);
        let early = track.amplitude[10];
        let late = track.amplitude[track.amplitude.len() - 10];
        assert!(late > early * 2.0, "amplitude {early} → {late}");
    }

    #[test]
    fn silence_yields_neutral_analysis() {
        let a = analyze(&vec![0.0; 4800], FS, PILOT, 0.05);
        assert!(a.pilot_amplitude < 1e-3);
    }

    #[test]
    fn empty_recording_is_safe() {
        let a = analyze(&[], FS, PILOT, 0.5);
        assert_eq!(a.approach_displacement_m, 0.0);
        assert_eq!(a.sweep_ripple_m, 0.0);
    }
}

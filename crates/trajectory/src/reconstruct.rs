//! Trajectory reconstruction and distance estimation.
//!
//! Following §IV-B1: the phone's 2-D track is rebuilt from heading
//! (gyro + magnetometer fusion) and translation (accelerometer dead
//! reckoning with zero-velocity updates at the natural motion pauses),
//! then the sweep arc is fit with a least-squares circle \[17\] whose
//! radius estimates the phone-to-source distance.

use magshield_ml::circlefit::{fit_circle, Circle};
use magshield_sensors::orientation::HeadingFilter;
use magshield_simkit::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Output of trajectory reconstruction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrajectoryEstimate {
    /// Reconstructed 2-D positions (m), relative to the start.
    pub positions: Vec<(f64, f64)>,
    /// Fused heading per sample (rad).
    pub headings: Vec<f64>,
    /// Total direction change over the sweep segment (rad).
    pub sweep_direction_change: f64,
    /// Estimated phone–source distance (m) from the sweep-arc circle fit,
    /// when the fit is usable.
    pub distance_m: Option<f64>,
    /// RMS residual of the circle fit (m); large values mean the motion
    /// was not an arc (protocol violation).
    pub fit_residual_m: Option<f64>,
}

/// Reconstructs the trajectory from sensor readings.
///
/// * `body_accel` — body-frame specific-force readings (gravity-free);
/// * `gyro` — angular-rate readings (z is the plane normal);
/// * `mag_headings` — optional absolute heading observations (from the
///   magnetometer), `None` where unavailable (e.g. saturated);
/// * `sweep_start` — sample index where the sweep segment begins;
/// * `sample_rate` — IMU rate (Hz).
///
/// Dead reckoning applies ZUPT at the segment boundaries: velocity is
/// forced to zero at the start, the approach/sweep boundary and the end,
/// with linear drift correction in between — the standard strapdown trick
/// exploiting the protocol's natural pauses.
pub fn reconstruct(
    body_accel: &[Vec3],
    gyro: &[Vec3],
    mag_headings: &[Option<f64>],
    sweep_start: usize,
    sample_rate: f64,
) -> TrajectoryEstimate {
    let n = body_accel.len().min(gyro.len());
    let dt = 1.0 / sample_rate;

    // --- Heading fusion ---
    let mut filter = HeadingFilter::new(0.02);
    let mut headings = Vec::with_capacity(n);
    for (i, g) in gyro.iter().enumerate().take(n) {
        let mag = mag_headings.get(i).copied().flatten();
        headings.push(filter.update(g.z, dt, mag));
    }

    // --- World-frame acceleration ---
    let world_acc: Vec<Vec3> = (0..n)
        .map(|i| body_accel[i].rotated_z(headings[i]))
        .collect();

    // --- ZUPT dead reckoning per segment ---
    let sweep_start = sweep_start.min(n);
    let mut velocity = vec![Vec3::ZERO; n];
    for seg in [(0, sweep_start), (sweep_start, n)] {
        let (a, b) = seg;
        if b <= a + 1 {
            continue;
        }
        let mut v = Vec3::ZERO;
        for i in a..b {
            v += world_acc[i] * dt;
            velocity[i] = v;
        }
        // Linear de-drift so velocity returns to zero at the segment end.
        let v_end = velocity[b - 1];
        let len = (b - a) as f64;
        for (j, item) in velocity[a..b].iter_mut().enumerate() {
            *item -= v_end * ((j as f64 + 1.0) / len);
        }
    }
    let mut positions = Vec::with_capacity(n);
    let mut p = Vec3::ZERO;
    for v in &velocity {
        p += *v * dt;
        positions.push((p.x, p.y));
    }

    // --- Sweep analysis ---
    let sweep_positions = &positions[sweep_start.min(positions.len())..];
    let sweep_direction_change = if n > sweep_start && sweep_start > 0 {
        headings[n - 1] - headings[sweep_start]
    } else if n > 0 {
        headings[n - 1] - headings[0]
    } else {
        0.0
    };
    let fit: Option<Circle> = if sweep_positions.len() >= 8 {
        fit_circle(sweep_positions)
    } else {
        None
    };
    // Reject fits where the arc is too short or the residual dominates.
    let usable = fit.filter(|c| {
        c.radius.is_finite() && c.radius > 0.005 && c.radius < 1.0 && c.rms_residual < c.radius
    });
    TrajectoryEstimate {
        positions,
        headings,
        sweep_direction_change,
        distance_m: usable.map(|c| c.radius),
        fit_residual_m: usable.map(|c| c.rms_residual),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motion::{MotionParams, SessionMotion};
    use magshield_sensors::imu::{Accelerometer, AccelerometerSpec, Gyroscope, GyroscopeSpec};
    use magshield_simkit::rng::SimRng;

    /// Reconstruction from *perfect* sensors recovers the distance.
    #[test]
    fn perfect_sensors_recover_distance() {
        let m = SessionMotion::generate(MotionParams::default());
        let accel = m.body_accelerations();
        let gyro = m.angular_rates();
        let mags: Vec<Option<f64>> = m.samples.iter().map(|s| Some(s.heading)).collect();
        let est = reconstruct(&accel, &gyro, &mags, m.sweep_start, m.params.sample_rate_hz);
        let d = est.distance_m.expect("fit should succeed");
        assert!(
            (d - 0.05).abs() < 0.01,
            "estimated {d} m, true 0.05 m (residual {:?})",
            est.fit_residual_m
        );
        assert!((est.sweep_direction_change - 80f64.to_radians()).abs() < 0.05);
    }

    /// With realistic sensor noise the estimate stays within ~2 cm.
    #[test]
    fn noisy_sensors_recover_distance_within_tolerance() {
        let mut errs = Vec::new();
        for trial in 0..5u64 {
            let m = SessionMotion::generate(MotionParams {
                end_distance_m: 0.06,
                ..Default::default()
            });
            let rng = SimRng::from_seed(40 + trial);
            let mut acc = Accelerometer::new(AccelerometerSpec::default(), rng.fork("a"));
            let mut gyr = Gyroscope::new(GyroscopeSpec::default(), rng.fork("g"));
            let accel = acc.read_series(&m.body_accelerations());
            let gyro = gyr.read_series(&m.angular_rates());
            let mut hrng = rng.fork("magh");
            let mags: Vec<Option<f64>> = m
                .samples
                .iter()
                .map(|s| Some(s.heading + hrng.gauss(0.0, 0.03)))
                .collect();
            let est = reconstruct(&accel, &gyro, &mags, m.sweep_start, m.params.sample_rate_hz);
            let d = est.distance_m.expect("fit should succeed");
            errs.push((d - 0.06).abs());
        }
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean_err < 0.02, "mean error {mean_err} m, errors {errs:?}");
    }

    #[test]
    fn distance_scales_with_radius() {
        let run = |d_end: f64| {
            let m = SessionMotion::generate(MotionParams {
                end_distance_m: d_end,
                ..Default::default()
            });
            let mags: Vec<Option<f64>> = m.samples.iter().map(|s| Some(s.heading)).collect();
            reconstruct(
                &m.body_accelerations(),
                &m.angular_rates(),
                &mags,
                m.sweep_start,
                m.params.sample_rate_hz,
            )
            .distance_m
            .unwrap()
        };
        let d4 = run(0.04);
        let d12 = run(0.12);
        assert!(d12 > d4 * 2.0, "4 cm → {d4}, 12 cm → {d12}");
    }

    #[test]
    fn straight_line_motion_yields_no_distance() {
        // A stationary attacker rig producing no sweep: positions collinear.
        let n = 200;
        let accel = vec![Vec3::ZERO; n];
        let gyro = vec![Vec3::ZERO; n];
        let mags = vec![Some(0.0); n];
        let est = reconstruct(&accel, &gyro, &mags, 100, 100.0);
        assert!(est.distance_m.is_none(), "no arc → no distance");
        assert!(est.sweep_direction_change.abs() < 0.01);
    }

    #[test]
    fn empty_input_is_safe() {
        let est = reconstruct(&[], &[], &[], 0, 100.0);
        assert!(est.positions.is_empty());
        assert!(est.distance_m.is_none());
    }
}

//! Proof that warmed GMM log-likelihood-ratio scoring — prepared
//! constants, top-C pruning and all — is allocation-free in steady
//! state, under a counting global allocator.
//!
//! Single `#[test]` in its own binary: the `#[global_allocator]` is
//! process-wide, so a lone test keeps the armed window unpolluted.

use magshield_dsp::frame::FrameMatrix;
use magshield_ml::gmm::{
    llr_score_quantized, DiagonalGmm, LlrScorer, PreparedGmm, QuantizedGmm, ScoreScratch,
};
use magshield_simkit::rng::SimRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps the system allocator and counts every heap operation performed
/// by the *armed thread*. The armed flag is thread-local (const-init, so
/// reading it never allocates and `Cell<bool>` registers no destructor)
/// rather than global: the libtest harness owns other threads that may
/// legitimately allocate while the window is armed, and they must not
/// pollute the count.
struct CountingAlloc;

std::thread_local! {
    static ARMED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static ALLOCS: AtomicU64 = AtomicU64::new(0);

fn armed() -> bool {
    // `try_with` so a late allocation during thread teardown can't panic
    // inside the allocator.
    ARMED.try_with(std::cell::Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_llr_scoring_is_allocation_free() {
    let mut r = SimRng::from_seed(41);
    let data: Vec<Vec<f64>> = (0..400)
        .map(|_| (0..8).map(|_| r.gauss(0.0, 2.0)).collect())
        .collect();
    let ubm = DiagonalGmm::train(&data, 16, 10, 1e-6, &SimRng::from_seed(42));
    let mut frames = FrameMatrix::new(8);
    for _ in 0..120 {
        let row = frames.alloc_row();
        for v in row.iter_mut() {
            *v = r.gauss(0.5, 2.0);
        }
    }
    let speaker = ubm.map_adapt_means(&frames, 16.0);
    let scorer = LlrScorer::new(&speaker, &ubm);
    let mut scratch = ScoreScratch::new();

    for top_c in [0usize, 8] {
        // Warm-up grows the scratch to its high-water mark for this path.
        let warm = scorer.score(&frames, top_c, &mut scratch).score;

        ALLOCS.store(0, Ordering::SeqCst);
        ARMED.with(|a| a.set(true));
        let rescore = scorer.score(&frames, top_c, &mut scratch).score;
        ARMED.with(|a| a.set(false));

        let allocs = ALLOCS.load(Ordering::SeqCst);
        assert_eq!(
            allocs, 0,
            "warmed LlrScorer::score(top_c={top_c}) must not touch the \
             heap: {allocs} allocations observed"
        );
        assert_eq!(
            rescore.to_bits(),
            warm.to_bits(),
            "rescore must be identical"
        );
    }

    // Same proof for the quantized scorer: dequantization happens in
    // registers inside the component pass, so a warmed scratch is all the
    // state it needs.
    let spk_q = QuantizedGmm::from_prepared(&PreparedGmm::new(&speaker));
    let bg_q = QuantizedGmm::from_prepared(&PreparedGmm::new(&ubm));
    for top_c in [0usize, 8] {
        let warm = llr_score_quantized(&spk_q, &bg_q, &frames, top_c, &mut scratch).score;

        ALLOCS.store(0, Ordering::SeqCst);
        ARMED.with(|a| a.set(true));
        let rescore = llr_score_quantized(&spk_q, &bg_q, &frames, top_c, &mut scratch).score;
        ARMED.with(|a| a.set(false));

        let allocs = ALLOCS.load(Ordering::SeqCst);
        assert_eq!(
            allocs, 0,
            "warmed llr_score_quantized(top_c={top_c}) must not touch the \
             heap: {allocs} allocations observed"
        );
        assert_eq!(
            rescore.to_bits(),
            warm.to_bits(),
            "quantized rescore must be identical"
        );
    }
}

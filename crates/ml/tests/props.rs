//! Property-based tests for the ML kernels.

use magshield_ml::circlefit::fit_circle;
use magshield_ml::gmm::{log_sum_exp, DiagonalGmm};
use magshield_ml::kmeans::kmeans;
use magshield_ml::metrics::equal_error_rate;
use magshield_ml::scaler::StandardScaler;
use magshield_ml::svm::{LinearSvm, SvmConfig};
use magshield_simkit::rng::SimRng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// K-means inertia never increases when k grows.
    #[test]
    fn kmeans_inertia_monotone_in_k(seed in 0u64..1000) {
        let mut r = SimRng::from_seed(seed);
        let data: Vec<Vec<f64>> = (0..40)
            .map(|_| vec![r.gauss(0.0, 3.0), r.gauss(0.0, 3.0)])
            .collect();
        let rng = SimRng::from_seed(seed ^ 0xABCD);
        let i2 = kmeans(&data, 2, 50, &rng).inertia;
        let i8 = kmeans(&data, 8, 50, &rng).inertia;
        // k-means++ with more clusters on the same data should fit tighter
        // (allow a hair of slack for local optima).
        prop_assert!(i8 <= i2 * 1.05 + 1e-9, "inertia k=8 {i8} vs k=2 {i2}");
    }

    /// GMM responsibilities always form a probability distribution.
    #[test]
    fn gmm_responsibilities_simplex(seed in 0u64..500, x in -10.0f64..10.0, y in -10.0f64..10.0) {
        let mut r = SimRng::from_seed(seed);
        let data: Vec<Vec<f64>> = (0..60)
            .map(|_| vec![r.gauss(0.0, 2.0), r.gauss(1.0, 2.0)])
            .collect();
        let gmm = DiagonalGmm::train(&data, 3, 8, 1e-6, &SimRng::from_seed(seed));
        let resp = gmm.responsibilities(&[x, y]);
        let total: f64 = resp.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(resp.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
    }

    /// log_sum_exp is invariant to additive shifts (up to the shift).
    #[test]
    fn log_sum_exp_shift(values in prop::collection::vec(-50.0f64..50.0, 1..16), shift in -100.0f64..100.0) {
        let base = log_sum_exp(&values);
        let shifted: Vec<f64> = values.iter().map(|v| v + shift).collect();
        prop_assert!((log_sum_exp(&shifted) - (base + shift)).abs() < 1e-9);
    }

    /// The SVM never does worse than chance on its own training set when
    /// classes are balanced and separated.
    #[test]
    fn svm_beats_chance(seed in 0u64..500, sep in 1.5f64..5.0) {
        let mut r = SimRng::from_seed(seed);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let c = if i % 2 == 0 { 1.0 } else { -1.0 };
            data.push(vec![r.gauss(c * sep, 1.0), r.gauss(0.0, 1.0)]);
            labels.push(c);
        }
        let svm = LinearSvm::train(&data, &labels, SvmConfig::default(), &SimRng::from_seed(seed));
        prop_assert!(svm.accuracy(&data, &labels) > 0.7);
    }

    /// Scaler transform/inverse round-trips.
    #[test]
    fn scaler_round_trip(rows in prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 3), 2..20)) {
        let sc = StandardScaler::fit(&rows);
        for r in &rows {
            let back = sc.inverse_transform(&sc.transform(r));
            for (a, b) in back.iter().zip(r) {
                prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
            }
        }
    }

    /// Circle fit residual is ~0 for exact circles and the recovered radius
    /// is invariant to translation.
    #[test]
    fn circle_fit_translation_invariant(
        tx in -100.0f64..100.0,
        ty in -100.0f64..100.0,
        r in 0.05f64..5.0,
    ) {
        let pts: Vec<(f64, f64)> = (0..24)
            .map(|i| {
                let a = 0.3 + 2.0 * i as f64 / 23.0;
                (r * a.cos(), r * a.sin())
            })
            .collect();
        let moved: Vec<(f64, f64)> = pts.iter().map(|(x, y)| (x + tx, y + ty)).collect();
        let c0 = fit_circle(&pts).unwrap();
        let c1 = fit_circle(&moved).unwrap();
        prop_assert!((c0.radius - c1.radius).abs() < 1e-6 * (1.0 + r));
    }

    /// EER is symmetric under swapping + negating the score sets.
    #[test]
    fn eer_symmetry(
        genuine in prop::collection::vec(-10.0f64..10.0, 2..20),
        impostor in prop::collection::vec(-10.0f64..10.0, 2..20),
    ) {
        let e1 = equal_error_rate(&genuine, &impostor);
        // Negate scores and swap roles: acceptance region flips, EER holds.
        let ng: Vec<f64> = impostor.iter().map(|s| -s).collect();
        let ni: Vec<f64> = genuine.iter().map(|s| -s).collect();
        let e2 = equal_error_rate(&ng, &ni);
        prop_assert!((e1 - e2).abs() < 0.15, "EER {e1} vs swapped {e2}");
    }
}

//! Property-based tests for the ML kernels.

use magshield_dsp::FrameMatrix;
use magshield_ml::circlefit::fit_circle;
use magshield_ml::gmm::{
    llr_drift_bound, llr_score_prepared, llr_score_quantized, llr_score_sequential, log_sum_exp,
    DiagonalGmm, LlrAccumulator, LlrScorer, PreparedGmm, QuantizedGmm, ScoreScratch,
};
use magshield_ml::kmeans::kmeans;
use magshield_ml::metrics::equal_error_rate;
use magshield_ml::scaler::StandardScaler;
use magshield_ml::svm::{LinearSvm, SvmConfig};
use magshield_simkit::rng::SimRng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// K-means inertia never increases when k grows.
    #[test]
    fn kmeans_inertia_monotone_in_k(seed in 0u64..1000) {
        let mut r = SimRng::from_seed(seed);
        let data: Vec<Vec<f64>> = (0..40)
            .map(|_| vec![r.gauss(0.0, 3.0), r.gauss(0.0, 3.0)])
            .collect();
        let rng = SimRng::from_seed(seed ^ 0xABCD);
        let i2 = kmeans(&data, 2, 50, &rng).inertia;
        let i8 = kmeans(&data, 8, 50, &rng).inertia;
        // k-means++ with more clusters on the same data should fit tighter
        // (allow a hair of slack for local optima).
        prop_assert!(i8 <= i2 * 1.05 + 1e-9, "inertia k=8 {i8} vs k=2 {i2}");
    }

    /// GMM responsibilities always form a probability distribution.
    #[test]
    fn gmm_responsibilities_simplex(seed in 0u64..500, x in -10.0f64..10.0, y in -10.0f64..10.0) {
        let mut r = SimRng::from_seed(seed);
        let data: Vec<Vec<f64>> = (0..60)
            .map(|_| vec![r.gauss(0.0, 2.0), r.gauss(1.0, 2.0)])
            .collect();
        let gmm = DiagonalGmm::train(&data, 3, 8, 1e-6, &SimRng::from_seed(seed));
        let resp = gmm.responsibilities(&[x, y]);
        let total: f64 = resp.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(resp.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
    }

    /// log_sum_exp is invariant to additive shifts (up to the shift).
    #[test]
    fn log_sum_exp_shift(values in prop::collection::vec(-50.0f64..50.0, 1..16), shift in -100.0f64..100.0) {
        let base = log_sum_exp(&values);
        let shifted: Vec<f64> = values.iter().map(|v| v + shift).collect();
        prop_assert!((log_sum_exp(&shifted) - (base + shift)).abs() < 1e-9);
    }

    /// The SVM never does worse than chance on its own training set when
    /// classes are balanced and separated.
    #[test]
    fn svm_beats_chance(seed in 0u64..500, sep in 1.5f64..5.0) {
        let mut r = SimRng::from_seed(seed);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let c = if i % 2 == 0 { 1.0 } else { -1.0 };
            data.push(vec![r.gauss(c * sep, 1.0), r.gauss(0.0, 1.0)]);
            labels.push(c);
        }
        let svm = LinearSvm::train(&data, &labels, SvmConfig::default(), &SimRng::from_seed(seed));
        prop_assert!(svm.accuracy(&data, &labels) > 0.7);
    }

    /// Scaler transform/inverse round-trips.
    #[test]
    fn scaler_round_trip(rows in prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 3), 2..20)) {
        let sc = StandardScaler::fit(&rows);
        for r in &rows {
            let back = sc.inverse_transform(&sc.transform(r));
            for (a, b) in back.iter().zip(r) {
                prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
            }
        }
    }

    /// Circle fit residual is ~0 for exact circles and the recovered radius
    /// is invariant to translation.
    #[test]
    fn circle_fit_translation_invariant(
        tx in -100.0f64..100.0,
        ty in -100.0f64..100.0,
        r in 0.05f64..5.0,
    ) {
        let pts: Vec<(f64, f64)> = (0..24)
            .map(|i| {
                let a = 0.3 + 2.0 * i as f64 / 23.0;
                (r * a.cos(), r * a.sin())
            })
            .collect();
        let moved: Vec<(f64, f64)> = pts.iter().map(|(x, y)| (x + tx, y + ty)).collect();
        let c0 = fit_circle(&pts).unwrap();
        let c1 = fit_circle(&moved).unwrap();
        prop_assert!((c0.radius - c1.radius).abs() < 1e-6 * (1.0 + r));
    }

    /// The prepared fast-path scorer with C=all is score-exact against the
    /// reference `llr_score` (to the documented 1e-9 fused-constant
    /// tolerance), over random mixtures, adaptations, and frame sets — in
    /// both frame layouts. Values of `top_c >= k` or `0` must behave
    /// identically.
    #[test]
    fn fast_path_c_all_matches_reference_scorer(
        seed in 0u64..500,
        k in 1usize..6,
        n_frames in 1usize..40,
        relevance in 4.0f64..32.0,
    ) {
        let mut r = SimRng::from_seed(seed);
        let data: Vec<Vec<f64>> = (0..80)
            .map(|_| vec![r.gauss(0.0, 2.0), r.gauss(1.0, 2.0), r.gauss(-1.0, 1.5)])
            .collect();
        let ubm = DiagonalGmm::train(&data, k, 6, 1e-6, &SimRng::from_seed(seed));
        let model = ubm.map_adapt_means(&data[..40].to_vec(), relevance);
        let frames: Vec<Vec<f64>> = (0..n_frames)
            .map(|_| vec![r.gauss(0.5, 2.0), r.gauss(0.0, 2.0), r.gauss(0.0, 1.5)])
            .collect();
        let reference = model.llr_score(&ubm, &frames);
        let scorer = LlrScorer::new(&model, &ubm);
        let mut scratch = ScoreScratch::new();
        let matrix = FrameMatrix::from_rows(&frames);
        for top_c in [0, k, k + 7] {
            let vecs = scorer.score(&frames, top_c, &mut scratch);
            let flat = scorer.score(&matrix, top_c, &mut scratch);
            prop_assert!(
                (vecs.score - reference).abs() < 1e-9,
                "top_c={top_c}: fast {} vs reference {reference}",
                vecs.score
            );
            prop_assert_eq!(vecs.score, flat.score, "layouts must agree bitwise");
            prop_assert_eq!(vecs.pruned_components, 0);
        }
    }

    /// Pruned scoring never exceeds the exact score (speaker term is a
    /// subset log-sum) and prunes exactly (k − C) components per frame.
    #[test]
    fn pruning_is_a_lower_bound_with_exact_accounting(
        seed in 0u64..500,
        top_c in 1usize..4,
        n_frames in 1usize..30,
    ) {
        let k = 4;
        let mut r = SimRng::from_seed(seed ^ 0x5A5A);
        let data: Vec<Vec<f64>> = (0..60)
            .map(|_| vec![r.gauss(0.0, 2.0), r.gauss(0.0, 2.0)])
            .collect();
        let ubm = DiagonalGmm::train(&data, k, 6, 1e-6, &SimRng::from_seed(seed));
        let model = ubm.map_adapt_means(&data[..30].to_vec(), 16.0);
        let frames: Vec<Vec<f64>> = (0..n_frames)
            .map(|_| vec![r.gauss(0.0, 2.0), r.gauss(0.0, 2.0)])
            .collect();
        let scorer = LlrScorer::new(&model, &ubm);
        let mut scratch = ScoreScratch::new();
        let exact = scorer.score(&frames, 0, &mut scratch);
        let pruned = scorer.score(&frames, top_c, &mut scratch);
        prop_assert!(pruned.score <= exact.score + 1e-12);
        let expected_pruned = if top_c >= k { 0 } else { (n_frames * (k - top_c)) as u64 };
        prop_assert_eq!(pruned.pruned_components, expected_pruned);
    }

    /// The frame-major batched scorer is *bitwise* identical to the
    /// retained one-frame-at-a-time oracle — same score bits, same
    /// pruning accounting — across mixture sizes, frame counts that are
    /// not multiples of the 8-frame block, and every top-C regime
    /// (exhaustive, pruned, degenerate). Running this test with
    /// `--features simd` proves the SIMD lanes preserve the same scalar
    /// operation order.
    #[test]
    fn batched_scorer_is_bit_identical_to_sequential(
        seed in 0u64..500,
        k in 1usize..6,
        n_frames in 1usize..40,
        top_c in 0usize..8,
    ) {
        let mut r = SimRng::from_seed(seed ^ 0xB17);
        let data: Vec<Vec<f64>> = (0..80)
            .map(|_| vec![r.gauss(0.0, 2.0), r.gauss(1.0, 2.0), r.gauss(-1.0, 1.5)])
            .collect();
        let ubm = DiagonalGmm::train(&data, k, 6, 1e-6, &SimRng::from_seed(seed));
        let model = ubm.map_adapt_means(&data[..40].to_vec(), 16.0);
        let frames: Vec<Vec<f64>> = (0..n_frames)
            .map(|_| vec![r.gauss(0.5, 2.0), r.gauss(0.0, 2.0), r.gauss(0.0, 1.5)])
            .collect();
        let spk = PreparedGmm::new(&model);
        let bg = PreparedGmm::new(&ubm);
        let mut scratch = ScoreScratch::new();
        let batched = llr_score_prepared(&spk, &bg, &frames, top_c, &mut scratch);
        let sequential = llr_score_sequential(&spk, &bg, &frames, top_c, &mut scratch);
        prop_assert_eq!(
            batched.score.to_bits(),
            sequential.score.to_bits(),
            "batched {} vs sequential {}",
            batched.score,
            sequential.score
        );
        prop_assert_eq!(batched.frames, sequential.frames);
        prop_assert_eq!(batched.pruned_components, sequential.pruned_components);
        prop_assert_eq!(batched.evaluated_components, sequential.evaluated_components);
    }

    /// The quantized scorer's drift from the exact prepared scorer stays
    /// inside the analytic [`llr_drift_bound`] computed from the stored
    /// rounding errors — the bound is sound, not just the observed error
    /// small.
    #[test]
    fn quantized_score_within_analytic_drift_bound(
        seed in 0u64..500,
        k in 1usize..6,
        n_frames in 1usize..40,
    ) {
        let mut r = SimRng::from_seed(seed ^ 0x0DD);
        let data: Vec<Vec<f64>> = (0..80)
            .map(|_| vec![r.gauss(0.0, 2.0), r.gauss(1.0, 2.0), r.gauss(-1.0, 1.5)])
            .collect();
        let ubm = DiagonalGmm::train(&data, k, 6, 1e-6, &SimRng::from_seed(seed));
        let model = ubm.map_adapt_means(&data[..40].to_vec(), 16.0);
        let frames: Vec<Vec<f64>> = (0..n_frames)
            .map(|_| vec![r.gauss(0.5, 2.0), r.gauss(0.0, 2.0), r.gauss(0.0, 1.5)])
            .collect();
        let spk = PreparedGmm::new(&model);
        let bg = PreparedGmm::new(&ubm);
        let spk_q = QuantizedGmm::from_prepared(&spk);
        let bg_q = QuantizedGmm::from_prepared(&bg);
        let x_abs_max = frames
            .iter()
            .flatten()
            .fold(0.0f64, |a, &x| a.max(x.abs()));
        let mut scratch = ScoreScratch::new();
        let exact = llr_score_prepared(&spk, &bg, &frames, 0, &mut scratch);
        let quant = llr_score_quantized(&spk_q, &bg_q, &frames, 0, &mut scratch);
        let bound = llr_drift_bound(&spk, &spk_q, &bg, &bg_q, x_abs_max);
        let drift = (quant.score - exact.score).abs();
        prop_assert!(
            drift <= bound * (1.0 + 1e-12) + 1e-9,
            "drift {drift} exceeds analytic bound {bound}"
        );
    }

    /// Chunked quantized streaming (`ingest_quantized`) agrees with the
    /// one-shot quantized score for every chunk size — the per-frame
    /// ratios are identical, only the outer summation regroups, so the
    /// divergence stays at the documented reassociation level.
    #[test]
    fn quantized_accumulator_matches_one_shot_across_chunkings(
        seed in 0u64..500,
        chunk in 1usize..9,
        n_frames in 1usize..40,
        top_c in 0usize..5,
    ) {
        let mut r = SimRng::from_seed(seed ^ 0xACC);
        let data: Vec<Vec<f64>> = (0..60)
            .map(|_| vec![r.gauss(0.0, 2.0), r.gauss(0.0, 2.0)])
            .collect();
        let ubm = DiagonalGmm::train(&data, 4, 6, 1e-6, &SimRng::from_seed(seed));
        let model = ubm.map_adapt_means(&data[..30].to_vec(), 16.0);
        let frames: Vec<Vec<f64>> = (0..n_frames)
            .map(|_| vec![r.gauss(0.0, 2.0), r.gauss(0.0, 2.0)])
            .collect();
        let spk_q = QuantizedGmm::from_prepared(&PreparedGmm::new(&model));
        let bg_q = QuantizedGmm::from_prepared(&PreparedGmm::new(&ubm));
        let mut scratch = ScoreScratch::new();
        let one_shot = llr_score_quantized(&spk_q, &bg_q, &frames, top_c, &mut scratch);
        let mut accum = LlrAccumulator::new();
        let mut start = 0;
        while start < frames.len() {
            let end = (start + chunk).min(frames.len());
            accum.ingest_quantized(&spk_q, &bg_q, &frames[start..end], top_c, &mut scratch);
            start = end;
        }
        prop_assert_eq!(accum.frames(), one_shot.frames);
        prop_assert!(
            (accum.score() - one_shot.score).abs() < 1e-9 * (1.0 + one_shot.score.abs()),
            "chunked {} vs one-shot {}",
            accum.score(),
            one_shot.score
        );
        let b = accum.breakdown();
        prop_assert_eq!(b.pruned_components, one_shot.pruned_components);
        prop_assert_eq!(b.evaluated_components, one_shot.evaluated_components);
    }

    /// EER is symmetric under swapping + negating the score sets.
    #[test]
    fn eer_symmetry(
        genuine in prop::collection::vec(-10.0f64..10.0, 2..20),
        impostor in prop::collection::vec(-10.0f64..10.0, 2..20),
    ) {
        let e1 = equal_error_rate(&genuine, &impostor);
        // Negate scores and swap roles: acceptance region flips, EER holds.
        let ng: Vec<f64> = impostor.iter().map(|s| -s).collect();
        let ni: Vec<f64> = genuine.iter().map(|s| -s).collect();
        let e2 = equal_error_rate(&ng, &ni);
        prop_assert!((e1 - e2).abs() < 0.15, "EER {e1} vs swapped {e2}");
    }
}

//! Principal component analysis via cyclic Jacobi eigendecomposition.
//!
//! Fig. 8 of the paper projects sound-field feature vectors with PCA to
//! show human-mouth and earphone fields separating cleanly; the same
//! transform is available here for visualization and feature compaction.

use serde::{Deserialize, Serialize};

/// A fitted PCA transform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pca {
    /// Per-dimension means subtracted before projection.
    mean: Vec<f64>,
    /// Principal axes (rows), sorted by decreasing eigenvalue.
    components: Vec<Vec<f64>>,
    /// Eigenvalues (variance along each component), same order.
    eigenvalues: Vec<f64>,
}

impl Pca {
    /// Fits PCA on `data`, keeping `num_components`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, dimensions are inconsistent, or
    /// `num_components` exceeds the dimensionality.
    pub fn fit(data: &[Vec<f64>], num_components: usize) -> Self {
        assert!(!data.is_empty(), "PCA needs data");
        let dim = data[0].len();
        assert!(
            data.iter().all(|r| r.len() == dim),
            "inconsistent dimensions"
        );
        assert!(
            num_components >= 1 && num_components <= dim,
            "num_components must be in 1..={dim}"
        );
        let n = data.len() as f64;
        let mean: Vec<f64> = (0..dim)
            .map(|d| data.iter().map(|r| r[d]).sum::<f64>() / n)
            .collect();
        // Covariance matrix (population).
        let mut cov = vec![vec![0.0; dim]; dim];
        for r in data {
            for i in 0..dim {
                let di = r[i] - mean[i];
                for j in i..dim {
                    cov[i][j] += di * (r[j] - mean[j]);
                }
            }
        }
        for i in 0..dim {
            for j in i..dim {
                cov[i][j] /= n;
                cov[j][i] = cov[i][j];
            }
        }
        let (eigvals, eigvecs) = jacobi_eigen(&cov);
        // Sort by decreasing eigenvalue.
        let mut order: Vec<usize> = (0..dim).collect();
        order.sort_by(|&a, &b| eigvals[b].partial_cmp(&eigvals[a]).unwrap());
        let components: Vec<Vec<f64>> = order[..num_components]
            .iter()
            .map(|&k| (0..dim).map(|i| eigvecs[i][k]).collect())
            .collect();
        let eigenvalues = order[..num_components]
            .iter()
            .map(|&k| eigvals[k])
            .collect();
        Self {
            mean,
            components,
            eigenvalues,
        }
    }

    /// Fits PCA where the dimensionality far exceeds the sample count
    /// (e.g. GMM supervectors), via the Gram-matrix trick: the top
    /// eigenvectors of the D×D covariance are recovered from the n×n Gram
    /// matrix `XXᵀ` of the centered data.
    ///
    /// Keeps `min(num_components, n − 1, D)` components.
    ///
    /// # Panics
    ///
    /// Panics if `data` has fewer than 2 rows or inconsistent dimensions.
    pub fn fit_gram(data: &[Vec<f64>], num_components: usize) -> Self {
        assert!(data.len() >= 2, "Gram PCA needs at least two samples");
        let n = data.len();
        let dim = data[0].len();
        assert!(
            data.iter().all(|r| r.len() == dim),
            "inconsistent dimensions"
        );
        let mean: Vec<f64> = (0..dim)
            .map(|d| data.iter().map(|r| r[d]).sum::<f64>() / n as f64)
            .collect();
        let centered: Vec<Vec<f64>> = data
            .iter()
            .map(|r| r.iter().zip(&mean).map(|(x, m)| x - m).collect())
            .collect();
        // Gram matrix G = X Xᵀ / n.
        let mut gram = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in i..n {
                let g: f64 = centered[i]
                    .iter()
                    .zip(&centered[j])
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
                    / n as f64;
                gram[i][j] = g;
                gram[j][i] = g;
            }
        }
        let (eigvals, eigvecs) = jacobi_eigen(&gram);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| eigvals[b].partial_cmp(&eigvals[a]).unwrap());
        let keep = num_components.min(n.saturating_sub(1)).min(dim).max(1);
        let mut components = Vec::with_capacity(keep);
        let mut eigenvalues = Vec::with_capacity(keep);
        for &k in order.iter().take(keep) {
            if eigvals[k] <= 1e-12 {
                break;
            }
            // Covariance eigenvector u = Xᵀ v / ‖Xᵀ v‖.
            let mut u = vec![0.0; dim];
            for (i, row) in centered.iter().enumerate() {
                let vi = eigvecs[i][k];
                for (ud, &x) in u.iter_mut().zip(row) {
                    *ud += vi * x;
                }
            }
            let norm: f64 = u.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-12 {
                break;
            }
            for ud in &mut u {
                *ud /= norm;
            }
            components.push(u);
            eigenvalues.push(eigvals[k]);
        }
        assert!(
            !components.is_empty(),
            "no non-degenerate variance directions"
        );
        Self {
            mean,
            components,
            eigenvalues,
        }
    }

    /// Projects one vector into component space.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        self.components
            .iter()
            .map(|c| {
                c.iter()
                    .zip(x.iter().zip(&self.mean))
                    .map(|(ci, (xi, mi))| ci * (xi - mi))
                    .sum()
            })
            .collect()
    }

    /// Projects a batch.
    pub fn transform_batch(&self, data: &[Vec<f64>]) -> Vec<Vec<f64>> {
        data.iter().map(|x| self.transform(x)).collect()
    }

    /// Variance captured by each kept component.
    pub fn explained_variance(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// The principal axes (unit vectors, rows).
    pub fn components(&self) -> &[Vec<f64>] {
        &self.components
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvectors in columns.
fn jacobi_eigen(matrix: &[Vec<f64>]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = matrix.len();
    let mut a: Vec<Vec<f64>> = matrix.to_vec();
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _sweep in 0..100 {
        let mut off: f64 = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += a[i][j] * a[i][j];
            }
        }
        if off < 1e-22 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                if a[p][q].abs() < 1e-14 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[k][p];
                    let vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let eig = (0..n).map(|i| a[i][i]).collect();
    (eig, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_on_known_matrix() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = vec![vec![2.0, 1.0], vec![1.0, 2.0]];
        let (mut vals, _) = jacobi_eigen(&m);
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((vals[0] - 1.0).abs() < 1e-10);
        assert!((vals[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn first_component_follows_elongation() {
        // Data stretched along (1,1).
        let data: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                let t = (i as f64 - 100.0) / 10.0;
                let jitter = ((i * 7919) % 13) as f64 / 100.0;
                vec![t + jitter, t - jitter]
            })
            .collect();
        let pca = Pca::fit(&data, 2);
        let c0 = &pca.components()[0];
        let alignment = (c0[0] * std::f64::consts::FRAC_1_SQRT_2
            + c0[1] * std::f64::consts::FRAC_1_SQRT_2)
            .abs();
        assert!(alignment > 0.999, "PC1 alignment {alignment}");
        assert!(pca.explained_variance()[0] > pca.explained_variance()[1] * 100.0);
    }

    #[test]
    fn transform_centers_data() {
        let data = vec![vec![5.0, 1.0], vec![7.0, 3.0], vec![9.0, 5.0]];
        let pca = Pca::fit(&data, 1);
        let projected = pca.transform_batch(&data);
        let mean: f64 = projected.iter().map(|p| p[0]).sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-10);
    }

    #[test]
    fn projection_preserves_pairwise_order_along_pc1() {
        let data: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let pca = Pca::fit(&data, 1);
        let p = pca.transform_batch(&data);
        let increasing = p.windows(2).all(|w| w[1][0] > w[0][0]);
        let decreasing = p.windows(2).all(|w| w[1][0] < w[0][0]);
        assert!(increasing || decreasing, "PC1 should order collinear data");
    }

    #[test]
    fn components_are_orthonormal() {
        let data: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                vec![
                    (i as f64 * 0.3).sin(),
                    (i as f64 * 0.7).cos(),
                    (i as f64 * 0.1).sin() * 2.0,
                ]
            })
            .collect();
        let pca = Pca::fit(&data, 3);
        for i in 0..3 {
            let ni: f64 = pca.components()[i].iter().map(|x| x * x).sum();
            assert!((ni - 1.0).abs() < 1e-9, "component {i} not unit");
            for j in i + 1..3 {
                let d: f64 = pca.components()[i]
                    .iter()
                    .zip(&pca.components()[j])
                    .map(|(a, b)| a * b)
                    .sum();
                assert!(d.abs() < 1e-9, "components {i},{j} not orthogonal");
            }
        }
    }

    #[test]
    #[should_panic(expected = "num_components")]
    fn rejects_too_many_components() {
        Pca::fit(&[vec![1.0, 2.0]], 3);
    }

    #[test]
    fn gram_pca_matches_covariance_pca_on_small_data() {
        let data: Vec<Vec<f64>> = (0..12)
            .map(|i| {
                let t = i as f64;
                vec![t, 2.0 * t + (t * 0.7).sin(), -t + (t * 0.3).cos(), 0.5 * t]
            })
            .collect();
        let a = Pca::fit(&data, 2);
        let b = Pca::fit_gram(&data, 2);
        let pa = a.transform_batch(&data);
        let pb = b.transform_batch(&data);
        // Components may differ in sign; compare absolute projections.
        for (x, y) in pa.iter().zip(&pb) {
            for (u, v) in x.iter().zip(y) {
                assert!((u.abs() - v.abs()).abs() < 1e-6, "{u} vs {v}");
            }
        }
    }

    #[test]
    fn gram_pca_handles_high_dimension() {
        // 6 samples in 500 dimensions: covariance PCA would need a 500x500
        // eigendecomposition; the Gram trick works on 6x6.
        let data: Vec<Vec<f64>> = (0..6)
            .map(|i| (0..500).map(|d| ((i * d) as f64 * 0.01).sin()).collect())
            .collect();
        let pca = Pca::fit_gram(&data, 3);
        assert!(pca.components().len() <= 3);
        for c in pca.components() {
            let n: f64 = c.iter().map(|x| x * x).sum();
            assert!((n - 1.0).abs() < 1e-9);
        }
        let p = pca.transform(&data[0]);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn gram_pca_rejects_single_sample() {
        Pca::fit_gram(&[vec![1.0, 2.0]], 1);
    }
}

//! Least-squares circle fitting (Kåsa method).
//!
//! The paper's sound-source distance verification "utilize\[s\] the
//! least-square circle fitting algorithm \[17\] to calculate the distance":
//! the phone's approach arc around the head/mouth is fit with a circle
//! whose radius estimates the phone-to-source distance.

/// A fitted circle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Center x.
    pub cx: f64,
    /// Center y.
    pub cy: f64,
    /// Radius.
    pub radius: f64,
    /// Root-mean-square radial residual of the fit.
    pub rms_residual: f64,
}

/// Fits a circle to 2-D points by the Kåsa linear least-squares method.
///
/// Solves `x² + y² = 2cx·x + 2cy·y + (r² − cx² − cy²)` in the least-squares
/// sense via the 3×3 normal equations.
///
/// Returns `None` for degenerate input: fewer than 3 points or (near-)
/// collinear points.
pub fn fit_circle(points: &[(f64, f64)]) -> Option<Circle> {
    if points.len() < 3 {
        return None;
    }
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
    let (mut sxz, mut syz, mut sz) = (0.0, 0.0, 0.0);
    for &(x, y) in points {
        let z = x * x + y * y;
        sx += x;
        sy += y;
        sxx += x * x;
        syy += y * y;
        sxy += x * y;
        sxz += x * z;
        syz += y * z;
        sz += z;
    }
    // Normal equations for [a, b, c] with a = 2cx, b = 2cy, c = r² − cx² − cy².
    let m = [[sxx, sxy, sx], [sxy, syy, sy], [sx, sy, n]];
    let rhs = [sxz, syz, sz];
    let sol = solve3(m, rhs)?;
    let cx = sol[0] / 2.0;
    let cy = sol[1] / 2.0;
    let r2 = sol[2] + cx * cx + cy * cy;
    if !r2.is_finite() || r2 <= 0.0 {
        return None;
    }
    let radius = r2.sqrt();
    let rms = (points
        .iter()
        .map(|&(x, y)| {
            let d = ((x - cx).powi(2) + (y - cy).powi(2)).sqrt();
            (d - radius).powi(2)
        })
        .sum::<f64>()
        / n)
        .sqrt();
    Some(Circle {
        cx,
        cy,
        radius,
        rms_residual: rms,
    })
}

/// Solves a 3×3 linear system by Gaussian elimination with partial
/// pivoting; `None` if singular.
fn solve3(mut m: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        let pivot =
            (col..3).max_by(|&a, &c| m[a][col].abs().partial_cmp(&m[c][col].abs()).unwrap())?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..3 {
            let f = m[row][col] / m[col][col];
            for k in col..3 {
                m[row][k] -= f * m[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0; 3];
    for row in (0..3).rev() {
        let mut acc = b[row];
        for k in row + 1..3 {
            acc -= m[row][k] * x[k];
        }
        x[row] = acc / m[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(cx: f64, cy: f64, r: f64, from_deg: f64, to_deg: f64, n: usize) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| {
                let a = (from_deg + (to_deg - from_deg) * i as f64 / (n - 1) as f64).to_radians();
                (cx + r * a.cos(), cy + r * a.sin())
            })
            .collect()
    }

    #[test]
    fn exact_circle_recovered() {
        let pts = arc(2.0, -1.0, 5.0, 0.0, 360.0, 40);
        let c = fit_circle(&pts).unwrap();
        assert!((c.cx - 2.0).abs() < 1e-9);
        assert!((c.cy + 1.0).abs() < 1e-9);
        assert!((c.radius - 5.0).abs() < 1e-9);
        assert!(c.rms_residual < 1e-9);
    }

    #[test]
    fn partial_arc_recovered() {
        // The paper's use case: the phone sweeps only a partial arc.
        let pts = arc(0.0, 0.0, 0.08, 40.0, 140.0, 25);
        let c = fit_circle(&pts).unwrap();
        assert!((c.radius - 0.08).abs() < 1e-6, "radius {}", c.radius);
    }

    #[test]
    fn noisy_arc_radius_close() {
        let mut pts = arc(0.0, 0.0, 0.10, 0.0, 180.0, 50);
        for (i, p) in pts.iter_mut().enumerate() {
            let e = 0.002 * (((i * 2654435761) % 100) as f64 / 50.0 - 1.0);
            p.0 += e;
            p.1 -= e;
        }
        let c = fit_circle(&pts).unwrap();
        assert!((c.radius - 0.10).abs() < 0.01, "radius {}", c.radius);
        assert!(c.rms_residual < 0.01);
    }

    #[test]
    fn collinear_points_rejected() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64)).collect();
        assert!(fit_circle(&pts).is_none());
    }

    #[test]
    fn too_few_points_rejected() {
        assert!(fit_circle(&[(0.0, 0.0), (1.0, 0.0)]).is_none());
    }
}

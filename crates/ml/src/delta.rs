//! Delta encoding of MAP-adapted mixtures against their prior.
//!
//! A Reynolds MAP-adapted speaker model
//! ([`DiagonalGmm::map_adapt_means`]) shares its weights and variances
//! with the UBM it was adapted from — only the means move. Shipping a
//! whole [`DiagonalGmm`] per enrollment therefore repeats `2k·dim + k`
//! numbers the receiver already holds. A [`GmmMeanDelta`] stores only
//! what changed: for each component whose mean moved, the XOR of the
//! adapted and prior IEEE-754 bit patterns.
//!
//! XOR deltas (rather than arithmetic differences) are what make the
//! reconstruction **bit-identical**: `prior_bits ^ delta_bits` restores
//! the adapted mean exactly, whereas `prior + (adapted − prior)` does
//! not round-trip in floating point. Components the adaptation left
//! untouched (low-evidence components keep the prior mean exactly) XOR
//! to all-zero words and are omitted entirely, so lightly adapted
//! speakers cost a few hundred bytes where a full model costs tens of
//! kilobytes — and a full serving bundle re-export costs hundreds.
//!
//! A delta is only meaningful against the exact prior it was encoded
//! from, so every record carries a [`gmm_fingerprint`] of the prior's
//! full parameter set; [`GmmMeanDelta::apply`] refuses to reconstruct
//! against anything else.

use crate::codec::{self, fnv1a_64, BinaryCodec, ByteReader, ByteWriter, CodecError};
use crate::gmm::DiagonalGmm;
use std::error::Error;
use std::fmt;

/// Typed failure encoding or applying a [`GmmMeanDelta`].
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaError {
    /// The adapted mixture's shape differs from the prior's.
    ShapeMismatch {
        /// `(components, dim)` of the prior.
        prior: (usize, usize),
        /// `(components, dim)` of the adapted mixture.
        adapted: (usize, usize),
    },
    /// The adapted mixture changed weights or variances, so it is not a
    /// means-only MAP adaptation and cannot be expressed as a mean delta.
    NotMeansOnly,
    /// The prior handed to [`GmmMeanDelta::apply`] is not the prior the
    /// delta was encoded against.
    FingerprintMismatch {
        /// Fingerprint stored in the delta.
        expected: u64,
        /// Fingerprint of the prior offered for reconstruction.
        found: u64,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch { prior, adapted } => write!(
                f,
                "mixture shape mismatch: prior {}x{}, adapted {}x{}",
                prior.0, prior.1, adapted.0, adapted.1
            ),
            Self::NotMeansOnly => write!(
                f,
                "adapted mixture changed weights or variances; only means-only \
                 MAP adaptations delta-encode"
            ),
            Self::FingerprintMismatch { expected, found } => write!(
                f,
                "prior fingerprint mismatch: delta was encoded against \
                 {expected:#018x}, offered prior hashes to {found:#018x}"
            ),
        }
    }
}

impl Error for DeltaError {}

/// FNV-1a/64 over a mixture's full parameter set (weights, means,
/// variances, as IEEE-754 bit patterns in index order). Identifies the
/// prior a [`GmmMeanDelta`] belongs to without serializing it.
pub fn gmm_fingerprint(gmm: &DiagonalGmm) -> u64 {
    let mut bytes = Vec::with_capacity(8 * gmm.num_components() * (1 + 2 * gmm.dim()) + 16);
    bytes.extend_from_slice(&(gmm.num_components() as u64).to_le_bytes());
    bytes.extend_from_slice(&(gmm.dim() as u64).to_le_bytes());
    for w in gmm.weights() {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    for row in gmm.means() {
        for m in row {
            bytes.extend_from_slice(&m.to_le_bytes());
        }
    }
    for row in gmm.variances() {
        for v in row {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    fnv1a_64(&bytes)
}

/// A sparse, bit-exact encoding of a means-only MAP adaptation.
///
/// Produced by [`GmmMeanDelta::encode`] against a prior (the UBM);
/// [`GmmMeanDelta::apply`] reconstructs the adapted mixture
/// bit-identically from the same prior. Serializes through the
/// workspace codec (magic `MGMD`).
#[derive(Debug, Clone, PartialEq)]
pub struct GmmMeanDelta {
    /// [`gmm_fingerprint`] of the prior this delta is relative to.
    prior_fingerprint: u64,
    /// Component count of both mixtures.
    components: usize,
    /// Feature dimensionality of both mixtures.
    dim: usize,
    /// `(component index, per-dimension XOR of mean bit patterns)` for
    /// every component whose mean moved, in ascending index order.
    moved: Vec<(u32, Vec<u64>)>,
}

impl GmmMeanDelta {
    /// Encodes `adapted` as a mean delta against `prior`.
    ///
    /// Fails with [`DeltaError::ShapeMismatch`] on shape disagreement and
    /// [`DeltaError::NotMeansOnly`] when any weight or variance differs
    /// bitwise — such a mixture is not a Reynolds means-only adaptation
    /// of `prior` and must ship as a full model instead.
    pub fn encode(prior: &DiagonalGmm, adapted: &DiagonalGmm) -> Result<Self, DeltaError> {
        let (k, dim) = (prior.num_components(), prior.dim());
        if adapted.num_components() != k || adapted.dim() != dim {
            return Err(DeltaError::ShapeMismatch {
                prior: (k, dim),
                adapted: (adapted.num_components(), adapted.dim()),
            });
        }
        let same_bits =
            |a: &[f64], b: &[f64]| a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
        if !same_bits(prior.weights(), adapted.weights()) {
            return Err(DeltaError::NotMeansOnly);
        }
        for (pv, av) in prior.variances().iter().zip(adapted.variances()) {
            if !same_bits(pv, av) {
                return Err(DeltaError::NotMeansOnly);
            }
        }
        let mut moved = Vec::new();
        for (c, (pm, am)) in prior.means().iter().zip(adapted.means()).enumerate() {
            if same_bits(pm, am) {
                continue;
            }
            let xor: Vec<u64> = pm
                .iter()
                .zip(am)
                .map(|(p, a)| p.to_bits() ^ a.to_bits())
                .collect();
            moved.push((c as u32, xor));
        }
        Ok(Self {
            prior_fingerprint: gmm_fingerprint(prior),
            components: k,
            dim,
            moved,
        })
    }

    /// Reconstructs the adapted mixture from the prior this delta was
    /// encoded against. Bit-identical to the original `adapted` argument
    /// of [`GmmMeanDelta::encode`].
    pub fn apply(&self, prior: &DiagonalGmm) -> Result<DiagonalGmm, DeltaError> {
        if prior.num_components() != self.components || prior.dim() != self.dim {
            return Err(DeltaError::ShapeMismatch {
                prior: (prior.num_components(), prior.dim()),
                adapted: (self.components, self.dim),
            });
        }
        let found = gmm_fingerprint(prior);
        if found != self.prior_fingerprint {
            return Err(DeltaError::FingerprintMismatch {
                expected: self.prior_fingerprint,
                found,
            });
        }
        let mut means: Vec<Vec<f64>> = prior.means().to_vec();
        for (c, xor) in &self.moved {
            let row = &mut means[*c as usize];
            for (m, bits) in row.iter_mut().zip(xor) {
                *m = f64::from_bits(m.to_bits() ^ bits);
            }
        }
        Ok(DiagonalGmm::from_parameters(
            prior.weights().to_vec(),
            means,
            prior.variances().to_vec(),
        ))
    }

    /// The fingerprint of the prior this delta was encoded against.
    pub fn prior_fingerprint(&self) -> u64 {
        self.prior_fingerprint
    }

    /// Number of components whose mean moved.
    pub fn moved_components(&self) -> usize {
        self.moved.len()
    }
}

impl BinaryCodec for GmmMeanDelta {
    const MAGIC: u32 = codec::magic(b"MGMD");
    const VERSION: u8 = 1;
    const NAME: &'static str = "GmmMeanDelta";

    fn encode_payload(&self, w: &mut ByteWriter) {
        w.put_u64(self.prior_fingerprint);
        w.put_len(self.components);
        w.put_len(self.dim);
        w.put_len(self.moved.len());
        for (c, xor) in &self.moved {
            w.put_u32(*c);
            for bits in xor {
                w.put_u64(*bits);
            }
        }
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let prior_fingerprint = r.get_u64()?;
        let components = r.get_len()?;
        let dim = r.get_len()?;
        if components == 0 || dim == 0 {
            return Err(CodecError::Invalid {
                artifact: Self::NAME,
                reason: "mixture shape must be non-empty".to_string(),
            });
        }
        let n = r.get_len()?;
        if n > components {
            return Err(CodecError::Invalid {
                artifact: Self::NAME,
                reason: format!("{n} moved components exceed the {components}-component shape"),
            });
        }
        let mut moved = Vec::with_capacity(n);
        let mut prev: Option<u32> = None;
        for _ in 0..n {
            let c = r.get_u32()?;
            if c as usize >= components {
                return Err(CodecError::Invalid {
                    artifact: Self::NAME,
                    reason: format!("component index {c} out of range"),
                });
            }
            if prev.is_some_and(|p| c <= p) {
                return Err(CodecError::Invalid {
                    artifact: Self::NAME,
                    reason: "moved components must be strictly ascending".to_string(),
                });
            }
            prev = Some(c);
            let mut xor = Vec::with_capacity(dim);
            for _ in 0..dim {
                xor.push(r.get_u64()?);
            }
            moved.push((c, xor));
        }
        Ok(Self {
            prior_fingerprint,
            components,
            dim,
            moved,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::assert_hostile_input_fails;
    use magshield_simkit::rng::SimRng;
    use proptest::prelude::*;

    fn random_gmm(rng: &mut SimRng, k: usize, dim: usize) -> DiagonalGmm {
        let raw: Vec<f64> = (0..k).map(|_| rng.uniform(0.1, 1.0)).collect();
        let sum: f64 = raw.iter().sum();
        DiagonalGmm::from_parameters(
            raw.iter().map(|w| w / sum).collect(),
            (0..k)
                .map(|_| (0..dim).map(|_| rng.gauss(0.0, 2.0)).collect())
                .collect(),
            (0..k)
                .map(|_| (0..dim).map(|_| rng.uniform(0.05, 3.0)).collect())
                .collect(),
        )
    }

    fn random_frames(rng: &mut SimRng, n: usize, dim: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gauss(0.5, 1.5)).collect())
            .collect()
    }

    #[test]
    fn adapted_mixture_round_trips_bit_identically() {
        let mut rng = SimRng::from_seed(11);
        let ubm = random_gmm(&mut rng, 6, 4);
        let data = random_frames(&mut rng, 60, 4);
        let adapted = ubm.map_adapt_means(&data, 16.0);
        let delta = GmmMeanDelta::encode(&ubm, &adapted).unwrap();
        let back = delta.apply(&ubm).unwrap();
        for (a, b) in adapted.means().iter().zip(back.means()) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(adapted, back);
        // Codec round-trip preserves the delta exactly.
        let decoded = GmmMeanDelta::from_bytes(&delta.to_bytes()).unwrap();
        assert_eq!(decoded, delta);
        assert_eq!(decoded.apply(&ubm).unwrap(), adapted);
    }

    #[test]
    fn unmoved_components_are_omitted() {
        let mut rng = SimRng::from_seed(12);
        let ubm = random_gmm(&mut rng, 8, 3);
        // Identity adaptation: no data, nothing moves.
        let same = GmmMeanDelta::encode(&ubm, &ubm.clone()).unwrap();
        assert_eq!(same.moved_components(), 0);
        assert!(same.to_bytes().len() < 64, "empty delta stays tiny");
    }

    #[test]
    fn non_means_only_mixtures_are_refused() {
        let mut rng = SimRng::from_seed(13);
        let ubm = random_gmm(&mut rng, 4, 3);
        let other = random_gmm(&mut SimRng::from_seed(14), 4, 3);
        assert_eq!(
            GmmMeanDelta::encode(&ubm, &other),
            Err(DeltaError::NotMeansOnly)
        );
        let smaller = random_gmm(&mut rng, 3, 3);
        assert!(matches!(
            GmmMeanDelta::encode(&ubm, &smaller),
            Err(DeltaError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn wrong_prior_is_refused_by_fingerprint() {
        let mut rng = SimRng::from_seed(15);
        let ubm = random_gmm(&mut rng, 5, 3);
        let data = random_frames(&mut rng, 40, 3);
        let adapted = ubm.map_adapt_means(&data, 16.0);
        let delta = GmmMeanDelta::encode(&ubm, &adapted).unwrap();
        let impostor = random_gmm(&mut SimRng::from_seed(16), 5, 3);
        assert!(matches!(
            delta.apply(&impostor),
            Err(DeltaError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn hostile_input_yields_typed_errors() {
        let mut rng = SimRng::from_seed(17);
        let ubm = random_gmm(&mut rng, 4, 3);
        let adapted = ubm.map_adapt_means(&random_frames(&mut rng, 30, 3), 16.0);
        let delta = GmmMeanDelta::encode(&ubm, &adapted).unwrap();
        assert_hostile_input_fails::<GmmMeanDelta>(&delta.to_bytes());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Delta encode → decode → apply reconstructs a MAP-adapted
        /// mixture bit-identically across component counts, feature
        /// dimensions and adaptation strengths.
        #[test]
        fn delta_round_trip_is_bit_identical(
            seed in 0u64..u64::MAX,
            k in 1usize..9,
            dim in 1usize..7,
            frames in 0usize..120,
            relevance in 0.5f64..64.0,
        ) {
            let mut rng = SimRng::from_seed(seed);
            let ubm = random_gmm(&mut rng, k, dim);
            let data = random_frames(&mut rng, frames, dim);
            let adapted = ubm.map_adapt_means(&data, relevance);
            let delta = GmmMeanDelta::encode(&ubm, &adapted).unwrap();
            let wire = GmmMeanDelta::from_bytes(&delta.to_bytes()).unwrap();
            let back = wire.apply(&ubm).unwrap();
            for (a, b) in adapted.weights().iter().zip(back.weights()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in adapted.means().iter().zip(back.means()) {
                for (x, y) in a.iter().zip(b) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            for (a, b) in adapted.variances().iter().zip(back.variances()) {
                for (x, y) in a.iter().zip(b) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }
}

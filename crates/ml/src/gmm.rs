//! Diagonal-covariance Gaussian mixture models with EM training and MAP
//! adaptation.
//!
//! This is the statistical engine of the GMM–UBM speaker verifier the
//! paper uses through Spear (§IV-C): a large *universal background model*
//! (UBM) is EM-trained on many speakers; each enrolled speaker is a
//! MAP-adapted copy of the UBM (Reynolds-style relevance adaptation of the
//! means); verification scores are the average per-frame log-likelihood
//! ratio between the speaker model and the UBM.

use crate::kmeans::kmeans;
use magshield_simkit::rng::SimRng;
use serde::{Deserialize, Serialize};

const LOG_2PI: f64 = 1.8378770664093453; // ln(2π)

/// Minimum variance floor to keep components from collapsing.
const VAR_FLOOR: f64 = 1e-4;

/// A diagonal-covariance Gaussian mixture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagonalGmm {
    /// Mixture weights (sum to 1).
    weights: Vec<f64>,
    /// Component means, `k × dim`.
    means: Vec<Vec<f64>>,
    /// Component variances, `k × dim`.
    variances: Vec<Vec<f64>>,
}

impl DiagonalGmm {
    /// Builds a GMM from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent, weights do not sum to ~1, or any
    /// variance is non-positive.
    pub fn from_parameters(
        weights: Vec<f64>,
        means: Vec<Vec<f64>>,
        variances: Vec<Vec<f64>>,
    ) -> Self {
        let k = weights.len();
        assert!(k > 0, "mixture needs at least one component");
        assert_eq!(means.len(), k, "means/weights length mismatch");
        assert_eq!(variances.len(), k, "variances/weights length mismatch");
        let dim = means[0].len();
        assert!(
            means.iter().all(|m| m.len() == dim) && variances.iter().all(|v| v.len() == dim),
            "inconsistent dimensions"
        );
        let wsum: f64 = weights.iter().sum();
        assert!(
            (wsum - 1.0).abs() < 1e-6,
            "weights must sum to 1, got {wsum}"
        );
        assert!(
            variances.iter().flatten().all(|&v| v > 0.0),
            "variances must be positive"
        );
        Self {
            weights,
            means,
            variances,
        }
    }

    /// Number of mixture components.
    pub fn num_components(&self) -> usize {
        self.weights.len()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.means[0].len()
    }

    /// Mixture weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Component means.
    pub fn means(&self) -> &[Vec<f64>] {
        &self.means
    }

    /// Component variances.
    pub fn variances(&self) -> &[Vec<f64>] {
        &self.variances
    }

    /// Log density of one frame under component `c`.
    fn component_log_pdf(&self, c: usize, x: &[f64]) -> f64 {
        let mut acc = 0.0;
        for ((&m, &v), &xi) in self.means[c].iter().zip(&self.variances[c]).zip(x) {
            acc += -0.5 * (LOG_2PI + v.ln() + (xi - m) * (xi - m) / v);
        }
        acc
    }

    /// Log density of one frame under the full mixture (log-sum-exp).
    pub fn log_pdf(&self, x: &[f64]) -> f64 {
        let logs: Vec<f64> = (0..self.num_components())
            .map(|c| self.weights[c].max(1e-300).ln() + self.component_log_pdf(c, x))
            .collect();
        log_sum_exp(&logs)
    }

    /// Mean per-frame log-likelihood of a set of frames.
    pub fn mean_log_likelihood(&self, frames: &[Vec<f64>]) -> f64 {
        if frames.is_empty() {
            return f64::NEG_INFINITY;
        }
        frames.iter().map(|f| self.log_pdf(f)).sum::<f64>() / frames.len() as f64
    }

    /// Posterior responsibilities of each component for one frame.
    pub fn responsibilities(&self, x: &[f64]) -> Vec<f64> {
        let logs: Vec<f64> = (0..self.num_components())
            .map(|c| self.weights[c].max(1e-300).ln() + self.component_log_pdf(c, x))
            .collect();
        let total = log_sum_exp(&logs);
        logs.iter().map(|&l| (l - total).exp()).collect()
    }

    /// Trains a GMM with `k` components on `data` via k-means init + EM.
    ///
    /// Stops after `max_iters` or when the mean log-likelihood improves by
    /// less than `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() < k` or rows are inconsistent.
    pub fn train(data: &[Vec<f64>], k: usize, max_iters: usize, tol: f64, rng: &SimRng) -> Self {
        assert!(data.len() >= k, "need at least k frames to train");
        let dim = data[0].len();
        let km = kmeans(data, k, 25, &rng.fork("gmm-init"));

        // Initialize from k-means clusters.
        let mut counts = vec![0usize; k];
        let means = km.centers.clone();
        let mut variances = vec![vec![0.0; dim]; k];
        for (p, &a) in data.iter().zip(&km.assignments) {
            counts[a] += 1;
            for d in 0..dim {
                variances[a][d] += (p[d] - means[a][d]).powi(2);
            }
        }
        // Global variance fallback for tiny clusters.
        let gmean: Vec<f64> = (0..dim)
            .map(|d| data.iter().map(|p| p[d]).sum::<f64>() / data.len() as f64)
            .collect();
        let gvar: Vec<f64> = (0..dim)
            .map(|d| {
                (data.iter().map(|p| (p[d] - gmean[d]).powi(2)).sum::<f64>() / data.len() as f64)
                    .max(VAR_FLOOR)
            })
            .collect();
        let mut weights = vec![0.0; k];
        for c in 0..k {
            weights[c] = (counts[c] as f64 / data.len() as f64).max(1e-6);
            if counts[c] > 1 {
                for d in 0..dim {
                    variances[c][d] = (variances[c][d] / counts[c] as f64).max(VAR_FLOOR);
                }
            } else {
                variances[c] = gvar.clone();
            }
        }
        let wsum: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= wsum;
        }
        let mut gmm = Self {
            weights,
            means,
            variances,
        };

        // EM iterations.
        let mut prev_ll = f64::NEG_INFINITY;
        for _ in 0..max_iters {
            let mut nk = vec![0.0; k];
            let mut sum = vec![vec![0.0; dim]; k];
            let mut sumsq = vec![vec![0.0; dim]; k];
            let mut ll = 0.0;
            for x in data {
                let logs: Vec<f64> = (0..k)
                    .map(|c| gmm.weights[c].max(1e-300).ln() + gmm.component_log_pdf(c, x))
                    .collect();
                let total = log_sum_exp(&logs);
                ll += total;
                for c in 0..k {
                    let r = (logs[c] - total).exp();
                    nk[c] += r;
                    for d in 0..dim {
                        sum[c][d] += r * x[d];
                        sumsq[c][d] += r * x[d] * x[d];
                    }
                }
            }
            ll /= data.len() as f64;
            for c in 0..k {
                if nk[c] < 1e-8 {
                    continue; // leave starved component untouched
                }
                gmm.weights[c] = nk[c] / data.len() as f64;
                for d in 0..dim {
                    let m = sum[c][d] / nk[c];
                    gmm.means[c][d] = m;
                    gmm.variances[c][d] = (sumsq[c][d] / nk[c] - m * m).max(VAR_FLOOR);
                }
            }
            let wsum: f64 = gmm.weights.iter().sum();
            for w in &mut gmm.weights {
                *w /= wsum;
            }
            if (ll - prev_ll).abs() < tol {
                break;
            }
            prev_ll = ll;
        }
        gmm
    }

    /// Reynolds MAP adaptation of the means toward `data`, with relevance
    /// factor `r` (typically 16): components with more evidence move
    /// further toward the data.
    ///
    /// Returns the adapted model; weights and variances are kept from the
    /// prior (standard practice for speaker adaptation).
    pub fn map_adapt_means(&self, data: &[Vec<f64>], relevance: f64) -> Self {
        let k = self.num_components();
        let dim = self.dim();
        let mut nk = vec![0.0; k];
        let mut sum = vec![vec![0.0; dim]; k];
        for x in data {
            let r = self.responsibilities(x);
            for c in 0..k {
                nk[c] += r[c];
                for d in 0..dim {
                    sum[c][d] += r[c] * x[d];
                }
            }
        }
        let mut adapted = self.clone();
        for c in 0..k {
            if nk[c] < 1e-10 {
                continue;
            }
            let alpha = nk[c] / (nk[c] + relevance);
            for d in 0..dim {
                let ex = sum[c][d] / nk[c];
                adapted.means[c][d] = alpha * ex + (1.0 - alpha) * self.means[c][d];
            }
        }
        adapted
    }

    /// Average per-frame log-likelihood ratio of `frames` between `self`
    /// (speaker model) and `background` (UBM) — the verification score.
    pub fn llr_score(&self, background: &DiagonalGmm, frames: &[Vec<f64>]) -> f64 {
        if frames.is_empty() {
            return f64::NEG_INFINITY;
        }
        frames
            .iter()
            .map(|f| self.log_pdf(f) - background.log_pdf(f))
            .sum::<f64>()
            / frames.len() as f64
    }
}

/// Numerically stable log(Σ exp(x_i)).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster_data(rng: &SimRng, n: usize) -> Vec<Vec<f64>> {
        let mut r = rng.fork("gmm-data");
        let mut data = Vec::new();
        for i in 0..n {
            if i % 2 == 0 {
                data.push(vec![r.gauss(-3.0, 0.7), r.gauss(0.0, 0.7)]);
            } else {
                data.push(vec![r.gauss(3.0, 0.7), r.gauss(1.0, 0.7)]);
            }
        }
        data
    }

    #[test]
    fn single_gaussian_pdf_matches_closed_form() {
        let g =
            DiagonalGmm::from_parameters(vec![1.0], vec![vec![1.0, -1.0]], vec![vec![2.0, 0.5]]);
        let x = [0.5, 0.0];
        let expected = -0.5
            * (2.0 * LOG_2PI
                + 2.0f64.ln()
                + 0.5f64.ln()
                + (0.5 - 1.0f64).powi(2) / 2.0
                + (0.0 - (-1.0f64)).powi(2) / 0.5);
        assert!((g.log_pdf(&x) - expected).abs() < 1e-12);
    }

    #[test]
    fn em_recovers_two_clusters() {
        let rng = SimRng::from_seed(11);
        let data = two_cluster_data(&rng, 600);
        let gmm = DiagonalGmm::train(&data, 2, 50, 1e-7, &rng);
        let mut mxs: Vec<f64> = gmm.means().iter().map(|m| m[0]).collect();
        mxs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((mxs[0] + 3.0).abs() < 0.3, "left mean {}", mxs[0]);
        assert!((mxs[1] - 3.0).abs() < 0.3, "right mean {}", mxs[1]);
        for w in gmm.weights() {
            assert!((w - 0.5).abs() < 0.1);
        }
    }

    #[test]
    fn em_increases_likelihood() {
        let rng = SimRng::from_seed(13);
        let data = two_cluster_data(&rng, 300);
        let short = DiagonalGmm::train(&data, 4, 1, 0.0, &rng);
        let long = DiagonalGmm::train(&data, 4, 30, 0.0, &rng);
        assert!(
            long.mean_log_likelihood(&data) >= short.mean_log_likelihood(&data) - 1e-9,
            "more EM must not reduce likelihood"
        );
    }

    #[test]
    fn responsibilities_sum_to_one() {
        let rng = SimRng::from_seed(17);
        let data = two_cluster_data(&rng, 200);
        let gmm = DiagonalGmm::train(&data, 3, 20, 1e-6, &rng);
        for x in &data[..10] {
            let r = gmm.responsibilities(x);
            assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(r.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn map_adaptation_moves_means_toward_data() {
        let rng = SimRng::from_seed(19);
        let ubm_data = two_cluster_data(&rng, 400);
        let ubm = DiagonalGmm::train(&ubm_data, 2, 30, 1e-6, &rng);
        // Speaker data: only near the left cluster, shifted up in y.
        let mut r = rng.fork("spk");
        let spk_data: Vec<Vec<f64>> = (0..100)
            .map(|_| vec![r.gauss(-3.0, 0.5), r.gauss(2.0, 0.5)])
            .collect();
        let adapted = ubm.map_adapt_means(&spk_data, 16.0);
        // The left component's y-mean should move up; weights unchanged.
        let left = (0..2)
            .min_by(|&a, &b| ubm.means()[a][0].partial_cmp(&ubm.means()[b][0]).unwrap())
            .unwrap();
        assert!(
            adapted.means()[left][1] > ubm.means()[left][1] + 0.5,
            "adapted {} vs ubm {}",
            adapted.means()[left][1],
            ubm.means()[left][1]
        );
        assert_eq!(adapted.weights(), ubm.weights());
        assert_eq!(adapted.variances(), ubm.variances());
    }

    #[test]
    fn llr_separates_matched_and_mismatched_data() {
        let rng = SimRng::from_seed(23);
        let ubm_data = two_cluster_data(&rng, 400);
        let ubm = DiagonalGmm::train(&ubm_data, 2, 30, 1e-6, &rng);
        let mut r = rng.fork("spk2");
        let spk: Vec<Vec<f64>> = (0..120)
            .map(|_| vec![r.gauss(-3.0, 0.5), r.gauss(2.0, 0.5)])
            .collect();
        let model = ubm.map_adapt_means(&spk, 16.0);
        let genuine: Vec<Vec<f64>> = (0..60)
            .map(|_| vec![r.gauss(-3.0, 0.5), r.gauss(2.0, 0.5)])
            .collect();
        let impostor: Vec<Vec<f64>> = (0..60)
            .map(|_| vec![r.gauss(3.0, 0.7), r.gauss(1.0, 0.7)])
            .collect();
        let g = model.llr_score(&ubm, &genuine);
        let i = model.llr_score(&ubm, &impostor);
        assert!(g > i + 0.2, "genuine {g} should beat impostor {i}");
    }

    #[test]
    fn log_sum_exp_stability() {
        assert!((log_sum_exp(&[-1000.0, -1000.0]) - (-1000.0 + 2f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert!((log_sum_exp(&[0.0, 0.0]) - 2f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn empty_frames_score_neg_infinity() {
        let g = DiagonalGmm::from_parameters(vec![1.0], vec![vec![0.0]], vec![vec![1.0]]);
        assert_eq!(g.mean_log_likelihood(&[]), f64::NEG_INFINITY);
        assert_eq!(g.llr_score(&g, &[]), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "weights must sum to 1")]
    fn rejects_bad_weights() {
        DiagonalGmm::from_parameters(vec![0.5], vec![vec![0.0]], vec![vec![1.0]]);
    }
}

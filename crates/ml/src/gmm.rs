//! Diagonal-covariance Gaussian mixture models with EM training and MAP
//! adaptation.
//!
//! This is the statistical engine of the GMM–UBM speaker verifier the
//! paper uses through Spear (§IV-C): a large *universal background model*
//! (UBM) is EM-trained on many speakers; each enrolled speaker is a
//! MAP-adapted copy of the UBM (Reynolds-style relevance adaptation of the
//! means); verification scores are the average per-frame log-likelihood
//! ratio between the speaker model and the UBM.

use crate::codec::{self, BinaryCodec, ByteReader, ByteWriter, CodecError};
use crate::kmeans::kmeans;
use magshield_dsp::frame::FrameSource;
use magshield_simkit::rng::SimRng;
use serde::{Deserialize, Serialize};

const LOG_2PI: f64 = 1.8378770664093453; // ln(2π)

/// Minimum variance floor to keep components from collapsing.
const VAR_FLOOR: f64 = 1e-4;

/// A diagonal-covariance Gaussian mixture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagonalGmm {
    /// Mixture weights (sum to 1).
    weights: Vec<f64>,
    /// Component means, `k × dim`.
    means: Vec<Vec<f64>>,
    /// Component variances, `k × dim`.
    variances: Vec<Vec<f64>>,
}

impl DiagonalGmm {
    /// Builds a GMM from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent, weights do not sum to ~1, or any
    /// variance is non-positive.
    pub fn from_parameters(
        weights: Vec<f64>,
        means: Vec<Vec<f64>>,
        variances: Vec<Vec<f64>>,
    ) -> Self {
        let k = weights.len();
        assert!(k > 0, "mixture needs at least one component");
        assert_eq!(means.len(), k, "means/weights length mismatch");
        assert_eq!(variances.len(), k, "variances/weights length mismatch");
        let dim = means[0].len();
        assert!(
            means.iter().all(|m| m.len() == dim) && variances.iter().all(|v| v.len() == dim),
            "inconsistent dimensions"
        );
        let wsum: f64 = weights.iter().sum();
        assert!(
            (wsum - 1.0).abs() < 1e-6,
            "weights must sum to 1, got {wsum}"
        );
        assert!(
            variances.iter().flatten().all(|&v| v > 0.0),
            "variances must be positive"
        );
        Self {
            weights,
            means,
            variances,
        }
    }

    /// Number of mixture components.
    pub fn num_components(&self) -> usize {
        self.weights.len()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.means[0].len()
    }

    /// Mixture weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Component means.
    pub fn means(&self) -> &[Vec<f64>] {
        &self.means
    }

    /// Component variances.
    pub fn variances(&self) -> &[Vec<f64>] {
        &self.variances
    }

    /// Log density of one frame under component `c`.
    fn component_log_pdf(&self, c: usize, x: &[f64]) -> f64 {
        let mut acc = 0.0;
        for ((&m, &v), &xi) in self.means[c].iter().zip(&self.variances[c]).zip(x) {
            acc += -0.5 * (LOG_2PI + v.ln() + (xi - m) * (xi - m) / v);
        }
        acc
    }

    /// Natural log of each mixture weight (floored at 1e-300), written into
    /// a caller-owned buffer so bulk callers compute them once instead of
    /// once per frame.
    pub fn log_weights_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.weights.iter().map(|w| w.max(1e-300).ln()));
    }

    /// Log density of one frame under the full mixture (log-sum-exp).
    pub fn log_pdf(&self, x: &[f64]) -> f64 {
        let logs: Vec<f64> = (0..self.num_components())
            .map(|c| self.weights[c].max(1e-300).ln() + self.component_log_pdf(c, x))
            .collect();
        log_sum_exp(&logs)
    }

    /// Mean per-frame log-likelihood of a set of frames.
    ///
    /// Accepts either frame layout via [`FrameSource`]; log-weights and the
    /// per-component buffer are hoisted out of the frame loop, so the value
    /// is identical to averaging [`Self::log_pdf`] but without per-frame
    /// recomputation.
    pub fn mean_log_likelihood<F: FrameSource + ?Sized>(&self, frames: &F) -> f64 {
        let n = frames.num_frames();
        if n == 0 {
            return f64::NEG_INFINITY;
        }
        let k = self.num_components();
        let mut log_w = Vec::with_capacity(k);
        self.log_weights_into(&mut log_w);
        let mut logs = vec![0.0; k];
        let mut sum = 0.0;
        for i in 0..n {
            let x = frames.frame(i);
            for c in 0..k {
                logs[c] = log_w[c] + self.component_log_pdf(c, x);
            }
            sum += log_sum_exp(&logs);
        }
        sum / n as f64
    }

    /// Posterior responsibilities of each component for one frame.
    pub fn responsibilities(&self, x: &[f64]) -> Vec<f64> {
        let mut log_w = Vec::new();
        self.log_weights_into(&mut log_w);
        let mut out = Vec::new();
        self.responsibilities_into(x, &log_w, &mut out);
        out
    }

    /// [`Self::responsibilities`] into a caller-owned buffer, with the
    /// log-weights precomputed once by the caller (see
    /// [`Self::log_weights_into`]).
    pub fn responsibilities_into(&self, x: &[f64], log_weights: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            (0..self.num_components()).map(|c| log_weights[c] + self.component_log_pdf(c, x)),
        );
        let total = log_sum_exp(out);
        for l in out.iter_mut() {
            *l = (*l - total).exp();
        }
    }

    /// Trains a GMM with `k` components on `data` via k-means init + EM.
    ///
    /// Stops after `max_iters` or when the mean log-likelihood improves by
    /// less than `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() < k` or rows are inconsistent.
    pub fn train(data: &[Vec<f64>], k: usize, max_iters: usize, tol: f64, rng: &SimRng) -> Self {
        assert!(data.len() >= k, "need at least k frames to train");
        let dim = data[0].len();
        let km = kmeans(data, k, 25, &rng.fork("gmm-init"));

        // Initialize from k-means clusters.
        let mut counts = vec![0usize; k];
        let means = km.centers.clone();
        let mut variances = vec![vec![0.0; dim]; k];
        for (p, &a) in data.iter().zip(&km.assignments) {
            counts[a] += 1;
            for d in 0..dim {
                variances[a][d] += (p[d] - means[a][d]).powi(2);
            }
        }
        // Global variance fallback for tiny clusters.
        let gmean: Vec<f64> = (0..dim)
            .map(|d| data.iter().map(|p| p[d]).sum::<f64>() / data.len() as f64)
            .collect();
        let gvar: Vec<f64> = (0..dim)
            .map(|d| {
                (data.iter().map(|p| (p[d] - gmean[d]).powi(2)).sum::<f64>() / data.len() as f64)
                    .max(VAR_FLOOR)
            })
            .collect();
        let mut weights = vec![0.0; k];
        for c in 0..k {
            weights[c] = (counts[c] as f64 / data.len() as f64).max(1e-6);
            if counts[c] > 1 {
                for d in 0..dim {
                    variances[c][d] = (variances[c][d] / counts[c] as f64).max(VAR_FLOOR);
                }
            } else {
                variances[c] = gvar.clone();
            }
        }
        let wsum: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= wsum;
        }
        let mut gmm = Self {
            weights,
            means,
            variances,
        };

        // EM iterations. Log-weights are computed once per iteration (they
        // only change in the M step) and the per-component buffer is reused
        // across frames.
        let mut prev_ll = f64::NEG_INFINITY;
        let mut log_w = vec![0.0; k];
        let mut logs = vec![0.0; k];
        for _ in 0..max_iters {
            let mut nk = vec![0.0; k];
            let mut sum = vec![vec![0.0; dim]; k];
            let mut sumsq = vec![vec![0.0; dim]; k];
            let mut ll = 0.0;
            for (lw, w) in log_w.iter_mut().zip(&gmm.weights) {
                *lw = w.max(1e-300).ln();
            }
            for x in data {
                for c in 0..k {
                    logs[c] = log_w[c] + gmm.component_log_pdf(c, x);
                }
                let total = log_sum_exp(&logs);
                ll += total;
                for c in 0..k {
                    let r = (logs[c] - total).exp();
                    nk[c] += r;
                    for d in 0..dim {
                        sum[c][d] += r * x[d];
                        sumsq[c][d] += r * x[d] * x[d];
                    }
                }
            }
            ll /= data.len() as f64;
            for c in 0..k {
                if nk[c] < 1e-8 {
                    continue; // leave starved component untouched
                }
                gmm.weights[c] = nk[c] / data.len() as f64;
                for d in 0..dim {
                    let m = sum[c][d] / nk[c];
                    gmm.means[c][d] = m;
                    gmm.variances[c][d] = (sumsq[c][d] / nk[c] - m * m).max(VAR_FLOOR);
                }
            }
            let wsum: f64 = gmm.weights.iter().sum();
            for w in &mut gmm.weights {
                *w /= wsum;
            }
            if (ll - prev_ll).abs() < tol {
                break;
            }
            prev_ll = ll;
        }
        gmm
    }

    /// Reynolds MAP adaptation of the means toward `data`, with relevance
    /// factor `r` (typically 16): components with more evidence move
    /// further toward the data.
    ///
    /// Returns the adapted model; weights and variances are kept from the
    /// prior (standard practice for speaker adaptation).
    pub fn map_adapt_means<F: FrameSource + ?Sized>(&self, data: &F, relevance: f64) -> Self {
        let k = self.num_components();
        let dim = self.dim();
        let mut nk = vec![0.0; k];
        let mut sum = vec![vec![0.0; dim]; k];
        let mut log_w = Vec::with_capacity(k);
        self.log_weights_into(&mut log_w);
        let mut r = Vec::with_capacity(k);
        for i in 0..data.num_frames() {
            let x = data.frame(i);
            self.responsibilities_into(x, &log_w, &mut r);
            for c in 0..k {
                nk[c] += r[c];
                for d in 0..dim {
                    sum[c][d] += r[c] * x[d];
                }
            }
        }
        let mut adapted = self.clone();
        for c in 0..k {
            if nk[c] < 1e-10 {
                continue;
            }
            let alpha = nk[c] / (nk[c] + relevance);
            for d in 0..dim {
                let ex = sum[c][d] / nk[c];
                adapted.means[c][d] = alpha * ex + (1.0 - alpha) * self.means[c][d];
            }
        }
        adapted
    }

    /// Average per-frame log-likelihood ratio of `frames` between `self`
    /// (speaker model) and `background` (UBM) — the verification score.
    ///
    /// This is the reference scorer; the fast path is
    /// [`llr_score_prepared`]. Both accept either frame layout.
    pub fn llr_score<F: FrameSource + ?Sized>(&self, background: &DiagonalGmm, frames: &F) -> f64 {
        let n = frames.num_frames();
        if n == 0 {
            return f64::NEG_INFINITY;
        }
        let (ks, kb) = (self.num_components(), background.num_components());
        let mut log_ws = Vec::with_capacity(ks);
        let mut log_wb = Vec::with_capacity(kb);
        self.log_weights_into(&mut log_ws);
        background.log_weights_into(&mut log_wb);
        let mut logs_s = vec![0.0; ks];
        let mut logs_b = vec![0.0; kb];
        let mut sum = 0.0;
        for i in 0..n {
            let x = frames.frame(i);
            for c in 0..ks {
                logs_s[c] = log_ws[c] + self.component_log_pdf(c, x);
            }
            for c in 0..kb {
                logs_b[c] = log_wb[c] + background.component_log_pdf(c, x);
            }
            sum += log_sum_exp(&logs_s) - log_sum_exp(&logs_b);
        }
        sum / n as f64
    }
}

/// Numerically stable log(Σ exp(x_i)).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

/// A [`DiagonalGmm`] flattened for scoring: per-component constants folded
/// once at construction so the per-frame inner loop is a fused
/// multiply-accumulate over contiguous memory.
///
/// For component `c`, `log_const[c] = ln w_c − ½ Σ_d (ln 2π + ln v_cd)` and
/// the weighted log-density of frame `x` is
/// `log_const[c] − ½ Σ_d (x_d − μ_cd)² · v⁻¹_cd`.
///
/// Folding the constants reorders the reference arithmetic, so prepared
/// scores match [`DiagonalGmm::log_pdf`] to a 1e-9 tolerance rather than
/// bitwise (the contract pinned by the regression tests).
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedGmm {
    k: usize,
    dim: usize,
    /// Folded log-weight + normalization per component.
    log_const: Vec<f64>,
    /// Component means, flat `k × dim`.
    means: Vec<f64>,
    /// Inverse variances, flat `k × dim`.
    inv_var: Vec<f64>,
}

impl PreparedGmm {
    /// Precomputes scoring constants from a mixture.
    pub fn new(gmm: &DiagonalGmm) -> Self {
        let (k, dim) = (gmm.num_components(), gmm.dim());
        let log_const = (0..k)
            .map(|c| {
                let norm: f64 = gmm.variances[c].iter().map(|v| LOG_2PI + v.ln()).sum();
                gmm.weights[c].max(1e-300).ln() - 0.5 * norm
            })
            .collect();
        let means = gmm.means.iter().flatten().copied().collect();
        let inv_var = gmm.variances.iter().flatten().map(|v| 1.0 / v).collect();
        Self {
            k,
            dim,
            log_const,
            means,
            inv_var,
        }
    }

    /// Number of mixture components.
    pub fn num_components(&self) -> usize {
        self.k
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Weighted log-density of `x` under component `c`
    /// (`ln w_c + ln N_c(x)`).
    #[inline]
    pub fn weighted_component_ll(&self, c: usize, x: &[f64]) -> f64 {
        let base = c * self.dim;
        let m = &self.means[base..base + self.dim];
        let iv = &self.inv_var[base..base + self.dim];
        let mut quad = 0.0;
        for ((&xi, &mi), &ivi) in x.iter().zip(m).zip(iv) {
            let d = xi - mi;
            quad += d * d * ivi;
        }
        self.log_const[c] - 0.5 * quad
    }

    /// Weighted log-densities of `x` under every component, into a
    /// caller-owned buffer.
    pub fn weighted_log_pdfs_into(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.k).map(|c| self.weighted_component_ll(c, x)));
    }

    /// Log density of one frame under the full mixture, using `buf` as
    /// scratch. Matches [`DiagonalGmm::log_pdf`] to 1e-9.
    pub fn log_pdf(&self, x: &[f64], buf: &mut Vec<f64>) -> f64 {
        self.weighted_log_pdfs_into(x, buf);
        log_sum_exp(buf)
    }

    /// Mean per-frame log-likelihood over `frames`, using `buf` as scratch.
    pub fn mean_log_likelihood<F: FrameSource + ?Sized>(
        &self,
        frames: &F,
        buf: &mut Vec<f64>,
    ) -> f64 {
        let n = frames.num_frames();
        if n == 0 {
            return f64::NEG_INFINITY;
        }
        let mut sum = 0.0;
        for i in 0..n {
            sum += self.log_pdf(frames.frame(i), buf);
        }
        sum / n as f64
    }

    /// Weighted log-densities of a transposed frame block under every
    /// component, component-outer / frame-inner, written frame-major into
    /// `out[bi * k + c]`.
    ///
    /// `xt` is the dimension-major block laid out by [`transpose_block`];
    /// per lane the arithmetic matches [`Self::weighted_component_ll`]
    /// bit for bit (see [`block_quad`]), so batching reorders nothing a
    /// frame can observe.
    fn weighted_block_ll(&self, xt: &[f64], count: usize, out: &mut Vec<f64>) {
        out.clear();
        out.resize(count * self.k, 0.0);
        for c in 0..self.k {
            let base = c * self.dim;
            let m = &self.means[base..base + self.dim];
            let iv = &self.inv_var[base..base + self.dim];
            let quad = block_quad(xt, m, iv);
            let lc = self.log_const[c];
            for (bi, &q) in quad.iter().enumerate().take(count) {
                out[bi * self.k + c] = lc - 0.5 * q;
            }
        }
    }
}

/// Frames scored per component pass by the batched LLR kernels.
///
/// Eight frames give eight independent accumulator chains per component
/// — enough to hide the floating-point add latency that serializes the
/// one-frame-at-a-time quadratic-form loop — while the transposed block
/// (`dim × 8` doubles) stays well inside L1.
pub const FRAME_BLOCK: usize = 8;

/// Reusable buffers for [`llr_score_prepared`]. One per scoring thread.
#[derive(Debug, Clone, Default)]
pub struct ScoreScratch {
    /// Frame-major UBM weighted log-densities for one block (`nb × k`).
    ubm_block: Vec<f64>,
    /// Frame-major speaker weighted log-densities (exact mode, `nb × k`).
    spk_block: Vec<f64>,
    /// Per-frame speaker densities under the top-C pruned components.
    spk_ll: Vec<f64>,
    /// Transposed frame block, dimension-major (`dim × FRAME_BLOCK`).
    xt: Vec<f64>,
    top: Vec<usize>,
}

impl ScoreScratch {
    /// A fresh scratch with no reserved memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently reserved across the buffers (capacities).
    pub fn footprint_bytes(&self) -> usize {
        (self.ubm_block.capacity()
            + self.spk_block.capacity()
            + self.spk_ll.capacity()
            + self.xt.capacity())
            * std::mem::size_of::<f64>()
            + self.top.capacity() * std::mem::size_of::<usize>()
    }
}

/// Transposes frames `start..start + count` into the dimension-major block
/// buffer (`xt[d * FRAME_BLOCK + bi]`), zero-padding the unused tail lanes
/// so the kernels always run full-width.
fn transpose_block<F: FrameSource + ?Sized>(
    frames: &F,
    start: usize,
    count: usize,
    dim: usize,
    xt: &mut Vec<f64>,
) {
    debug_assert!(count <= FRAME_BLOCK);
    xt.clear();
    xt.resize(dim * FRAME_BLOCK, 0.0);
    for bi in 0..count {
        let x = frames.frame(start + bi);
        for d in 0..dim {
            xt[d * FRAME_BLOCK + bi] = x[d];
        }
    }
}

/// One component's quadratic forms over a transposed frame block: for each
/// of the [`FRAME_BLOCK`] lanes, `quad[bi] = Σ_d (x_d − μ_d)² · v⁻¹_d`
/// accumulated in ascending-`d` order — the exact operation sequence of
/// the one-frame [`PreparedGmm::weighted_component_ll`] loop, so each lane
/// is bit-identical to the sequential path. The eight lanes are
/// independent, which is what lets the compiler vectorize the loop (and
/// what the `simd` build makes explicit).
#[cfg(not(feature = "simd"))]
#[inline]
fn block_quad(xt: &[f64], m: &[f64], iv: &[f64]) -> [f64; FRAME_BLOCK] {
    let mut quad = [0.0f64; FRAME_BLOCK];
    for (col, (&mi, &ivi)) in xt.chunks_exact(FRAME_BLOCK).zip(m.iter().zip(iv)) {
        for (q, &xi) in quad.iter_mut().zip(col) {
            let di = xi - mi;
            *q += di * di * ivi;
        }
    }
    quad
}

/// `std::simd` variant of [`block_quad`]: one `f64x8` accumulator, the
/// same per-lane operation order (sub, mul, mul, add — no FMA
/// contraction), so lanes remain bit-identical to the scalar path;
/// portable-SIMD lane arithmetic is IEEE-754 correctly rounded.
#[cfg(feature = "simd")]
#[inline]
fn block_quad(xt: &[f64], m: &[f64], iv: &[f64]) -> [f64; FRAME_BLOCK] {
    use std::simd::f64x8;
    let mut quad = f64x8::splat(0.0);
    for (col, (&mi, &ivi)) in xt.chunks_exact(FRAME_BLOCK).zip(m.iter().zip(iv)) {
        let x = f64x8::from_slice(col);
        let di = x - f64x8::splat(mi);
        quad += di * di * f64x8::splat(ivi);
    }
    quad.to_array()
}

/// What [`llr_score_prepared`] computed, beyond the score itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlrBreakdown {
    /// Average per-frame log-likelihood ratio (the verification score).
    pub score: f64,
    /// Frames scored.
    pub frames: usize,
    /// Speaker-side component evaluations skipped by top-C pruning, summed
    /// over frames.
    pub pruned_components: u64,
    /// Speaker-side component evaluations actually performed.
    pub evaluated_components: u64,
}

/// Fast-path GMM–UBM verification score with optional top-C Gaussian
/// pruning.
///
/// Per frame, all UBM components are evaluated and the UBM term of the
/// ratio is the exact log-sum-exp. With `top_c` in `1..k`, the speaker
/// model is evaluated only on the `top_c` UBM components with the highest
/// weighted log-density for that frame — the standard GMM–UBM top-C
/// approximation (the MAP-adapted speaker model shares the UBM's mixture
/// structure, so the UBM's best components dominate the speaker-side sum
/// too). `top_c == 0` or `top_c >= k` evaluates every component, which
/// matches [`DiagonalGmm::llr_score`] to the prepared-constant tolerance
/// (1e-9, see [`PreparedGmm`]).
///
/// # Panics
///
/// Panics if the two mixtures disagree in component count or dimension.
pub fn llr_score_prepared<F: FrameSource + ?Sized>(
    speaker: &PreparedGmm,
    ubm: &PreparedGmm,
    frames: &F,
    top_c: usize,
    scratch: &mut ScoreScratch,
) -> LlrBreakdown {
    assert_eq!(speaker.k, ubm.k, "speaker/UBM component count mismatch");
    assert_eq!(speaker.dim, ubm.dim, "speaker/UBM dimension mismatch");
    let n = frames.num_frames();
    if n == 0 {
        return LlrBreakdown {
            score: f64::NEG_INFINITY,
            frames: 0,
            pruned_components: 0,
            evaluated_components: 0,
        };
    }
    let k = ubm.k;
    let dim = ubm.dim;
    let c_eff = if top_c == 0 || top_c >= k { k } else { top_c };
    let ScoreScratch {
        ubm_block,
        spk_block,
        spk_ll,
        xt,
        top,
    } = scratch;
    let mut sum = 0.0;
    let mut pruned = 0u64;
    let mut evaluated = 0u64;
    let mut start = 0;
    while start < n {
        let count = FRAME_BLOCK.min(n - start);
        transpose_block(frames, start, count, dim, xt);
        ubm.weighted_block_ll(xt, count, ubm_block);
        if c_eff == k {
            speaker.weighted_block_ll(xt, count, spk_block);
            evaluated += (count * k) as u64;
            for bi in 0..count {
                let row = bi * k;
                sum +=
                    log_sum_exp(&spk_block[row..row + k]) - log_sum_exp(&ubm_block[row..row + k]);
            }
        } else {
            for bi in 0..count {
                let x = frames.frame(start + bi);
                let ubm_ll = &ubm_block[bi * k..(bi + 1) * k];
                top.clear();
                top.extend(0..k);
                top.select_nth_unstable_by(c_eff - 1, |&a, &b| {
                    ubm_ll[b].partial_cmp(&ubm_ll[a]).unwrap()
                });
                spk_ll.clear();
                spk_ll.extend(
                    top[..c_eff]
                        .iter()
                        .map(|&c| speaker.weighted_component_ll(c, x)),
                );
                evaluated += c_eff as u64;
                pruned += (k - c_eff) as u64;
                sum += log_sum_exp(spk_ll) - log_sum_exp(ubm_ll);
            }
        }
        start += count;
    }
    LlrBreakdown {
        score: sum / n as f64,
        frames: n,
        pruned_components: pruned,
        evaluated_components: evaluated,
    }
}

/// The one-frame-at-a-time scorer [`llr_score_prepared`] replaced,
/// retained as the bit-identity oracle for the batched kernel: per frame
/// it evaluates every component with [`PreparedGmm::weighted_component_ll`]
/// and sums ratios in frame order, exactly the operation sequence the
/// frame-major path reproduces lane by lane.
pub fn llr_score_sequential<F: FrameSource + ?Sized>(
    speaker: &PreparedGmm,
    ubm: &PreparedGmm,
    frames: &F,
    top_c: usize,
    scratch: &mut ScoreScratch,
) -> LlrBreakdown {
    assert_eq!(speaker.k, ubm.k, "speaker/UBM component count mismatch");
    assert_eq!(speaker.dim, ubm.dim, "speaker/UBM dimension mismatch");
    let n = frames.num_frames();
    if n == 0 {
        return LlrBreakdown {
            score: f64::NEG_INFINITY,
            frames: 0,
            pruned_components: 0,
            evaluated_components: 0,
        };
    }
    let k = ubm.k;
    let ScoreScratch {
        ubm_block: ubm_ll,
        spk_ll,
        top,
        ..
    } = scratch;
    let c_eff = if top_c == 0 || top_c >= k { k } else { top_c };
    let mut sum = 0.0;
    let mut pruned = 0u64;
    let mut evaluated = 0u64;
    for i in 0..n {
        let x = frames.frame(i);
        ubm.weighted_log_pdfs_into(x, ubm_ll);
        let ubm_total = log_sum_exp(ubm_ll);
        let spk_total = if c_eff == k {
            speaker.weighted_log_pdfs_into(x, spk_ll);
            evaluated += k as u64;
            log_sum_exp(spk_ll)
        } else {
            top.clear();
            top.extend(0..k);
            top.select_nth_unstable_by(c_eff - 1, |&a, &b| {
                ubm_ll[b].partial_cmp(&ubm_ll[a]).unwrap()
            });
            spk_ll.clear();
            spk_ll.extend(
                top[..c_eff]
                    .iter()
                    .map(|&c| speaker.weighted_component_ll(c, x)),
            );
            evaluated += c_eff as u64;
            pruned += (k - c_eff) as u64;
            log_sum_exp(spk_ll)
        };
        sum += spk_total - ubm_total;
    }
    LlrBreakdown {
        score: sum / n as f64,
        frames: n,
        pruned_components: pruned,
        evaluated_components: evaluated,
    }
}

/// Incremental LLR sufficient statistics over a chunked frame stream.
///
/// The GMM–UBM verification score is a per-frame mean of independent
/// log-likelihood ratios, so it decomposes exactly into chunk-level
/// sufficient statistics: `Σ llr` and the frame count. Each
/// [`LlrAccumulator::ingest`] call scores one chunk with
/// [`llr_score_prepared`] and folds its contribution in; the running
/// [`LlrAccumulator::score`] over chunks `1..=m` equals the one-shot score
/// over the concatenated frames up to the floating-point reassociation of
/// the outer sum (the per-frame terms are identical; only their summation
/// grouping differs, so the divergence is at the 1e-12 level, far inside
/// the 1e-9 prepared-constant tolerance).
#[derive(Debug, Clone, Default)]
pub struct LlrAccumulator {
    llr_sum: f64,
    frames: usize,
    pruned: u64,
    evaluated: u64,
}

impl LlrAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scores one chunk of frames and folds it into the running statistics.
    /// Returns the chunk's own breakdown. Empty chunks are no-ops.
    pub fn ingest<F: FrameSource + ?Sized>(
        &mut self,
        speaker: &PreparedGmm,
        ubm: &PreparedGmm,
        frames: &F,
        top_c: usize,
        scratch: &mut ScoreScratch,
    ) -> LlrBreakdown {
        let chunk = llr_score_prepared(speaker, ubm, frames, top_c, scratch);
        self.fold(chunk)
    }

    /// [`Self::ingest`] over quantized mixtures, scoring the chunk with
    /// [`llr_score_quantized`]. The decomposition argument is unchanged —
    /// the quantized score is still a per-frame mean of independent
    /// ratios, so chunked and one-shot quantized scoring agree to the
    /// same reassociation tolerance.
    pub fn ingest_quantized<F: FrameSource + ?Sized>(
        &mut self,
        speaker: &QuantizedGmm,
        ubm: &QuantizedGmm,
        frames: &F,
        top_c: usize,
        scratch: &mut ScoreScratch,
    ) -> LlrBreakdown {
        let chunk = llr_score_quantized(speaker, ubm, frames, top_c, scratch);
        self.fold(chunk)
    }

    fn fold(&mut self, chunk: LlrBreakdown) -> LlrBreakdown {
        if chunk.frames > 0 {
            self.llr_sum += chunk.score * chunk.frames as f64;
            self.frames += chunk.frames;
            self.pruned += chunk.pruned_components;
            self.evaluated += chunk.evaluated_components;
        }
        chunk
    }

    /// Frames folded in so far.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Running verification score over everything ingested
    /// (`NEG_INFINITY` before the first frame, like the one-shot path).
    pub fn score(&self) -> f64 {
        if self.frames == 0 {
            f64::NEG_INFINITY
        } else {
            self.llr_sum / self.frames as f64
        }
    }

    /// Running breakdown over everything ingested.
    pub fn breakdown(&self) -> LlrBreakdown {
        LlrBreakdown {
            score: self.score(),
            frames: self.frames,
            pruned_components: self.pruned,
            evaluated_components: self.evaluated,
        }
    }
}

/// Convenience bundle of a prepared speaker model and UBM.
#[derive(Debug, Clone)]
pub struct LlrScorer {
    speaker: PreparedGmm,
    ubm: PreparedGmm,
}

impl LlrScorer {
    /// Prepares both mixtures for fast scoring.
    pub fn new(speaker: &DiagonalGmm, ubm: &DiagonalGmm) -> Self {
        Self {
            speaker: PreparedGmm::new(speaker),
            ubm: PreparedGmm::new(ubm),
        }
    }

    /// Scores `frames`; see [`llr_score_prepared`].
    pub fn score<F: FrameSource + ?Sized>(
        &self,
        frames: &F,
        top_c: usize,
        scratch: &mut ScoreScratch,
    ) -> LlrBreakdown {
        llr_score_prepared(&self.speaker, &self.ubm, frames, top_c, scratch)
    }
}

/// A [`PreparedGmm`] with means quantized to `i16` against one `f32`
/// dequantization step per component and inverse variances rounded to
/// `f32` — a quarter of the exact model's memory traffic on the scoring
/// hot loop, and a quarter of its artifact size on the wire.
///
/// `log_const` stays `f64` (it is `k` values, not `k × dim`, and folding
/// it exactly keeps the quantization error confined to the quadratic
/// form). The score drift this introduces is bounded, not just observed:
/// [`llr_drift_bound`] computes a sound per-utterance bound from the
/// stored rounding errors, and the property tests assert scores stay
/// inside it.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedGmm {
    k: usize,
    dim: usize,
    /// Folded log-weight + normalization per component, kept exact.
    log_const: Vec<f64>,
    /// Quantized means, flat `k × dim`: `mean ≈ q · scale[c]`.
    means_q: Vec<i16>,
    /// Per-component dequantization step.
    scale: Vec<f32>,
    /// Inverse variances rounded to `f32`, flat `k × dim`.
    inv_var: Vec<f32>,
}

impl QuantizedGmm {
    /// Quantizes a prepared mixture: per component, the step is the
    /// largest absolute mean divided by `i16::MAX`, so every mean lands
    /// within half a step of its exact value.
    pub fn from_prepared(p: &PreparedGmm) -> Self {
        let mut means_q = Vec::with_capacity(p.means.len());
        let mut scale = Vec::with_capacity(p.k);
        for c in 0..p.k {
            let row = &p.means[c * p.dim..(c + 1) * p.dim];
            let peak = row.iter().fold(0.0f64, |a, &m| a.max(m.abs()));
            let s = if peak > 0.0 {
                ((peak / i16::MAX as f64) as f32).max(f32::MIN_POSITIVE)
            } else {
                1.0
            };
            scale.push(s);
            // Round against the exact step used at dequantization time
            // (the f32 value widened back), so the stored error is the
            // true round-trip error.
            let sd = s as f64;
            means_q.extend(
                row.iter()
                    .map(|&m| (m / sd).round().clamp(i16::MIN as f64, i16::MAX as f64) as i16),
            );
        }
        // Clamp the narrowing into f32's positive finite range so extreme
        // (but valid) f64 inverse variances cannot round to 0 or ∞.
        let inv_var = p
            .inv_var
            .iter()
            .map(|&v| (v as f32).clamp(f32::MIN_POSITIVE, f32::MAX))
            .collect();
        Self {
            k: p.k,
            dim: p.dim,
            log_const: p.log_const.clone(),
            means_q,
            scale,
            inv_var,
        }
    }

    /// Number of mixture components.
    pub fn num_components(&self) -> usize {
        self.k
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Dequantized mean of component `c`, dimension `d`.
    #[inline]
    pub fn mean(&self, c: usize, d: usize) -> f64 {
        self.means_q[c * self.dim + d] as f64 * self.scale[c] as f64
    }

    /// Inverse variance of component `c`, dimension `d`, widened to `f64`.
    #[inline]
    pub fn inv_var(&self, c: usize, d: usize) -> f64 {
        self.inv_var[c * self.dim + d] as f64
    }

    /// Weighted log-density of `x` under component `c`, dequantizing on
    /// the fly — the quantized counterpart of
    /// [`PreparedGmm::weighted_component_ll`].
    #[inline]
    pub fn weighted_component_ll(&self, c: usize, x: &[f64]) -> f64 {
        let base = c * self.dim;
        let mq = &self.means_q[base..base + self.dim];
        let iv = &self.inv_var[base..base + self.dim];
        let s = self.scale[c] as f64;
        let mut quad = 0.0;
        for ((&xi, &qi), &ivi) in x.iter().zip(mq).zip(iv) {
            let d = xi - qi as f64 * s;
            quad += d * d * ivi as f64;
        }
        self.log_const[c] - 0.5 * quad
    }

    /// Frame-major weighted log-densities of a transposed block under
    /// every component; the quantized counterpart of
    /// [`PreparedGmm::weighted_block_ll`]. The lane arithmetic matches
    /// [`Self::weighted_component_ll`] per frame.
    fn weighted_block_ll(&self, xt: &[f64], count: usize, out: &mut Vec<f64>) {
        out.clear();
        out.resize(count * self.k, 0.0);
        for c in 0..self.k {
            let base = c * self.dim;
            let mq = &self.means_q[base..base + self.dim];
            let iv = &self.inv_var[base..base + self.dim];
            let s = self.scale[c] as f64;
            let mut quad = [0.0f64; FRAME_BLOCK];
            for (col, (&qi, &ivi)) in xt.chunks_exact(FRAME_BLOCK).zip(mq.iter().zip(iv)) {
                let mi = qi as f64 * s;
                let ivf = ivi as f64;
                for (q, &xi) in quad.iter_mut().zip(col) {
                    let di = xi - mi;
                    *q += di * di * ivf;
                }
            }
            let lc = self.log_const[c];
            for (bi, &q) in quad.iter().enumerate().take(count) {
                out[bi * self.k + c] = lc - 0.5 * q;
            }
        }
    }
}

/// Sound bound on `|llr_quantized − llr_exact|` for any utterance whose
/// feature values satisfy `|x_d| ≤ x_abs_max`.
///
/// Per component `c` and dimension `d`, write the exact parameters
/// `m, v⁻¹` and their quantized counterparts `m̂, v̂⁻¹`. With
/// `A = (x−m)²` and `B = (x−m̂)²`,
///
/// ```text
/// |B·v̂⁻¹ − A·v⁻¹| ≤ |B − A|·v̂⁻¹ + A·|v̂⁻¹ − v⁻¹|
/// |B − A| = |m − m̂| · |2x − m − m̂| ≤ |m − m̂|·(2·x_max + |m| + |m̂|)
/// A ≤ (x_max + |m|)²
/// ```
///
/// summed over `d` and halved this bounds each component's weighted
/// log-density drift (`log_const` is copied exactly); `log_sum_exp` is
/// 1-Lipschitz in the sup norm, so the per-frame LLR drifts by at most
/// the speaker-side and UBM-side maxima combined, and the mean over
/// frames by no more.
pub fn llr_drift_bound(
    speaker_exact: &PreparedGmm,
    speaker_q: &QuantizedGmm,
    ubm_exact: &PreparedGmm,
    ubm_q: &QuantizedGmm,
    x_abs_max: f64,
) -> f64 {
    component_drift_bound(speaker_exact, speaker_q, x_abs_max)
        + component_drift_bound(ubm_exact, ubm_q, x_abs_max)
}

/// Max over components of the weighted log-density drift bound; see
/// [`llr_drift_bound`].
fn component_drift_bound(exact: &PreparedGmm, quant: &QuantizedGmm, x_abs_max: f64) -> f64 {
    assert_eq!(exact.k, quant.k, "exact/quantized component count mismatch");
    assert_eq!(exact.dim, quant.dim, "exact/quantized dimension mismatch");
    let mut worst = 0.0f64;
    for c in 0..exact.k {
        let mut acc = 0.0;
        for d in 0..exact.dim {
            let m = exact.means[c * exact.dim + d];
            let mh = quant.mean(c, d);
            let iv = exact.inv_var[c * exact.dim + d];
            let ivh = quant.inv_var(c, d);
            let em = (m - mh).abs();
            let reach = x_abs_max + m.abs();
            acc += em * (2.0 * x_abs_max + m.abs() + mh.abs()) * ivh
                + reach * reach * (iv - ivh).abs();
        }
        worst = worst.max(0.5 * acc);
    }
    worst
}

/// [`llr_score_prepared`] over quantized mixtures: identical batched
/// structure (frame-major blocks, exact UBM log-sum-exp, top-C speaker
/// pruning selected on the quantized UBM densities), with means and
/// inverse variances dequantized on the fly inside the component pass.
///
/// # Panics
///
/// Panics if the two mixtures disagree in component count or dimension.
pub fn llr_score_quantized<F: FrameSource + ?Sized>(
    speaker: &QuantizedGmm,
    ubm: &QuantizedGmm,
    frames: &F,
    top_c: usize,
    scratch: &mut ScoreScratch,
) -> LlrBreakdown {
    assert_eq!(speaker.k, ubm.k, "speaker/UBM component count mismatch");
    assert_eq!(speaker.dim, ubm.dim, "speaker/UBM dimension mismatch");
    let n = frames.num_frames();
    if n == 0 {
        return LlrBreakdown {
            score: f64::NEG_INFINITY,
            frames: 0,
            pruned_components: 0,
            evaluated_components: 0,
        };
    }
    let k = ubm.k;
    let dim = ubm.dim;
    let c_eff = if top_c == 0 || top_c >= k { k } else { top_c };
    let ScoreScratch {
        ubm_block,
        spk_block,
        spk_ll,
        xt,
        top,
    } = scratch;
    let mut sum = 0.0;
    let mut pruned = 0u64;
    let mut evaluated = 0u64;
    let mut start = 0;
    while start < n {
        let count = FRAME_BLOCK.min(n - start);
        transpose_block(frames, start, count, dim, xt);
        ubm.weighted_block_ll(xt, count, ubm_block);
        if c_eff == k {
            speaker.weighted_block_ll(xt, count, spk_block);
            evaluated += (count * k) as u64;
            for bi in 0..count {
                let row = bi * k;
                sum +=
                    log_sum_exp(&spk_block[row..row + k]) - log_sum_exp(&ubm_block[row..row + k]);
            }
        } else {
            for bi in 0..count {
                let x = frames.frame(start + bi);
                let ubm_ll = &ubm_block[bi * k..(bi + 1) * k];
                top.clear();
                top.extend(0..k);
                top.select_nth_unstable_by(c_eff - 1, |&a, &b| {
                    ubm_ll[b].partial_cmp(&ubm_ll[a]).unwrap()
                });
                spk_ll.clear();
                spk_ll.extend(
                    top[..c_eff]
                        .iter()
                        .map(|&c| speaker.weighted_component_ll(c, x)),
                );
                evaluated += c_eff as u64;
                pruned += (k - c_eff) as u64;
                sum += log_sum_exp(spk_ll) - log_sum_exp(ubm_ll);
            }
        }
        start += count;
    }
    LlrBreakdown {
        score: sum / n as f64,
        frames: n,
        pruned_components: pruned,
        evaluated_components: evaluated,
    }
}

impl BinaryCodec for DiagonalGmm {
    const MAGIC: u32 = codec::magic(b"MGMM");
    const VERSION: u8 = 1;
    const NAME: &'static str = "DiagonalGmm";

    fn encode_payload(&self, w: &mut ByteWriter) {
        w.put_len(self.num_components());
        w.put_len(self.dim());
        w.put_f64_slice(&self.weights);
        for row in &self.means {
            w.put_f64_slice(row);
        }
        for row in &self.variances {
            w.put_f64_slice(row);
        }
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let invalid = |reason: &str| CodecError::Invalid {
            artifact: Self::NAME,
            reason: reason.to_string(),
        };
        let k = r.get_len()?;
        let dim = r.get_len()?;
        if k == 0 {
            return Err(invalid("mixture needs at least one component"));
        }
        if dim == 0 {
            return Err(invalid("feature dimension must be positive"));
        }
        let weights = r.get_f64_vec(k)?;
        let mut means = Vec::with_capacity(k);
        for _ in 0..k {
            means.push(r.get_f64_vec(dim)?);
        }
        let mut variances = Vec::with_capacity(k);
        for _ in 0..k {
            variances.push(r.get_f64_vec(dim)?);
        }
        // Mirror the `from_parameters` invariants, but as typed errors: the
        // checksum only proves the frame arrived intact, not that it
        // describes a sane mixture.
        if !means
            .iter()
            .flatten()
            .chain(weights.iter())
            .all(|v| v.is_finite())
        {
            return Err(invalid("parameters must be finite"));
        }
        let wsum: f64 = weights.iter().sum();
        if (wsum - 1.0).abs() >= 1e-6 {
            return Err(invalid("weights must sum to 1"));
        }
        if !variances.iter().flatten().all(|&v| v > 0.0) {
            return Err(invalid("variances must be positive"));
        }
        Ok(Self {
            weights,
            means,
            variances,
        })
    }
}

impl BinaryCodec for PreparedGmm {
    const MAGIC: u32 = codec::magic(b"MPGM");
    const VERSION: u8 = 1;
    const NAME: &'static str = "PreparedGmm";

    fn encode_payload(&self, w: &mut ByteWriter) {
        w.put_len(self.k);
        w.put_len(self.dim);
        w.put_f64_slice(&self.log_const);
        w.put_f64_slice(&self.means);
        w.put_f64_slice(&self.inv_var);
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let invalid = |reason: &str| CodecError::Invalid {
            artifact: Self::NAME,
            reason: reason.to_string(),
        };
        let k = r.get_len()?;
        let dim = r.get_len()?;
        if k == 0 || dim == 0 {
            return Err(invalid("shape must be positive"));
        }
        let flat = k
            .checked_mul(dim)
            .ok_or_else(|| invalid("shape overflows"))?;
        let log_const = r.get_f64_vec(k)?;
        let means = r.get_f64_vec(flat)?;
        let inv_var = r.get_f64_vec(flat)?;
        if !inv_var.iter().all(|&v| v > 0.0) {
            return Err(invalid("inverse variances must be positive"));
        }
        Ok(Self {
            k,
            dim,
            log_const,
            means,
            inv_var,
        })
    }
}

impl BinaryCodec for QuantizedGmm {
    const MAGIC: u32 = codec::magic(b"MQGM");
    const VERSION: u8 = 1;
    const NAME: &'static str = "QuantizedGmm";

    fn encode_payload(&self, w: &mut ByteWriter) {
        w.put_len(self.k);
        w.put_len(self.dim);
        w.put_f64_slice(&self.log_const);
        w.put_f32_slice(&self.scale);
        w.put_i16_slice(&self.means_q);
        w.put_f32_slice(&self.inv_var);
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let invalid = |reason: &str| CodecError::Invalid {
            artifact: Self::NAME,
            reason: reason.to_string(),
        };
        let k = r.get_len()?;
        let dim = r.get_len()?;
        if k == 0 || dim == 0 {
            return Err(invalid("shape must be positive"));
        }
        let flat = k
            .checked_mul(dim)
            .ok_or_else(|| invalid("shape overflows"))?;
        let log_const = r.get_f64_vec(k)?;
        let scale = r.get_f32_vec(k)?;
        let means_q = r.get_i16_vec(flat)?;
        let inv_var = r.get_f32_vec(flat)?;
        if !log_const.iter().all(|v| v.is_finite()) {
            return Err(invalid("log constants must be finite"));
        }
        if !scale.iter().all(|&s| s.is_finite() && s > 0.0) {
            return Err(invalid("dequantization steps must be positive"));
        }
        if !inv_var.iter().all(|&v| v.is_finite() && v > 0.0) {
            return Err(invalid("inverse variances must be positive"));
        }
        Ok(Self {
            k,
            dim,
            log_const,
            means_q,
            scale,
            inv_var,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster_data(rng: &SimRng, n: usize) -> Vec<Vec<f64>> {
        let mut r = rng.fork("gmm-data");
        let mut data = Vec::new();
        for i in 0..n {
            if i % 2 == 0 {
                data.push(vec![r.gauss(-3.0, 0.7), r.gauss(0.0, 0.7)]);
            } else {
                data.push(vec![r.gauss(3.0, 0.7), r.gauss(1.0, 0.7)]);
            }
        }
        data
    }

    #[test]
    fn single_gaussian_pdf_matches_closed_form() {
        let g =
            DiagonalGmm::from_parameters(vec![1.0], vec![vec![1.0, -1.0]], vec![vec![2.0, 0.5]]);
        let x = [0.5, 0.0];
        let expected = -0.5
            * (2.0 * LOG_2PI
                + 2.0f64.ln()
                + 0.5f64.ln()
                + (0.5 - 1.0f64).powi(2) / 2.0
                + (0.0 - (-1.0f64)).powi(2) / 0.5);
        assert!((g.log_pdf(&x) - expected).abs() < 1e-12);
    }

    #[test]
    fn em_recovers_two_clusters() {
        let rng = SimRng::from_seed(11);
        let data = two_cluster_data(&rng, 600);
        let gmm = DiagonalGmm::train(&data, 2, 50, 1e-7, &rng);
        let mut mxs: Vec<f64> = gmm.means().iter().map(|m| m[0]).collect();
        mxs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((mxs[0] + 3.0).abs() < 0.3, "left mean {}", mxs[0]);
        assert!((mxs[1] - 3.0).abs() < 0.3, "right mean {}", mxs[1]);
        for w in gmm.weights() {
            assert!((w - 0.5).abs() < 0.1);
        }
    }

    #[test]
    fn em_increases_likelihood() {
        let rng = SimRng::from_seed(13);
        let data = two_cluster_data(&rng, 300);
        let short = DiagonalGmm::train(&data, 4, 1, 0.0, &rng);
        let long = DiagonalGmm::train(&data, 4, 30, 0.0, &rng);
        assert!(
            long.mean_log_likelihood(&data) >= short.mean_log_likelihood(&data) - 1e-9,
            "more EM must not reduce likelihood"
        );
    }

    #[test]
    fn responsibilities_sum_to_one() {
        let rng = SimRng::from_seed(17);
        let data = two_cluster_data(&rng, 200);
        let gmm = DiagonalGmm::train(&data, 3, 20, 1e-6, &rng);
        for x in &data[..10] {
            let r = gmm.responsibilities(x);
            assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(r.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn map_adaptation_moves_means_toward_data() {
        let rng = SimRng::from_seed(19);
        let ubm_data = two_cluster_data(&rng, 400);
        let ubm = DiagonalGmm::train(&ubm_data, 2, 30, 1e-6, &rng);
        // Speaker data: only near the left cluster, shifted up in y.
        let mut r = rng.fork("spk");
        let spk_data: Vec<Vec<f64>> = (0..100)
            .map(|_| vec![r.gauss(-3.0, 0.5), r.gauss(2.0, 0.5)])
            .collect();
        let adapted = ubm.map_adapt_means(&spk_data, 16.0);
        // The left component's y-mean should move up; weights unchanged.
        let left = (0..2)
            .min_by(|&a, &b| ubm.means()[a][0].partial_cmp(&ubm.means()[b][0]).unwrap())
            .unwrap();
        assert!(
            adapted.means()[left][1] > ubm.means()[left][1] + 0.5,
            "adapted {} vs ubm {}",
            adapted.means()[left][1],
            ubm.means()[left][1]
        );
        assert_eq!(adapted.weights(), ubm.weights());
        assert_eq!(adapted.variances(), ubm.variances());
    }

    #[test]
    fn llr_separates_matched_and_mismatched_data() {
        let rng = SimRng::from_seed(23);
        let ubm_data = two_cluster_data(&rng, 400);
        let ubm = DiagonalGmm::train(&ubm_data, 2, 30, 1e-6, &rng);
        let mut r = rng.fork("spk2");
        let spk: Vec<Vec<f64>> = (0..120)
            .map(|_| vec![r.gauss(-3.0, 0.5), r.gauss(2.0, 0.5)])
            .collect();
        let model = ubm.map_adapt_means(&spk, 16.0);
        let genuine: Vec<Vec<f64>> = (0..60)
            .map(|_| vec![r.gauss(-3.0, 0.5), r.gauss(2.0, 0.5)])
            .collect();
        let impostor: Vec<Vec<f64>> = (0..60)
            .map(|_| vec![r.gauss(3.0, 0.7), r.gauss(1.0, 0.7)])
            .collect();
        let g = model.llr_score(&ubm, &genuine);
        let i = model.llr_score(&ubm, &impostor);
        assert!(g > i + 0.2, "genuine {g} should beat impostor {i}");
    }

    #[test]
    fn log_sum_exp_stability() {
        assert!((log_sum_exp(&[-1000.0, -1000.0]) - (-1000.0 + 2f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert!((log_sum_exp(&[0.0, 0.0]) - 2f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn empty_frames_score_neg_infinity() {
        let g = DiagonalGmm::from_parameters(vec![1.0], vec![vec![0.0]], vec![vec![1.0]]);
        let empty: Vec<Vec<f64>> = Vec::new();
        assert_eq!(g.mean_log_likelihood(&empty), f64::NEG_INFINITY);
        assert_eq!(g.llr_score(&g, &empty), f64::NEG_INFINITY);
        let p = PreparedGmm::new(&g);
        let b = llr_score_prepared(&p, &p, &empty, 0, &mut ScoreScratch::new());
        assert_eq!(b.score, f64::NEG_INFINITY);
        assert_eq!(b.frames, 0);
    }

    /// Regression pin for the log-weight hoisting (satellite of the fast
    /// path): `log_pdf`, the hoisted bulk scorers, and the prepared fast
    /// path all agree with a longhand evaluation of
    /// `ln Σ_c w_c N(x; μ_c, σ²_c)` to 1e-9.
    #[test]
    fn log_pdf_pinned_against_longhand_formula() {
        let weights = vec![0.25, 0.55, 0.2];
        let means = vec![vec![0.0, 1.0], vec![-2.0, 0.5], vec![3.0, -1.5]];
        let variances = vec![vec![1.0, 2.0], vec![0.3, 0.7], vec![1.5, 0.2]];
        let gmm = DiagonalGmm::from_parameters(weights.clone(), means.clone(), variances.clone());
        let prepared = PreparedGmm::new(&gmm);
        let mut buf = Vec::new();
        for x in [[0.1, 0.2], [-2.0, 0.5], [5.0, -3.0], [0.0, 0.0]] {
            let longhand: Vec<f64> = (0..3)
                .map(|c| {
                    let mut l = weights[c].ln();
                    for d in 0..2 {
                        let (m, v) = (means[c][d], variances[c][d]);
                        l += -0.5 * (LOG_2PI + v.ln() + (x[d] - m) * (x[d] - m) / v);
                    }
                    l
                })
                .collect();
            let expected = log_sum_exp(&longhand);
            assert!((gmm.log_pdf(&x) - expected).abs() < 1e-9);
            assert!((prepared.log_pdf(&x, &mut buf) - expected).abs() < 1e-9);
            let one = vec![x.to_vec()];
            assert!((gmm.mean_log_likelihood(&one) - expected).abs() < 1e-9);
            assert!((prepared.mean_log_likelihood(&one, &mut buf) - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn accumulator_matches_one_shot_across_chunkings() {
        let rng = SimRng::from_seed(43);
        let data = two_cluster_data(&rng, 300);
        let ubm = DiagonalGmm::train(&data, 8, 20, 1e-6, &rng);
        let model = ubm.map_adapt_means(&data[..80].to_vec(), 16.0);
        let frames = data[100..220].to_vec();
        let scorer = LlrScorer::new(&model, &ubm);
        let mut scratch = ScoreScratch::new();
        for top_c in [0usize, 4] {
            let one_shot = scorer.score(&frames, top_c, &mut scratch);
            for chunk in [1usize, 7, 50, frames.len()] {
                let mut acc = LlrAccumulator::new();
                for c in frames.chunks(chunk) {
                    acc.ingest(
                        &scorer.speaker,
                        &scorer.ubm,
                        &c.to_vec(),
                        top_c,
                        &mut scratch,
                    );
                }
                let b = acc.breakdown();
                assert_eq!(b.frames, one_shot.frames, "chunk {chunk}");
                assert_eq!(b.pruned_components, one_shot.pruned_components);
                assert_eq!(b.evaluated_components, one_shot.evaluated_components);
                assert!(
                    (b.score - one_shot.score).abs() < 1e-9,
                    "top_c={top_c} chunk={chunk}: {} vs {}",
                    b.score,
                    one_shot.score
                );
            }
        }
    }

    #[test]
    fn accumulator_empty_is_neg_infinity() {
        let acc = LlrAccumulator::new();
        assert_eq!(acc.score(), f64::NEG_INFINITY);
        assert_eq!(acc.frames(), 0);
    }

    #[test]
    fn prepared_exact_score_matches_reference_scorer() {
        let rng = SimRng::from_seed(29);
        let data = two_cluster_data(&rng, 300);
        let ubm = DiagonalGmm::train(&data, 4, 20, 1e-6, &rng);
        let model = ubm.map_adapt_means(&data[..80].to_vec(), 16.0);
        let frames = &data[100..180].to_vec();
        let reference = model.llr_score(&ubm, frames);
        let scorer = LlrScorer::new(&model, &ubm);
        let mut scratch = ScoreScratch::new();
        for top_c in [0, 4, 100] {
            let b = scorer.score(frames, top_c, &mut scratch);
            assert!(
                (b.score - reference).abs() < 1e-9,
                "top_c={top_c}: {} vs {reference}",
                b.score
            );
            assert_eq!(b.frames, frames.len());
            assert_eq!(b.pruned_components, 0, "C=all must not prune");
        }
    }

    #[test]
    fn pruned_score_counts_and_approximates() {
        let rng = SimRng::from_seed(31);
        let data = two_cluster_data(&rng, 400);
        let ubm = DiagonalGmm::train(&data, 8, 20, 1e-6, &rng);
        let model = ubm.map_adapt_means(&data[..100].to_vec(), 16.0);
        let frames = &data[200..300].to_vec();
        let scorer = LlrScorer::new(&model, &ubm);
        let mut scratch = ScoreScratch::new();
        let exact = scorer.score(frames, 0, &mut scratch);
        let pruned = scorer.score(frames, 4, &mut scratch);
        assert_eq!(
            pruned.pruned_components,
            (frames.len() * (8 - 4)) as u64,
            "every frame prunes k − C speaker evaluations"
        );
        assert_eq!(pruned.evaluated_components, (frames.len() * 4) as u64);
        // The speaker term is a log-sum over a subset of components, so
        // pruning can only lower the score — and with the dominant
        // components kept, only slightly.
        assert!(
            pruned.score <= exact.score + 1e-12,
            "subset sum may not exceed the full sum"
        );
        assert!(
            (pruned.score - exact.score).abs() < 0.05,
            "pruned {} vs exact {}",
            pruned.score,
            exact.score
        );
        // Steady state: re-scoring allocates nothing new.
        let fp = scratch.footprint_bytes();
        scorer.score(frames, 4, &mut scratch);
        scorer.score(frames, 0, &mut scratch);
        assert_eq!(scratch.footprint_bytes(), fp, "scratch regrew");
    }

    #[test]
    fn frame_matrix_scores_like_vec_layout() {
        let rng = SimRng::from_seed(37);
        let data = two_cluster_data(&rng, 200);
        let gmm = DiagonalGmm::train(&data, 3, 15, 1e-6, &rng);
        let matrix = magshield_dsp::FrameMatrix::from_rows(&data);
        assert_eq!(
            gmm.mean_log_likelihood(&data),
            gmm.mean_log_likelihood(&matrix)
        );
        assert_eq!(gmm.llr_score(&gmm, &data), gmm.llr_score(&gmm, &matrix));
        let a = gmm.map_adapt_means(&data, 16.0);
        let b = gmm.map_adapt_means(&matrix, 16.0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "weights must sum to 1")]
    fn rejects_bad_weights() {
        DiagonalGmm::from_parameters(vec![0.5], vec![vec![0.0]], vec![vec![1.0]]);
    }

    mod codec_round_trip {
        use super::*;
        use crate::codec::{assert_hostile_input_fails, BinaryCodec, CodecError};
        use proptest::prelude::*;

        /// An arbitrary valid mixture: raw positives normalized into
        /// weights, finite means, strictly positive variances.
        fn arb_gmm() -> impl Strategy<Value = DiagonalGmm> {
            (1usize..5, 1usize..6, 0u64..u64::MAX).prop_map(|(k, dim, seed)| {
                let mut rng = SimRng::from_seed(seed);
                let raw: Vec<f64> = (0..k).map(|_| rng.uniform(0.1, 1.0)).collect();
                let sum: f64 = raw.iter().sum();
                let weights = raw.iter().map(|w| w / sum).collect();
                let means = (0..k)
                    .map(|_| (0..dim).map(|_| rng.gauss(0.0, 5.0)).collect())
                    .collect();
                let variances = (0..k)
                    .map(|_| (0..dim).map(|_| rng.uniform(1e-3, 4.0)).collect())
                    .collect();
                DiagonalGmm::from_parameters(weights, means, variances)
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn gmm_round_trips_exactly(gmm in arb_gmm()) {
                let bytes = gmm.to_bytes();
                prop_assert_eq!(DiagonalGmm::from_bytes(&bytes).unwrap(), gmm);
            }

            #[test]
            fn prepared_round_trips_exactly(gmm in arb_gmm()) {
                let prepared = PreparedGmm::new(&gmm);
                let bytes = prepared.to_bytes();
                prop_assert_eq!(PreparedGmm::from_bytes(&bytes).unwrap(), prepared);
            }

            #[test]
            fn quantized_round_trips_exactly(gmm in arb_gmm()) {
                let quant = QuantizedGmm::from_prepared(&PreparedGmm::new(&gmm));
                let bytes = quant.to_bytes();
                prop_assert_eq!(QuantizedGmm::from_bytes(&bytes).unwrap(), quant);
            }
        }

        #[test]
        fn hostile_input_yields_typed_errors() {
            let rng = SimRng::from_seed(11);
            let data = two_cluster_data(&rng, 120);
            let gmm = DiagonalGmm::train(&data, 2, 8, 1e-6, &rng);
            assert_hostile_input_fails::<DiagonalGmm>(&gmm.to_bytes());
            assert_hostile_input_fails::<PreparedGmm>(&PreparedGmm::new(&gmm).to_bytes());
            assert_hostile_input_fails::<QuantizedGmm>(
                &QuantizedGmm::from_prepared(&PreparedGmm::new(&gmm)).to_bytes(),
            );
        }

        #[test]
        fn decoded_quantized_scores_bit_identically() {
            // The wire format stores the quantized parameters verbatim, so
            // a decoded model must reproduce the same score bits.
            let rng = SimRng::from_seed(29);
            let data = two_cluster_data(&rng, 150);
            let ubm = DiagonalGmm::train(&data, 3, 10, 1e-6, &rng);
            let model = ubm.map_adapt_means(&data, 16.0);
            let spk_q = QuantizedGmm::from_prepared(&PreparedGmm::new(&model));
            let bg_q = QuantizedGmm::from_prepared(&PreparedGmm::new(&ubm));
            let spk_back = QuantizedGmm::from_bytes(&spk_q.to_bytes()).unwrap();
            let bg_back = QuantizedGmm::from_bytes(&bg_q.to_bytes()).unwrap();
            let mut scratch = ScoreScratch::new();
            let a = llr_score_quantized(&spk_q, &bg_q, &data, 2, &mut scratch);
            let b = llr_score_quantized(&spk_back, &bg_back, &data, 2, &mut scratch);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }

        #[test]
        fn intact_frame_with_bad_weights_is_invalid_not_panic() {
            // A structurally perfect frame describing a mixture whose
            // weights sum to 2: the envelope passes, decode_payload must
            // refuse.
            let g = DiagonalGmm::from_parameters(vec![1.0], vec![vec![0.0]], vec![vec![1.0]]);
            let mut hostile = g.clone();
            hostile.weights[0] = 2.0;
            match DiagonalGmm::from_bytes(&hostile.to_bytes()) {
                Err(CodecError::Invalid { artifact, .. }) => {
                    assert_eq!(artifact, "DiagonalGmm");
                }
                other => panic!("expected Invalid, got {other:?}"),
            }
        }

        #[test]
        fn decoded_gmm_scores_identically() {
            let rng = SimRng::from_seed(23);
            let data = two_cluster_data(&rng, 150);
            let gmm = DiagonalGmm::train(&data, 3, 10, 1e-6, &rng);
            let back = DiagonalGmm::from_bytes(&gmm.to_bytes()).unwrap();
            assert_eq!(
                gmm.mean_log_likelihood(&data),
                back.mean_log_likelihood(&data)
            );
        }

        #[test]
        fn gmm_bytes_do_not_decode_as_prepared() {
            let g = DiagonalGmm::from_parameters(vec![1.0], vec![vec![0.0]], vec![vec![1.0]]);
            assert!(matches!(
                PreparedGmm::from_bytes(&g.to_bytes()),
                Err(CodecError::BadMagic { .. })
            ));
        }
    }
}

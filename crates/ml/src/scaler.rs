//! Feature standardization (zero mean, unit variance per dimension).

use serde::{Deserialize, Serialize};

/// A fitted standard scaler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl StandardScaler {
    /// Fits per-dimension mean and standard deviation.
    ///
    /// Dimensions with zero variance get unit std (features pass through
    /// centered).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or dimensions are inconsistent.
    pub fn fit(data: &[Vec<f64>]) -> Self {
        assert!(!data.is_empty(), "scaler needs data");
        let dim = data[0].len();
        assert!(
            data.iter().all(|r| r.len() == dim),
            "inconsistent dimensions"
        );
        let n = data.len() as f64;
        let mean: Vec<f64> = (0..dim)
            .map(|d| data.iter().map(|r| r[d]).sum::<f64>() / n)
            .collect();
        let std: Vec<f64> = (0..dim)
            .map(|d| {
                let v = data.iter().map(|r| (r[d] - mean[d]).powi(2)).sum::<f64>() / n;
                let s = v.sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Self { mean, std }
    }

    /// Standardizes one vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        x.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(xi, (m, s))| (xi - m) / s)
            .collect()
    }

    /// Standardizes a batch.
    pub fn transform_batch(&self, data: &[Vec<f64>]) -> Vec<Vec<f64>> {
        data.iter().map(|x| self.transform(x)).collect()
    }

    /// Inverts the transform.
    pub fn inverse_transform(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.mean.len(), "dimension mismatch");
        z.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(zi, (m, s))| zi * s + m)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let data: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64, 3.0 * i as f64 + 7.0])
            .collect();
        let sc = StandardScaler::fit(&data);
        let z = sc.transform_batch(&data);
        for d in 0..2 {
            let mean: f64 = z.iter().map(|r| r[d]).sum::<f64>() / 100.0;
            let var: f64 = z.iter().map(|r| r[d] * r[d]).sum::<f64>() / 100.0;
            assert!(mean.abs() < 1e-10);
            assert!((var - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn constant_dimension_passes_through_centered() {
        let data = vec![vec![4.0], vec![4.0], vec![4.0]];
        let sc = StandardScaler::fit(&data);
        assert_eq!(sc.transform(&[4.0]), vec![0.0]);
        assert_eq!(sc.transform(&[5.0]), vec![1.0]);
    }

    #[test]
    fn round_trip() {
        let data = vec![vec![1.0, -5.0], vec![3.0, 10.0], vec![-2.0, 0.0]];
        let sc = StandardScaler::fit(&data);
        for r in &data {
            let back = sc.inverse_transform(&sc.transform(r));
            for (a, b) in back.iter().zip(r) {
                assert!((a - b).abs() < 1e-10);
            }
        }
    }
}

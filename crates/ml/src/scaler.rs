//! Feature standardization (zero mean, unit variance per dimension).

use crate::codec::{self, BinaryCodec, ByteReader, ByteWriter, CodecError};
use serde::{Deserialize, Serialize};

/// A fitted standard scaler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl StandardScaler {
    /// Fits per-dimension mean and standard deviation.
    ///
    /// Dimensions with zero variance get unit std (features pass through
    /// centered).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or dimensions are inconsistent.
    pub fn fit(data: &[Vec<f64>]) -> Self {
        assert!(!data.is_empty(), "scaler needs data");
        let dim = data[0].len();
        assert!(
            data.iter().all(|r| r.len() == dim),
            "inconsistent dimensions"
        );
        let n = data.len() as f64;
        let mean: Vec<f64> = (0..dim)
            .map(|d| data.iter().map(|r| r[d]).sum::<f64>() / n)
            .collect();
        let std: Vec<f64> = (0..dim)
            .map(|d| {
                let v = data.iter().map(|r| (r[d] - mean[d]).powi(2)).sum::<f64>() / n;
                let s = v.sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Self { mean, std }
    }

    /// Standardizes one vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        x.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(xi, (m, s))| (xi - m) / s)
            .collect()
    }

    /// Standardizes a batch.
    pub fn transform_batch(&self, data: &[Vec<f64>]) -> Vec<Vec<f64>> {
        data.iter().map(|x| self.transform(x)).collect()
    }

    /// Feature dimensionality this scaler was fitted for.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Inverts the transform.
    pub fn inverse_transform(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.mean.len(), "dimension mismatch");
        z.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(zi, (m, s))| zi * s + m)
            .collect()
    }
}

impl BinaryCodec for StandardScaler {
    const MAGIC: u32 = codec::magic(b"MSCL");
    const VERSION: u8 = 1;
    const NAME: &'static str = "StandardScaler";

    fn encode_payload(&self, w: &mut ByteWriter) {
        w.put_f64s(&self.mean);
        w.put_f64_slice(&self.std);
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let mean = r.get_f64s()?;
        let std = r.get_f64_vec(mean.len())?;
        if !mean.iter().all(|v| v.is_finite()) || !std.iter().all(|&s| s.is_finite() && s > 0.0) {
            return Err(CodecError::Invalid {
                artifact: Self::NAME,
                reason: "mean must be finite and std strictly positive".to_string(),
            });
        }
        Ok(Self { mean, std })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let data: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64, 3.0 * i as f64 + 7.0])
            .collect();
        let sc = StandardScaler::fit(&data);
        let z = sc.transform_batch(&data);
        for d in 0..2 {
            let mean: f64 = z.iter().map(|r| r[d]).sum::<f64>() / 100.0;
            let var: f64 = z.iter().map(|r| r[d] * r[d]).sum::<f64>() / 100.0;
            assert!(mean.abs() < 1e-10);
            assert!((var - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn constant_dimension_passes_through_centered() {
        let data = vec![vec![4.0], vec![4.0], vec![4.0]];
        let sc = StandardScaler::fit(&data);
        assert_eq!(sc.transform(&[4.0]), vec![0.0]);
        assert_eq!(sc.transform(&[5.0]), vec![1.0]);
    }

    #[test]
    fn round_trip() {
        let data = vec![vec![1.0, -5.0], vec![3.0, 10.0], vec![-2.0, 0.0]];
        let sc = StandardScaler::fit(&data);
        for r in &data {
            let back = sc.inverse_transform(&sc.transform(r));
            for (a, b) in back.iter().zip(r) {
                assert!((a - b).abs() < 1e-10);
            }
        }
    }

    mod codec_round_trip {
        use super::*;
        use crate::codec::{assert_hostile_input_fails, BinaryCodec, CodecError};
        use magshield_simkit::rng::SimRng;
        use proptest::prelude::*;

        fn arb_scaler() -> impl Strategy<Value = StandardScaler> {
            (1usize..8, 2usize..30, 0u64..u64::MAX).prop_map(|(dim, n, seed)| {
                let mut rng = SimRng::from_seed(seed);
                let data: Vec<Vec<f64>> = (0..n)
                    .map(|_| (0..dim).map(|_| rng.gauss(0.0, 10.0)).collect())
                    .collect();
                StandardScaler::fit(&data)
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn scaler_round_trips_exactly(sc in arb_scaler()) {
                prop_assert_eq!(StandardScaler::from_bytes(&sc.to_bytes()).unwrap(), sc);
            }
        }

        #[test]
        fn hostile_input_yields_typed_errors() {
            let sc = StandardScaler::fit(&[vec![1.0, 2.0], vec![3.0, -4.0], vec![0.5, 9.0]]);
            assert_hostile_input_fails::<StandardScaler>(&sc.to_bytes());
        }

        #[test]
        fn non_positive_std_is_invalid() {
            let sc = StandardScaler {
                mean: vec![0.0],
                std: vec![0.0],
            };
            assert!(matches!(
                StandardScaler::from_bytes(&sc.to_bytes()),
                Err(CodecError::Invalid { .. })
            ));
        }
    }
}

//! Linear soft-margin SVM trained with Pegasos (primal subgradient).
//!
//! The sound-field verification component (§IV-B2) trains "a binary
//! classifier using the linear Support Vector Machine algorithm" on
//! quantified sound-field feature vectors. Pegasos converges to the same
//! primal objective as classic SMO for linear kernels and needs no QP
//! machinery.

use crate::codec::{self, BinaryCodec, ByteReader, ByteWriter, CodecError};
use magshield_simkit::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A trained linear SVM: `f(x) = w·x + b`, predict `+1` iff `f(x) >= 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    /// Weight vector.
    weights: Vec<f64>,
    /// Bias term.
    bias: f64,
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Regularization strength λ (smaller = harder margin).
    pub lambda: f64,
    /// Number of Pegasos epochs over the data.
    pub epochs: usize,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-3,
            epochs: 60,
        }
    }
}

impl LinearSvm {
    /// Trains on `(x, y)` pairs with `y ∈ {−1, +1}`.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty, labels are not ±1, dimensions are
    /// inconsistent, or only one class is present.
    pub fn train(data: &[Vec<f64>], labels: &[f64], config: SvmConfig, rng: &SimRng) -> Self {
        assert!(!data.is_empty(), "SVM needs training data");
        assert_eq!(data.len(), labels.len(), "data/labels length mismatch");
        assert!(
            labels.iter().all(|&y| y == 1.0 || y == -1.0),
            "labels must be ±1"
        );
        assert!(
            labels.contains(&1.0) && labels.contains(&-1.0),
            "need both classes to train"
        );
        let dim = data[0].len();
        assert!(
            data.iter().all(|x| x.len() == dim),
            "inconsistent dimensions"
        );

        // Augmented formulation: fold the bias in as a constant feature so
        // the Pegasos step handles it with the same (stable) schedule. The
        // slight regularization of the bias this implies is standard and
        // harmless for the margins used here.
        let mut rng = rng.fork("pegasos");
        let mut w = vec![0.0; dim + 1];
        let mut t: u64 = 0;
        let n = data.len();
        let mut order: Vec<usize> = (0..n).collect();
        let aug_dot = |w: &[f64], x: &[f64]| dot(&w[..dim], x) + w[dim];
        for _ in 0..config.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (config.lambda * t as f64);
                let margin = labels[i] * aug_dot(&w, &data[i]);
                let shrink = (1.0 - eta * config.lambda).max(0.0);
                for wj in w.iter_mut() {
                    *wj *= shrink;
                }
                if margin < 1.0 {
                    for (wj, &xj) in w[..dim].iter_mut().zip(&data[i]) {
                        *wj += eta * labels[i] * xj;
                    }
                    w[dim] += eta * labels[i];
                }
                // Pegasos projection onto the ‖w‖ ≤ 1/√λ ball.
                let norm = dot(&w, &w).sqrt();
                let bound = 1.0 / config.lambda.sqrt();
                if norm > bound {
                    let f = bound / norm;
                    for wj in w.iter_mut() {
                        *wj *= f;
                    }
                }
            }
        }
        let bias = w[dim];
        w.truncate(dim);
        Self { weights: w, bias }
    }

    /// Signed decision value `w·x + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn decision(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "dimension mismatch");
        dot(&self.weights, x) + self.bias
    }

    /// Hard prediction: `+1` or `−1`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.decision(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Accuracy on a labeled set.
    pub fn accuracy(&self, data: &[Vec<f64>], labels: &[f64]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .iter()
            .zip(labels)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / data.len() as f64
    }

    /// The learned weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

impl BinaryCodec for LinearSvm {
    const MAGIC: u32 = codec::magic(b"MSVM");
    const VERSION: u8 = 1;
    const NAME: &'static str = "LinearSvm";

    fn encode_payload(&self, w: &mut ByteWriter) {
        w.put_f64s(&self.weights);
        w.put_f64(self.bias);
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let weights = r.get_f64s()?;
        let bias = r.get_f64()?;
        if !weights.iter().chain([&bias]).all(|v| v.is_finite()) {
            return Err(CodecError::Invalid {
                artifact: Self::NAME,
                reason: "parameters must be finite".to_string(),
            });
        }
        Ok(Self { weights, bias })
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable(rng: &SimRng, n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut r = rng.fork("svm-data");
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            if i % 2 == 0 {
                xs.push(vec![r.gauss(2.0, 0.5), r.gauss(2.0, 0.5)]);
                ys.push(1.0);
            } else {
                xs.push(vec![r.gauss(-2.0, 0.5), r.gauss(-2.0, 0.5)]);
                ys.push(-1.0);
            }
        }
        (xs, ys)
    }

    #[test]
    fn separates_clean_clusters() {
        let rng = SimRng::from_seed(31);
        let (xs, ys) = separable(&rng, 200);
        let svm = LinearSvm::train(&xs, &ys, SvmConfig::default(), &rng);
        assert_eq!(svm.accuracy(&xs, &ys), 1.0);
        // Decision values respect geometry.
        assert!(svm.decision(&[3.0, 3.0]) > 0.0);
        assert!(svm.decision(&[-3.0, -3.0]) < 0.0);
    }

    #[test]
    fn generalizes_to_held_out_points() {
        let rng = SimRng::from_seed(37);
        let (xs, ys) = separable(&rng, 300);
        let svm = LinearSvm::train(&xs[..200], &ys[..200], SvmConfig::default(), &rng);
        assert!(svm.accuracy(&xs[200..], &ys[200..]) > 0.97);
    }

    #[test]
    fn handles_noisy_overlap() {
        let rng = SimRng::from_seed(41);
        let mut r = rng.fork("noisy");
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..400 {
            if i % 2 == 0 {
                xs.push(vec![r.gauss(1.0, 1.0)]);
                ys.push(1.0);
            } else {
                xs.push(vec![r.gauss(-1.0, 1.0)]);
                ys.push(-1.0);
            }
        }
        let svm = LinearSvm::train(&xs, &ys, SvmConfig::default(), &rng);
        let acc = svm.accuracy(&xs, &ys);
        assert!(acc > 0.75, "noisy accuracy {acc}");
    }

    #[test]
    fn unbalanced_classes_learn_bias() {
        let rng = SimRng::from_seed(43);
        let mut r = rng.fork("unbal");
        let mut xs: Vec<Vec<f64>> = (0..180).map(|_| vec![r.gauss(1.5, 0.4)]).collect();
        let mut ys = vec![1.0; 180];
        xs.extend((0..20).map(|_| vec![r.gauss(-1.5, 0.4)]));
        ys.extend(vec![-1.0; 20]);
        let svm = LinearSvm::train(&xs, &ys, SvmConfig::default(), &rng);
        assert!(svm.accuracy(&xs, &ys) > 0.95);
    }

    #[test]
    fn deterministic_training() {
        let rng = SimRng::from_seed(47);
        let (xs, ys) = separable(&rng, 100);
        let a = LinearSvm::train(&xs, &ys, SvmConfig::default(), &SimRng::from_seed(3));
        let b = LinearSvm::train(&xs, &ys, SvmConfig::default(), &SimRng::from_seed(3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "need both classes")]
    fn rejects_single_class() {
        LinearSvm::train(
            &[vec![1.0], vec![2.0]],
            &[1.0, 1.0],
            SvmConfig::default(),
            &SimRng::from_seed(1),
        );
    }

    #[test]
    #[should_panic(expected = "labels must be ±1")]
    fn rejects_bad_labels() {
        LinearSvm::train(
            &[vec![1.0], vec![2.0]],
            &[1.0, 0.0],
            SvmConfig::default(),
            &SimRng::from_seed(1),
        );
    }

    mod codec_round_trip {
        use super::*;
        use crate::codec::{assert_hostile_input_fails, BinaryCodec, CodecError};
        use proptest::prelude::*;

        fn arb_svm() -> impl Strategy<Value = LinearSvm> {
            (1usize..8, 0u64..u64::MAX).prop_map(|(dim, seed)| {
                let mut rng = SimRng::from_seed(seed);
                LinearSvm {
                    weights: (0..dim).map(|_| rng.gauss(0.0, 3.0)).collect(),
                    bias: rng.gauss(0.0, 1.0),
                }
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn svm_round_trips_exactly(svm in arb_svm()) {
                prop_assert_eq!(LinearSvm::from_bytes(&svm.to_bytes()).unwrap(), svm);
            }
        }

        #[test]
        fn trained_model_round_trips_with_identical_decisions() {
            let rng = SimRng::from_seed(31);
            let (xs, ys) = separable(&rng, 120);
            let svm = LinearSvm::train(&xs, &ys, SvmConfig::default(), &SimRng::from_seed(5));
            let back = LinearSvm::from_bytes(&svm.to_bytes()).unwrap();
            assert_eq!(back, svm);
            for x in &xs {
                assert_eq!(back.decision(x), svm.decision(x));
            }
        }

        #[test]
        fn hostile_input_yields_typed_errors() {
            let svm = LinearSvm {
                weights: vec![0.5, -1.5, 2.0],
                bias: 0.25,
            };
            assert_hostile_input_fails::<LinearSvm>(&svm.to_bytes());
        }

        #[test]
        fn non_finite_weights_are_invalid() {
            let svm = LinearSvm {
                weights: vec![f64::INFINITY],
                bias: 0.0,
            };
            assert!(matches!(
                LinearSvm::from_bytes(&svm.to_bytes()),
                Err(CodecError::Invalid { .. })
            ));
        }
    }
}

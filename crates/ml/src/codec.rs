//! Versioned, checksummed binary codecs for trained model artifacts.
//!
//! Training is expensive and serving is long-lived, so every trained model
//! in the workspace (GMMs, the SVM, scalers, speaker models, the UBM — up
//! to whole [`ModelBundle`](../../magshield_core/artifact/index.html)
//! artifacts) serializes through one hand-rolled wire format rather than a
//! serde backend:
//!
//! ```text
//! [magic u32 LE][format version u8][payload len u32 LE][payload][fnv1a64 u64 LE]
//! ```
//!
//! * **magic** — four ASCII bytes naming the artifact type (e.g. `MGMM`),
//!   so a file of the wrong kind fails immediately with
//!   [`CodecError::BadMagic`] instead of decoding garbage;
//! * **format version** — bumped whenever an artifact's payload layout
//!   changes; old readers reject new artifacts (and vice versa) with
//!   [`CodecError::UnsupportedVersion`] rather than misinterpreting bytes;
//! * **payload len** — a length prefix so frames are self-delimiting and
//!   nested artifacts can embed each other;
//! * **checksum** — FNV-1a/64 over header + payload. Every step of FNV-1a
//!   is a bijection of the 64-bit state for a fixed input suffix, so any
//!   single corrupted byte is guaranteed to be detected.
//!
//! All integers are little-endian; floats are IEEE-754 `f64` bit patterns,
//! so round-trips are bit-exact. Decoding hostile input returns a typed
//! [`CodecError`] — it never panics and never allocates more than the
//! input could justify (length prefixes are validated against the bytes
//! actually present before any allocation).

use std::error::Error;
use std::fmt;

/// Builds a codec magic number from a four-byte ASCII tag.
pub const fn magic(tag: &[u8; 4]) -> u32 {
    u32::from_le_bytes(*tag)
}

/// FNV-1a 64-bit hash, the envelope checksum.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Typed failure decoding (or validating) a binary model artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// The frame does not start with the expected artifact magic.
    BadMagic {
        /// Artifact type being decoded.
        artifact: &'static str,
        /// Magic the decoder expected.
        expected: u32,
        /// Magic found in the input.
        found: u32,
    },
    /// The artifact was written with an incompatible format version.
    UnsupportedVersion {
        /// Artifact type being decoded.
        artifact: &'static str,
        /// Version found in the input.
        found: u8,
        /// The single version this build reads and writes.
        supported: u8,
    },
    /// The input ended before the decoder got the bytes a field promised.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The stored checksum does not match the received bytes.
    ChecksumMismatch {
        /// Checksum recomputed over the received frame.
        expected: u64,
        /// Checksum stored in the frame.
        found: u64,
    },
    /// Bytes remained after the payload was fully decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        count: usize,
    },
    /// A tag byte (enum discriminant, bool) held an unknown value.
    BadTag {
        /// Which field held the tag.
        what: &'static str,
        /// The unrecognized value.
        found: u8,
    },
    /// The bytes decoded but describe an invalid model (shape mismatch,
    /// non-positive variance, weights that do not sum to one, …).
    Invalid {
        /// Artifact type being decoded.
        artifact: &'static str,
        /// Which invariant failed.
        reason: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic {
                artifact,
                expected,
                found,
            } => write!(
                f,
                "{artifact}: bad magic {found:#010x} (expected {expected:#010x})"
            ),
            Self::UnsupportedVersion {
                artifact,
                found,
                supported,
            } => write!(
                f,
                "{artifact}: unsupported format version {found} (this build supports {supported})"
            ),
            Self::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated input: needed {needed} bytes, have {available}"
                )
            }
            Self::ChecksumMismatch { expected, found } => write!(
                f,
                "checksum mismatch: computed {expected:#018x}, stored {found:#018x}"
            ),
            Self::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after payload")
            }
            Self::BadTag { what, found } => write!(f, "bad {what} tag {found}"),
            Self::Invalid { artifact, reason } => write!(f, "invalid {artifact}: {reason}"),
        }
    }
}

impl Error for CodecError {}

/// Append-only little-endian byte sink for encoding payloads.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its IEEE-754 bit pattern, little-endian.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i16`, little-endian.
    pub fn put_i16(&mut self, v: i16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a collection length as a `u32`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX` — model artifacts are nowhere near
    /// that large, so overflow is a programming error, not a data error.
    pub fn put_len(&mut self, n: usize) {
        self.put_u32(u32::try_from(n).expect("collection too large for codec length prefix"));
    }

    /// Appends `xs` raw (no length prefix) — for fields whose count is
    /// implied by earlier shape fields.
    pub fn put_f64_slice(&mut self, xs: &[f64]) {
        self.buf.reserve(xs.len() * 8);
        for &x in xs {
            self.put_f64(x);
        }
    }

    /// Appends `xs` raw as `f32` bit patterns (count implied by shape).
    pub fn put_f32_slice(&mut self, xs: &[f32]) {
        self.buf.reserve(xs.len() * 4);
        for &x in xs {
            self.put_f32(x);
        }
    }

    /// Appends `xs` raw as little-endian `i16`s (count implied by shape).
    pub fn put_i16_slice(&mut self, xs: &[i16]) {
        self.buf.reserve(xs.len() * 2);
        for &x in xs {
            self.put_i16(x);
        }
    }

    /// Appends a length-prefixed `f64` vector.
    pub fn put_f64s(&mut self, xs: &[f64]) {
        self.put_len(xs.len());
        self.put_f64_slice(xs);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_string(&mut self, s: &str) {
        self.put_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed opaque byte blob (e.g. a nested artifact
    /// frame produced by [`BinaryCodec::to_bytes`]).
    pub fn put_nested(&mut self, bytes: &[u8]) {
        self.put_len(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian cursor over untrusted input; every read is bounds-checked
/// and returns [`CodecError::Truncated`] instead of panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps `buf` with the cursor at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor reached the end.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f32` bit pattern.
    pub fn get_f32(&mut self) -> Result<f32, CodecError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i16`.
    pub fn get_i16(&mut self) -> Result<i16, CodecError> {
        Ok(i16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `bool` byte, rejecting anything but 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            found => Err(CodecError::BadTag {
                what: "bool",
                found,
            }),
        }
    }

    /// Reads a `u32` length prefix as `usize`.
    pub fn get_len(&mut self) -> Result<usize, CodecError> {
        Ok(self.get_u32()? as usize)
    }

    /// Reads exactly `count` raw `f64`s (count implied by shape fields).
    ///
    /// The byte budget is validated before allocating, so a hostile shape
    /// field cannot trigger an out-of-memory allocation.
    pub fn get_f64_vec(&mut self, count: usize) -> Result<Vec<f64>, CodecError> {
        let needed = count.checked_mul(8).ok_or(CodecError::Truncated {
            needed: usize::MAX,
            available: self.remaining(),
        })?;
        if self.remaining() < needed {
            return Err(CodecError::Truncated {
                needed,
                available: self.remaining(),
            });
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn get_f64s(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.get_len()?;
        self.get_f64_vec(n)
    }

    /// Reads exactly `count` raw `f32`s, validating the byte budget
    /// before allocating (see [`Self::get_f64_vec`]).
    pub fn get_f32_vec(&mut self, count: usize) -> Result<Vec<f32>, CodecError> {
        let needed = count.checked_mul(4).ok_or(CodecError::Truncated {
            needed: usize::MAX,
            available: self.remaining(),
        })?;
        if self.remaining() < needed {
            return Err(CodecError::Truncated {
                needed,
                available: self.remaining(),
            });
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.get_f32()?);
        }
        Ok(out)
    }

    /// Reads exactly `count` raw `i16`s, validating the byte budget
    /// before allocating (see [`Self::get_f64_vec`]).
    pub fn get_i16_vec(&mut self, count: usize) -> Result<Vec<i16>, CodecError> {
        let needed = count.checked_mul(2).ok_or(CodecError::Truncated {
            needed: usize::MAX,
            available: self.remaining(),
        })?;
        if self.remaining() < needed {
            return Err(CodecError::Truncated {
                needed,
                available: self.remaining(),
            });
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.get_i16()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> Result<String, CodecError> {
        let n = self.get_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadTag {
            what: "utf-8 string",
            found: 0,
        })
    }

    /// Reads a length-prefixed opaque byte blob.
    pub fn get_nested(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.get_len()?;
        self.take(n)
    }

    /// Asserts the payload was fully consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }
}

/// Envelope header: magic (4) + version (1) + payload length (4).
const HEADER_LEN: usize = 9;
/// Trailing FNV-1a/64 checksum.
const CHECKSUM_LEN: usize = 8;

/// A model artifact with a versioned, checksummed binary representation.
///
/// Implementors provide the payload codec; the envelope (magic, version,
/// length prefix, checksum) is handled once here so every artifact shares
/// the same framing and the same hostile-input guarantees.
pub trait BinaryCodec: Sized {
    /// Four-ASCII-byte artifact magic (see [`magic`]).
    const MAGIC: u32;
    /// Payload format version; bump on any layout change. Encoding always
    /// writes this version.
    const VERSION: u8;
    /// Oldest payload version this build still decodes. Defaults to
    /// [`Self::VERSION`] (single-version artifacts); artifacts that grew
    /// fields lower it and branch in
    /// [`Self::decode_versioned_payload`] so already-deployed frames keep
    /// decoding across the bump.
    const MIN_VERSION: u8 = Self::VERSION;
    /// Human-readable artifact name used in error messages.
    const NAME: &'static str;

    /// Writes the payload (envelope excluded) into `w`.
    fn encode_payload(&self, w: &mut ByteWriter);

    /// Decodes the payload (envelope excluded) from `r`.
    ///
    /// Implementations must validate every model invariant and return
    /// [`CodecError::Invalid`] rather than panicking, because the input
    /// may be arbitrary bytes that survived the checksum only by being a
    /// well-formed frame of lies.
    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError>;

    /// Decodes a payload whose version is known to lie in
    /// `MIN_VERSION..=VERSION`. The default ignores `version` and calls
    /// [`Self::decode_payload`]; multi-version artifacts override this to
    /// branch on the layout actually present.
    fn decode_versioned_payload(version: u8, r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let _ = version;
        Self::decode_payload(r)
    }

    /// Serializes the artifact with the standard envelope.
    fn to_bytes(&self) -> Vec<u8> {
        let mut payload = ByteWriter::new();
        self.encode_payload(&mut payload);
        let payload = payload.into_bytes();
        let mut w = ByteWriter::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
        w.put_u32(Self::MAGIC);
        w.put_u8(Self::VERSION);
        w.put_len(payload.len());
        let mut frame = w.into_bytes();
        frame.extend_from_slice(&payload);
        let checksum = fnv1a_64(&frame);
        frame.extend_from_slice(&checksum.to_le_bytes());
        frame
    }

    /// Deserializes an artifact, validating magic, version, length and
    /// checksum before touching the payload. Never panics on hostile
    /// input.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let found_magic = r.get_u32()?;
        if found_magic != Self::MAGIC {
            return Err(CodecError::BadMagic {
                artifact: Self::NAME,
                expected: Self::MAGIC,
                found: found_magic,
            });
        }
        let version = r.get_u8()?;
        if version < Self::MIN_VERSION || version > Self::VERSION {
            return Err(CodecError::UnsupportedVersion {
                artifact: Self::NAME,
                found: version,
                supported: Self::VERSION,
            });
        }
        let len = r.get_len()?;
        let body = r.remaining();
        match body.checked_sub(CHECKSUM_LEN) {
            None => {
                return Err(CodecError::Truncated {
                    needed: len + CHECKSUM_LEN,
                    available: body,
                })
            }
            Some(have) if have < len => {
                return Err(CodecError::Truncated {
                    needed: len + CHECKSUM_LEN,
                    available: body,
                })
            }
            Some(have) if have > len => {
                return Err(CodecError::TrailingBytes { count: have - len });
            }
            Some(_) => {}
        }
        let frame_end = HEADER_LEN + len;
        let expected = fnv1a_64(&bytes[..frame_end]);
        let found = u64::from_le_bytes(
            bytes[frame_end..frame_end + CHECKSUM_LEN]
                .try_into()
                .unwrap(),
        );
        if expected != found {
            return Err(CodecError::ChecksumMismatch { expected, found });
        }
        let mut payload = ByteReader::new(&bytes[HEADER_LEN..frame_end]);
        let value = Self::decode_versioned_payload(version, &mut payload)?;
        payload.finish()?;
        Ok(value)
    }
}

/// Test support: asserts a codec survives hostile mutations of a valid
/// frame — every strict prefix and every single-bit flip must yield a
/// typed [`CodecError`], never a panic and never a silent `Ok`.
///
/// Single-bit flips are always *detected* (not merely usually): header
/// fields are validated structurally and the FNV-1a state transition is a
/// bijection per input byte, so one corrupted byte always changes the
/// checksum.
pub fn assert_hostile_input_fails<T: BinaryCodec>(frame: &[u8]) {
    for cut in 0..frame.len() {
        assert!(
            T::from_bytes(&frame[..cut]).is_err(),
            "{}: truncation to {cut}/{} bytes decoded successfully",
            T::NAME,
            frame.len()
        );
    }
    let mut mutated = frame.to_vec();
    for i in 0..mutated.len() {
        for bit in 0..8 {
            mutated[i] ^= 1 << bit;
            assert!(
                T::from_bytes(&mutated).is_err(),
                "{}: bit flip at byte {i} bit {bit} decoded successfully",
                T::NAME
            );
            mutated[i] ^= 1 << bit;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Probe {
        id: u64,
        scale: f64,
        tags: Vec<f64>,
        label: String,
        flag: bool,
    }

    impl BinaryCodec for Probe {
        const MAGIC: u32 = magic(b"TPRB");
        const VERSION: u8 = 3;
        const NAME: &'static str = "Probe";

        fn encode_payload(&self, w: &mut ByteWriter) {
            w.put_u64(self.id);
            w.put_f64(self.scale);
            w.put_f64s(&self.tags);
            w.put_string(&self.label);
            w.put_bool(self.flag);
        }

        fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
            Ok(Self {
                id: r.get_u64()?,
                scale: r.get_f64()?,
                tags: r.get_f64s()?,
                label: r.get_string()?,
                flag: r.get_bool()?,
            })
        }
    }

    fn probe() -> Probe {
        Probe {
            id: 0xDEAD_BEEF_0042,
            scale: -3.25e-9,
            tags: vec![1.0, f64::MIN_POSITIVE, -0.0, 6.02e23],
            label: "probe/α".into(),
            flag: true,
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let p = probe();
        let bytes = p.to_bytes();
        assert_eq!(Probe::from_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn nan_survives_round_trip_bitwise() {
        let mut p = probe();
        p.scale = f64::NAN;
        let back = Probe::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(back.scale.to_bits(), p.scale.to_bits());
    }

    #[test]
    fn wrong_magic_is_typed() {
        let mut bytes = probe().to_bytes();
        bytes[0] ^= 0xFF;
        match Probe::from_bytes(&bytes) {
            Err(CodecError::BadMagic { artifact, .. }) => assert_eq!(artifact, "Probe"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut bytes = probe().to_bytes();
        bytes[4] = Probe::VERSION + 1;
        match Probe::from_bytes(&bytes) {
            Err(CodecError::UnsupportedVersion {
                found, supported, ..
            }) => {
                assert_eq!(found, Probe::VERSION + 1);
                assert_eq!(supported, Probe::VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut bytes = probe().to_bytes();
        let mid = HEADER_LEN + 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(
            Probe::from_bytes(&bytes),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = probe().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Probe::from_bytes(&bytes),
            Err(CodecError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn hostile_length_prefix_does_not_allocate_or_panic() {
        // A frame whose inner vector length claims u32::MAX elements: the
        // reader must notice the byte budget is impossible before
        // allocating.
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_f64s(), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn truncation_and_bit_flips_always_fail() {
        assert_hostile_input_fails::<Probe>(&probe().to_bytes());
    }

    #[test]
    fn fnv_vector() {
        // Canonical FNV-1a/64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn reader_reports_truncation_sizes() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.get_u8().unwrap(), 1);
        match r.get_u64() {
            Err(CodecError::Truncated { needed, available }) => {
                assert_eq!((needed, available), (8, 2));
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }
}

//! K-means clustering with k-means++ seeding.
//!
//! Used to bootstrap GMM means before EM refinement, as is standard in
//! UBM training pipelines.

use magshield_simkit::rng::SimRng;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centers, `k × dim`.
    pub centers: Vec<Vec<f64>>,
    /// Assignment of each input point to a center index.
    pub assignments: Vec<usize>,
    /// Final total within-cluster squared distance.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

/// Squared Euclidean distance.
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

/// Runs k-means++ followed by Lloyd iterations.
///
/// # Panics
///
/// Panics if `data` is empty, `k == 0`, `k > data.len()`, or rows have
/// inconsistent dimension.
pub fn kmeans(data: &[Vec<f64>], k: usize, max_iters: usize, rng: &SimRng) -> KMeansResult {
    assert!(!data.is_empty(), "k-means needs data");
    assert!(k > 0 && k <= data.len(), "k must be in 1..=n, got {k}");
    let dim = data[0].len();
    assert!(
        data.iter().all(|r| r.len() == dim),
        "all rows must share a dimension"
    );
    let mut rng = rng.fork("kmeans");

    // --- k-means++ seeding ---
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    centers.push(data[rng.index(data.len())].clone());
    let mut d2: Vec<f64> = data.iter().map(|p| dist2(p, &centers[0])).collect();
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All residual distance zero (duplicate points): pick any.
            rng.index(data.len())
        } else {
            let mut target = rng.uniform(0.0, total);
            let mut idx = 0;
            for (i, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    idx = i;
                    break;
                }
            }
            idx
        };
        centers.push(data[next].clone());
        for (i, p) in data.iter().enumerate() {
            d2[i] = d2[i].min(dist2(p, centers.last().unwrap()));
        }
    }

    // --- Lloyd iterations ---
    let mut assignments = vec![0usize; data.len()];
    let mut iterations = 0;
    for it in 0..max_iters {
        iterations = it + 1;
        let mut changed = false;
        for (i, p) in data.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    dist2(p, &centers[a])
                        .partial_cmp(&dist2(p, &centers[b]))
                        .unwrap()
                })
                .unwrap();
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in data.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for d in 0..dim {
                    centers[c][d] = sums[c][d] / counts[c] as f64;
                }
            } else {
                // Re-seed an empty cluster at a random point.
                centers[c] = data[rng.index(data.len())].clone();
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let inertia = data
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| dist2(p, &centers[a]))
        .sum();
    KMeansResult {
        centers,
        assignments,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(rng: &SimRng) -> Vec<Vec<f64>> {
        let mut r = rng.fork("blobs");
        let mut data = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)] {
            for _ in 0..50 {
                data.push(vec![cx + r.gauss(0.0, 0.5), cy + r.gauss(0.0, 0.5)]);
            }
        }
        data
    }

    #[test]
    fn recovers_three_blobs() {
        let rng = SimRng::from_seed(42);
        let data = blobs(&rng);
        let res = kmeans(&data, 3, 100, &rng);
        // Each true blob center should be within 0.5 of a found center.
        for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)] {
            let best = res
                .centers
                .iter()
                .map(|c| ((c[0] - cx).powi(2) + (c[1] - cy).powi(2)).sqrt())
                .fold(f64::INFINITY, f64::min);
            assert!(best < 0.5, "blob ({cx},{cy}) missed by {best}");
        }
        assert!(res.inertia < 150.0, "inertia {}", res.inertia);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = vec![vec![0.0], vec![5.0], vec![9.0]];
        let res = kmeans(&data, 3, 50, &SimRng::from_seed(1));
        assert!(res.inertia < 1e-18);
    }

    #[test]
    fn assignments_cover_all_points() {
        let rng = SimRng::from_seed(7);
        let data = blobs(&rng);
        let res = kmeans(&data, 3, 100, &rng);
        assert_eq!(res.assignments.len(), data.len());
        assert!(res.assignments.iter().all(|&a| a < 3));
    }

    #[test]
    fn deterministic_given_seed() {
        let rng = SimRng::from_seed(5);
        let data = blobs(&rng);
        let a = kmeans(&data, 3, 100, &SimRng::from_seed(9));
        let b = kmeans(&data, 3, 100, &SimRng::from_seed(9));
        assert_eq!(a.centers, b.centers);
    }

    #[test]
    fn duplicate_points_do_not_crash() {
        let data = vec![vec![1.0, 1.0]; 20];
        let res = kmeans(&data, 3, 50, &SimRng::from_seed(2));
        assert!(res.inertia < 1e-18);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn rejects_k_larger_than_n() {
        kmeans(&[vec![1.0]], 2, 10, &SimRng::from_seed(1));
    }
}

//! Verification metrics: FAR, FRR, EER and DET curves.
//!
//! Table III of the paper defines the four decision outcomes; the entire
//! evaluation (Figs. 12 and 14, Table I) is reported in false acceptance
//! rate (FAR), false rejection rate (FRR), and equal error rate (EER).

use serde::{Deserialize, Serialize};

/// FAR/FRR at a specific operating point.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ErrorRates {
    /// False acceptance rate: impostors wrongly accepted.
    pub far: f64,
    /// False rejection rate: genuine users wrongly rejected.
    pub frr: f64,
}

impl ErrorRates {
    /// Computes FAR/FRR from hard decisions.
    ///
    /// `genuine_accepted[i]` is the decision for genuine trial `i`;
    /// `impostor_accepted[j]` likewise for impostor trials.
    pub fn from_decisions(genuine_accepted: &[bool], impostor_accepted: &[bool]) -> Self {
        let frr = if genuine_accepted.is_empty() {
            0.0
        } else {
            genuine_accepted.iter().filter(|&&a| !a).count() as f64 / genuine_accepted.len() as f64
        };
        let far = if impostor_accepted.is_empty() {
            0.0
        } else {
            impostor_accepted.iter().filter(|&&a| a).count() as f64 / impostor_accepted.len() as f64
        };
        Self { far, frr }
    }

    /// FAR and FRR as percentages `(far_pct, frr_pct)`.
    pub fn as_percent(self) -> (f64, f64) {
        (self.far * 100.0, self.frr * 100.0)
    }
}

/// One point on a DET curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetPoint {
    /// Decision threshold (accept iff score ≥ threshold).
    pub threshold: f64,
    /// Error rates at that threshold.
    pub rates: ErrorRates,
}

/// Sweeps the decision threshold over all distinct scores and returns the
/// DET curve (accept iff `score >= threshold`; higher scores mean more
/// genuine).
pub fn det_curve(genuine_scores: &[f64], impostor_scores: &[f64]) -> Vec<DetPoint> {
    let mut thresholds: Vec<f64> = genuine_scores
        .iter()
        .chain(impostor_scores)
        .copied()
        .filter(|s| s.is_finite())
        .collect();
    thresholds.sort_by(|a, b| a.partial_cmp(b).unwrap());
    thresholds.dedup();
    // Add sentinels: accept-everything and reject-everything.
    let mut points = Vec::with_capacity(thresholds.len() + 2);
    points.push(DetPoint {
        threshold: f64::NEG_INFINITY,
        rates: rates_at(genuine_scores, impostor_scores, f64::NEG_INFINITY),
    });
    for &t in &thresholds {
        points.push(DetPoint {
            threshold: t,
            rates: rates_at(genuine_scores, impostor_scores, t),
        });
    }
    points.push(DetPoint {
        threshold: f64::INFINITY,
        rates: rates_at(genuine_scores, impostor_scores, f64::INFINITY),
    });
    points
}

fn rates_at(genuine: &[f64], impostor: &[f64], threshold: f64) -> ErrorRates {
    let frr = if genuine.is_empty() {
        0.0
    } else {
        genuine.iter().filter(|&&s| s < threshold).count() as f64 / genuine.len() as f64
    };
    let far = if impostor.is_empty() {
        0.0
    } else {
        impostor.iter().filter(|&&s| s >= threshold).count() as f64 / impostor.len() as f64
    };
    ErrorRates { far, frr }
}

/// Equal error rate: the operating point where FAR and FRR cross.
///
/// Returns the average of FAR and FRR at the threshold minimizing
/// `|FAR − FRR|` (the standard discrete-EER estimate).
pub fn equal_error_rate(genuine_scores: &[f64], impostor_scores: &[f64]) -> f64 {
    let curve = det_curve(genuine_scores, impostor_scores);
    curve
        .iter()
        .min_by(|a, b| {
            (a.rates.far - a.rates.frr)
                .abs()
                .partial_cmp(&(b.rates.far - b.rates.frr).abs())
                .unwrap()
        })
        .map(|p| (p.rates.far + p.rates.frr) / 2.0)
        .unwrap_or(0.0)
}

/// The threshold achieving the EER operating point.
pub fn eer_threshold(genuine_scores: &[f64], impostor_scores: &[f64]) -> f64 {
    let curve = det_curve(genuine_scores, impostor_scores);
    curve
        .iter()
        .min_by(|a, b| {
            (a.rates.far - a.rates.frr)
                .abs()
                .partial_cmp(&(b.rates.far - b.rates.frr).abs())
                .unwrap()
        })
        .map(|p| p.threshold)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_gives_zero_eer() {
        let genuine = [5.0, 6.0, 7.0];
        let impostor = [-1.0, 0.0, 1.0];
        assert_eq!(equal_error_rate(&genuine, &impostor), 0.0);
        let t = eer_threshold(&genuine, &impostor);
        assert!(t > 1.0 && t <= 5.0, "threshold {t}");
    }

    #[test]
    fn fully_overlapping_scores_give_half_eer() {
        let genuine = [0.0, 1.0, 2.0, 3.0];
        let impostor = [0.0, 1.0, 2.0, 3.0];
        let eer = equal_error_rate(&genuine, &impostor);
        assert!((eer - 0.5).abs() <= 0.13, "EER {eer} should be ≈ 0.5");
    }

    #[test]
    fn eer_of_partial_overlap() {
        // 1 of 4 genuine below the best threshold, 1 of 4 impostors above.
        let genuine = [1.0, 5.0, 6.0, 7.0];
        let impostor = [0.0, 0.5, 0.8, 5.5];
        let eer = equal_error_rate(&genuine, &impostor);
        assert!((eer - 0.25).abs() < 0.01, "EER {eer}");
    }

    #[test]
    fn decisions_to_rates() {
        let rates = ErrorRates::from_decisions(
            &[true, true, false, true], // 1 of 4 genuine rejected
            &[false, false, true],      // 1 of 3 impostors accepted
        );
        assert!((rates.frr - 0.25).abs() < 1e-12);
        assert!((rates.far - 1.0 / 3.0).abs() < 1e-12);
        let (fp, rp) = rates.as_percent();
        assert!((fp - 33.333).abs() < 0.01);
        assert!((rp - 25.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trials_are_zero_rates() {
        let rates = ErrorRates::from_decisions(&[], &[]);
        assert_eq!(rates.far, 0.0);
        assert_eq!(rates.frr, 0.0);
        assert_eq!(equal_error_rate(&[], &[]), 0.0);
    }

    #[test]
    fn det_curve_is_monotone() {
        let genuine = [2.0, 3.0, 4.0, 5.0];
        let impostor = [0.0, 1.0, 2.5, 3.5];
        let curve = det_curve(&genuine, &impostor);
        for w in curve.windows(2) {
            assert!(
                w[1].rates.frr >= w[0].rates.frr - 1e-12,
                "FRR must not decrease"
            );
            assert!(
                w[1].rates.far <= w[0].rates.far + 1e-12,
                "FAR must not increase"
            );
        }
        // Sentinels.
        assert_eq!(curve.first().unwrap().rates.far, 1.0);
        assert_eq!(curve.first().unwrap().rates.frr, 0.0);
        assert_eq!(curve.last().unwrap().rates.far, 0.0);
        assert_eq!(curve.last().unwrap().rates.frr, 1.0);
    }
}

#![warn(missing_docs)]
#![cfg_attr(feature = "simd", feature(portable_simd))]
// The dense-matrix kernels (PCA, GMM, circle fit) intentionally use
// index loops: the math mirrors the textbook row/column notation, and
// iterator rewrites obscure the symmetric-index structure.
#![allow(clippy::needless_range_loop)]

//! # magshield-ml
//!
//! Machine-learning kernels implemented from scratch for the magshield
//! defense system:
//!
//! * [`kmeans`] — k-means++ initialization and Lloyd iterations (GMM
//!   bootstrap);
//! * [`gmm`] — diagonal-covariance Gaussian mixture models with EM
//!   training and MAP (relevance) adaptation — the engine of the GMM–UBM
//!   speaker verifier (§IV-C);
//! * [`svm`] — a linear soft-margin SVM trained with the Pegasos
//!   subgradient method — the sound-field binary classifier (§IV-B2);
//! * [`pca`] — principal component analysis via Jacobi eigendecomposition
//!   (the Fig. 8 visualization and feature compaction);
//! * [`scaler`] — feature standardization;
//! * [`circlefit`] — Kåsa least-squares circle fitting, cited by the paper
//!   (\[17\]) for its distance calculation;
//! * [`metrics`] — FAR/FRR sweeps, equal error rate and DET curves, the
//!   metrics every table and figure of the evaluation reports;
//! * [`codec`] — the versioned, checksummed binary artifact format every
//!   trained model serializes through (train once, serve many);
//! * [`delta`] — sparse, bit-exact mean-delta encoding of MAP-adapted
//!   mixtures against their UBM prior (durable-store WAL records).

pub mod circlefit;
pub mod codec;
pub mod delta;
pub mod gmm;
pub mod kmeans;
pub mod metrics;
pub mod pca;
pub mod scaler;
pub mod svm;

pub use codec::{BinaryCodec, CodecError};
pub use gmm::DiagonalGmm;
pub use metrics::{equal_error_rate, ErrorRates};
pub use pca::Pca;
pub use svm::LinearSvm;

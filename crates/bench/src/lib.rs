//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper's evaluation (§VI) — see DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for recorded results.

use magshield_core::pipeline::{BootstrapConfig, DefenseSystem};
use magshield_core::scenario::{bootstrap_with, ScenarioBuilder, UserContext};
use magshield_core::verdict::DefenseVerdict;
use magshield_obs::metrics::HistogramSnapshot;
use magshield_obs::PipelineTrace;
use magshield_simkit::rng::SimRng;
use magshield_voice::attacks::AttackKind;
use magshield_voice::devices::PlaybackDevice;
use magshield_voice::profile::SpeakerProfile;
use serde::Serialize;
use std::io::Write;

/// Master seed shared by all experiments so EXPERIMENTS.md is regenerable.
pub const EXPERIMENT_SEED: u64 = 20170605;

/// Builds the standard experiment system (moderate sizing) and its user.
pub fn experiment_system() -> (DefenseSystem, UserContext, SimRng) {
    let rng = SimRng::from_seed(EXPERIMENT_SEED);
    let (system, user) = bootstrap_with(&rng, BootstrapConfig::default());
    (system, user, rng)
}

/// Runs `n` genuine sessions at final distance `d_m`; returns verdicts.
pub fn genuine_verdicts(
    system: &DefenseSystem,
    user: &UserContext,
    d_m: f64,
    n: usize,
    rng: &SimRng,
    config: &magshield_core::config::DefenseConfig,
) -> Vec<DefenseVerdict> {
    (0..n)
        .map(|i| {
            let s = ScenarioBuilder::genuine(user)
                .at_distance(d_m)
                .capture(&rng.fork_indexed("genuine", i as u64));
            system.verify_with_config(&s, config)
        })
        .collect()
}

/// Runs replay attacks at distance `d_m` through each device in
/// `devices`, `per_device` times; returns verdicts.
#[allow(clippy::too_many_arguments)]
pub fn attack_verdicts(
    system: &DefenseSystem,
    user: &UserContext,
    devices: &[PlaybackDevice],
    d_m: f64,
    per_device: usize,
    shielded: bool,
    rng: &SimRng,
    config: &magshield_core::config::DefenseConfig,
) -> Vec<DefenseVerdict> {
    let attacker = SpeakerProfile::sample(901, &rng.fork("gauntlet-attacker"));
    let mut out = Vec::new();
    for (di, dev) in devices.iter().enumerate() {
        for i in 0..per_device {
            let mut b = ScenarioBuilder::machine_attack(
                user,
                AttackKind::Replay,
                dev.clone(),
                attacker.clone(),
            )
            .at_distance(d_m);
            if shielded {
                b = b.with_shielding();
            }
            let s = b.capture(&rng.fork_indexed("attack", (di * 1000 + i) as u64));
            out.push(system.verify_with_config(&s, config));
        }
    }
    out
}

/// FAR/FRR/EER from verdict sets: decisions at the nominal boundary, EER
/// from sweeping the boundary multiplier over the combined scores.
/// (Shared with the robustness matrix — see
/// [`magshield_core::robustness::rates`].)
pub fn rates(genuine: &[DefenseVerdict], attacks: &[DefenseVerdict]) -> (f64, f64, f64) {
    magshield_core::robustness::rates(genuine, attacks)
}

/// One emitted result row (also serialized to JSON for EXPERIMENTS.md).
#[derive(Debug, Serialize)]
pub struct ResultRow {
    /// Experiment id, e.g. "fig12a".
    pub experiment: String,
    /// Condition label, e.g. "d=6cm".
    pub condition: String,
    /// Metric name → value (percent unless noted).
    pub metrics: Vec<(String, f64)>,
}

/// Writes rows as JSON lines under `results/<experiment>.jsonl`.
///
/// The lines are rendered by hand (same shape `serde_json` would emit)
/// so the committed artifacts regenerate identically even in build
/// environments whose `serde_json` is a deserialization-only stub.
pub fn write_results(experiment: &str, rows: &[ResultRow]) {
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("{experiment}.jsonl"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        for r in rows {
            let _ = writeln!(f, "{}", r.to_json_line());
        }
        eprintln!("(wrote {})", path.display());
    }
}

impl ResultRow {
    /// The row as one JSON object, matching `serde_json`'s output for
    /// this type: `{"experiment":...,"condition":...,"metrics":[[k,v]]}`.
    pub fn to_json_line(&self) -> String {
        let metrics: Vec<String> = self
            .metrics
            .iter()
            .map(|(k, v)| format!("[{},{}]", json_str(k), json_f64(*v)))
            .collect();
        format!(
            "{{\"experiment\":{},\"condition\":{},\"metrics\":[{}]}}",
            json_str(&self.experiment),
            json_str(&self.condition),
            metrics.join(",")
        )
    }
}

/// JSON string literal with the escapes our labels can contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number: shortest round-trip form, with non-finite values mapped
/// to `null` (what `serde_json` emits for them).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Bare integers like `5` are valid JSON numbers, but keep the
        // float form serde_json used (`5.0`) so diffs stay clean.
        if s.contains('.') || s.contains('e') || s.contains("inf") {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// Percentile cells from a latency histogram, in milliseconds, keyed
/// `<prefix>_p50_ms` … `<prefix>_max_ms` for [`ResultRow::metrics`].
pub fn latency_metrics(prefix: &str, h: &HistogramSnapshot) -> Vec<(String, f64)> {
    [
        ("p50_ms", h.quantile(0.50)),
        ("p95_ms", h.quantile(0.95)),
        ("p99_ms", h.quantile(0.99)),
        ("max_ms", h.max_s()),
    ]
    .into_iter()
    .map(|(k, secs)| (format!("{prefix}_{k}"), secs * 1e3))
    .collect()
}

/// Prints one labelled `n / p50 / p95 / p99 / max` latency line.
pub fn print_latency(label: &str, h: &HistogramSnapshot) {
    println!(
        "{label:>20}: n={:<5} p50={:>8.3} ms  p95={:>8.3} ms  p99={:>8.3} ms  max={:>8.3} ms",
        h.count,
        h.quantile(0.50) * 1e3,
        h.quantile(0.95) * 1e3,
        h.quantile(0.99) * 1e3,
        h.max_s() * 1e3,
    );
}

/// Appends per-session pipeline traces as JSON lines under
/// `results/logs/<experiment>_traces.jsonl`, size-capped: past
/// [`magshield_obs::export::DEFAULT_MAX_JSONL_BYTES`] the file rotates
/// to `.1` and restarts, so repeated experiment runs keep the newest
/// traces without growing the log without bound.
pub fn write_trace_log(experiment: &str, traces: &[PipelineTrace]) {
    let path = std::path::Path::new("results")
        .join("logs")
        .join(format!("{experiment}_traces.jsonl"));
    match PipelineTrace::append_jsonl_rotating(
        &path,
        traces,
        magshield_obs::export::DEFAULT_MAX_JSONL_BYTES,
    ) {
        Ok(()) => eprintln!("(wrote {} traces to {})", traces.len(), path.display()),
        Err(e) => eprintln!("(failed to write {}: {e})", path.display()),
    }
}

/// Prints a fixed-width header.
pub fn print_header(title: &str, cols: &[&str]) {
    println!("\n=== {title} ===");
    let mut line = String::new();
    for c in cols {
        line.push_str(&format!("{c:>14}"));
    }
    println!("{line}");
    println!("{}", "-".repeat(14 * cols.len()));
}

/// Prints a row of f64 cells after a label cell.
pub fn print_row(label: &str, values: &[f64]) {
    let mut line = format!("{label:>14}");
    for v in values {
        line.push_str(&format!("{v:>14.1}"));
    }
    println!("{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_row_renders_serde_compatible_json() {
        let row = ResultRow {
            experiment: "fig12".into(),
            condition: "d=6cm \"quoted\"".into(),
            metrics: vec![
                ("far_pct".into(), 16.666666666666664),
                ("n".into(), 12.0),
                ("bad".into(), f64::NAN),
            ],
        };
        assert_eq!(
            row.to_json_line(),
            "{\"experiment\":\"fig12\",\"condition\":\"d=6cm \\\"quoted\\\"\",\
             \"metrics\":[[\"far_pct\",16.666666666666664],[\"n\",12.0],[\"bad\",null]]}"
        );
    }
}

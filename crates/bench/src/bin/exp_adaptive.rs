//! §VII "Adaptive Thresholding" — in a high-EMF environment (the car of
//! Fig. 14(b)) fixed thresholds reject a large share of genuine users; a
//! pre-session environment calibration restores usability without
//! admitting the replay attacks.
//!
//! Also exercises the anti-gaming clamp: calibrating in a *noisy* place
//! and attacking in a *quiet* one must not help the attacker.
//!
//! ```sh
//! cargo run --release -p magshield-bench --bin exp_adaptive
//! ```

use magshield_bench::*;
use magshield_core::adaptive::{adapted_config, calibrate};
use magshield_core::scenario::ScenarioBuilder;
use magshield_physics::magnetics::interference::EmfEnvironment;
use magshield_physics::magnetics::scene::MagneticScene;
use magshield_simkit::vec3::Vec3;
use magshield_voice::attacks::AttackKind;
use magshield_voice::devices::table_iv_catalog;
use magshield_voice::profile::SpeakerProfile;

fn main() {
    let (system, user, rng) = experiment_system();
    let attacker = SpeakerProfile::sample(907, &rng.fork("attacker"));
    let devices: Vec<_> = [0usize, 7, 18]
        .iter()
        .map(|&i| table_iv_catalog()[i].clone())
        .collect();
    let env = EmfEnvironment::in_car();

    // Pre-session calibration: 3 s of stationary readings in the car.
    let scene = MagneticScene::quiet().with_environment(env.clone());
    let stationary = scene.sample_along(
        &vec![Vec3::new(0.05, -0.15, 0.0); 300],
        100.0,
        &rng.fork("calibration"),
    );
    let cal = calibrate(&stationary);
    let adapted = adapted_config(system.config, cal);
    println!(
        "car calibration: noise RMS {:.2} µT → Mt {:.1} µT, βt {:.0} µT/s (factory {:.1}/{:.0})",
        cal.noise_rms_ut,
        adapted.mag_deviation_ut,
        adapted.mag_rate_ut_per_s,
        system.config.mag_deviation_ut,
        system.config.mag_rate_ut_per_s
    );

    let mut rows = Vec::new();
    print_header(
        "in-car FRR/FAR, fixed vs adaptive thresholds (d = 5 cm)",
        &["config", "FAR %", "FRR %"],
    );
    for (label, config) in [("fixed", system.config), ("adaptive", adapted)] {
        let erng = rng.fork(label);
        let genuine: Vec<_> = (0..20)
            .map(|i| {
                let s = ScenarioBuilder::genuine(&user)
                    .in_environment(env.clone())
                    .capture(&erng.fork_indexed("g", i));
                system.verify_with_config(&s, &config)
            })
            .collect();
        let attacks: Vec<_> = devices
            .iter()
            .enumerate()
            .flat_map(|(di, dev)| {
                (0..4)
                    .map(|i| {
                        let s = ScenarioBuilder::machine_attack(
                            &user,
                            AttackKind::Replay,
                            dev.clone(),
                            attacker.clone(),
                        )
                        .at_distance(0.05)
                        .in_environment(env.clone())
                        .capture(&erng.fork_indexed("a", (di * 100 + i) as u64));
                        system.verify_with_config(&s, &config)
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let (far, frr, _eer) = rates(&genuine, &attacks);
        print_row(label, &[far, frr]);
        rows.push(ResultRow {
            experiment: "adaptive".into(),
            condition: format!("car-{label}"),
            metrics: vec![("far_pct".into(), far), ("frr_pct".into(), frr)],
        });
    }

    // Anti-gaming check: adapted (car) thresholds used against quiet-room
    // replay attacks must still detect them.
    let quiet_attacks: Vec<_> = devices
        .iter()
        .enumerate()
        .flat_map(|(di, dev)| {
            let rng = rng.fork_indexed("gaming", di as u64);
            let user = &user;
            let system = &system;
            let attacker = attacker.clone();
            let dev = dev.clone();
            (0..4)
                .map(move |i| {
                    let s = ScenarioBuilder::machine_attack(
                        user,
                        AttackKind::Replay,
                        dev.clone(),
                        attacker.clone(),
                    )
                    .at_distance(0.05)
                    .capture(&rng.fork_indexed("s", i));
                    system.verify_with_config(&s, &adapted)
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let far_gaming =
        quiet_attacks.iter().filter(|v| v.accepted()).count() as f64 / quiet_attacks.len() as f64;
    println!(
        "\nanti-gaming: quiet-room replays under car-adapted thresholds → FAR {:.1} %",
        far_gaming * 100.0
    );
    rows.push(ResultRow {
        experiment: "adaptive".into(),
        condition: "anti-gaming".into(),
        metrics: vec![("far_pct".into(), far_gaming * 100.0)],
    });
    println!("paper (proposed): calibration should recover the car FRR; the clamp");
    println!("bounds how much an attacker can gain by training in a noisy spot.");
    write_results("adaptive", &rows);
}

//! Adversarial robustness matrix: attack family × EMF environment ×
//! execution policy, per-cell FAR/FRR/EER.
//!
//! Every cell runs its corpus through a
//! [`magshield_core::batch::BatchEngine`] — the same
//! admission-controlled path production traffic takes — so a perf or
//! refactor PR that changes verdicts anywhere in the batch path moves a
//! cell and trips the gate. The corpus is deterministic under
//! [`EXPERIMENT_SEED`]: captures are pure functions of the seed, so two
//! runs of the same build produce bit-identical tables.
//!
//! Two output shapes:
//!
//! * full run (default): the committed per-cell table
//!   `results/robustness_matrix.jsonl` (one JSON row per cell) — the
//!   repo's security reference surface;
//! * `--quick`: the CI smoke slice — tiny bootstrap, reduced trial
//!   counts, full family/environment/policy coverage — written as a
//!   single JSON document (default `results/BENCH_robustness.json`,
//!   override with `--out`) consumed by `scripts/security_gate.py`.
//!   The committed baseline is a `--quick` artifact so CI compares
//!   like with like.
//!
//! The JSON is written by hand so the artifact is produced identically
//! in every build environment.

use magshield_bench::{print_header, print_row, write_results, ResultRow, EXPERIMENT_SEED};
use magshield_core::pipeline::BootstrapConfig;
use magshield_core::robustness::{family_far, run_matrix, CellResult, MatrixSpec};
use magshield_core::scenario::bootstrap_with;
use magshield_simkit::rng::SimRng;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/BENCH_robustness.json".to_string());

    let rng = SimRng::from_seed(EXPERIMENT_SEED);
    let (bootstrap, spec) = if quick {
        (BootstrapConfig::tiny(), MatrixSpec::smoke())
    } else {
        (BootstrapConfig::default(), MatrixSpec::full())
    };
    eprintln!(
        "(bootstrapping {} system; {} cells...)",
        if quick { "tiny" } else { "full" },
        spec.cells()
    );
    let (system, user) = bootstrap_with(&rng, bootstrap);
    let cells = run_matrix(&system, &user, &spec, &rng.fork("robustness"));

    print_header(
        "Robustness matrix (FAR/FRR/EER %, per cell)",
        &["cell", "FAR %", "FRR %", "EER %"],
    );
    for c in &cells {
        print_row(
            &format!("{}/{}/{}", c.family, c.environment, c.policy),
            &[c.far_pct, c.frr_pct, c.eer_pct],
        );
    }
    println!("\nper-family FAR (gated no-rise):");
    for (family, far) in family_far(&cells) {
        println!("  {family:>20}: {far:>6.2} %");
    }

    if quick {
        write_gate_json(&out, quick, &spec, &cells);
    } else {
        let rows: Vec<ResultRow> = cells
            .iter()
            .map(|c| ResultRow {
                experiment: "robustness_matrix".into(),
                condition: format!("{}/{}/{}", c.family, c.environment, c.policy),
                metrics: vec![
                    ("far_pct".into(), c.far_pct),
                    ("frr_pct".into(), c.frr_pct),
                    ("eer_pct".into(), c.eer_pct),
                    ("attacks".into(), c.attacks as f64),
                    ("genuine".into(), c.genuine as f64),
                ],
            })
            .collect();
        write_results("robustness_matrix", &rows);
    }
}

/// Hand-rolled gate JSON: per-cell table plus per-family FAR aggregates
/// and a small `"metrics"` block (bench_gate-compatible) summarizing the
/// security posture in two scalars.
fn write_gate_json(path: &str, quick: bool, spec: &MatrixSpec, cells: &[CellResult]) {
    let mut cell_lines: Vec<String> = Vec::with_capacity(cells.len());
    for c in cells {
        cell_lines.push(format!(
            "    {{\"family\": \"{}\", \"environment\": \"{}\", \"policy\": \"{}\", \
             \"attacks\": {}, \"genuine\": {}, \"far_pct\": {:.4}, \"frr_pct\": {:.4}, \
             \"eer_pct\": {:.4}}}",
            c.family,
            c.environment,
            c.policy,
            c.attacks,
            c.genuine,
            c.far_pct,
            c.frr_pct,
            c.eer_pct
        ));
    }
    let fars = family_far(cells);
    let family_lines: Vec<String> = fars
        .iter()
        .map(|(f, far)| format!("    \"{f}\": {{\"far_pct\": {far:.4}}}"))
        .collect();
    let worst_far = fars.iter().map(|(_, f)| *f).fold(0.0f64, f64::max);
    let mean_eer = if cells.is_empty() {
        0.0
    } else {
        cells.iter().map(|c| c.eer_pct).sum::<f64>() / cells.len() as f64
    };
    let json = format!(
        "{{\n  \"experiment\": \"robustness\",\n  \"quick\": {quick},\n  \
         \"seed\": {EXPERIMENT_SEED},\n  \
         \"genuine_per_env\": {},\n  \"attacks_per_cell\": {},\n  \
         \"cells\": [\n{}\n  ],\n  \
         \"families\": {{\n{}\n  }},\n  \
         \"metrics\": {{\n    \
         \"robustness_worst_family_far_pct\": {{\"value\": {worst_far:.4}, \"direction\": \"lower\"}},\n    \
         \"robustness_mean_eer_pct\": {{\"value\": {mean_eer:.4}, \"direction\": \"lower\"}}\n  }}\n}}\n",
        spec.genuine_per_env,
        spec.attacks_per_cell,
        cell_lines.join(",\n"),
        family_lines.join(",\n"),
    );
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("(wrote {path})"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}

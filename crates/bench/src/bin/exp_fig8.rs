//! Fig. 8 — PCA of sound-field feature vectors: human-mouth fields vs.
//! earphone fields separate into two clusters.
//!
//! Captures 40 genuine sessions and 40 earphone-replay sessions, extracts
//! the (volume, rotation-angle) feature vectors of §IV-B2, projects with
//! PCA(2) and reports the cluster separation.
//!
//! ```sh
//! cargo run --release -p magshield-bench --bin exp_fig8
//! ```

use magshield_bench::{write_results, ResultRow, EXPERIMENT_SEED};
use magshield_core::components::sound_field::feature_vector;
use magshield_core::scenario::{ScenarioBuilder, UserContext};
use magshield_ml::pca::Pca;
use magshield_simkit::rng::SimRng;
use magshield_voice::attacks::AttackKind;
use magshield_voice::devices::table_iv_catalog;
use magshield_voice::profile::SpeakerProfile;

fn main() {
    let rng = SimRng::from_seed(EXPERIMENT_SEED).fork("fig8");
    let user = UserContext::sample(&rng.fork("user"));
    let attacker = SpeakerProfile::sample(903, &rng.fork("attacker"));
    let earphone = table_iv_catalog()
        .into_iter()
        .find(|d| d.name.contains("EarPods"))
        .unwrap();
    let bins = 12;
    let n = 40;

    println!("capturing {n} mouth sessions and {n} earphone sessions...");
    let mut mouth = Vec::new();
    let mut ear = Vec::new();
    for i in 0..n {
        let d = 0.045 + 0.015 * (i as f64 / n as f64);
        if let Some(v) = feature_vector(
            &ScenarioBuilder::genuine(&user)
                .at_distance(d)
                .capture(&rng.fork_indexed("mouth", i as u64)),
            bins,
        ) {
            mouth.push(v);
        }
        if let Some(v) = feature_vector(
            &ScenarioBuilder::machine_attack(
                &user,
                AttackKind::Replay,
                earphone.clone(),
                attacker.clone(),
            )
            .at_distance(d)
            .capture(&rng.fork_indexed("ear", i as u64)),
            bins,
        ) {
            ear.push(v);
        }
    }

    let mut all = mouth.clone();
    all.extend(ear.clone());
    let pca = Pca::fit(&all, 2);
    let pm = pca.transform_batch(&mouth);
    let pe = pca.transform_batch(&ear);

    let centroid = |pts: &[Vec<f64>]| -> (f64, f64) {
        let n = pts.len() as f64;
        (
            pts.iter().map(|p| p[0]).sum::<f64>() / n,
            pts.iter().map(|p| p[1]).sum::<f64>() / n,
        )
    };
    let spread = |pts: &[Vec<f64>], c: (f64, f64)| -> f64 {
        (pts.iter()
            .map(|p| (p[0] - c.0).powi(2) + (p[1] - c.1).powi(2))
            .sum::<f64>()
            / pts.len() as f64)
            .sqrt()
    };
    let cm = centroid(&pm);
    let ce = centroid(&pe);
    let sm = spread(&pm, cm);
    let se = spread(&pe, ce);
    let dist = ((cm.0 - ce.0).powi(2) + (cm.1 - ce.1).powi(2)).sqrt();

    println!("\nPCA axis 1/2 coordinates (first 10 of each class):");
    println!(
        "{:>10} {:>10}   {:>10} {:>10}",
        "mouth-1", "mouth-2", "ear-1", "ear-2"
    );
    for i in 0..10.min(pm.len()).min(pe.len()) {
        println!(
            "{:>10.2} {:>10.2}   {:>10.2} {:>10.2}",
            pm[i][0], pm[i][1], pe[i][0], pe[i][1]
        );
    }
    println!(
        "\nmouth centroid ({:.2}, {:.2}), spread {:.2}",
        cm.0, cm.1, sm
    );
    println!(
        "earphone centroid ({:.2}, {:.2}), spread {:.2}",
        ce.0, ce.1, se
    );
    println!(
        "centroid separation {:.2} = {:.1}× the mean within-class spread",
        dist,
        dist / ((sm + se) / 2.0)
    );
    println!("paper: the two point clouds are cleanly separable (Fig. 8).");

    let mut rows = vec![ResultRow {
        experiment: "fig8".into(),
        condition: "summary".into(),
        metrics: vec![
            ("centroid_separation".into(), dist),
            ("mouth_spread".into(), sm),
            ("ear_spread".into(), se),
            ("separation_ratio".into(), dist / ((sm + se) / 2.0)),
        ],
    }];
    for (cls, pts) in [("mouth", &pm), ("earphone", &pe)] {
        for (i, p) in pts.iter().enumerate() {
            rows.push(ResultRow {
                experiment: "fig8".into(),
                condition: format!("{cls}-{i}"),
                metrics: vec![("pc1".into(), p[0]), ("pc2".into(), p[1])],
            });
        }
    }
    write_results("fig8", &rows);
}

//! Micro-benchmark for the telemetry plane's hot path (DESIGN.md §12):
//! what does always-on labeled instrumentation cost a verification?
//!
//! Three primitive timings (flat counter inc, interned labeled inc, and
//! a labeled histogram record carrying an exemplar) are composed into
//! the per-session recording sequence the cascade actually performs —
//! one labeled stage histogram + flat twin + stage counter per stage,
//! plus the session-level pair — and compared against the measured
//! end-to-end verify latency. Absolute ns/op varies across machines, so
//! the CI gate compares only **ratios** under the `"metrics"` key:
//!
//! * `obs_overhead_pct` — per-session telemetry cost as a percentage
//!   of verify latency. The headline number: the telemetry plane must
//!   stay a rounding error next to the DSP/ASV work it observes.
//! * `labeled_inc_vs_flat` — interned labeled increment vs. a plain
//!   atomic increment; bounds the label-lookup tax.
//! * `exemplar_record_vs_flat` — labeled histogram record with exemplar
//!   capture vs. a flat record; bounds the exemplar tax.
//!
//! Output: `results/BENCH_obs.json` (override with `--out`), consumed
//! by `scripts/bench_gate.py` in the CI `bench-gate` job. `--quick`
//! shrinks the system and timing budgets for CI. JSON is hand-rolled so
//! the artifact is produced identically in every build environment.

use magshield_bench::{print_header, print_row, EXPERIMENT_SEED};
use magshield_core::pipeline::BootstrapConfig;
use magshield_core::scenario::{bootstrap_with, ScenarioBuilder};
use magshield_obs::labels::Labels;
use magshield_obs::metrics::Registry;
use magshield_simkit::rng::SimRng;
use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

/// Cascade stages instrumented per session (distance, SLD, sound field,
/// loudspeaker, speaker id).
const STAGES: usize = 5;

/// Ops batched per timed closure call so sub-10ns primitives are
/// measured above timer resolution.
const BATCH: usize = 256;

struct Timings {
    flat_inc_ns: f64,
    labeled_inc_ns: f64,
    flat_record_ns: f64,
    exemplar_record_ns: f64,
    verify_ns: f64,
    session_obs_ns: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/BENCH_obs.json".to_string());

    let rng = SimRng::from_seed(EXPERIMENT_SEED).fork("obs-overhead");
    let budget_s = if quick { 0.05 } else { 0.25 };

    eprintln!("(bootstrapping defense system...)");
    let bootstrap = if quick {
        BootstrapConfig::tiny()
    } else {
        BootstrapConfig::default()
    };
    let (system, user) = bootstrap_with(&rng, bootstrap);
    let session = ScenarioBuilder::genuine(&user).capture(&rng.fork("capture"));

    let registry = Registry::default();
    let flat = registry.counter("bench.flat");
    let labeled_vec = registry.counter_vec("bench.labeled");
    let flat_hist = registry.histogram("bench.flat.seconds");
    let hist_vec = registry.histogram_vec("bench.labeled.seconds");
    // The same label shapes the cascade uses, cycled so the interning
    // cache is exercised across keys, not pinned to one hot entry.
    let stage_labels: Vec<Labels> = [
        "distance",
        "sld",
        "sound_field",
        "loudspeaker",
        "speaker_id",
    ]
    .iter()
    .map(|s| Labels::new().stage(s).policy("full"))
    .collect();

    let flat_inc_ns = time_ns_per_op(budget_s, || {
        for _ in 0..BATCH {
            black_box(&flat).inc();
        }
    });
    let labeled_inc_ns = time_ns_per_op(budget_s, || {
        for i in 0..BATCH {
            labeled_vec.with(black_box(&stage_labels[i % STAGES])).inc();
        }
    });
    let flat_record_ns = time_ns_per_op(budget_s, || {
        for i in 0..BATCH {
            flat_hist.record_secs(black_box(1e-4 * (i + 1) as f64));
        }
    });
    let exemplar_record_ns = time_ns_per_op(budget_s, || {
        for i in 0..BATCH {
            hist_vec
                .with(black_box(&stage_labels[i % STAGES]))
                .record_secs_with_exemplar(black_box(1e-4 * (i + 1) as f64), "speaker-7");
        }
    });

    // End-to-end verify latency, instrumented as shipped.
    let verify_budget = budget_s * 4.0;
    for _ in 0..2 {
        black_box(system.verify(&session));
    }
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_secs_f64() < verify_budget {
        black_box(system.verify(&session));
        iters += 1;
    }
    let verify_ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;

    // The per-session recording sequence (cascade step + finish): each
    // stage lands a flat counter, a flat histogram and a labeled
    // exemplar record; the session lands one more flat + labeled pair.
    let session_obs_ns = STAGES as f64 * (flat_inc_ns + flat_record_ns + exemplar_record_ns)
        + (flat_record_ns + exemplar_record_ns);

    let t = Timings {
        flat_inc_ns,
        labeled_inc_ns,
        flat_record_ns,
        exemplar_record_ns,
        verify_ns,
        session_obs_ns,
    };

    print_header(
        &format!("telemetry-plane overhead ({iters} verifies timed)"),
        &["ns/op"],
    );
    print_row("flat inc", &[t.flat_inc_ns]);
    print_row("labeled inc", &[t.labeled_inc_ns]);
    print_row("flat record", &[t.flat_record_ns]);
    print_row("exemplar rec", &[t.exemplar_record_ns]);
    print_row("session obs", &[t.session_obs_ns]);
    print_row("verify", &[t.verify_ns]);
    println!(
        "\nobs overhead: {:.4}% of verify latency",
        100.0 * t.session_obs_ns / t.verify_ns
    );

    write_json(&out, quick, &t);
}

/// Runs `f` (a `BATCH`-op closure) until `budget_s` of wall clock is
/// spent (after warm-up) and returns mean ns per op.
fn time_ns_per_op(budget_s: f64, mut f: impl FnMut()) -> f64 {
    for _ in 0..3 {
        f();
    }
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_secs_f64() < budget_s {
        f();
        iters += 1;
    }
    start.elapsed().as_secs_f64() * 1e9 / (iters as f64 * BATCH as f64)
}

/// Hand-rolled JSON, same contract as `exp_kernels::write_json`:
/// ratios under `"metrics"` are gated, raw ns/op stays under `"info"`.
fn write_json(path: &str, quick: bool, t: &Timings) {
    let metric = |name: &str, value: f64, last: bool| {
        format!(
            "    \"{name}\": {{\"value\": {value:.4}, \"direction\": \"lower\"}}{}\n",
            if last { "" } else { "," }
        )
    };
    let mut metrics = String::new();
    metrics.push_str(&metric(
        "obs_overhead_pct",
        100.0 * t.session_obs_ns / t.verify_ns,
        false,
    ));
    metrics.push_str(&metric(
        "labeled_inc_vs_flat",
        t.labeled_inc_ns / t.flat_inc_ns,
        false,
    ));
    metrics.push_str(&metric(
        "exemplar_record_vs_flat",
        t.exemplar_record_ns / t.flat_record_ns,
        true,
    ));
    let json = format!(
        "{{\n  \"experiment\": \"obs_overhead\",\n  \"quick\": {quick},\n  \"info\": {{\n    \
         \"stages\": {STAGES},\n    \
         \"flat_inc_ns\": {:.2},\n    \
         \"labeled_inc_ns\": {:.2},\n    \
         \"flat_record_ns\": {:.2},\n    \
         \"exemplar_record_ns\": {:.2},\n    \
         \"session_obs_ns\": {:.1},\n    \
         \"verify_ns\": {:.1}\n  }},\n  \"metrics\": {{\n{metrics}  }}\n}}\n",
        t.flat_inc_ns,
        t.labeled_inc_ns,
        t.flat_record_ns,
        t.exemplar_record_ns,
        t.session_obs_ns,
        t.verify_ns,
    );
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("(wrote {path})"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}

//! Audio-only replay detection vs. the magnetometer channel.
//!
//! §II of the paper dismisses prior replay countermeasures: "all these
//! systems suffer from high false acceptance rate (FAR)". This experiment
//! makes that comparison concrete: an acoustic replay detector (channel
//! artifacts + spectral statistics, `magshield_asv::replay_baseline`) is
//! trained on genuine vs. replayed audio and evaluated per device class,
//! against the magshield loudspeaker detector on the same sessions.
//!
//! Expected shape: the acoustic baseline does fine on band-limited
//! devices (phone/laptop speakers leave spectral scars) and collapses on
//! full-range loudspeakers — while the magnetometer does not care how
//! good the speaker sounds, only that it has a magnet.
//!
//! ```sh
//! cargo run --release -p magshield-bench --bin exp_baseline
//! ```

use magshield_asv::replay_baseline::ReplayDetector;
use magshield_bench::*;
use magshield_core::components::loudspeaker;
use magshield_core::config::DefenseConfig;
use magshield_core::scenario::{ScenarioBuilder, UserContext};
use magshield_simkit::rng::SimRng;
use magshield_voice::attacks::{apply_device_response, attack_audio, AttackKind};
use magshield_voice::devices::{table_iv_catalog, DeviceClass, PlaybackDevice};
use magshield_voice::profile::SpeakerProfile;
use magshield_voice::synth::{FormantSynthesizer, SessionEffects, VOICE_SAMPLE_RATE};

/// Renders genuine and replayed audio through `device`.
fn audio_corpus(device: &PlaybackDevice, n: usize, rng: &SimRng) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let synth = FormantSynthesizer::default();
    let mut genuine = Vec::new();
    let mut replayed = Vec::new();
    for i in 0..n as u32 {
        let sp = SpeakerProfile::sample(i, &rng.fork("speakers"));
        let fx = SessionEffects::sample(&rng.fork_indexed("fx", u64::from(i)), 0.8);
        genuine.push(synth.render_digits(&sp, "271828", fx, &rng.fork_indexed("g", u64::from(i))));
        let attacker = SpeakerProfile::sample(500 + i, &rng.fork("attackers"));
        let mut atk = attack_audio(
            AttackKind::Replay,
            &attacker,
            &sp,
            "271828",
            &rng.fork_indexed("a", u64::from(i)),
        );
        apply_device_response(&mut atk, VOICE_SAMPLE_RATE, device);
        replayed.push(atk);
    }
    (genuine, replayed)
}

fn main() {
    let rng = SimRng::from_seed(EXPERIMENT_SEED).fork("baseline");
    let user = UserContext::sample(&rng.fork("user"));
    let attacker = SpeakerProfile::sample(909, &rng.fork("mag-attacker"));
    let config = DefenseConfig::default();

    // Representative devices per class, high-fidelity → low-fidelity.
    let catalog = table_iv_catalog();
    let devices: Vec<PlaybackDevice> = ["Pioneer", "Logitech", "Macbook Pro", "iPhone 4S"]
        .iter()
        .map(|k| catalog.iter().find(|d| d.name.contains(k)).unwrap().clone())
        .collect();

    print_header(
        "audio-only replay baseline vs magnetometer (EER / FAR@10%FRR, %)",
        &["device", "base EER", "base FAR", "mag detect"],
    );
    let mut rows = Vec::new();
    for dev in &devices {
        let drng = rng.fork(dev.name);
        // --- acoustic baseline ---
        let (g, r) = audio_corpus(dev, 24, &drng);
        let gr: Vec<&[f64]> = g.iter().map(|v| v.as_slice()).collect();
        let rr: Vec<&[f64]> = r.iter().map(|v| v.as_slice()).collect();
        let det = ReplayDetector::train(&gr[..12], &rr[..12], VOICE_SAMPLE_RATE, &drng);
        let report = det.evaluate(&gr[12..], &rr[12..], VOICE_SAMPLE_RATE);
        let eer = report.eer() * 100.0;
        // FAR at the threshold rejecting ≤10 % of genuine trials.
        let mut gs = report.genuine_scores.clone();
        gs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let thr = gs[(0.10 * (gs.len() - 1) as f64) as usize];
        let far = report.rates_at(thr).far * 100.0;

        // --- magnetometer channel on full sessions ---
        let mut detected = 0;
        let trials = 6;
        for i in 0..trials {
            let s = ScenarioBuilder::machine_attack(
                &user,
                AttackKind::Replay,
                dev.clone(),
                attacker.clone(),
            )
            .at_distance(0.05)
            .capture(&drng.fork_indexed("mag", i));
            if loudspeaker::verify(&s, &config).result.attack_score >= 1.0 {
                detected += 1;
            }
        }
        let mag_pct = detected as f64 / trials as f64 * 100.0;
        print_row(
            dev.name.split_whitespace().next().unwrap_or("?"),
            &[eer, far, mag_pct],
        );
        rows.push(ResultRow {
            experiment: "baseline".into(),
            condition: dev.name.into(),
            metrics: vec![
                ("baseline_eer_pct".into(), eer),
                ("baseline_far_at_10frr_pct".into(), far),
                ("magnetometer_detect_pct".into(), mag_pct),
                (
                    "class".into(),
                    match dev.class {
                        DeviceClass::PcSpeaker => 0.0,
                        DeviceClass::Bluetooth => 1.0,
                        DeviceClass::LaptopInternal => 2.0,
                        DeviceClass::PhoneInternal => 3.0,
                        _ => 9.0,
                    },
                ),
            ],
        });
    }
    write_results("baseline", &rows);
    println!("\npaper (§II): audio-only replay countermeasures 'suffer from high FAR';");
    println!("the magnetometer detects every magnet-driven device regardless of fidelity.");
}

//! §VII "Unconventional Loudspeakers" — electrostatic panels (no
//! permanent magnet, but metal grids that perturb the field, and a large
//! radiating surface) and piezoelectric tweeters (no magnet, poor voice
//! band).
//!
//! ```sh
//! cargo run --release -p magshield-bench --bin exp_unconventional
//! ```

use magshield_bench::*;
use magshield_core::scenario::ScenarioBuilder;
use magshield_core::verdict::Component;
use magshield_simkit::rng::SimRng;
use magshield_voice::attacks::AttackKind;
use magshield_voice::devices::unconventional_catalog;
use magshield_voice::profile::SpeakerProfile;

fn main() {
    let (system, user, rng) = experiment_system();
    let attacker = SpeakerProfile::sample(906, &rng.fork("attacker"));
    let trials = 6;

    print_header(
        "unconventional loudspeakers (replay at 5 cm)",
        &["device", "rejected %", "field %", "mag %", "asv %"],
    );
    let mut rows = Vec::new();
    for (di, dev) in unconventional_catalog().into_iter().enumerate() {
        let mut rejected = 0;
        let (mut by_field, mut by_mag, mut by_asv) = (0, 0, 0);
        for t in 0..trials {
            let s = ScenarioBuilder::machine_attack(
                &user,
                AttackKind::Replay,
                dev.clone(),
                attacker.clone(),
            )
            .at_distance(0.05)
            .capture(&SimRng::from_seed(
                EXPERIMENT_SEED ^ 0xE51 ^ ((di as u64) << 8 | t as u64),
            ));
            let v = system.verify(&s);
            if !v.accepted() {
                rejected += 1;
            }
            let hit = |c: Component| v.result_of(c).is_some_and(|r| r.attack_score >= 1.0);
            if hit(Component::SoundField) {
                by_field += 1;
            }
            if hit(Component::Loudspeaker) {
                by_mag += 1;
            }
            if hit(Component::SpeakerIdentity) {
                by_asv += 1;
            }
        }
        let pct = |x: i32| x as f64 / trials as f64 * 100.0;
        let label = if dev.name.contains("electro") {
            "ESL"
        } else {
            "piezo"
        };
        print_row(
            label,
            &[pct(rejected), pct(by_field), pct(by_mag), pct(by_asv)],
        );
        rows.push(ResultRow {
            experiment: "unconventional".into(),
            condition: dev.name.into(),
            metrics: vec![
                ("rejected_pct".into(), pct(rejected)),
                ("by_field_pct".into(), pct(by_field)),
                ("by_magnet_pct".into(), pct(by_mag)),
                ("by_asv_pct".into(), pct(by_asv)),
            ],
        });
    }
    println!("\npaper: the ESL is still caught (grid interference + panel size);");
    println!("piezo tweeters lack voice-band quality and trip the other stages.");
    write_results("unconventional", &rows);
}

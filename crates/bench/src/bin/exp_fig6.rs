//! Fig. 6 — received spectrograph of the high-frequency pilot tone while
//! the phone moves toward the mouth.
//!
//! Renders the pilot echo over a genuine approach (20 cm → 5 cm) and
//! prints the pilot-band magnitude/phase trace per frame: the paper's
//! figure shows the pilot ridge with phase evolution encoding the motion.
//!
//! ```sh
//! cargo run --release -p magshield-bench --bin exp_fig6
//! ```

use magshield_bench::{write_results, ResultRow, EXPERIMENT_SEED};
use magshield_core::scenario::{ScenarioBuilder, UserContext};
use magshield_dsp::phase::{phase_to_displacement, PhaseTracker};
use magshield_dsp::stft::{Spectrogram, StftConfig};
use magshield_dsp::window::WindowKind;
use magshield_simkit::rng::SimRng;

fn main() {
    let rng = SimRng::from_seed(EXPERIMENT_SEED).fork("fig6");
    let user = UserContext::sample(&rng.fork("user"));
    let session = ScenarioBuilder::genuine(&user).capture(&rng.fork("session"));

    // Spectrogram around the pilot.
    let sg = Spectrogram::compute(
        &session.audio,
        session.audio_rate,
        StftConfig {
            frame_len: 2048,
            hop: 1024,
            window: WindowKind::Blackman,
        },
    );
    let trace = sg.bin_trace(session.pilot_hz);
    let peak = trace.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    println!(
        "pilot {} Hz over a genuine approach; spectrogram {} frames × {} bins",
        session.pilot_hz,
        sg.num_frames(),
        sg.num_bins()
    );
    println!("\npilot-band magnitude per frame (amplitude grows as the phone closes in):");
    let mut rows = Vec::new();
    for (t, m) in sg.frame_times().iter().zip(&trace) {
        let bars = "#".repeat(((m / peak) * 48.0) as usize);
        println!("  t={t:>5.2}s |{bars}");
        rows.push(ResultRow {
            experiment: "fig6".into(),
            condition: format!("t={t:.2}"),
            metrics: vec![("pilot_magnitude".into(), *m)],
        });
    }

    // The phase view: unwrapped phase → displacement.
    let track = PhaseTracker::new(session.pilot_hz, session.audio_rate)
        .track(&session.audio, session.audio_rate);
    if track.phase.len() > 2 {
        let split = track
            .times
            .iter()
            .position(|&t| t >= session.sweep_start_s)
            .unwrap_or(track.phase.len() - 1);
        let dphi = track.phase[split.saturating_sub(1)] - track.phase[0];
        let dd = phase_to_displacement(
            dphi,
            session.pilot_hz,
            magshield_physics::acoustics::medium::SPEED_OF_SOUND,
        );
        println!(
            "\nunwrapped pilot phase over the approach: {dphi:.1} rad → displacement {:.1} cm",
            dd * 100.0
        );
        println!("(true approach: −15 cm; the phase track recovers it at sub-cm error)");
    }
    write_results("fig6", &rows);
}

//! Ablation: the cascade's defense-in-depth.
//!
//! DESIGN.md calls out the design choice the paper argues for —
//! *complementary* components rather than any single detector. This
//! experiment removes one stage at a time via a real [`StageMask`] — the
//! masked stage never executes, instead of its verdict being filtered out
//! afterwards — and measures the false acceptance rate over a mixed
//! attack set (conventional speakers, earphones, shields, tubes,
//! off-center rigs, ESL, mimicry) plus the false rejection rate over
//! genuine sessions.
//!
//! The interesting rows: removing the loudspeaker detector lets
//! big-magnet attacks through only if the sound field misses them;
//! removing the sound field lets earphones through; removing the ASV
//! lets the live mimic through — each component owns an attack class.
//!
//! ```sh
//! cargo run --release -p magshield-bench --bin exp_ablation
//! ```

use magshield_bench::*;
use magshield_core::cascade::StageMask;
use magshield_core::scenario::{ScenarioBuilder, SourceKind};
use magshield_core::session::SessionData;
use magshield_core::verdict::Component;
use magshield_physics::acoustics::tube::SoundTube;
use magshield_simkit::vec3::Vec3;
use magshield_voice::attacks::AttackKind;
use magshield_voice::devices::{table_iv_catalog, unconventional_catalog};
use magshield_voice::profile::SpeakerProfile;

fn main() {
    let (system, user, rng) = experiment_system();
    let attacker = SpeakerProfile::sample(908, &rng.fork("attacker"));
    let catalog = table_iv_catalog();
    let pc = catalog[0].clone();
    let ear = catalog
        .iter()
        .find(|d| d.name.contains("EarPods"))
        .unwrap()
        .clone();
    let esl = unconventional_catalog()[0].clone();

    // The attack mix (label, sessions). Sessions are captured once; each
    // ablation row re-runs the cascade over them with its own stage mask.
    let mut attack_sets: Vec<(&str, Vec<SessionData>)> = Vec::new();
    let n = 6;
    let capture = |b: ScenarioBuilder, tag: &str, i: u64| -> SessionData {
        b.capture(&rng.fork_indexed(tag, i))
    };
    attack_sets.push((
        "replay/PC-speaker",
        (0..n)
            .map(|i| {
                capture(
                    ScenarioBuilder::machine_attack(
                        &user,
                        AttackKind::Replay,
                        pc.clone(),
                        attacker.clone(),
                    )
                    .at_distance(0.05),
                    "abl-pc",
                    i,
                )
            })
            .collect(),
    ));
    attack_sets.push((
        "replay/earphone",
        (0..n)
            .map(|i| {
                capture(
                    ScenarioBuilder::machine_attack(
                        &user,
                        AttackKind::Replay,
                        ear.clone(),
                        attacker.clone(),
                    )
                    .at_distance(0.05),
                    "abl-ear",
                    i,
                )
            })
            .collect(),
    ));
    attack_sets.push((
        "replay/shielded",
        (0..n)
            .map(|i| {
                capture(
                    ScenarioBuilder::machine_attack(
                        &user,
                        AttackKind::Replay,
                        pc.clone(),
                        attacker.clone(),
                    )
                    .at_distance(0.05)
                    .with_shielding(),
                    "abl-shield",
                    i,
                )
            })
            .collect(),
    ));
    attack_sets.push((
        "replay/sound-tube",
        (0..n)
            .map(|i| {
                let mut b = ScenarioBuilder::machine_attack(
                    &user,
                    AttackKind::Replay,
                    pc.clone(),
                    attacker.clone(),
                )
                .at_distance(0.05);
                b.source = SourceKind::DeviceViaTube {
                    device: pc.clone(),
                    tube: SoundTube::new(0.30, 0.0125),
                };
                capture(b, "abl-tube", i)
            })
            .collect(),
    ));
    attack_sets.push((
        "replay/off-center",
        (0..n)
            .map(|i| {
                capture(
                    ScenarioBuilder::machine_attack(
                        &user,
                        AttackKind::Replay,
                        pc.clone(),
                        attacker.clone(),
                    )
                    .at_distance(0.25)
                    .with_off_center_pivot(Vec3::new(0.0, -0.20, 0.0)),
                    "abl-pivot",
                    i,
                )
            })
            .collect(),
    ));
    attack_sets.push((
        "synthesis/ESL",
        (0..n)
            .map(|i| {
                capture(
                    ScenarioBuilder::machine_attack(
                        &user,
                        AttackKind::Synthesis,
                        esl.clone(),
                        attacker.clone(),
                    )
                    .at_distance(0.05),
                    "abl-esl",
                    i,
                )
            })
            .collect(),
    ));
    attack_sets.push((
        "human mimicry",
        (0..n)
            .map(|i| {
                capture(
                    ScenarioBuilder::mimicry_attack(&user, attacker.clone()),
                    "abl-mimic",
                    i,
                )
            })
            .collect(),
    ));
    let genuine: Vec<SessionData> = (0..20)
        .map(|i| capture(ScenarioBuilder::genuine(&user), "abl-genuine", i))
        .collect();

    // "− distance" drops both range checks (trajectory distance and the
    // dual-mic SLD): they answer the same "is the source at mouth
    // distance" question, so ablating one but not the other would leave
    // the class covered by its twin.
    let ablations: [(&str, StageMask); 5] = [
        ("full cascade", StageMask::all()),
        (
            "− distance",
            StageMask::all()
                .without(Component::Distance)
                .without(Component::Sld),
        ),
        (
            "− sound field",
            StageMask::all().without(Component::SoundField),
        ),
        (
            "− loudspeaker",
            StageMask::all().without(Component::Loudspeaker),
        ),
        (
            "− speaker id",
            StageMask::all().without(Component::SpeakerIdentity),
        ),
    ];

    let mut header = vec!["config", "FRR %"];
    for (name, _) in &attack_sets {
        header.push(name);
    }
    print_header("cascade ablation: FAR per attack class", &header);
    let mut rows = Vec::new();
    for (label, mask) in ablations {
        let frr = genuine
            .iter()
            .filter(|s| !system.verify_masked(s, mask).accepted())
            .count() as f64
            / genuine.len() as f64
            * 100.0;
        let mut cells = vec![frr];
        let mut metrics = vec![("frr_pct".to_string(), frr)];
        for (name, set) in &attack_sets {
            let far = set
                .iter()
                .filter(|s| system.verify_masked(s, mask).accepted())
                .count() as f64
                / set.len() as f64
                * 100.0;
            cells.push(far);
            metrics.push((format!("far_{}_pct", name.replace('/', "_")), far));
        }
        print_row(label, &cells);
        rows.push(ResultRow {
            experiment: "ablation".into(),
            condition: label.into(),
            metrics,
        });
    }
    write_results("ablation", &rows);
    println!("\nreading: each removed component should leave a specific attack class");
    println!("uncovered (or nearly so) — the cascade is defense-in-depth, not redundancy.");
}

//! Streaming continuous verification: first-chunk→verdict latency and
//! the early-reject win on attack sessions.
//!
//! Each pre-captured session is replayed as a chunked stream through
//! [`BatchEngine::open_stream`] — the same admission-controlled path a
//! deployment uses — and timed from its first chunk to its terminal
//! verdict. Genuine sessions must ride `Progress` acks to a finalize
//! that is decision-identical to the one-shot cascade; attack sessions
//! should be settled mid-stream by a monotone early-reject bound, well
//! before the utterance ends. The artifact records first-chunk→verdict
//! p50/p99 for both populations, the fraction of attack sessions
//! rejected early, and the wall-clock speedup of the early reject over
//! the full-utterance path (which must wait for capture to finish
//! before the one-shot cascade can run at all).
//!
//! Before measuring anything, the binary asserts every streamed decision
//! matches the one-shot cascade on the same samples under BOTH execution
//! policies — a latency number for a differently-deciding pipeline would
//! be meaningless.
//!
//! Output: `results/BENCH_streaming.json` (override with `--out`) in the
//! generic `"metrics"` shape consumed by the CI `bench-gate` job.
//! `--quick` shrinks the system and the pools for CI. The JSON is
//! written by hand so the file is produced identically in every build
//! environment.

use magshield_bench::{print_header, print_row, EXPERIMENT_SEED};
use magshield_core::batch::{BatchConfig, BatchEngine};
use magshield_core::cascade::ExecutionPolicy;
use magshield_core::pipeline::{BootstrapConfig, DefenseSystem};
use magshield_core::scenario::{bootstrap_with, ScenarioBuilder, UserContext};
use magshield_core::session::SessionData;
use magshield_core::stream::{chunk_session, StreamConfig, StreamEvent, StreamOpenInfo};
use magshield_core::verdict::DefenseVerdict;
use magshield_obs::metrics::Histogram;
use magshield_simkit::rng::SimRng;
use magshield_voice::attacks::AttackKind;
use magshield_voice::devices::table_iv_catalog;
use magshield_voice::profile::SpeakerProfile;
use std::io::Write;
use std::time::{Duration, Instant};

/// ~100 ms of audio per chunk at the simulated 48 kHz capture rate: the
/// cadence a phone client would plausibly ship capture buffers at.
const CHUNK_SAMPLES: usize = 4800;

/// Samples per population. Host contention can only *add* latency to a
/// sample, so keeping the best (lowest-latency) of a few short passes
/// estimates the achievable figure while rejecting bursty interference.
const SAMPLES: usize = 3;

/// One measured population (genuine or attack sessions).
struct Population {
    p50_ms: f64,
    p99_ms: f64,
    early_rejects: usize,
    sessions: usize,
    /// Chunks consumed before the terminal verdict, summed over early
    /// rejects only.
    early_chunks: usize,
    early_total_chunks: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/BENCH_streaming.json".to_string());

    let rng = SimRng::from_seed(EXPERIMENT_SEED);
    let bootstrap = if quick {
        BootstrapConfig::tiny()
    } else {
        BootstrapConfig::default()
    };
    eprintln!(
        "(bootstrapping {} system...)",
        if quick { "tiny" } else { "full" }
    );
    let (system, user) = bootstrap_with(&rng, bootstrap);

    let per_pool = if quick { 8 } else { 16 };
    let genuine: Vec<SessionData> = (0..per_pool)
        .map(|i| ScenarioBuilder::genuine(&user).capture(&rng.fork_indexed("st-genuine", i as u64)))
        .collect();
    let attacks = attack_pool(&user, per_pool, &rng);

    verify_stream_identity(&system, &genuine, &attacks);

    let engine = BatchEngine::spawn(
        system.with_fresh_obs(),
        BatchConfig {
            policy: ExecutionPolicy::ShortCircuit,
            ..BatchConfig::default()
        },
    );

    print_header(
        "Streaming verification (chunk = 100 ms audio)",
        &["p50 ms", "p99 ms", "early", "sess"],
    );
    let gen_pop = run_population(&engine, &genuine);
    print_row(
        "genuine",
        &[
            gen_pop.p50_ms,
            gen_pop.p99_ms,
            gen_pop.early_rejects as f64,
            gen_pop.sessions as f64,
        ],
    );
    let atk_pop = run_population(&engine, &attacks);
    print_row(
        "attack",
        &[
            atk_pop.p50_ms,
            atk_pop.p99_ms,
            atk_pop.early_rejects as f64,
            atk_pop.sessions as f64,
        ],
    );

    // The comparison the streaming path exists to win is wall-clock from
    // utterance start: the one-shot cascade cannot answer before the
    // whole utterance has been captured, while an early reject settles
    // after a fraction of it. Both sides = audio time consumed before the
    // verdict + verification compute; audio time dominates, so the ratio
    // is deterministic across hosts.
    let one_shot_p50 = one_shot_p50_ms(&system, &attacks);
    let early_fraction = atk_pop.early_rejects as f64 / atk_pop.sessions as f64;
    let chunk_ms = CHUNK_SAMPLES as f64 / 48.0; // 48 kHz capture
    let full_utterance_ms = atk_pop.early_total_chunks as f64 * chunk_ms + one_shot_p50;
    let streamed_ms = atk_pop.early_chunks as f64 * chunk_ms + atk_pop.p50_ms;
    let speedup = if atk_pop.early_rejects > 0 {
        full_utterance_ms / streamed_ms
    } else {
        1.0
    };
    println!(
        "\nattack early-reject fraction: {early_fraction:.2} \
         (median stream position {:.2})",
        atk_pop.early_chunks as f64 / atk_pop.early_total_chunks.max(1) as f64
    );
    println!(
        "attack wall-clock from utterance start: streamed {streamed_ms:.0} ms vs \
         full-utterance {full_utterance_ms:.0} ms ({speedup:.2}x)"
    );
    engine.shutdown();

    write_json(
        &out,
        quick,
        &gen_pop,
        &atk_pop,
        early_fraction,
        one_shot_p50,
        speedup,
    );
}

/// Close-range replay attacks — the population the loudspeaker stage's
/// monotone bounds should settle mid-stream.
fn attack_pool(user: &UserContext, n: usize, rng: &SimRng) -> Vec<SessionData> {
    let attacker = SpeakerProfile::sample(901, &rng.fork("st-attacker"));
    let dev = table_iv_catalog()[0].clone();
    (0..n)
        .map(|i| {
            ScenarioBuilder::machine_attack(user, AttackKind::Replay, dev.clone(), attacker.clone())
                .at_distance(0.05)
                .capture(&rng.fork_indexed("st-attack", i as u64))
        })
        .collect()
}

/// Drives one session through an engine stream. Returns the terminal
/// verdict, whether it settled mid-stream, how many chunks it consumed,
/// the total chunk count, and first-chunk→verdict time.
fn stream_one(
    engine: &BatchEngine,
    session: &SessionData,
    policy: ExecutionPolicy,
) -> (DefenseVerdict, bool, usize, usize, Duration) {
    let chunks = chunk_session(session, CHUNK_SAMPLES);
    let total = chunks.len();
    let mut stream = engine
        .open_stream(
            &StreamOpenInfo::for_session(session),
            StreamConfig {
                policy,
                ..StreamConfig::default()
            },
        )
        .expect("engine is accepting");
    let t0 = Instant::now();
    for (i, chunk) in chunks.iter().enumerate() {
        match stream.feed(chunk).expect("stream is open") {
            StreamEvent::Progress(_) => {}
            StreamEvent::EarlyReject(v) | StreamEvent::ReverifyReject(v) => {
                return (v, true, i + 1, total, t0.elapsed());
            }
        }
    }
    let (verdict, _trace) = stream.finalize().expect("stream is open");
    (verdict, false, total, total, t0.elapsed())
}

/// Asserts the streamed decision matches the one-shot cascade for every
/// pooled session under both execution policies. Aborts the benchmark on
/// any mismatch.
fn verify_stream_identity(
    system: &DefenseSystem,
    genuine: &[SessionData],
    attacks: &[SessionData],
) {
    for policy in [
        ExecutionPolicy::FullEvaluation,
        ExecutionPolicy::ShortCircuit,
    ] {
        let engine = BatchEngine::spawn(
            system.with_fresh_obs(),
            BatchConfig {
                policy,
                ..BatchConfig::default()
            },
        );
        for (i, session) in genuine.iter().chain(attacks).enumerate() {
            let one_shot = system.verify_with_policy(session, policy);
            let (streamed, early, ..) = stream_one(&engine, session, policy);
            if early {
                assert!(
                    !one_shot.accepted(),
                    "session {i}: early reject on a one-shot-accepted session under {policy:?}"
                );
                assert!(!streamed.accepted());
            } else {
                assert_eq!(
                    streamed.decision, one_shot.decision,
                    "session {i}: streamed decision diverged from one-shot under {policy:?}"
                );
            }
        }
        engine.shutdown();
    }
    eprintln!("(identity check passed: streamed == one-shot under both policies)");
}

/// Measures one population [`SAMPLES`] times and keeps the
/// lowest-latency sample (the early-reject counts are deterministic
/// across samples — only the clock varies).
fn run_population(engine: &BatchEngine, pool: &[SessionData]) -> Population {
    (0..SAMPLES)
        .map(|_| measure_population(engine, pool))
        .min_by(|a, b| a.p50_ms.total_cmp(&b.p50_ms))
        .expect("SAMPLES > 0")
}

fn measure_population(engine: &BatchEngine, pool: &[SessionData]) -> Population {
    let latency = Histogram::default();
    let mut early_rejects = 0;
    let mut early_chunks = 0;
    let mut early_total_chunks = 0;
    for session in pool {
        let (_verdict, early, consumed, total, elapsed) =
            stream_one(engine, session, ExecutionPolicy::ShortCircuit);
        latency.record(elapsed);
        if early {
            early_rejects += 1;
            early_chunks += consumed;
            early_total_chunks += total;
        }
    }
    let snap = latency.snapshot();
    Population {
        p50_ms: snap.p50() * 1e3,
        p99_ms: snap.p99() * 1e3,
        early_rejects,
        sessions: pool.len(),
        early_chunks,
        early_total_chunks,
    }
}

/// Best-of-[`SAMPLES`] p50 of the full one-shot cascade over the pool.
fn one_shot_p50_ms(system: &DefenseSystem, pool: &[SessionData]) -> f64 {
    (0..SAMPLES)
        .map(|_| {
            let latency = Histogram::default();
            for session in pool {
                let t0 = Instant::now();
                let _ = system.verify_with_policy(session, ExecutionPolicy::ShortCircuit);
                latency.record(t0.elapsed());
            }
            latency.snapshot().p50() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// Hand-rolled JSON in the generic bench-gate `"metrics"` shape.
#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    quick: bool,
    genuine: &Population,
    attack: &Population,
    early_fraction: f64,
    one_shot_p50: f64,
    speedup: f64,
) {
    let json = format!(
        "{{\n  \"experiment\": \"streaming\",\n  \"quick\": {quick},\n  \
         \"chunk_samples\": {CHUNK_SAMPLES},\n  \"samples\": {SAMPLES},\n  \
         \"policy\": \"short_circuit\",\n  \
         \"genuine_sessions\": {},\n  \"attack_sessions\": {},\n  \
         \"attack_one_shot_p50_ms\": {one_shot_p50:.3},\n  \
         \"metrics\": {{\n    \
         \"stream_genuine_first_verdict_p50_ms\": {{\"value\": {:.3}, \"direction\": \"lower\"}},\n    \
         \"stream_genuine_first_verdict_p99_ms\": {{\"value\": {:.3}, \"direction\": \"lower\"}},\n    \
         \"stream_attack_first_verdict_p50_ms\": {{\"value\": {:.3}, \"direction\": \"lower\"}},\n    \
         \"stream_attack_first_verdict_p99_ms\": {{\"value\": {:.3}, \"direction\": \"lower\"}},\n    \
         \"stream_attack_early_reject_fraction\": {{\"value\": {early_fraction:.3}, \"direction\": \"higher\"}},\n    \
         \"stream_attack_early_reject_speedup\": {{\"value\": {speedup:.3}, \"direction\": \"higher\"}}\n  }}\n}}\n",
        genuine.sessions,
        attack.sessions,
        genuine.p50_ms,
        genuine.p99_ms,
        attack.p50_ms,
        attack.p99_ms,
    );
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("(wrote {path})"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}

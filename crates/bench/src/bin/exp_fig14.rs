//! Fig. 14 — Environmental magnetic interference: (a) near a computer
//! (iMac 27" at 30 cm) and (b) in a car's front seat.
//!
//! Paper shape: near the computer FAR stays ~0 and FRR spikes at 8 cm
//! (the longer trajectories pass closer to the screen); in the car FRR is
//! 29–50 % at every distance while EER stays ≈ 0 (the detector *can*
//! separate, the fixed thresholds are just miscalibrated for the noise —
//! motivating §VII adaptive thresholding, see exp_adaptive).
//!
//! ```sh
//! cargo run --release -p magshield-bench --bin exp_fig14
//! ```

use magshield_bench::*;
use magshield_core::scenario::ScenarioBuilder;
use magshield_physics::magnetics::interference::EmfEnvironment;
use magshield_simkit::vec3::Vec3;
use magshield_voice::attacks::AttackKind;
use magshield_voice::devices::table_iv_catalog;
use magshield_voice::profile::SpeakerProfile;

/// Environment generator: sound-source distance (m) → ambient EMF field.
type EnvFn = Box<dyn Fn(f64) -> EmfEnvironment>;

fn main() {
    let (system, user, rng) = experiment_system();
    let catalog = table_iv_catalog();
    let devices: Vec<_> = [0usize, 7, 18]
        .iter()
        .map(|&i| catalog[i].clone())
        .collect();
    let attacker = SpeakerProfile::sample(902, &rng.fork("attacker"));
    let distances_cm = [4.0, 6.0, 8.0, 10.0, 12.0, 14.0];
    let mut rows = Vec::new();

    let environments: [(&str, &str, EnvFn); 2] = [
        (
            "fig14a (near computer)",
            "fig14a",
            // The iMac sits 30 cm to the side of the test location; the
            // sweep arc at larger sound-source distances swings the phone
            // closer to the screen (paper: "the moving trajectories ...
            // become closer to the computer screen").
            Box::new(|_d| EmfEnvironment::near_computer(Vec3::new(0.30, 0.0, 0.0))),
        ),
        (
            "fig14b (in car)",
            "fig14b",
            Box::new(|_d| EmfEnvironment::in_car()),
        ),
    ];

    for (label, id, env_of) in &environments {
        print_header(label, &["d (cm)", "FAR %", "FRR %", "EER %"]);
        for &d_cm in &distances_cm {
            let d = d_cm / 100.0;
            let mut config = system.config;
            config.distance_threshold_m = d + 0.02;
            let erng = rng.fork_indexed(label, d_cm as u64);
            let env = env_of(d_cm);

            let genuine: Vec<_> = (0..18)
                .map(|i| {
                    let s = ScenarioBuilder::genuine(&user)
                        .at_distance(d)
                        .in_environment(env.clone())
                        .capture(&erng.fork_indexed("g", i));
                    system.verify_with_config(&s, &config)
                })
                .collect();
            let attacks: Vec<_> = devices
                .iter()
                .enumerate()
                .flat_map(|(di, dev)| {
                    let erng = erng.fork_indexed("a", di as u64);
                    let env = env.clone();
                    let user = &user;
                    let system = &system;
                    let attacker = attacker.clone();
                    let dev = dev.clone();
                    (0..4)
                        .map(move |i| {
                            let s = ScenarioBuilder::machine_attack(
                                user,
                                AttackKind::Replay,
                                dev.clone(),
                                attacker.clone(),
                            )
                            .at_distance(d)
                            .in_environment(env.clone())
                            .capture(&erng.fork_indexed("s", i));
                            system.verify_with_config(&s, &config)
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            let (far, frr, eer) = rates(&genuine, &attacks);
            print_row(&format!("{d_cm}"), &[far, frr, eer]);
            rows.push(ResultRow {
                experiment: (*id).into(),
                condition: format!("d={d_cm}cm"),
                metrics: vec![
                    ("far_pct".into(), far),
                    ("frr_pct".into(), frr),
                    ("eer_pct".into(), eer),
                ],
            });
        }
    }
    write_results("fig14", &rows);
    println!("\npaper (a): FAR 0 up to 12 cm; FRR spike 27.8 % at 8 cm; EER ~0 at ≤6 cm.");
    println!("paper (b): FRR 29–50 % at all distances, FAR 0, EER ≈ 0 — fixed thresholds");
    println!(
        "           are miscalibrated for car EMF; adaptive thresholding (exp_adaptive) fixes it."
    );
}

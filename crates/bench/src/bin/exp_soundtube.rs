//! §VII "Sound-tube Attacks" — plastic tubes of several sizes deliver the
//! loudspeaker's sound from a distance while a mouth-sized opening sits at
//! the protocol position. The paper: "all their attempts failed".
//!
//! ```sh
//! cargo run --release -p magshield-bench --bin exp_soundtube
//! ```

use magshield_bench::*;
use magshield_core::scenario::{ScenarioBuilder, SourceKind};
use magshield_core::verdict::Component;
use magshield_physics::acoustics::tube::SoundTube;
use magshield_simkit::rng::SimRng;
use magshield_voice::attacks::AttackKind;
use magshield_voice::devices::table_iv_catalog;
use magshield_voice::profile::SpeakerProfile;

fn main() {
    let (system, user, rng) = experiment_system();
    let attacker = SpeakerProfile::sample(905, &rng.fork("attacker"));
    let speaker = table_iv_catalog()[0].clone();
    let trials = 4;

    print_header(
        "sound-tube attacks (Logitech LS21 behind a CAB tube)",
        &["tube", "rejected %", "by-field %", "by-magnet %"],
    );
    let mut rows = Vec::new();
    for (len_cm, bore_mm) in [
        (10.0, 12.5),
        (20.0, 12.5),
        (30.0, 12.5),
        (40.0, 12.5),
        (30.0, 20.0),
    ] {
        let tube = SoundTube::new(len_cm / 100.0, bore_mm / 2000.0);
        let mut rejected = 0;
        let mut by_field = 0;
        let mut by_magnet = 0;
        for t in 0..trials {
            let mut b = ScenarioBuilder::machine_attack(
                &user,
                AttackKind::Replay,
                speaker.clone(),
                attacker.clone(),
            )
            .at_distance(0.05);
            b.source = SourceKind::DeviceViaTube {
                device: speaker.clone(),
                tube,
            };
            let s = b.capture(&SimRng::from_seed(
                EXPERIMENT_SEED ^ ((len_cm as u64) << 16 | (bore_mm as u64) << 4 | t as u64),
            ));
            let v = system.verify(&s);
            if !v.accepted() {
                rejected += 1;
            }
            if v.result_of(Component::SoundField)
                .is_some_and(|r| r.attack_score >= 1.0)
            {
                by_field += 1;
            }
            if v.result_of(Component::Loudspeaker)
                .is_some_and(|r| r.attack_score >= 1.0)
            {
                by_magnet += 1;
            }
        }
        let pct = |x: i32| x as f64 / trials as f64 * 100.0;
        print_row(
            &format!("{len_cm}cm/{bore_mm}mm"),
            &[pct(rejected), pct(by_field), pct(by_magnet)],
        );
        rows.push(ResultRow {
            experiment: "soundtube".into(),
            condition: format!("len={len_cm}cm bore={bore_mm}mm"),
            metrics: vec![
                ("rejected_pct".into(), pct(rejected)),
                ("by_field_pct".into(), pct(by_field)),
                ("by_magnet_pct".into(), pct(by_magnet)),
            ],
        });
    }
    println!("\npaper: every sound-tube attempt failed — replicating a human sound");
    println!("field with a mechanical waveguide needs structure the attacker lacks.");
    write_results("soundtube", &rows);
}

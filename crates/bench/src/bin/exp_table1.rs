//! Table I — performance of the speaker-identity component (the Spear
//! stand-in) using false acceptance rate.
//!
//! * **Test 1**: five speakers each pronounce a unique six-digit
//!   passphrase five times; the others mimic them. Paper: FAR 0.0 % for
//!   both GMM–UBM and ISV.
//! * **Test 2**: the background model is trained on one corpus
//!   (Voxforge stand-in) and speakers are enrolled/tested on a different
//!   corpus with mismatched channel statistics (CMU Arctic stand-in).
//!   Paper: FAR 0.5 % (UBM) / 1.3 % (ISV) — small but nonzero.
//!
//! FAR is reported at the zero-FRR operating point (every genuine trial
//! accepted), matching how an authentication deployment would tune.
//!
//! ```sh
//! cargo run --release -p magshield-bench --bin exp_table1
//! ```

use magshield_asv::eval::{TrialOutcome, VerificationReport};
use magshield_asv::frontend::FeatureExtractor;
use magshield_asv::isv::{IsvBackend, SessionSubspace};
use magshield_asv::model::UbmBackend;
use magshield_asv::ubm::{train_ubm, UbmConfig};
use magshield_bench::{print_header, write_results, ResultRow, EXPERIMENT_SEED};
use magshield_core::components::speaker_id::AsvEngine;
use magshield_ml::metrics::ErrorRates;
use magshield_simkit::rng::SimRng;
use magshield_voice::attacks::{attack_audio, AttackKind};
use magshield_voice::corpus::{arctic_like, test1_corpus, voxforge_like, Corpus};
use magshield_voice::synth::VOICE_SAMPLE_RATE;

fn build_engines(train: &Corpus, rng: &SimRng) -> (AsvEngine, AsvEngine) {
    let fx = FeatureExtractor::new(VOICE_SAMPLE_RATE);
    let utts: Vec<&[f64]> = train
        .utterances
        .iter()
        .map(|u| u.audio.as_slice())
        .collect();
    let ubm = train_ubm(
        &fx,
        &utts,
        UbmConfig {
            components: 48,
            em_iters: 10,
            max_frames: 20_000,
        },
        &rng.fork("ubm"),
    );
    let backend = UbmBackend::new(fx.clone(), ubm).with_cohort(&utts);
    let groups: Vec<(u32, u32, magshield_dsp::frame::FrameMatrix)> = train
        .utterances
        .iter()
        .map(|u| (u.speaker_id, u.session, fx.extract(&u.audio)))
        .collect();
    let subspace = SessionSubspace::estimate(&backend.ubm, &groups, 2);
    (
        AsvEngine::Ubm(backend.clone()),
        AsvEngine::Isv(IsvBackend::new(backend, subspace)),
    )
}

/// The deployment operating point: each trial is decided against the
/// claimed model's per-user calibrated threshold (floor 1.5 z-units).
#[derive(Default)]
struct CalibratedDecisions {
    genuine: Vec<bool>,
    impostor: Vec<bool>,
}

impl CalibratedDecisions {
    fn push(&mut self, genuine: bool, accepted: bool) {
        if genuine {
            self.genuine.push(accepted);
        } else {
            self.impostor.push(accepted);
        }
    }
    fn rates(&self) -> ErrorRates {
        ErrorRates::from_decisions(&self.genuine, &self.impostor)
    }
}

/// Test 1: enroll each of the five speakers on 3 takes, test on the other
/// 2 (genuine) and on every other speaker's mimicry of their passphrase
/// (impostor).
fn test1(engine: &AsvEngine, rng: &SimRng) -> (VerificationReport, ErrorRates) {
    // Three independent five-speaker panels pool their trials: the paper
    // ran one panel of humans; with synthetic speakers the extra panels
    // stabilize the small-sample rates.
    let mut trials = Vec::new();
    let mut decisions = CalibratedDecisions::default();
    for rep in 0..3u64 {
        let rng = rng.fork_indexed("t1-rep", rep);
        test1_panel(engine, &rng, &mut trials, &mut decisions);
    }
    (VerificationReport::from_trials(&trials), decisions.rates())
}

fn test1_panel(
    engine: &AsvEngine,
    rng: &SimRng,
    trials: &mut Vec<TrialOutcome>,
    decisions: &mut CalibratedDecisions,
) {
    let corpus = test1_corpus(&rng.fork("t1-corpus"));
    for sp in &corpus.speakers {
        let utts = corpus.of_speaker(sp.id);
        let enroll: Vec<&[f64]> = utts[..3].iter().map(|u| u.audio.as_slice()).collect();
        let model = engine.enroll(sp.id, &enroll);
        let threshold = model.calibrated_threshold(1.5);
        for u in &utts[3..] {
            let score = engine.score(&model, &u.audio);
            decisions.push(true, score >= threshold);
            trials.push(TrialOutcome {
                claimed: sp.id,
                actual: sp.id,
                score,
            });
        }
        // Mimicry: every other speaker imitates sp's passphrase twice.
        for other in &corpus.speakers {
            if other.id == sp.id {
                continue;
            }
            for take in 0..2u64 {
                let arng = rng.fork_indexed(
                    "t1-mimic",
                    (u64::from(sp.id) << 20) | (u64::from(other.id) << 4) | take,
                );
                let audio =
                    attack_audio(AttackKind::HumanMimicry, other, sp, &utts[0].digits, &arng);
                let score = engine.score(&model, &audio);
                decisions.push(false, score >= threshold);
                trials.push(TrialOutcome {
                    claimed: sp.id,
                    actual: other.id,
                    score,
                });
            }
        }
    }
}

/// Test 2: UBM from the Voxforge stand-in, enrollment/trials on the
/// Arctic stand-in (cross-corpus channel mismatch), impostors = other
/// Arctic speakers.
fn test2(engine: &AsvEngine, rng: &SimRng) -> (VerificationReport, ErrorRates) {
    let test = arctic_like(6, &rng.fork("t2-corpus"));
    let mut trials = Vec::new();
    let mut decisions = CalibratedDecisions::default();
    for sp in &test.speakers {
        let utts = test.of_speaker(sp.id);
        // Enroll on session 0, test on session 1 (cross-session).
        let enroll: Vec<&[f64]> = utts
            .iter()
            .filter(|u| u.session == 0)
            .map(|u| u.audio.as_slice())
            .collect();
        let model = engine.enroll(sp.id, &enroll);
        let threshold = model.calibrated_threshold(1.5);
        for u in utts.iter().filter(|u| u.session == 1) {
            let score = engine.score(&model, &u.audio);
            decisions.push(true, score >= threshold);
            trials.push(TrialOutcome {
                claimed: sp.id,
                actual: sp.id,
                score,
            });
        }
        for other in &test.speakers {
            if other.id == sp.id {
                continue;
            }
            let u = test
                .of_speaker(other.id)
                .into_iter()
                .find(|u| u.session == 1)
                .unwrap();
            let score = engine.score(&model, &u.audio);
            decisions.push(false, score >= threshold);
            trials.push(TrialOutcome {
                claimed: sp.id,
                actual: other.id,
                score,
            });
        }
    }
    (VerificationReport::from_trials(&trials), decisions.rates())
}

fn main() {
    let rng = SimRng::from_seed(EXPERIMENT_SEED).fork("table1");
    println!("training background models (Voxforge stand-in)...");
    let train = voxforge_like(8, &rng.fork("train-corpus"));
    let (ubm_engine, isv_engine) = build_engines(&train, &rng);

    print_header(
        "Table I — speaker identity verification (per-user calibrated thresholds)",
        &["system", "T1 FAR%", "T1 FRR%", "T2 FAR%", "T2 FRR%"],
    );
    let mut rows = Vec::new();
    for (name, engine) in [("UBM", &ubm_engine), ("ISV", &isv_engine)] {
        let (r1, d1) = test1(engine, &rng);
        let (r2, d2) = test2(engine, &rng);
        let (far1, frr1) = d1.as_percent();
        let (far2, frr2) = d2.as_percent();
        println!("{name:>14}{far1:>14.1}{frr1:>14.1}{far2:>14.1}{frr2:>14.1}");
        eprintln!(
            "  {name}: test1 {}g/{}i trials (pooled EER {:.1} %), test2 {}g/{}i trials (pooled EER {:.1} %)",
            r1.counts().0,
            r1.counts().1,
            r1.eer() * 100.0,
            r2.counts().0,
            r2.counts().1,
            r2.eer() * 100.0
        );
        rows.push(ResultRow {
            experiment: "table1".into(),
            condition: name.into(),
            metrics: vec![
                ("test1_far_pct".into(), far1),
                ("test1_frr_pct".into(), frr1),
                ("test2_far_pct".into(), far2),
                ("test2_frr_pct".into(), frr2),
                ("test1_pooled_eer_pct".into(), r1.eer() * 100.0),
                ("test2_pooled_eer_pct".into(), r2.eer() * 100.0),
            ],
        });
    }
    write_results("table1", &rows);
    println!("\npaper: UBM 0.0 % / 0.5 %, ISV 0.0 % / 1.3 % — near-zero in-corpus FAR,");
    println!("       small nonzero FAR under cross-corpus channel mismatch.");
}

//! Micro-benchmarks for the two kernels the fast path rewrote: MFCC
//! feature extraction (scratch-buffer reuse vs. per-call allocation) and
//! GMM log-likelihood-ratio scoring (prepared constants and top-C
//! Gaussian pruning vs. the naive per-frame evaluation).
//!
//! Each kernel is hand-timed (warm-up, then iterate until a wall-clock
//! budget is spent) and reported in ns/frame. Absolute ns/frame varies
//! across machines, so the CI gate compares only the **speedup ratios**
//! under the `"metrics"` key — those track the code, not the hardware.
//! Raw timings land under `"info"` for humans reading the artifact.
//!
//! Output: `results/BENCH_kernels.json` (override with `--out`),
//! consumed by `scripts/bench_gate.py` in the CI `bench-gate` job.
//! `--quick` shrinks the mixture and the timing budgets for CI. The JSON
//! is hand-rolled for the same reason as `exp_throughput`: the artifact
//! must be produced identically in every build environment.

use magshield_asv::frontend::{FeatureExtractor, FrontendScratch};
use magshield_asv::ubm::{train_ubm, UbmConfig};
use magshield_bench::{print_header, print_row, EXPERIMENT_SEED};
use magshield_dsp::frame::FrameMatrix;
use magshield_ml::gmm::{
    llr_score_quantized, llr_score_sequential, LlrScorer, PreparedGmm, QuantizedGmm, ScoreScratch,
};
use magshield_simkit::rng::SimRng;
use magshield_voice::corpus::voxforge_like;
use magshield_voice::synth::VOICE_SAMPLE_RATE;
use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

/// Default pruning width — mirrors `DefenseConfig::asv_top_c`.
const TOP_C: usize = 8;

struct Timings {
    extract_reference: f64,
    extract_fast: f64,
    extract_fused: f64,
    llr_reference: f64,
    llr_sequential_exact: f64,
    llr_sequential_pruned: f64,
    llr_prepared_exact: f64,
    llr_prepared_pruned: f64,
    llr_quantized_exact: f64,
    frames: usize,
    components: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/BENCH_kernels.json".to_string());

    let rng = SimRng::from_seed(EXPERIMENT_SEED).fork("kernels");
    let budget_s = if quick { 0.08 } else { 0.4 };
    let components = if quick { 16 } else { 48 };

    eprintln!("(building corpus + {components}-component UBM...)");
    let corpus = voxforge_like(if quick { 3 } else { 6 }, &rng.fork("corpus"));
    let fx = FeatureExtractor::new(VOICE_SAMPLE_RATE);
    let utts: Vec<&[f64]> = corpus
        .utterances
        .iter()
        .map(|u| u.audio.as_slice())
        .collect();
    let ubm = train_ubm(
        &fx,
        &utts,
        UbmConfig {
            components,
            em_iters: if quick { 3 } else { 6 },
            max_frames: if quick { 4_000 } else { 12_000 },
        },
        &rng.fork("ubm"),
    );
    // A MAP-adapted speaker mixture from the first speaker's takes — the
    // scoring kernel needs a real (speaker, UBM) pair, not two UBMs.
    let sp_id = corpus.speakers[0].id;
    let mut sp_frames = FrameMatrix::new(0);
    for u in corpus.of_speaker(sp_id) {
        sp_frames.extend_rows(&fx.extract(&u.audio));
    }
    let speaker = ubm.map_adapt_means(&sp_frames, 16.0);

    let audio = corpus.of_speaker(sp_id)[0].audio.clone();
    let frames = fx.extract(&audio);
    let t = Timings {
        extract_reference: time_extract_reference(&fx, &audio, budget_s),
        extract_fast: time_extract_fast(&fx, &audio, budget_s),
        extract_fused: time_extract_fused(&fx, &audio, budget_s),
        llr_reference: time_llr_reference(&speaker, &ubm, &frames, budget_s),
        llr_sequential_exact: time_llr_sequential(&speaker, &ubm, &frames, 0, budget_s),
        llr_sequential_pruned: time_llr_sequential(&speaker, &ubm, &frames, TOP_C, budget_s),
        llr_prepared_exact: time_llr_prepared(&speaker, &ubm, &frames, 0, budget_s),
        llr_prepared_pruned: time_llr_prepared(&speaker, &ubm, &frames, TOP_C, budget_s),
        llr_quantized_exact: time_llr_quantized(&speaker, &ubm, &frames, 0, budget_s),
        frames: frames.rows(),
        components,
    };

    print_header(
        &format!(
            "DSP/ASV kernels ({} frames, {components} components)",
            t.frames
        ),
        &["ns/frame", "speedup"],
    );
    print_row("extract ref", &[t.extract_reference, 1.0]);
    print_row(
        "extract fast",
        &[t.extract_fast, t.extract_reference / t.extract_fast],
    );
    print_row(
        "extract fused",
        &[t.extract_fused, t.extract_fast / t.extract_fused],
    );
    print_row("llr ref", &[t.llr_reference, 1.0]);
    print_row(
        "llr seq exact",
        &[
            t.llr_sequential_exact,
            t.llr_reference / t.llr_sequential_exact,
        ],
    );
    print_row(
        &format!("llr seq top-{TOP_C}"),
        &[
            t.llr_sequential_pruned,
            t.llr_reference / t.llr_sequential_pruned,
        ],
    );
    print_row(
        "llr batched",
        &[t.llr_prepared_exact, t.llr_reference / t.llr_prepared_exact],
    );
    print_row(
        &format!("llr top-{TOP_C}"),
        &[
            t.llr_prepared_pruned,
            t.llr_reference / t.llr_prepared_pruned,
        ],
    );
    print_row(
        "llr quantized",
        &[
            t.llr_quantized_exact,
            t.llr_reference / t.llr_quantized_exact,
        ],
    );

    write_json(&out, quick, &t);
}

/// Runs `f` until `budget_s` of wall clock is spent (after a short
/// warm-up) and returns ns per frame of the *fastest* of four
/// equal-budget slices. The minimum is the standard noise-robust
/// estimator on shared machines: interference (CI neighbors, kernel
/// housekeeping) only ever adds time, so the fastest slice is the
/// closest observation of the kernel's true cost.
fn time_ns_per_frame(frames: usize, budget_s: f64, mut f: impl FnMut()) -> f64 {
    for _ in 0..3 {
        f();
    }
    let slice_s = budget_s / 4.0;
    let mut best = f64::INFINITY;
    for _ in 0..4 {
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed().as_secs_f64() < slice_s {
            f();
            iters += 1;
        }
        let ns = start.elapsed().as_secs_f64() * 1e9 / (iters as f64 * frames as f64);
        best = best.min(ns);
    }
    best
}

/// The pre-fast-path idiom: every call allocates its scratch and output.
fn time_extract_reference(fx: &FeatureExtractor, audio: &[f64], budget_s: f64) -> f64 {
    let frames = fx.extract(audio).rows();
    time_ns_per_frame(frames, budget_s, || {
        black_box(fx.extract(black_box(audio)));
    })
}

/// The fast path: scratch and output buffers reused across calls.
fn time_extract_fast(fx: &FeatureExtractor, audio: &[f64], budget_s: f64) -> f64 {
    let mut scratch = FrontendScratch::new();
    let mut out = FrameMatrix::new(0);
    fx.extract_into(audio, &mut scratch, &mut out);
    let frames = out.rows();
    time_ns_per_frame(frames, budget_s, || {
        fx.extract_into(black_box(audio), &mut scratch, &mut out);
        black_box(out.rows());
    })
}

/// The fused front end: pre-emphasis, windowing, and even/odd real-FFT
/// packing in one pass per frame, a half-size transform, and power
/// computed during the unpack.
fn time_extract_fused(fx: &FeatureExtractor, audio: &[f64], budget_s: f64) -> f64 {
    let mut fx = fx.clone();
    fx.fused_frontend = true;
    let mut scratch = FrontendScratch::new();
    let mut out = FrameMatrix::new(0);
    fx.extract_into(audio, &mut scratch, &mut out);
    let frames = out.rows();
    time_ns_per_frame(frames, budget_s, || {
        fx.extract_into(black_box(audio), &mut scratch, &mut out);
        black_box(out.rows());
    })
}

/// Naive LLR: `DiagonalGmm::llr_score`, re-deriving Gaussian constants
/// per frame per component.
fn time_llr_reference(
    speaker: &magshield_ml::DiagonalGmm,
    ubm: &magshield_ml::DiagonalGmm,
    frames: &FrameMatrix,
    budget_s: f64,
) -> f64 {
    time_ns_per_frame(frames.rows(), budget_s, || {
        black_box(speaker.llr_score(ubm, black_box(frames)));
    })
}

/// Prepared-constant LLR, exact (`top_c == 0`) or top-C pruned.
fn time_llr_prepared(
    speaker: &magshield_ml::DiagonalGmm,
    ubm: &magshield_ml::DiagonalGmm,
    frames: &FrameMatrix,
    top_c: usize,
    budget_s: f64,
) -> f64 {
    let scorer = LlrScorer::new(speaker, ubm);
    let mut scratch = ScoreScratch::new();
    time_ns_per_frame(frames.rows(), budget_s, || {
        black_box(scorer.score(black_box(frames), top_c, &mut scratch).score);
    })
}

/// The retained one-frame-at-a-time prepared scorer — the baseline the
/// frame-major batched kernel is measured against.
fn time_llr_sequential(
    speaker: &magshield_ml::DiagonalGmm,
    ubm: &magshield_ml::DiagonalGmm,
    frames: &FrameMatrix,
    top_c: usize,
    budget_s: f64,
) -> f64 {
    let spk = PreparedGmm::new(speaker);
    let bg = PreparedGmm::new(ubm);
    let mut scratch = ScoreScratch::new();
    time_ns_per_frame(frames.rows(), budget_s, || {
        black_box(llr_score_sequential(&spk, &bg, black_box(frames), top_c, &mut scratch).score);
    })
}

/// The quantized batched scorer: i16 means / f32 inverse variances
/// dequantized on the fly — a quarter of the exact model's memory
/// traffic.
fn time_llr_quantized(
    speaker: &magshield_ml::DiagonalGmm,
    ubm: &magshield_ml::DiagonalGmm,
    frames: &FrameMatrix,
    top_c: usize,
    budget_s: f64,
) -> f64 {
    let spk = QuantizedGmm::from_prepared(&PreparedGmm::new(speaker));
    let bg = QuantizedGmm::from_prepared(&PreparedGmm::new(ubm));
    let mut scratch = ScoreScratch::new();
    time_ns_per_frame(frames.rows(), budget_s, || {
        black_box(llr_score_quantized(&spk, &bg, black_box(frames), top_c, &mut scratch).score);
    })
}

/// Hand-rolled JSON, same contract as `exp_throughput::write_json`: the
/// gate parses it with Python. Ratios under `"metrics"` are gated;
/// machine-dependent raw timings live under `"info"`.
fn write_json(path: &str, quick: bool, t: &Timings) {
    let metric = |name: &str, value: f64, last: bool| {
        format!(
            "    \"{name}\": {{\"value\": {value:.4}, \"direction\": \"higher\"}}{}\n",
            if last { "" } else { "," }
        )
    };
    // Extraction timings stay informational: the fast path's win there is
    // allocation elimination (pinned by the dsp zero-alloc test), not
    // wall clock — FFT dominates, so the ratio is ~1.0 plus noise.
    let mut metrics = String::new();
    metrics.push_str(&metric(
        "llr_prepared_exact_speedup",
        t.llr_reference / t.llr_prepared_exact,
        false,
    ));
    metrics.push_str(&metric(
        "llr_pruned_speedup",
        t.llr_reference / t.llr_prepared_pruned,
        false,
    ));
    // The tentpole ratios: fused front end vs the scratch-reuse fast
    // path, and frame-major batched scoring vs the retained sequential
    // scorer on identical exhaustive work (the pruned path's speaker
    // side is per-frame in both kernels, so exact-vs-exact is the
    // like-for-like measure of the batching transformation). The
    // quantized-vs-exact ratio is deliberately NOT gated: quantization
    // trades wall clock for a 4x smaller model (it benches ~0.8x on the
    // dequantize-on-the-fly path), so gating it "higher is better" would
    // punish the intended tradeoff — it is reported under "info" below.
    metrics.push_str(&metric(
        "extract_fused_speedup",
        t.extract_fast / t.extract_fused,
        false,
    ));
    metrics.push_str(&metric(
        "llr_batched_speedup",
        t.llr_sequential_exact / t.llr_prepared_exact,
        true,
    ));
    let json = format!(
        "{{\n  \"experiment\": \"kernels\",\n  \"quick\": {quick},\n  \"info\": {{\n    \
         \"frames\": {},\n    \"components\": {},\n    \"top_c\": {TOP_C},\n    \
         \"extract_reference_ns_per_frame\": {:.1},\n    \
         \"extract_fast_ns_per_frame\": {:.1},\n    \
         \"extract_fused_ns_per_frame\": {:.1},\n    \
         \"llr_reference_ns_per_frame\": {:.1},\n    \
         \"llr_sequential_exact_ns_per_frame\": {:.1},\n    \
         \"llr_sequential_top_c_ns_per_frame\": {:.1},\n    \
         \"llr_prepared_exact_ns_per_frame\": {:.1},\n    \
         \"llr_prepared_top_c_ns_per_frame\": {:.1},\n    \
         \"llr_quantized_exact_ns_per_frame\": {:.1},\n    \
         \"llr_quantized_speedup\": {:.4}\n  }},\n  \"metrics\": {{\n{metrics}  }}\n}}\n",
        t.frames,
        t.components,
        t.extract_reference,
        t.extract_fast,
        t.extract_fused,
        t.llr_reference,
        t.llr_sequential_exact,
        t.llr_sequential_pruned,
        t.llr_prepared_exact,
        t.llr_prepared_pruned,
        t.llr_quantized_exact,
        t.llr_prepared_exact / t.llr_quantized_exact,
    );
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("(wrote {path})"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}

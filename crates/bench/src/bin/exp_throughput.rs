//! Throughput and tail latency of the batch verification engine under
//! offered load.
//!
//! Closed-loop load generation: `L` submitter threads each drive the
//! shared [`BatchEngine`] with submit→wait calls over a pre-captured
//! session pool (mixed genuine and replay-attack sessions, so
//! short-circuit pruning has real work to do). For each offered load the
//! run reports sessions/sec and client-observed p50/p95/p99 latency,
//! keeping the best of [`SAMPLES`] short measurements so bursty host
//! contention (which can only lower a sample) doesn't masquerade as a
//! code regression.
//!
//! Before measuring anything, the binary asserts the engine's verdicts
//! are bit-identical to sequential per-session runs under BOTH execution
//! policies — a throughput number for a differently-deciding cascade
//! would be meaningless.
//!
//! After the sweep, the best operating point is re-run with Gaussian
//! pruning disabled (`asv_top_c = 0`) so the artifact records what the
//! top-C fast path is worth end to end. `peak_sessions_per_sec` stays
//! the default-config number — the CI gate keys on it.
//!
//! Output: `results/BENCH_throughput.json` (override with `--out`),
//! consumed by the CI `bench-gate` job. `--quick` shrinks the system and
//! the sweep for CI. The JSON is written by hand (no serde dependence on
//! the hot path) so the file is produced identically in every build
//! environment.

use magshield_bench::{print_header, print_row, EXPERIMENT_SEED};
use magshield_core::batch::{AdmissionPolicy, BatchConfig, BatchEngine, BatchOutcome};
use magshield_core::cascade::ExecutionPolicy;
use magshield_core::pipeline::{BootstrapConfig, DefenseSystem};
use magshield_core::scenario::{bootstrap_with, ScenarioBuilder, UserContext};
use magshield_core::session::SessionData;
use magshield_core::verdict::DefenseVerdict;
use magshield_obs::metrics::Histogram;
use magshield_simkit::rng::SimRng;
use magshield_voice::attacks::AttackKind;
use magshield_voice::devices::table_iv_catalog;
use magshield_voice::profile::SpeakerProfile;
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

/// One measured operating point.
struct LoadPoint {
    offered: usize,
    sessions: usize,
    sessions_per_sec: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    shed: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/BENCH_throughput.json".to_string());

    let rng = SimRng::from_seed(EXPERIMENT_SEED);
    let bootstrap = if quick {
        BootstrapConfig::tiny()
    } else {
        BootstrapConfig::default()
    };
    eprintln!(
        "(bootstrapping {} system...)",
        if quick { "tiny" } else { "full" }
    );
    let (system, user) = bootstrap_with(&rng, bootstrap);

    let pool_size = if quick { 24 } else { 48 };
    let loads: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8, 16] };
    // Size the worker pool to the machine: on a single-core host extra
    // workers only add context-switch overhead between themselves and the
    // submitters, and on big hosts four workers already saturate the
    // five-stage cascade.
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(4);
    let pool = session_pool(&user, pool_size, &rng);

    verify_batch_identity(&system, &pool);

    print_header(
        "Batch engine throughput (closed-loop)",
        &["sess/s", "p50 ms", "p95 ms", "p99 ms", "shed"],
    );
    let mut points = Vec::new();
    for &offered in loads {
        let p = run_load(&system, &pool, workers, offered);
        print_row(
            &format!("L={offered}"),
            &[
                p.sessions_per_sec,
                p.p50_ms,
                p.p95_ms,
                p.p99_ms,
                p.shed as f64,
            ],
        );
        points.push(p);
    }

    let peak = points
        .iter()
        .map(|p| p.sessions_per_sec)
        .fold(0.0f64, f64::max);
    println!("\npeak throughput: {peak:.2} sessions/sec");

    // Re-run the best operating point with pruning off: same sessions,
    // same policy, exact speaker-side evaluation. The delta is the
    // end-to-end value of the top-C fast path.
    let best_offered = points
        .iter()
        .max_by(|a, b| a.sessions_per_sec.total_cmp(&b.sessions_per_sec))
        .map_or(1, |p| p.offered);
    let mut exact_system = system.clone();
    exact_system.config.asv_top_c = 0;
    let exact = run_load(&exact_system, &pool, workers, best_offered);
    print_row(
        &format!("L={best_offered} exact"),
        &[
            exact.sessions_per_sec,
            exact.p50_ms,
            exact.p95_ms,
            exact.p99_ms,
            exact.shed as f64,
        ],
    );
    println!(
        "exact (top_c=0) at L={best_offered}: {:.2} sessions/sec ({:.2}x from pruning)",
        exact.sessions_per_sec,
        peak / exact.sessions_per_sec
    );

    write_json(&out, quick, workers, &points, peak, &exact);
}

/// A mixed pool: two thirds genuine, one third close-range replay attacks
/// so the short-circuit policy has stages to prune.
fn session_pool(user: &UserContext, n: usize, rng: &SimRng) -> Vec<SessionData> {
    let attacker = SpeakerProfile::sample(901, &rng.fork("tp-attacker"));
    let dev = table_iv_catalog()[0].clone();
    (0..n)
        .map(|i| {
            if i % 3 == 2 {
                ScenarioBuilder::machine_attack(
                    user,
                    AttackKind::Replay,
                    dev.clone(),
                    attacker.clone(),
                )
                .at_distance(0.05)
                .capture(&rng.fork_indexed("tp-attack", i as u64))
            } else {
                ScenarioBuilder::genuine(user).capture(&rng.fork_indexed("tp-genuine", i as u64))
            }
        })
        .collect()
}

/// Asserts the batch engine decides exactly like sequential runs, under
/// both execution policies. Aborts the benchmark on any mismatch.
fn verify_batch_identity(system: &DefenseSystem, pool: &[SessionData]) {
    for policy in [
        ExecutionPolicy::FullEvaluation,
        ExecutionPolicy::ShortCircuit,
    ] {
        let sequential: Vec<DefenseVerdict> = pool
            .iter()
            .map(|s| system.verify_with_policy(s, policy))
            .collect();
        let engine = BatchEngine::spawn(
            system.with_fresh_obs(),
            BatchConfig {
                workers: 4,
                policy,
                ..BatchConfig::default()
            },
        );
        let outcomes = engine.verify_batch(pool.to_vec());
        engine.shutdown();
        assert_eq!(outcomes.len(), sequential.len());
        for (i, (outcome, expected)) in outcomes.iter().zip(&sequential).enumerate() {
            match outcome {
                BatchOutcome::Verdict(v) => assert_eq!(
                    v, expected,
                    "session {i}: batch verdict diverged from sequential under {policy:?}"
                ),
                BatchOutcome::Shed(r) => panic!("session {i} unexpectedly shed: {r}"),
            }
        }
    }
    eprintln!("(identity check passed: batch == sequential under both policies)");
}

/// Samples per operating point. Host contention can only *subtract*
/// throughput from a sample — the cascade cannot run faster than the code
/// allows — so keeping the best of a few short samples estimates the
/// achievable rate while rejecting bursty interference (the same rationale
/// as criterion's multi-sample estimators). The first sample doubles as
/// cache/branch-predictor warm-up.
const SAMPLES: usize = 3;

/// Runs one closed-loop operating point: `offered` submitter threads in
/// submit→wait lockstep against a shared engine. Measures [`SAMPLES`]
/// times and returns the best sample.
fn run_load(
    system: &DefenseSystem,
    pool: &[SessionData],
    workers: usize,
    offered: usize,
) -> LoadPoint {
    (0..SAMPLES)
        .map(|_| measure_once(system, pool, workers, offered))
        .max_by(|a, b| a.sessions_per_sec.total_cmp(&b.sessions_per_sec))
        .expect("SAMPLES > 0")
}

/// One timed pass over the pool: spawn a fresh engine, drive it, tear it
/// down.
fn measure_once(
    system: &DefenseSystem,
    pool: &[SessionData],
    workers: usize,
    offered: usize,
) -> LoadPoint {
    let engine = Arc::new(BatchEngine::spawn(
        system.with_fresh_obs(),
        BatchConfig {
            workers,
            queue_capacity: 256,
            max_batch: 8,
            policy: ExecutionPolicy::ShortCircuit,
            admission: AdmissionPolicy::Backpressure,
            batch_deadline: None,
        },
    ));
    let latency = Histogram::default();
    let sessions = pool.len();
    // Materialize each submitter's slice of the pool before the clock
    // starts: the engine queue takes `Arc<SessionData>`, so the deep copy
    // happens once here and each timed submit enqueues a pointer clone.
    let shares: Vec<Vec<Arc<SessionData>>> = (0..offered)
        .map(|t| {
            pool.iter()
                .skip(t)
                .step_by(offered)
                .map(|s| Arc::new(s.clone()))
                .collect()
        })
        .collect();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for share in shares {
            let engine = Arc::clone(&engine);
            let latency = latency.clone();
            scope.spawn(move || {
                for s in share {
                    let t0 = Instant::now();
                    let outcome = engine
                        .submit(s)
                        .expect("backpressure admission never refuses")
                        .wait();
                    latency.record(t0.elapsed());
                    assert!(
                        matches!(outcome, BatchOutcome::Verdict(_)),
                        "no deadline configured, nothing may shed"
                    );
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let shed = engine.metrics().counter("batch.shed").get();
    let snap = latency.snapshot();
    LoadPoint {
        offered,
        sessions,
        sessions_per_sec: sessions as f64 / elapsed,
        p50_ms: snap.p50() * 1e3,
        p95_ms: snap.p95() * 1e3,
        p99_ms: snap.p99() * 1e3,
        shed,
    }
}

/// Hand-rolled JSON so the artifact exists byte-identically in every
/// environment (the gate job parses it with Python, not serde).
fn write_json(
    path: &str,
    quick: bool,
    workers: usize,
    points: &[LoadPoint],
    peak: f64,
    exact: &LoadPoint,
) {
    let mut loads = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            loads.push(',');
        }
        loads.push_str(&format!(
            "\n    {{\"offered\": {}, \"sessions\": {}, \"sessions_per_sec\": {:.3}, \
             \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"shed\": {}}}",
            p.offered, p.sessions, p.sessions_per_sec, p.p50_ms, p.p95_ms, p.p99_ms, p.shed
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"throughput\",\n  \"quick\": {quick},\n  \
         \"workers\": {workers},\n  \"samples\": {SAMPLES},\n  \
         \"policy\": \"short_circuit\",\n  \
         \"loads\": [{loads}\n  ],\n  \
         \"exact\": {{\"asv_top_c\": 0, \"offered\": {}, \"sessions_per_sec\": {:.3}, \
         \"p95_ms\": {:.3}}},\n  \
         \"peak_sessions_per_sec\": {peak:.3}\n}}\n",
        exact.offered, exact.sessions_per_sec, exact.p95_ms
    );
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("(wrote {path})"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}

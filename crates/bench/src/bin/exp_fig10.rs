//! Fig. 10 — polar graph of the magnetic field of a conventional
//! loudspeaker (Logitech LS21), plus the §VI sensor-band check: fields in
//! the 30–210 µT band against the AK8975's 0.3 µT/LSB, ±1200 µT spec.
//!
//! ```sh
//! cargo run --release -p magshield-bench --bin exp_fig10
//! ```

use magshield_bench::{write_results, ResultRow};
use magshield_physics::magnetics::dipole::MagneticDipole;
use magshield_sensors::magnetometer::MagnetometerSpec;
use magshield_simkit::vec3::Vec3;
use magshield_voice::devices::table_iv_catalog;

fn main() {
    let ls21 = table_iv_catalog()[0].clone();
    println!("Fig. 10 — {} polar field at 3 cm", ls21.name);
    let magnet = MagneticDipole::calibrated(Vec3::ZERO, Vec3::Y, ls21.magnet_ut_at_3cm, 0.03);

    let mut rows = Vec::new();
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    println!("{:>7} {:>12}", "angle", "|B| (µT)");
    for deg in (0..360).step_by(10) {
        let a = (deg as f64).to_radians();
        let p = Vec3::new(0.03 * a.sin(), 0.03 * a.cos(), 0.0);
        let b = magnet.field_at(p).norm();
        min = min.min(b);
        max = max.max(b);
        println!("{deg:>6}° {b:>12.1}");
        rows.push(ResultRow {
            experiment: "fig10".into(),
            condition: format!("angle={deg}"),
            metrics: vec![("field_ut".into(), b)],
        });
    }
    println!("\nfield range over the scan: {min:.1}–{max:.1} µT");
    println!("paper band for conventional loudspeakers: 30–210 µT");

    let spec = MagnetometerSpec::ak8975();
    println!(
        "\nAK8975: resolution {} µT/LSB, range ±{} µT →\n\
         the weakest angle still spans {:.0} quantization steps and nothing saturates.",
        spec.resolution_ut,
        spec.range_ut,
        min / spec.resolution_ut
    );
    assert!(max < spec.range_ut, "no saturation at 3 cm");
    write_results("fig10", &rows);
}

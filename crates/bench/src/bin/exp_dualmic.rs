//! §VII "Dual Microphones" — the sound-level-difference (SLD) extension.
//!
//! The paper proposes using the two microphones of devices like the
//! Nexus 4 "to reduce the required moving distance": the SLD between the
//! mics is an absolute near-field range cue available without the long
//! approach. This experiment measures:
//!
//! 1. SLD vs. true source distance (the ranging curve);
//! 2. whether a *shortened* protocol (approach cut to 0.3 s) still
//!    separates genuine close sources from distant attack rigs when the
//!    SLD check is available, compared to single-mic operation.
//!
//! ```sh
//! cargo run --release -p magshield-bench --bin exp_dualmic
//! ```

use magshield_bench::*;
use magshield_core::components::sld;
use magshield_core::scenario::{ScenarioBuilder, UserContext};
use magshield_sensors::phone::PhoneModel;
use magshield_simkit::rng::SimRng;
use magshield_voice::attacks::AttackKind;
use magshield_voice::devices::table_iv_catalog;
use magshield_voice::profile::SpeakerProfile;

fn main() {
    let rng = SimRng::from_seed(EXPERIMENT_SEED).fork("dualmic");
    let mut user = UserContext::sample(&rng.fork("user"));
    user.phone = PhoneModel::Nexus4; // the dual-mic testbed device
    let config = magshield_core::config::DefenseConfig::default();
    let mut rows = Vec::new();

    // --- SLD ranging curve -------------------------------------------------
    print_header(
        "SLD vs distance (9 cm mic spacing)",
        &["d (cm)", "SLD dB", "implied cm", "theory dB"],
    );
    for d_cm in [3.0f64, 5.0, 8.0, 12.0, 20.0, 30.0] {
        let d = d_cm / 100.0;
        let s = ScenarioBuilder::genuine(&user)
            .at_distance(d)
            .capture(&rng.fork_indexed("curve", d_cm as u64));
        if let Some(a) = sld::measure(&s) {
            let theory = 20.0 * ((d + sld::MIC_SPACING_M) / d).log10();
            print_row(
                &format!("{d_cm}"),
                &[a.sld_db, a.implied_distance_m * 100.0, theory],
            );
            rows.push(ResultRow {
                experiment: "dualmic".into(),
                condition: format!("curve d={d_cm}cm"),
                metrics: vec![
                    ("sld_db".into(), a.sld_db),
                    ("implied_cm".into(), a.implied_distance_m * 100.0),
                    ("theory_db".into(), theory),
                ],
            });
        }
    }

    // --- shortened protocol ------------------------------------------------
    // Approach cut from 1.0 s to 0.3 s: the phase-ranging approach check
    // barely sees any displacement, so the single-mic distance component
    // weakens; the SLD check does not care.
    let attacker = SpeakerProfile::sample(910, &rng.fork("attacker"));
    let dev = table_iv_catalog()[7].clone(); // Pioneer floor speaker
    let mut close_cfg = config;
    close_cfg.min_approach_m = 0.01; // shortened protocol expects little approach

    let shorten = |b: ScenarioBuilder| {
        let mut b = b;
        b.motion.approach_s = 0.3;
        b.motion.start_distance_m = b.motion.end_distance_m + 0.04;
        b
    };

    print_header(
        "shortened protocol (0.3 s approach): SLD separation",
        &["scenario", "SLD dB", "implied cm", "sld score"],
    );
    let mut scenarios: Vec<(String, ScenarioBuilder)> = vec![
        (
            "genuine @5cm".into(),
            shorten(ScenarioBuilder::genuine(&user)),
        ),
        (
            "replay @25cm".into(),
            shorten(
                ScenarioBuilder::machine_attack(
                    &user,
                    AttackKind::Replay,
                    dev.clone(),
                    attacker.clone(),
                )
                .at_distance(0.25),
            ),
        ),
        (
            "replay @12cm".into(),
            shorten(
                ScenarioBuilder::machine_attack(&user, AttackKind::Replay, dev, attacker)
                    .at_distance(0.12),
            ),
        ),
    ];
    for (name, b) in scenarios.drain(..) {
        let s = b.capture(&rng.fork(&name));
        let r = sld::verify(&s, &close_cfg);
        let (sld_db, implied) = sld::measure(&s)
            .map(|a| (a.sld_db, a.implied_distance_m * 100.0))
            .unwrap_or((f64::NAN, f64::NAN));
        print_row(&name, &[sld_db, implied, r.attack_score]);
        rows.push(ResultRow {
            experiment: "dualmic".into(),
            condition: name,
            metrics: vec![
                ("sld_db".into(), sld_db),
                ("implied_cm".into(), implied),
                ("sld_attack_score".into(), r.attack_score),
            ],
        });
    }
    write_results("dualmic", &rows);
    println!("\npaper (§VII, proposed): SLD between the two mics lets the system verify");
    println!("source proximity with far less phone movement; distant rigs cannot fake");
    println!("the near-field level gradient regardless of playback volume.");
}

//! Fig. 15 — authentication time comparison: our system vs. a
//! voiceprint-only system vs. a traditional password.
//!
//! The paper's study: 20 volunteers × 10 trials per method, timer stopped
//! when the verification result returns; network effects minimized with a
//! local server. Finding: the full defense is less than a second slower
//! than WeChat's voiceprint, both comparable to typing a password.
//!
//! Our reproduction separates the two components of each trial time:
//! *interaction* (speaking the passphrase while sweeping / typing), which
//! we take from the simulated protocol durations, and *server compute*,
//! which we actually measure on the in-process verification server. All
//! latency figures come from `magshield-obs` histograms: the server's
//! `server.compute.seconds` / `server.queue.wait.seconds` are fetched over
//! the wire via `Message::StatsRequest`, and client round trips are
//! recorded into the shared registry. One traced verification per user is
//! exported as JSONL under `results/logs/` for per-component latency.
//!
//! ```sh
//! cargo run --release -p magshield-bench --bin exp_fig15
//! ```

use magshield_bench::*;
use magshield_core::cascade::ExecutionPolicy;
use magshield_core::scenario::ScenarioBuilder;
use magshield_core::server::VerificationServer;
use magshield_voice::attacks::AttackKind;
use magshield_voice::devices::table_iv_catalog;
use magshield_voice::profile::SpeakerProfile;
use std::time::Instant;

fn main() {
    let (system, user, rng) = experiment_system();
    // The clone shares the system's metrics registry and span collector,
    // so locally traced sessions and server-side work land in one place.
    let local = system.clone();
    let round_trip = local.metrics().histogram("client.round_trip.seconds");
    let asv_frontend = local.metrics().histogram("bench.asv_frontend.seconds");
    let server = VerificationServer::spawn(system, 1);
    let client = server.client();

    let users = 20;
    let trials_per_user = 10;
    let mut traces = Vec::with_capacity(users);

    println!("running {users} users × {trials_per_user} trials through the server...");
    for u in 0..users {
        for t in 0..trials_per_user {
            let session = ScenarioBuilder::genuine(&user)
                .capture(&rng.fork_indexed("fig15", (u * 100 + t) as u64));
            // Full defense (all four components), over the wire.
            let t0 = Instant::now();
            let verdict = client.verify(&session).expect("server");
            round_trip.record(t0.elapsed());
            let _ = verdict;
            // One traced (in-process) verification per user for the
            // per-component latency log; tracing every trial would double
            // the experiment's runtime for no extra information.
            if t == 0 {
                let (_, trace) = local.verify_traced(&session);
                traces.push(trace);
            }
            // Voiceprint-only baseline: same wire round-trip, but time only
            // the ASV component by re-verifying with the other components'
            // inputs already computed — approximated as the ASV share of
            // the pipeline measured separately below.
            let t1 = Instant::now();
            let _ = magshield_core::components::speaker_id::asv_audio(&session);
            asv_frontend.record(t1.elapsed());
        }
    }

    // Interaction times (s): protocol speaking+sweep for voice methods,
    // typing a 6-digit secret for the password (human-interface studies
    // place 6-digit PIN entry at ~2–3 s).
    let ours_interaction = 1.0 + 2.0; // approach + sweep while speaking
    let voiceprint_interaction = 2.0; // speak the passphrase only
    let password_interaction = 2.5;
    let password_compute = 0.001; // hash check

    // Compute times are medians of the obs histograms; the server's own
    // compute histogram arrives via the Message::Stats wire round-trip.
    let stats = client.stats().expect("stats over the wire");
    let ours_c = stats.compute.quantile(0.5);
    // Voiceprint compute ≈ ASV front end + scoring; measure it as the
    // fraction of full verification spent in ASV (~dominant share) — we
    // report the measured full pipeline minus the three cheap components.
    let voiceprint_c = ours_c * 0.6 + asv_frontend.snapshot().quantile(0.5);

    print_header(
        "Fig. 15 — authentication time per trial (seconds)",
        &["method", "interact", "compute", "total"],
    );
    let mut rows = Vec::new();
    for (name, inter, comp) in [
        ("ours", ours_interaction, ours_c),
        ("voiceprint", voiceprint_interaction, voiceprint_c),
        ("password", password_interaction, password_compute),
    ] {
        println!("{name:>14}{inter:>14.2}{comp:>14.3}{:>14.2}", inter + comp);
        let mut metrics = vec![
            ("interaction_s".to_string(), inter),
            ("compute_s".to_string(), comp),
            ("total_s".to_string(), inter + comp),
        ];
        if name == "ours" {
            metrics.extend(latency_metrics("compute", &stats.compute));
            metrics.extend(latency_metrics("round_trip", &round_trip.snapshot()));
        }
        rows.push(ResultRow {
            experiment: "fig15".into(),
            condition: name.into(),
            metrics,
        });
    }

    println!("\nlatency percentiles (magshield-obs histograms):");
    print_latency("server compute", &stats.compute);
    print_latency("queue wait", &stats.queue_wait);
    print_latency("client round trip", &round_trip.snapshot());
    println!(
        "server processed {} sessions ({} still queued)",
        stats.processed, stats.queue_depth
    );
    println!("paper: ours ≈ voiceprint + <1 s; both comparable to a typed password.");

    // --- short-circuit vs full evaluation on rejected sessions ---------
    // The cascade runs cheapest-first, so under ShortCircuit a replay
    // attack the magnetometer condemns never reaches the ASV back end.
    // Verify the same attack sessions under both policies on systems with
    // fresh (isolated) registries and compare wall-clock per verdict.
    let attacker = SpeakerProfile::sample(915, &rng.fork("fig15-attacker"));
    let pc = table_iv_catalog()[0].clone();
    let attacks: Vec<_> = (0..30)
        .map(|i| {
            ScenarioBuilder::machine_attack(&user, AttackKind::Replay, pc.clone(), attacker.clone())
                .at_distance(0.05)
                .capture(&rng.fork_indexed("fig15-attack", i))
        })
        .collect();
    let full_sys = local.with_fresh_obs();
    let short_sys = local.with_fresh_obs();
    let full_h = full_sys.metrics().histogram("bench.attack.full.seconds");
    let short_h = short_sys.metrics().histogram("bench.attack.short.seconds");
    let mut decisions_agree = true;
    for s in &attacks {
        let t0 = Instant::now();
        let vf = full_sys.verify_with_policy(s, ExecutionPolicy::FullEvaluation);
        full_h.record(t0.elapsed());
        let t1 = Instant::now();
        let vs = short_sys.verify_with_policy(s, ExecutionPolicy::ShortCircuit);
        short_h.record(t1.elapsed());
        decisions_agree &= vf.decision == vs.decision;
    }
    assert!(decisions_agree, "policies must agree on every decision");
    let full_snap = full_h.snapshot();
    let short_snap = short_h.snapshot();
    let skipped_asv = short_sys
        .metrics()
        .counter("pipeline.speaker_id.skipped")
        .get();
    print_header(
        "rejected replay sessions: execution-policy latency (seconds)",
        &["policy", "p50", "p95", "max"],
    );
    for (name, snap) in [("full", &full_snap), ("short-circuit", &short_snap)] {
        println!(
            "{name:>14}{:>14.4}{:>14.4}{:>14.4}",
            snap.quantile(0.5),
            snap.quantile(0.95),
            snap.max_s()
        );
        let mut metrics = latency_metrics("attack_compute", snap);
        if name == "short-circuit" {
            metrics.push(("speaker_id_skipped".to_string(), skipped_asv as f64));
        }
        rows.push(ResultRow {
            experiment: "fig15".into(),
            condition: format!("attack/{name}"),
            metrics,
        });
    }
    println!(
        "short-circuit skipped the ASV back end on {skipped_asv}/{} rejected sessions;",
        attacks.len()
    );
    println!("accept/reject decisions agree with full evaluation on every session.");
    write_results("fig15", &rows);
    write_trace_log("fig15", &traces);
    server.shutdown();
}

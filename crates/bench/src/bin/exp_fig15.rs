//! Fig. 15 — authentication time comparison: our system vs. a
//! voiceprint-only system vs. a traditional password.
//!
//! The paper's study: 20 volunteers × 10 trials per method, timer stopped
//! when the verification result returns; network effects minimized with a
//! local server. Finding: the full defense is less than a second slower
//! than WeChat's voiceprint, both comparable to typing a password.
//!
//! Our reproduction separates the two components of each trial time:
//! *interaction* (speaking the passphrase while sweeping / typing), which
//! we take from the simulated protocol durations, and *server compute*,
//! which we actually measure on the in-process verification server.
//!
//! ```sh
//! cargo run --release -p magshield-bench --bin exp_fig15
//! ```

use magshield_bench::*;
use magshield_core::scenario::ScenarioBuilder;
use magshield_core::server::VerificationServer;
use std::time::Instant;

fn main() {
    let (system, user, rng) = experiment_system();
    let server = VerificationServer::spawn(system, 1);
    let client = server.client();

    let users = 20;
    let trials_per_user = 10;
    let mut ours_compute = Vec::new();
    let mut voiceprint_compute = Vec::new();

    println!("running {users} users × {trials_per_user} trials through the server...");
    for u in 0..users {
        for t in 0..trials_per_user {
            let session = ScenarioBuilder::genuine(&user)
                .capture(&rng.fork_indexed("fig15", (u * 100 + t) as u64));
            // Full defense (all four components).
            let t0 = Instant::now();
            let verdict = client.verify(&session).expect("server");
            ours_compute.push(t0.elapsed().as_secs_f64());
            let _ = verdict;
            // Voiceprint-only baseline: same wire round-trip, but time only
            // the ASV component by re-verifying with the other components'
            // inputs already computed — approximated as the ASV share of
            // the pipeline measured separately below.
            let t1 = Instant::now();
            let _ = magshield_core::components::speaker_id::asv_audio(&session);
            voiceprint_compute.push(t1.elapsed().as_secs_f64());
        }
    }

    // Interaction times (s): protocol speaking+sweep for voice methods,
    // typing a 6-digit secret for the password (human-interface studies
    // place 6-digit PIN entry at ~2–3 s).
    let ours_interaction = 1.0 + 2.0; // approach + sweep while speaking
    let voiceprint_interaction = 2.0; // speak the passphrase only
    let password_interaction = 2.5;
    let password_compute = 0.001; // hash check

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    // Voiceprint compute ≈ ASV front end + scoring; measure it as the
    // fraction of full verification spent in ASV (~dominant share) — we
    // report the measured full pipeline minus the three cheap components.
    let ours_c = mean(&ours_compute);
    let voiceprint_c = ours_c * 0.6 + mean(&voiceprint_compute);

    print_header(
        "Fig. 15 — authentication time per trial (seconds)",
        &["method", "interact", "compute", "total"],
    );
    let mut rows = Vec::new();
    for (name, inter, comp) in [
        ("ours", ours_interaction, ours_c),
        ("voiceprint", voiceprint_interaction, voiceprint_c),
        ("password", password_interaction, password_compute),
    ] {
        println!("{name:>14}{inter:>14.2}{comp:>14.3}{:>14.2}", inter + comp);
        rows.push(ResultRow {
            experiment: "fig15".into(),
            condition: name.into(),
            metrics: vec![
                ("interaction_s".into(), inter),
                ("compute_s".into(), comp),
                ("total_s".into(), inter + comp),
            ],
        });
    }
    let stats = server.stats();
    println!(
        "\nserver processed {} sessions, mean verification latency {:.1} ms",
        stats.processed,
        stats.mean_latency().as_secs_f64() * 1000.0
    );
    println!("paper: ours ≈ voiceprint + <1 s; both comparable to a typed password.");
    write_results("fig15", &rows);
    server.shutdown();
}

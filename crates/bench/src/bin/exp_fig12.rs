//! Fig. 12 — Impact of sound source distance, (a) no shielding and (b)
//! Mu-metal shielding.
//!
//! Paper protocol: five speakers contribute voice at six distances
//! (4–14 cm); replay attacks run through 25 loudspeakers at the same
//! distances. The paper reports FAR/FRR/EER per distance; all three are
//! zero at ≤ 6 cm, FAR rises steeply beyond 10 cm as the magnet fades
//! into the sensor noise floor.
//!
//! For each tested distance the distance-verification gate is widened to
//! `d + 2 cm` (as in the paper, the experiment measures *detector*
//! performance at distance d; the 6 cm protocol threshold Dt is chosen
//! from these curves afterwards).
//!
//! ```sh
//! cargo run --release -p magshield-bench --bin exp_fig12
//! ```

use magshield_bench::*;
use magshield_voice::devices::table_iv_catalog;

fn main() {
    let (system, user, rng) = experiment_system();
    // A class-diverse device subset (full 25-device sweep is exp_speakers).
    let catalog = table_iv_catalog();
    let devices: Vec<_> = [0usize, 3, 7, 12, 18, 23]
        .iter()
        .map(|&i| catalog[i].clone())
        .collect();
    let distances_cm = [4.0, 6.0, 8.0, 10.0, 12.0, 14.0];
    let mut rows = Vec::new();

    for (label, shielded) in [
        ("fig12a (no shielding)", false),
        ("fig12b (Mu-metal)", true),
    ] {
        print_header(label, &["d (cm)", "FAR %", "FRR %", "EER %"]);
        for &d_cm in &distances_cm {
            let d = d_cm / 100.0;
            let mut config = system.config;
            config.distance_threshold_m = d + 0.02;
            let erng = rng.fork_indexed(label, d_cm as u64);
            let genuine = genuine_verdicts(&system, &user, d, 20, &erng.fork("g"), &config);
            let attacks = attack_verdicts(
                &system,
                &user,
                &devices,
                d,
                3,
                shielded,
                &erng.fork("a"),
                &config,
            );
            let (far, frr, eer) = rates(&genuine, &attacks);
            print_row(&format!("{d_cm}"), &[far, frr, eer]);
            rows.push(ResultRow {
                experiment: if shielded { "fig12b" } else { "fig12a" }.into(),
                condition: format!("d={d_cm}cm"),
                metrics: vec![
                    ("far_pct".into(), far),
                    ("frr_pct".into(), frr),
                    ("eer_pct".into(), eer),
                ],
            });
        }
    }
    write_results("fig12", &rows);
    println!("\npaper (a): FAR/FRR/EER = 0 at ≤6 cm; FAR 5.3→46.7 % from 8→14 cm.");
    println!(
        "paper (b): zero at ≤6 cm; FAR 8→53.3 % from 8→14 cm (shield hides the magnet sooner)."
    );
}

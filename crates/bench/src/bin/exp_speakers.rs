//! §VI "Various Classes of Speakers" — replay attacks through *all 25*
//! Table IV devices at the protocol distance must be detected.
//!
//! The paper: "our method can detect all of these loudspeakers owing to
//! the same structure they share, all containing a permanent magnet."
//!
//! ```sh
//! cargo run --release -p magshield-bench --bin exp_speakers
//! ```

use magshield_bench::*;
use magshield_core::scenario::ScenarioBuilder;
use magshield_core::verdict::Component;
use magshield_simkit::rng::SimRng;
use magshield_voice::attacks::AttackKind;
use magshield_voice::devices::table_iv_catalog;
use magshield_voice::profile::SpeakerProfile;

fn main() {
    let (system, user, rng) = experiment_system();
    let attacker = SpeakerProfile::sample(904, &rng.fork("attacker"));
    let trials_per_device = 3;

    println!(
        "{:<44} {:>7} {:>9} {:>10}",
        "device", "magnet", "detected", "by-magnet"
    );
    println!("{}", "-".repeat(74));
    let mut rows = Vec::new();
    let mut total_detected = 0;
    let mut total = 0;
    for (di, dev) in table_iv_catalog().into_iter().enumerate() {
        let mut detected = 0;
        let mut by_magnet = 0;
        for t in 0..trials_per_device {
            let s = ScenarioBuilder::machine_attack(
                &user,
                AttackKind::Replay,
                dev.clone(),
                attacker.clone(),
            )
            .at_distance(0.05)
            .capture(&SimRng::from_seed(
                EXPERIMENT_SEED ^ ((di as u64) << 8 | t as u64),
            ));
            let v = system.verify(&s);
            if !v.accepted() {
                detected += 1;
            }
            if v.result_of(Component::Loudspeaker)
                .is_some_and(|r| r.attack_score >= 1.0)
            {
                by_magnet += 1;
            }
        }
        total_detected += detected;
        total += trials_per_device;
        println!(
            "{:<44} {:>5.0}µT {:>6}/{} {:>8}/{}",
            dev.name,
            dev.magnet_ut_at_3cm,
            detected,
            trials_per_device,
            by_magnet,
            trials_per_device
        );
        rows.push(ResultRow {
            experiment: "speakers25".into(),
            condition: dev.name.into(),
            metrics: vec![
                (
                    "detect_rate_pct".into(),
                    detected as f64 / trials_per_device as f64 * 100.0,
                ),
                (
                    "magnet_detect_rate_pct".into(),
                    by_magnet as f64 / trials_per_device as f64 * 100.0,
                ),
            ],
        });
    }
    println!(
        "\noverall: {total_detected}/{total} attack sessions rejected ({:.1} %)",
        total_detected as f64 / total as f64 * 100.0
    );
    println!("paper: 100 % — every conventional loudspeaker detected.");
    write_results("speakers25", &rows);
}

//! Criterion benchmarks of the batch verification engine: stage-major
//! batched execution against the sequential session-major baseline, under
//! both execution policies. The interesting comparison is ShortCircuit on
//! a mixed pool — stage-major execution prunes the expensive ASV stage
//! for sessions the cheap stages already rejected.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use magshield_core::cascade::ExecutionPolicy;
use magshield_core::pipeline::{BootstrapConfig, DefenseSystem};
use magshield_core::scenario::{bootstrap_with, ScenarioBuilder, UserContext};
use magshield_core::session::SessionData;
use magshield_simkit::rng::SimRng;
use magshield_voice::attacks::AttackKind;
use magshield_voice::devices::table_iv_catalog;
use magshield_voice::profile::SpeakerProfile;
use std::sync::OnceLock;

fn fixture() -> &'static (DefenseSystem, UserContext) {
    static F: OnceLock<(DefenseSystem, UserContext)> = OnceLock::new();
    F.get_or_init(|| bootstrap_with(&SimRng::from_seed(99), BootstrapConfig::tiny()))
}

/// 16 sessions, half genuine and half close-range replay attacks: the
/// attacks short-circuit at the cheap stages, so stage-major execution
/// has a real ASV workload to prune.
fn mixed_pool() -> Vec<SessionData> {
    let (_, user) = fixture();
    let rng = SimRng::from_seed(17);
    let attacker = SpeakerProfile::sample(901, &rng.fork("bench-attacker"));
    let dev = table_iv_catalog()[0].clone();
    (0..16)
        .map(|i| {
            if i % 2 == 0 {
                ScenarioBuilder::genuine(user).capture(&rng.fork_indexed("g", i))
            } else {
                ScenarioBuilder::machine_attack(
                    user,
                    AttackKind::Replay,
                    dev.clone(),
                    attacker.clone(),
                )
                .at_distance(0.05)
                .capture(&rng.fork_indexed("a", i))
            }
        })
        .collect()
}

fn bench_batch_vs_sequential(c: &mut Criterion) {
    let (system, _) = fixture();
    let pool = mixed_pool();
    let refs: Vec<&SessionData> = pool.iter().collect();
    for policy in [
        ExecutionPolicy::FullEvaluation,
        ExecutionPolicy::ShortCircuit,
    ] {
        let tag = match policy {
            ExecutionPolicy::FullEvaluation => "full",
            ExecutionPolicy::ShortCircuit => "short_circuit",
        };
        c.bench_function(&format!("batch16_stage_major_{tag}"), |b| {
            b.iter(|| system.verify_batch_with_policy(black_box(&refs), policy))
        });
        c.bench_function(&format!("batch16_sequential_{tag}"), |b| {
            b.iter(|| {
                pool.iter()
                    .map(|s| system.verify_with_policy(black_box(s), policy))
                    .collect::<Vec<_>>()
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_batch_vs_sequential
}
criterion_main!(benches);

//! Criterion benchmarks for the ASV stack: GMM scoring, MAP adaptation
//! and SVM/PCA kernels — the server-side compute of Table I / Fig. 15.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use magshield_ml::gmm::{DiagonalGmm, LlrScorer, ScoreScratch};
use magshield_ml::pca::Pca;
use magshield_ml::svm::{LinearSvm, SvmConfig};
use magshield_simkit::rng::SimRng;

fn frames(rng: &SimRng, n: usize, dim: usize) -> Vec<Vec<f64>> {
    let mut r = rng.fork("frames");
    (0..n)
        .map(|_| (0..dim).map(|_| r.gauss(0.0, 1.0)).collect())
        .collect()
}

fn bench_gmm_score(c: &mut Criterion) {
    let rng = SimRng::from_seed(1);
    let data = frames(&rng, 2000, 26);
    let gmm = DiagonalGmm::train(&data, 32, 5, 1e-4, &rng);
    let test = frames(&rng.fork("test"), 200, 26);
    c.bench_function("gmm32_llk_200_frames", |b| {
        b.iter(|| gmm.mean_log_likelihood(black_box(&test)))
    });
}

/// LLR scoring three ways on the same (speaker, UBM) pair: the naive
/// reference, prepared constants (exact), and top-8 Gaussian pruning.
fn bench_llr_paths(c: &mut Criterion) {
    let rng = SimRng::from_seed(6);
    let data = frames(&rng, 2000, 26);
    let ubm = DiagonalGmm::train(&data, 32, 5, 1e-4, &rng);
    let enroll = frames(&rng.fork("enroll"), 300, 26);
    let speaker = ubm.map_adapt_means(&enroll, 16.0);
    let test = frames(&rng.fork("test"), 200, 26);

    c.bench_function("llr32_reference_200_frames", |b| {
        b.iter(|| speaker.llr_score(&ubm, black_box(&test)))
    });

    let scorer = LlrScorer::new(&speaker, &ubm);
    let mut scratch = ScoreScratch::new();
    c.bench_function("llr32_prepared_exact_200_frames", |b| {
        b.iter(|| scorer.score(black_box(&test), 0, &mut scratch).score)
    });
    c.bench_function("llr32_prepared_top8_200_frames", |b| {
        b.iter(|| scorer.score(black_box(&test), 8, &mut scratch).score)
    });
}

fn bench_map_adapt(c: &mut Criterion) {
    let rng = SimRng::from_seed(2);
    let data = frames(&rng, 2000, 26);
    let gmm = DiagonalGmm::train(&data, 32, 5, 1e-4, &rng);
    let enroll = frames(&rng.fork("enroll"), 300, 26);
    c.bench_function("map_adapt_300_frames", |b| {
        b.iter(|| gmm.map_adapt_means(black_box(&enroll), 16.0))
    });
}

fn bench_gmm_train(c: &mut Criterion) {
    let rng = SimRng::from_seed(3);
    let data = frames(&rng, 1000, 26);
    c.bench_function("gmm16_train_1000_frames", |b| {
        b.iter(|| DiagonalGmm::train(black_box(&data), 16, 3, 1e-4, &rng))
    });
}

fn bench_svm_train(c: &mut Criterion) {
    let rng = SimRng::from_seed(4);
    let mut r = rng.fork("svm");
    let data: Vec<Vec<f64>> = (0..200)
        .map(|i| {
            let c = if i % 2 == 0 { 1.0 } else { -1.0 };
            (0..5).map(|_| r.gauss(c, 1.0)).collect()
        })
        .collect();
    let labels: Vec<f64> = (0..200)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    c.bench_function("svm_train_200x5", |b| {
        b.iter(|| LinearSvm::train(black_box(&data), &labels, SvmConfig::default(), &rng))
    });
}

fn bench_pca(c: &mut Criterion) {
    let rng = SimRng::from_seed(5);
    let data = frames(&rng, 100, 13);
    c.bench_function("pca_fit_100x13", |b| {
        b.iter(|| Pca::fit(black_box(&data), 2))
    });
}

criterion_group!(
    benches,
    bench_gmm_score,
    bench_llr_paths,
    bench_map_adapt,
    bench_gmm_train,
    bench_svm_train,
    bench_pca
);
criterion_main!(benches);

//! Criterion microbenchmarks for the DSP kernels on the verification hot
//! path: FFT, Goertzel pilot tracking, MFCC extraction and STFT.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use magshield_dsp::complex::Complex;
use magshield_dsp::fft::fft;
use magshield_dsp::frame::{FrameMatrix, ScratchPad};
use magshield_dsp::goertzel::goertzel;
use magshield_dsp::mel::MfccExtractor;
use magshield_dsp::phase::PhaseTracker;
use magshield_dsp::stft::{Spectrogram, StftConfig};

fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (std::f64::consts::TAU * freq * i as f64 / fs).sin())
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let base: Vec<Complex> = (0..4096)
        .map(|i| Complex::new((i as f64 * 0.37).sin(), 0.0))
        .collect();
    c.bench_function("fft_4096", |b| {
        b.iter(|| {
            let mut buf = base.clone();
            fft(black_box(&mut buf));
            buf
        })
    });
}

fn bench_goertzel(c: &mut Criterion) {
    let sig = tone(18_000.0, 48_000.0, 96);
    c.bench_function("goertzel_96_samples", |b| {
        b.iter(|| goertzel(black_box(&sig), 18_000.0, 48_000.0))
    });
}

fn bench_phase_tracker(c: &mut Criterion) {
    // One second of pilot at the audio rate — the per-session ranging cost.
    let sig = tone(18_000.0, 48_000.0, 48_000);
    let tracker = PhaseTracker::new(18_000.0, 48_000.0);
    c.bench_function("phase_track_1s_48k", |b| {
        b.iter(|| tracker.track(black_box(&sig), 48_000.0))
    });
}

fn bench_mfcc(c: &mut Criterion) {
    let sig = tone(220.0, 16_000.0, 16_000);
    let ex = MfccExtractor::new(16_000.0);
    c.bench_function("mfcc_1s_16k", |b| b.iter(|| ex.extract(black_box(&sig))));
}

/// The zero-allocation fast path: scratch and output reused across calls.
fn bench_mfcc_into(c: &mut Criterion) {
    let sig = tone(220.0, 16_000.0, 16_000);
    let ex = MfccExtractor::new(16_000.0);
    let mut scratch = ScratchPad::new();
    let mut out = FrameMatrix::new(0);
    ex.extract_into(&sig, &mut scratch, &mut out);
    c.bench_function("mfcc_1s_16k_into", |b| {
        b.iter(|| {
            ex.extract_into(black_box(&sig), &mut scratch, &mut out);
            black_box(out.rows())
        })
    });
}

fn bench_spectrogram(c: &mut Criterion) {
    let sig = tone(1000.0, 48_000.0, 48_000);
    c.bench_function("spectrogram_1s_48k", |b| {
        b.iter(|| Spectrogram::compute(black_box(&sig), 48_000.0, StftConfig::default()))
    });
}

criterion_group!(
    benches,
    bench_fft,
    bench_goertzel,
    bench_phase_tracker,
    bench_mfcc,
    bench_mfcc_into,
    bench_spectrogram
);
criterion_main!(benches);

//! Criterion benchmarks of the end-to-end pipeline: session capture,
//! full four-component verification, and the wire protocol — the numbers
//! behind Fig. 15's compute component.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use magshield_core::pipeline::{BootstrapConfig, DefenseSystem};
use magshield_core::scenario::{bootstrap_with, ScenarioBuilder, UserContext};
use magshield_core::server::protocol::{decode_frame, encode_request};
use magshield_simkit::rng::SimRng;
use std::sync::OnceLock;

fn fixture() -> &'static (DefenseSystem, UserContext) {
    static F: OnceLock<(DefenseSystem, UserContext)> = OnceLock::new();
    F.get_or_init(|| bootstrap_with(&SimRng::from_seed(99), BootstrapConfig::tiny()))
}

fn bench_capture(c: &mut Criterion) {
    let (_, user) = fixture();
    let rng = SimRng::from_seed(7);
    c.bench_function("session_capture", |b| {
        b.iter(|| ScenarioBuilder::genuine(black_box(user)).capture(&rng))
    });
}

fn bench_verify(c: &mut Criterion) {
    let (system, user) = fixture();
    let session = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(8));
    c.bench_function("full_verify", |b| {
        b.iter(|| system.verify(black_box(&session)))
    });
}

fn bench_protocol(c: &mut Criterion) {
    let (_, user) = fixture();
    let session = ScenarioBuilder::genuine(user).capture(&SimRng::from_seed(9));
    c.bench_function("protocol_encode", |b| {
        b.iter(|| encode_request(1, black_box(&session)))
    });
    let frame = encode_request(1, &session);
    c.bench_function("protocol_decode", |b| {
        b.iter(|| decode_frame(black_box(&frame)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_capture, bench_verify, bench_protocol
}
criterion_main!(benches);

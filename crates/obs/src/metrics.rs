//! Lock-cheap metrics: counters, gauges and log-scale latency histograms.
//!
//! A [`Registry`] maps dot-separated names to handles. Registration takes
//! a short `parking_lot` lock; every handle is an `Arc`-backed atomic, so
//! the hot path (increment, record) is a relaxed atomic op with no lock
//! and no allocation. Handles are cheap to clone and remain connected to
//! the registry: workers keep their own clones, snapshots see every
//! update.

use crate::labels::{Labels, MAX_CARDINALITY};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of histogram buckets.
pub const BUCKETS: usize = 64;
/// Lower bound of bucket 1 (seconds). Bucket 0 catches everything below.
pub const MIN_BUCKET_S: f64 = 1e-6;
/// Geometric growth factor between bucket boundaries (√2 per bucket, i.e.
/// two buckets per octave). 64 buckets span 1 µs … ≈ 4800 s.
pub const GROWTH: f64 = std::f64::consts::SQRT_2;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depth, in-flight requests, …).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Replaces the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log-scale latency histogram.
///
/// Buckets are geometric: bucket `i ≥ 1` covers
/// `[MIN_BUCKET_S·GROWTH^(i-1)·GROWTH, …)` — equivalently, boundaries at
/// `MIN_BUCKET_S · GROWTH^i`. Bucket 0 catches every value below
/// [`MIN_BUCKET_S`]; the last bucket absorbs overflow (the true maximum is
/// tracked exactly on the side). Recording is three relaxed atomic ops.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

/// Exemplars retained per histogram window (the N slowest samples).
pub const MAX_EXEMPLARS: usize = 8;

/// A slow sample annotated with the trace it came from.
///
/// Exemplars link a histogram's tail to per-session evidence: the
/// `trace_id` is the session label stamped on the matching
/// [`crate::PipelineTrace`] JSONL record, so a p99 spike can be chased
/// to the exact session that caused it. The value is kept in integer
/// nanoseconds so snapshots stay `Eq` and merges stay exact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Exemplar {
    /// Session / trace identifier of the slow sample.
    pub trace_id: String,
    /// Observed value, nanoseconds.
    pub value_ns: u64,
    /// Histogram bucket the sample landed in.
    pub bucket: u32,
}

impl Exemplar {
    /// Observed value in seconds.
    pub fn value_s(&self) -> f64 {
        self.value_ns as f64 / 1e9
    }
}

/// Keeps the [`MAX_EXEMPLARS`] slowest samples of the current window.
#[derive(Debug, Default)]
struct ExemplarWindow {
    slots: Vec<Exemplar>,
}

impl ExemplarWindow {
    /// Inserts if the sample belongs in the top set; returns the new
    /// admission floor (the smallest retained value once full).
    fn offer(&mut self, ex: Exemplar) -> u64 {
        if self.slots.len() < MAX_EXEMPLARS {
            self.slots.push(ex);
        } else if let Some(min_at) = (0..self.slots.len())
            .min_by_key(|&i| self.slots[i].value_ns)
            .filter(|&i| self.slots[i].value_ns < ex.value_ns)
        {
            self.slots[min_at] = ex;
        }
        if self.slots.len() < MAX_EXEMPLARS {
            0
        } else {
            self.slots.iter().map(|e| e.value_ns).min().unwrap_or(0)
        }
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    /// Lock-free admission gate: samples below this value cannot enter
    /// the exemplar window, so the common case costs one relaxed load.
    exemplar_floor_ns: AtomicU64,
    exemplars: Mutex<ExemplarWindow>,
}

impl Default for HistogramCore {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            exemplar_floor_ns: AtomicU64::new(0),
            exemplars: Mutex::new(ExemplarWindow::default()),
        }
    }
}

/// Bucket index for a value in seconds.
fn bucket_index(secs: f64) -> usize {
    // NaN, negatives and underflow all land in bucket 0.
    if secs.is_nan() || secs <= MIN_BUCKET_S {
        return 0;
    }
    // log_GROWTH(secs / MIN) = 2·log2(secs / MIN) for GROWTH = √2.
    let idx = (2.0 * (secs / MIN_BUCKET_S).log2()).floor();
    // +1: bucket 0 is reserved for values below MIN_BUCKET_S.
    ((idx as usize).saturating_add(1)).min(BUCKETS - 1)
}

/// Lower boundary (seconds) of bucket `i` (0 for bucket 0).
fn bucket_lower(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        MIN_BUCKET_S * GROWTH.powi(i as i32 - 1)
    }
}

/// Upper boundary (seconds) of bucket `i`.
fn bucket_upper(i: usize) -> f64 {
    MIN_BUCKET_S * GROWTH.powi(i as i32)
}

impl Histogram {
    /// Records a duration.
    pub fn record(&self, d: Duration) {
        self.record_secs(d.as_secs_f64());
    }

    /// Records a value in seconds. Negative and non-finite values are
    /// clamped to zero (they land in bucket 0 and do not poison the sum).
    pub fn record_secs(&self, secs: f64) {
        let secs = if secs.is_finite() && secs > 0.0 {
            secs
        } else {
            0.0
        };
        let ns = (secs * 1e9).round() as u64; // saturating float→int cast
        let core = &*self.0;
        core.buckets[bucket_index(secs)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum_ns.fetch_add(ns, Ordering::Relaxed);
        core.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records a value in seconds and offers it to the exemplar window.
    ///
    /// Only samples at least as slow as the current window floor pay for
    /// the exemplar lock; everything else adds a single relaxed load on
    /// top of [`Histogram::record_secs`]. The window keeps the
    /// [`MAX_EXEMPLARS`] slowest samples seen since the last
    /// [`Histogram::take_exemplars`].
    pub fn record_secs_with_exemplar(&self, secs: f64, trace_id: &str) {
        self.record_secs(secs);
        let secs = if secs.is_finite() && secs > 0.0 {
            secs
        } else {
            0.0
        };
        let ns = (secs * 1e9).round() as u64;
        let core = &*self.0;
        if ns >= core.exemplar_floor_ns.load(Ordering::Relaxed) {
            let mut window = core.exemplars.lock();
            let floor = window.offer(Exemplar {
                trace_id: trace_id.to_string(),
                value_ns: ns,
                bucket: bucket_index(secs) as u32,
            });
            core.exemplar_floor_ns.store(floor, Ordering::Relaxed);
        }
    }

    /// [`Histogram::record_secs_with_exemplar`] for a [`Duration`].
    pub fn record_with_exemplar(&self, d: Duration, trace_id: &str) {
        self.record_secs_with_exemplar(d.as_secs_f64(), trace_id);
    }

    /// Drains the exemplar window, starting a fresh one. Scrapers call
    /// this once per export so each window's slowest sessions are
    /// reported exactly once.
    pub fn take_exemplars(&self) -> Vec<Exemplar> {
        let core = &*self.0;
        let mut window = core.exemplars.lock();
        core.exemplar_floor_ns.store(0, Ordering::Relaxed);
        let mut out = std::mem::take(&mut window.slots);
        sort_exemplars(&mut out);
        out
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy for reporting. (Buckets are read one by
    /// one without a global lock; concurrent recording may skew a bucket
    /// by the few events that land mid-read, which reporting tolerates.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.0;
        let mut exemplars = core.exemplars.lock().slots.clone();
        sort_exemplars(&mut exemplars);
        HistogramSnapshot {
            buckets: core
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: core.count.load(Ordering::Relaxed),
            sum_ns: core.sum_ns.load(Ordering::Relaxed),
            max_ns: core.max_ns.load(Ordering::Relaxed),
            exemplars,
        }
    }
}

/// Slowest first; ties broken by trace id so ordering is deterministic.
fn sort_exemplars(exemplars: &mut [Exemplar]) {
    exemplars.sort_by(|a, b| {
        b.value_ns
            .cmp(&a.value_ns)
            .then_with(|| a.trace_id.cmp(&b.trace_id))
    });
}

/// An owned, serializable copy of a [`Histogram`].
///
/// The sum and max are kept in integer nanoseconds so that
/// [`HistogramSnapshot::merge`] is exactly associative (floating-point
/// addition is not).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket counts ([`BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total recorded values (= sum of `buckets`).
    pub count: u64,
    /// Sum of recorded values, nanoseconds.
    pub sum_ns: u64,
    /// Largest recorded value, nanoseconds (exact, not bucketed).
    pub max_ns: u64,
    /// Slowest samples of the current exemplar window, slowest first
    /// (at most [`MAX_EXEMPLARS`]). Absent in pre-exemplar snapshots.
    #[serde(default)]
    pub exemplars: Vec<Exemplar>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            exemplars: Vec::new(),
        }
    }
}

impl HistogramSnapshot {
    /// Estimated quantile `q ∈ [0, 1]` in seconds: walk the cumulative
    /// bucket counts to the target rank, interpolate linearly within the
    /// bucket, clamp to the exact observed maximum. Monotone in `q`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= target {
                let lo = bucket_lower(i);
                let hi = bucket_upper(i);
                let frac = (target - cum) as f64 / n as f64;
                return (lo + (hi - lo) * frac).min(self.max_s());
            }
            cum += n;
        }
        self.max_s()
    }

    /// Median (seconds).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile (seconds).
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile (seconds).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Exact maximum (seconds).
    pub fn max_s(&self) -> f64 {
        self.max_ns as f64 / 1e9
    }

    /// Samples known to be at or under `threshold_s`, at bucket
    /// resolution: only buckets entirely below the threshold count, so
    /// the straddling bucket's samples are treated as over — a
    /// conservative bound for latency objectives (never reports a
    /// violating distribution as compliant).
    pub fn count_under(&self, threshold_s: f64) -> u64 {
        let mut under = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            if bucket_upper(i) <= threshold_s {
                under += n;
            } else {
                break;
            }
        }
        under
    }

    /// Mean (seconds); 0 when empty.
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / 1e9 / self.count as f64
        }
    }

    /// Merges another snapshot into this one (bucket-wise addition).
    /// Exactly associative and commutative.
    ///
    /// # Panics
    ///
    /// Panics if the bucket layouts differ (cannot happen for snapshots
    /// produced by this crate, which all use [`BUCKETS`] buckets).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram bucket layouts differ"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        // Top-N of a union is associative, so merged exemplar sets are
        // order-independent like the numeric fields.
        self.exemplars.extend(other.exemplars.iter().cloned());
        sort_exemplars(&mut self.exemplars);
        self.exemplars.truncate(MAX_EXEMPLARS);
    }

    /// `merge` as a pure function.
    #[must_use]
    pub fn merged(mut self, other: &HistogramSnapshot) -> HistogramSnapshot {
        self.merge(other);
        self
    }

    /// One-line human summary in milliseconds.
    pub fn summary_ms(&self) -> String {
        format!(
            "n={} p50={:.2}ms p95={:.2}ms p99={:.2}ms max={:.2}ms",
            self.count,
            self.p50() * 1e3,
            self.p95() * 1e3,
            self.p99() * 1e3,
            self.max_s() * 1e3
        )
    }
}

/// A named collection of metrics. Cloning is shallow: clones share the
/// same underlying metrics (the registry is an `Arc`).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
    /// Distinct label sets admitted per family name, across every vec
    /// handle, so the cardinality cap is global and exact.
    families: Mutex<HashMap<String, HashSet<Labels>>>,
    label_overflows: Counter,
}

impl Registry {
    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.counters.read().get(name) {
            return c.clone();
        }
        self.inner
            .counters
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.inner.gauges.read().get(name) {
            return g.clone();
        }
        self.inner
            .gauges
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.inner.histograms.read().get(name) {
            return h.clone();
        }
        self.inner
            .histograms
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The labeled counter family `name`: call
    /// [`CounterVec::with`] to resolve one series. Series registrations
    /// land in this registry under the canonical `name{k="v"}` key.
    pub fn counter_vec(&self, name: &str) -> CounterVec {
        CounterVec {
            name: name.to_string(),
            registry: self.clone(),
            cache: Arc::new(RwLock::new(HashMap::new())),
        }
    }

    /// The labeled gauge family `name`.
    pub fn gauge_vec(&self, name: &str) -> GaugeVec {
        GaugeVec {
            name: name.to_string(),
            registry: self.clone(),
            cache: Arc::new(RwLock::new(HashMap::new())),
        }
    }

    /// The labeled histogram family `name`.
    pub fn histogram_vec(&self, name: &str) -> HistogramVec {
        HistogramVec {
            name: name.to_string(),
            registry: self.clone(),
            cache: Arc::new(RwLock::new(HashMap::new())),
        }
    }

    /// One-shot resolution of a labeled counter (registers on first
    /// use). Hot paths should hold a [`CounterVec`] — or the resolved
    /// [`Counter`] itself — instead of calling this per event.
    pub fn counter_with(&self, name: &str, labels: &Labels) -> Counter {
        let admitted = self.admit_labels(name, labels);
        self.counter(&admitted.key_for(name))
    }

    /// One-shot resolution of a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &Labels) -> Gauge {
        let admitted = self.admit_labels(name, labels);
        self.gauge(&admitted.key_for(name))
    }

    /// One-shot resolution of a labeled histogram.
    pub fn histogram_with(&self, name: &str, labels: &Labels) -> Histogram {
        let admitted = self.admit_labels(name, labels);
        self.histogram(&admitted.key_for(name))
    }

    /// How many label sets were routed to the overflow series because a
    /// family hit [`MAX_CARDINALITY`].
    pub fn label_overflows(&self) -> u64 {
        self.inner.label_overflows.get()
    }

    /// Admits a label set into `name`'s family, returning the set the
    /// series is actually stored under (the overflow set once the
    /// family is at [`MAX_CARDINALITY`]).
    fn admit_labels(&self, name: &str, labels: &Labels) -> Labels {
        if labels.is_empty() {
            return labels.clone();
        }
        let mut families = self.inner.families.lock();
        let seen = families.entry(name.to_string()).or_default();
        if seen.contains(labels) {
            return labels.clone();
        }
        if seen.len() < MAX_CARDINALITY {
            seen.insert(labels.clone());
            return labels.clone();
        }
        self.inner.label_overflows.inc();
        let overflow = labels.to_overflow();
        seen.insert(overflow.clone());
        overflow
    }

    /// A serializable snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .inner
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A labeled counter family, interning one [`Counter`] handle per label
/// set.
///
/// The fast path for a previously seen label set is a shared-lock hash
/// lookup plus a handle clone (two atomic ops); no strings are built
/// and the registry lock is untouched. First use of a label set takes
/// the family's write lock once to register `name{k="v",…}`.
#[derive(Debug, Clone)]
pub struct CounterVec {
    name: String,
    registry: Registry,
    cache: Arc<RwLock<HashMap<Labels, Counter>>>,
}

/// A labeled gauge family; see [`CounterVec`].
#[derive(Debug, Clone)]
pub struct GaugeVec {
    name: String,
    registry: Registry,
    cache: Arc<RwLock<HashMap<Labels, Gauge>>>,
}

/// A labeled histogram family; see [`CounterVec`].
#[derive(Debug, Clone)]
pub struct HistogramVec {
    name: String,
    registry: Registry,
    cache: Arc<RwLock<HashMap<Labels, Histogram>>>,
}

macro_rules! impl_vec_with {
    ($vec:ident, $handle:ident, $resolve:ident) => {
        impl $vec {
            /// The series for `labels`, interned after first use.
            pub fn with(&self, labels: &Labels) -> $handle {
                if let Some(h) = self.cache.read().get(labels) {
                    return h.clone();
                }
                let mut cache = self.cache.write();
                if let Some(h) = cache.get(labels) {
                    return h.clone();
                }
                let handle = self.registry.$resolve(&self.name, labels);
                cache.insert(labels.clone(), handle.clone());
                handle
            }

            /// The family name.
            pub fn name(&self) -> &str {
                &self.name
            }
        }
    };
}

impl_vec_with!(CounterVec, Counter, counter_with);
impl_vec_with!(GaugeVec, Gauge, gauge_with);
impl_vec_with!(HistogramVec, Histogram, histogram_with);

/// A point-in-time, serializable copy of a [`Registry`].
///
/// Labeled series appear under their canonical `name{k="v",…}` keys
/// next to flat metrics; [`crate::labels::parse_metric_key`] splits a
/// key back into name and pairs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Sum of a counter family across all label sets (including the
    /// flat series of the same name, if registered).
    pub fn counter_family_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| crate::labels::parse_metric_key(k).0 == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Bucket-wise merge of a histogram family across all label sets.
    pub fn histogram_family_merged(&self, name: &str) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for (k, h) in &self.histograms {
            if crate::labels::parse_metric_key(k).0 == name {
                out.merge(h);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::default();
        let c = r.counter("hits");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("hits").get(), 5, "handles share state by name");
        let g = r.gauge("depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-3);
        assert_eq!(r.gauge("depth").get(), -3);
    }

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut prev = 0;
        for e in -80..60 {
            let v = 10f64.powf(e as f64 / 8.0);
            let i = bucket_index(v);
            assert!(i >= prev, "index must be monotone in the value");
            assert!(i < BUCKETS);
            prev = i;
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e12), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_are_contiguous() {
        for i in 0..BUCKETS - 1 {
            let hi = bucket_upper(i);
            let lo_next = bucket_lower(i + 1);
            assert!(
                (hi - lo_next).abs() < 1e-12 * hi.max(1e-12),
                "bucket {i} upper {hi} != bucket {} lower {lo_next}",
                i + 1
            );
        }
    }

    #[test]
    fn values_land_inside_their_bucket() {
        for e in -70..50 {
            let v = 2f64.powf(e as f64 / 4.0) * 1e-6;
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i) * (1.0 + 1e-12), "{v} above bucket {i}");
            if i > 0 {
                assert!(v >= bucket_lower(i) * (1.0 - 1e-12), "{v} below bucket {i}");
            }
        }
    }

    #[test]
    fn histogram_percentiles_on_known_distribution() {
        let h = Histogram::default();
        // 1..=100 ms: p50 ≈ 50 ms, p99 ≈ 99 ms, max = 100 ms exactly.
        for ms in 1..=100 {
            h.record_secs(ms as f64 / 1e3);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.buckets.iter().sum::<u64>(), 100);
        let p50 = s.p50();
        assert!((0.035..=0.075).contains(&p50), "p50 {p50}");
        let p99 = s.p99();
        assert!((0.07..=0.1).contains(&p99), "p99 {p99}");
        assert!((s.max_s() - 0.1).abs() < 1e-9);
        assert!((s.mean_s() - 0.0505).abs() < 1e-6, "mean {}", s.mean_s());
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.max_s(), 0.0);
        assert_eq!(s.mean_s(), 0.0);
    }

    #[test]
    fn single_value_quantiles_clamp_to_max() {
        let h = Histogram::default();
        h.record_secs(0.0123);
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = s.quantile(q);
            assert!(v <= 0.0123 + 1e-12, "q{q} = {v}");
            assert!(v > 0.008, "q{q} = {v} too far below the one sample");
        }
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::default();
        let b = Histogram::default();
        a.record_secs(0.001);
        b.record_secs(0.004);
        b.record_secs(2.0);
        let merged = a.snapshot().merged(&b.snapshot());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.buckets.iter().sum::<u64>(), 3);
        assert!((merged.max_s() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let h = Histogram::default();
        h.record(Duration::from_millis(7));
        let snap = h.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn registry_snapshot_lists_everything() {
        let r = Registry::default();
        r.counter("a").inc();
        r.gauge("b").set(2);
        r.histogram("c").record_secs(0.5);
        let s = r.snapshot();
        assert_eq!(s.counters["a"], 1);
        assert_eq!(s.gauges["b"], 2);
        assert_eq!(s.histograms["c"].count, 1);
    }

    #[test]
    fn labeled_series_share_state_across_handles() {
        let r = Registry::default();
        let vec_a = r.counter_vec("req.total");
        let vec_b = r.counter_vec("req.total");
        let l = Labels::new().tenant("acme").stage("sld");
        vec_a.with(&l).add(3);
        vec_b.with(&l).add(4);
        assert_eq!(
            r.snapshot().counters[&l.key_for("req.total")],
            7,
            "two vec handles for the same family must resolve to one series"
        );
        assert_eq!(r.snapshot().counter_family_total("req.total"), 7);
    }

    #[test]
    fn label_cardinality_overflow_routes_to_overflow_series() {
        let r = Registry::default();
        let vec = r.counter_vec("cardinality.bomb");
        for i in 0..(MAX_CARDINALITY + 10) {
            vec.with(&Labels::new().generation(i as u64)).inc();
        }
        let snap = r.snapshot();
        assert_eq!(
            snap.counter_family_total("cardinality.bomb"),
            (MAX_CARDINALITY + 10) as u64,
            "overflow must reroute, not drop"
        );
        let overflow_key = Labels::new()
            .generation(0)
            .to_overflow()
            .key_for("cardinality.bomb");
        assert_eq!(snap.counters[&overflow_key], 10);
        assert_eq!(r.label_overflows(), 10);
        // The family never exceeds the cap plus the overflow series.
        let series = snap
            .counters
            .keys()
            .filter(|k| crate::labels::parse_metric_key(k).0 == "cardinality.bomb")
            .count();
        assert!(series <= MAX_CARDINALITY + 1, "{series} series");
    }

    #[test]
    fn concurrent_labeled_increments_merge_exactly() {
        let r = Registry::default();
        let vec = r.counter_vec("conc.total");
        let hist = r.histogram_vec("conc.seconds");
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let vec = vec.clone();
                let hist = hist.clone();
                std::thread::spawn(move || {
                    let labels = Labels::new()
                        .tenant(if t % 2 == 0 { "even" } else { "odd" })
                        .stage(&format!("s{}", t / 2));
                    let c = vec.with(&labels);
                    let h = hist.with(&labels);
                    for i in 0..1000 {
                        c.inc();
                        h.record_secs(1e-4 * (i % 7 + 1) as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter_family_total("conc.total"), 8_000);
        assert_eq!(snap.histogram_family_merged("conc.seconds").count, 8_000);
        // 8 threads over 2 tenants × 4 stages = exactly 8 distinct series.
        let series = snap
            .counters
            .keys()
            .filter(|k| crate::labels::parse_metric_key(k).0 == "conc.total")
            .count();
        assert_eq!(series, 8);
    }

    #[test]
    fn exemplars_keep_slowest_samples_and_drain() {
        let h = Histogram::default();
        for i in 1..=40u64 {
            h.record_secs_with_exemplar(i as f64 * 1e-3, &format!("sess-{i}"));
        }
        let snap = h.snapshot();
        assert_eq!(snap.exemplars.len(), MAX_EXEMPLARS);
        assert_eq!(snap.exemplars[0].trace_id, "sess-40");
        assert_eq!(snap.exemplars[0].value_ns, 40_000_000);
        let slowest: Vec<u64> = snap.exemplars.iter().map(|e| e.value_ns).collect();
        assert!(
            slowest.windows(2).all(|w| w[0] >= w[1]),
            "exemplars must be sorted slowest first: {slowest:?}"
        );
        assert!(slowest.iter().all(|&ns| ns >= 33_000_000));
        // Draining resets the window; the histogram itself is untouched.
        let drained = h.take_exemplars();
        assert_eq!(drained.len(), MAX_EXEMPLARS);
        assert!(h.snapshot().exemplars.is_empty());
        assert_eq!(h.count(), 40);
        // The next window admits fast samples again after the drain.
        h.record_secs_with_exemplar(1e-6, "after-drain");
        assert_eq!(h.snapshot().exemplars[0].trace_id, "after-drain");
    }

    #[test]
    fn exemplar_merge_is_associative_top_n() {
        let mk = |id: &str, ns: u64| HistogramSnapshot {
            exemplars: vec![Exemplar {
                trace_id: id.to_string(),
                value_ns: ns,
                bucket: 3,
            }],
            ..Default::default()
        };
        let parts: Vec<HistogramSnapshot> =
            (0..20).map(|i| mk(&format!("t{i}"), i * 100)).collect();
        let left = parts
            .iter()
            .fold(HistogramSnapshot::default(), |acc, p| acc.merged(p));
        let right = parts
            .iter()
            .rev()
            .fold(HistogramSnapshot::default(), |acc, p| acc.merged(p));
        assert_eq!(left.exemplars, right.exemplars);
        assert_eq!(left.exemplars.len(), MAX_EXEMPLARS);
        assert_eq!(left.exemplars[0].trace_id, "t19");
    }
}

//! RAII span timing with a bounded, thread-safe collector.
//!
//! A [`Span`] measures one stage of work: it captures a start time on
//! [`Span::enter`] (or [`Span::child`] for nesting) and records itself
//! into its [`TraceCollector`] when dropped. Spans carry structured
//! key–value [`SpanEvent`]s. The collector keeps a bounded ring of
//! finished [`SpanRecord`]s (oldest evicted first, with an eviction
//! counter) so always-on tracing cannot grow memory without bound, and
//! exports as JSONL — one JSON object per line, one line per span.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default bound on retained finished spans.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// A structured key–value event emitted inside a span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Offset from the span's start, seconds.
    pub at_s: f64,
    /// Event key, e.g. `attack_score`.
    pub key: String,
    /// Event value, stringified.
    pub value: String,
}

/// A finished span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Unique id within the collector.
    pub id: u64,
    /// Parent span id, if nested.
    pub parent: Option<u64>,
    /// Stage name, e.g. `verify` or `distance`.
    pub name: String,
    /// Start offset from the collector's epoch, seconds.
    pub start_s: f64,
    /// Wall-clock duration, seconds.
    pub duration_s: f64,
    /// Structured events, in emission order.
    pub events: Vec<SpanEvent>,
}

#[derive(Debug)]
struct CollectorInner {
    epoch: Instant,
    next_id: AtomicU64,
    capacity: usize,
    finished: Mutex<Ring>,
}

#[derive(Debug, Default)]
struct Ring {
    records: VecDeque<SpanRecord>,
    evicted: u64,
}

/// A bounded, thread-safe sink of finished spans. Cloning is shallow:
/// clones feed the same ring.
#[derive(Debug, Clone)]
pub struct TraceCollector {
    inner: Arc<CollectorInner>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

impl TraceCollector {
    /// A collector retaining at most `capacity` finished spans (older
    /// spans are evicted first; see [`TraceCollector::evicted`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "span capacity must be positive");
        Self {
            inner: Arc::new(CollectorInner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                capacity,
                finished: Mutex::new(Ring::default()),
            }),
        }
    }

    /// Opens a root span. Equivalent to [`Span::enter`].
    pub fn span(&self, name: &str) -> Span {
        Span::enter(self, name)
    }

    /// Number of retained finished spans.
    pub fn len(&self) -> usize {
        self.inner.finished.lock().records.len()
    }

    /// Whether no finished spans are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many finished spans have been evicted by the capacity bound.
    pub fn evicted(&self) -> u64 {
        self.inner.finished.lock().evicted
    }

    /// Copies of the retained finished spans, oldest first.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner.finished.lock().records.iter().cloned().collect()
    }

    /// Drops all retained spans (the eviction counter is kept).
    pub fn clear(&self) {
        self.inner.finished.lock().records.clear();
    }

    /// Serializes the retained spans as JSONL (one span per line).
    pub fn export_jsonl(&self) -> String {
        let ring = self.inner.finished.lock();
        let mut out = String::new();
        for r in &ring.records {
            match serde_json::to_string(r) {
                Ok(line) => {
                    out.push_str(&line);
                    out.push('\n');
                }
                Err(_) => continue, // plain-data records cannot fail; skip defensively
            }
        }
        out
    }

    /// Appends the retained spans to a size-capped JSONL log (see
    /// [`RotatingJsonlWriter`](crate::export::RotatingJsonlWriter) for
    /// the rotation contract): the collector's ring bounds memory, this
    /// bounds disk.
    pub fn write_jsonl_rotating(
        &self,
        path: impl Into<std::path::PathBuf>,
        max_bytes: u64,
    ) -> std::io::Result<()> {
        let writer = crate::export::RotatingJsonlWriter::new(path, max_bytes);
        writer.append_lines(self.export_jsonl().lines())
    }

    fn push(&self, record: SpanRecord) {
        let mut ring = self.inner.finished.lock();
        if ring.records.len() >= self.inner.capacity {
            ring.records.pop_front();
            ring.evicted += 1;
        }
        ring.records.push_back(record);
    }
}

/// An in-flight span. Records itself into the collector on drop.
#[derive(Debug)]
pub struct Span {
    collector: TraceCollector,
    id: u64,
    parent: Option<u64>,
    name: String,
    started: Instant,
    events: Vec<SpanEvent>,
}

impl Span {
    /// Opens a root span named `name` on `collector`.
    pub fn enter(collector: &TraceCollector, name: &str) -> Span {
        Self::open(collector, None, name)
    }

    /// Opens a child span nested under `self`.
    pub fn child(&self, name: &str) -> Span {
        Self::open(&self.collector, Some(self.id), name)
    }

    fn open(collector: &TraceCollector, parent: Option<u64>, name: &str) -> Span {
        Span {
            collector: collector.clone(),
            id: collector.inner.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            name: name.to_string(),
            started: Instant::now(),
            events: Vec::new(),
        }
    }

    /// This span's collector-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Time since the span was opened.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Emits a structured key–value event, timestamped relative to the
    /// span start.
    pub fn event(&mut self, key: &str, value: impl std::fmt::Display) {
        self.events.push(SpanEvent {
            at_s: self.started.elapsed().as_secs_f64(),
            key: key.to_string(),
            value: value.to_string(),
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let start_s = self
            .started
            .saturating_duration_since(self.collector.inner.epoch)
            .as_secs_f64();
        self.collector.push(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            start_s,
            // Clamped to 1 ns: downstream invariants ("every recorded
            // stage took strictly positive time") must hold even on
            // coarse-clock platforms.
            duration_s: self.started.elapsed().as_secs_f64().max(1e-9),
            events: std::mem::take(&mut self.events),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_with_nesting() {
        let c = TraceCollector::default();
        {
            let mut root = Span::enter(&c, "verify");
            root.event("k", "v");
            {
                let _child = root.child("distance");
            }
            assert_eq!(c.len(), 1, "only the child has finished so far");
        }
        let records = c.records();
        assert_eq!(records.len(), 2);
        let child = &records[0];
        let root = &records[1];
        assert_eq!(child.name, "distance");
        assert_eq!(root.name, "verify");
        assert_eq!(child.parent, Some(root.id));
        assert_eq!(root.parent, None);
        assert!(child.duration_s > 0.0);
        assert!(root.duration_s >= child.duration_s);
        assert_eq!(root.events.len(), 1);
        assert_eq!(root.events[0].key, "k");
    }

    #[test]
    fn capacity_bounds_retention() {
        let c = TraceCollector::with_capacity(3);
        for i in 0..5 {
            let _ = c.span(&format!("s{i}"));
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.evicted(), 2);
        let names: Vec<_> = c.records().into_iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["s2", "s3", "s4"], "oldest evicted first");
    }

    #[test]
    fn jsonl_export_round_trips() {
        let c = TraceCollector::default();
        {
            let mut s = c.span("stage");
            s.event("score", 1.25);
        }
        let jsonl = c.export_jsonl();
        let lines: Vec<_> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1);
        let back: SpanRecord = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(back, c.records()[0]);
    }

    #[test]
    fn rotating_export_lands_whole_lines() {
        let dir = std::env::temp_dir().join("magshield-obs-span-rotate-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("spans.jsonl");
        let c = TraceCollector::default();
        for i in 0..16 {
            let mut s = c.span("stage");
            s.event("i", i);
        }
        c.write_jsonl_rotating(&path, 64).unwrap();
        // Every file the writer produced holds only whole lines and
        // exactly the exported content, whatever the line length.
        let mut on_disk = String::new();
        for p in [path.clone(), dir.join("spans.jsonl.1")] {
            if let Ok(body) = std::fs::read_to_string(&p) {
                assert!(body.is_empty() || body.ends_with('\n'), "{}", p.display());
                on_disk = body + &on_disk; // rotation holds the older half
            }
        }
        assert!(c.export_jsonl().ends_with(&on_disk));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_keeps_eviction_counter() {
        let c = TraceCollector::with_capacity(1);
        let _ = c.span("a");
        let _ = c.span("b");
        assert_eq!(c.evicted(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.evicted(), 1);
    }

    #[test]
    fn concurrent_spans_all_land() {
        let c = TraceCollector::with_capacity(10_000);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        let mut s = c.span(&format!("t{t}-{i}"));
                        s.event("i", i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.len(), 400);
        assert_eq!(c.evicted(), 0);
    }
}

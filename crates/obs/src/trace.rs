//! Per-session pipeline event traces.
//!
//! A [`PipelineTrace`] is the structured answer to "what did the cascade
//! decide, and where did the milliseconds go" for one verification
//! session: one [`ComponentTrace`] per cascade stage with its decision,
//! attack score, threshold margin and duration. Traces serialize to JSON
//! (one line per session → JSONL files under `results/logs/`), the format
//! the paper-style latency experiments and MagLive-class liveness systems
//! report as first-class output.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// One cascade component's contribution to a session trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentTrace {
    /// Component name: `distance`, `sld`, `sound_field`, `loudspeaker`
    /// or `speaker_id`.
    pub component: String,
    /// Whether the component passed at the nominal boundary.
    pub passed: bool,
    /// Normalized attack score (1.0 = decision boundary, < 1 passes).
    pub attack_score: f64,
    /// Distance to the boundary, `1.0 − attack_score`. Positive margins
    /// pass; the smallest margin is the session's weakest link.
    pub threshold_margin: f64,
    /// Wall-clock compute time of the component, seconds (clamped to be
    /// strictly positive).
    pub duration_s: f64,
    /// Human-readable detail from the component.
    pub detail: String,
    /// Whether the executor short-circuited past this stage instead of
    /// running it (score, margin and duration are then all zero and
    /// `detail` names the stage whose rejection caused the skip).
    /// Defaults to `false` so pre-skip JSONL traces still parse.
    #[serde(default)]
    pub skipped: bool,
}

/// A complete per-session pipeline trace.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PipelineTrace {
    /// Session label (e.g. the claimed speaker id or an experiment tag).
    pub session: String,
    /// Final cascade decision at the nominal boundary.
    pub accepted: bool,
    /// End-to-end pipeline wall-clock time, seconds.
    pub total_s: f64,
    /// Per-component traces, cascade order.
    pub components: Vec<ComponentTrace>,
}

impl PipelineTrace {
    /// The trace of a specific component, if that stage ran.
    pub fn component(&self, name: &str) -> Option<&ComponentTrace> {
        self.components.iter().find(|c| c.component == name)
    }

    /// The smallest threshold margin across the components that ran —
    /// the stage that came closest to flipping the decision. Skipped
    /// stages have no score and are excluded; `None` when no stage ran.
    pub fn weakest_margin(&self) -> Option<(&str, f64)> {
        self.components
            .iter()
            .filter(|c| !c.skipped)
            .map(|c| (c.component.as_str(), c.threshold_margin))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Sum of per-component durations (≤ `total_s`, the remainder being
    /// validation and bookkeeping).
    pub fn components_s(&self) -> f64 {
        self.components.iter().map(|c| c.duration_s).sum()
    }

    /// Serializes the trace as a single JSON line.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Parses a trace from JSON.
    pub fn from_json(s: &str) -> Result<PipelineTrace, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Writes traces as a JSONL file (one session per line), creating
    /// parent directories as needed.
    pub fn write_jsonl(path: &Path, traces: &[PipelineTrace]) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        for t in traces {
            writeln!(f, "{}", t.to_json())?;
        }
        f.flush()
    }

    /// Appends traces to a size-capped JSONL log: once `path` would
    /// exceed `max_bytes` it is rotated to `<path>.1` (replacing any
    /// previous rotation) and a fresh file is started — a long campaign
    /// keeps at most `2 × max_bytes` of the newest traces on disk
    /// instead of growing without bound. Unlike
    /// [`PipelineTrace::write_jsonl`], existing content is appended to,
    /// not truncated.
    pub fn append_jsonl_rotating(
        path: &Path,
        traces: &[PipelineTrace],
        max_bytes: u64,
    ) -> std::io::Result<()> {
        let writer = crate::export::RotatingJsonlWriter::new(path, max_bytes);
        for t in traces {
            writer.append_line(&t.to_json())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineTrace {
        PipelineTrace {
            session: "speaker-7".into(),
            accepted: true,
            total_s: 0.012,
            components: vec![
                ComponentTrace {
                    component: "distance".into(),
                    passed: true,
                    attack_score: 0.4,
                    threshold_margin: 0.6,
                    duration_s: 0.004,
                    detail: "d=5cm".into(),
                    skipped: false,
                },
                ComponentTrace {
                    component: "loudspeaker".into(),
                    passed: true,
                    attack_score: 0.9,
                    threshold_margin: 0.1,
                    duration_s: 0.006,
                    detail: "deviation ok".into(),
                    skipped: false,
                },
            ],
        }
    }

    #[test]
    fn component_lookup_and_margins() {
        let t = sample();
        assert!(t.component("distance").is_some());
        assert!(t.component("sld").is_none());
        let (name, margin) = t.weakest_margin().unwrap();
        assert_eq!(name, "loudspeaker");
        assert!((margin - 0.1).abs() < 1e-12);
        assert!((t.components_s() - 0.010).abs() < 1e-12);
    }

    #[test]
    fn skipped_stages_are_excluded_from_weakest_margin() {
        let mut t = sample();
        t.components.push(ComponentTrace {
            component: "speaker_id".into(),
            passed: false,
            attack_score: 0.0,
            threshold_margin: 0.0,
            duration_s: 0.0,
            detail: "short-circuited by loudspeaker".into(),
            skipped: true,
        });
        // The skipped stage's zero margin must not win.
        let (name, margin) = t.weakest_margin().unwrap();
        assert_eq!(name, "loudspeaker");
        assert!((margin - 0.1).abs() < 1e-12);
    }

    #[test]
    fn pre_skip_traces_still_parse() {
        // JSONL written before the `skipped` field existed. Parsing can
        // only be exercised where serde_json can deserialize at all, so
        // probe with a round trip first (mirrors json_round_trip's
        // environment requirement) and prove the default on success.
        let probe = sample();
        if let Ok(back) = PipelineTrace::from_json(&probe.to_json()) {
            assert_eq!(back, probe);
            let legacy = r#"{"session":"s","accepted":true,"total_s":0.01,
                "components":[{"component":"distance","passed":true,
                "attack_score":0.4,"threshold_margin":0.6,
                "duration_s":0.004,"detail":"d"}]}"#;
            let t = PipelineTrace::from_json(legacy).expect("legacy trace must parse");
            assert!(!t.components[0].skipped);
        }
    }

    #[test]
    fn json_round_trip() {
        let t = sample();
        let back = PipelineTrace::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn rotating_append_caps_disk() {
        let dir = std::env::temp_dir().join("magshield-obs-trace-rotate-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("traces.jsonl");
        let traces = vec![sample(); 64];
        // A cap far below the total payload: the log must rotate instead
        // of growing unboundedly (assertions are byte-based, so they
        // hold for any serialized line length).
        PipelineTrace::append_jsonl_rotating(&path, &traces, 16).unwrap();
        let current = std::fs::read_to_string(&path).unwrap();
        assert!(current.ends_with('\n'), "only whole lines on disk");
        let rotated_path = dir.join("traces.jsonl.1");
        assert!(
            rotated_path.exists(),
            "64 lines against a 16-byte cap must rotate"
        );
        let rotated = std::fs::read_to_string(&rotated_path).unwrap();
        assert!(rotated.ends_with('\n'), "rotation keeps whole lines");
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            2,
            "exactly current + one rotation, never an unbounded family"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_file_round_trip() {
        let dir = std::env::temp_dir().join("magshield-obs-trace-test");
        let path = dir.join("traces.jsonl");
        let traces = vec![sample(), sample()];
        PipelineTrace::write_jsonl(&path, &traces).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let parsed: Vec<PipelineTrace> = body
            .lines()
            .map(|l| PipelineTrace::from_json(l).unwrap())
            .collect();
        assert_eq!(parsed, traces);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

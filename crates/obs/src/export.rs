//! Metrics export: text exposition, JSONL flushing and size-capped
//! rotation.
//!
//! Three pieces, all built on [`MetricsSnapshot`] so they need no lock
//! on live metrics:
//!
//! * [`render_text`] — a flat, grep-able exposition format (one sample
//!   per line, exemplars as annotated comment lines) served over the
//!   wire by `MetricsResponse`.
//! * [`render_jsonl_record`] — one self-contained JSON object per
//!   scrape for offline analysis. JSON is emitted by hand: the record
//!   is flat data, and hand emission keeps the export path free of any
//!   serialization dependency.
//! * [`RotatingJsonlWriter`] / [`MetricsFlusher`] — append JSONL under
//!   a max-file-size cap (rotating `file` → `file.1`), and a background
//!   thread that does so on an interval.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot, Registry};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default size cap for rotated JSONL exports (bytes).
pub const DEFAULT_MAX_JSONL_BYTES: u64 = 8 * 1024 * 1024;

/// Renders a snapshot in the text exposition format:
///
/// ```text
/// # magshield metrics v1
/// batch.shed{shed_reason="queue_full"} 17
/// server.queue.depth 3
/// pipeline.verify.seconds_count 5120
/// pipeline.verify.seconds_sum 12.75
/// pipeline.verify.seconds{quantile="0.99"} 0.0041
/// # exemplar pipeline.verify.seconds trace="sess-41" value=0.0113 bucket=28
/// ```
///
/// Counters and gauges are one line each under their canonical labeled
/// key. Histograms expand to `_count`, `_sum` (seconds) and quantile
/// series, followed by one exemplar comment per retained slow sample.
pub fn render_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("# magshield metrics v1\n");
    for (k, v) in &snap.counters {
        out.push_str(&format!("{k} {v}\n"));
    }
    for (k, v) in &snap.gauges {
        out.push_str(&format!("{k} {v}\n"));
    }
    for (k, h) in &snap.histograms {
        let (name, suffix) = split_key_braces(k);
        out.push_str(&format!("{name}_count{suffix} {}\n", h.count));
        out.push_str(&format!("{name}_sum{suffix} {}\n", h.sum_ns as f64 / 1e9));
        for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            out.push_str(&format!(
                "{} {}\n",
                inject_label(k, "quantile", label),
                h.quantile(q)
            ));
        }
        for e in &h.exemplars {
            out.push_str(&format!(
                "# exemplar {k} trace=\"{}\" value={} bucket={}\n",
                e.trace_id,
                e.value_s(),
                e.bucket
            ));
        }
    }
    out
}

/// Splits `name{labels}` into `("name", "{labels}")` (suffix empty for
/// flat keys) so derived series like `name_count{labels}` keep the
/// suffix attached to the derived name.
fn split_key_braces(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) if key.ends_with('}') => (&key[..i], &key[i..]),
        _ => (key, ""),
    }
}

/// Adds one `key="value"` pair to a canonical metric key, merging into
/// an existing label block if present.
fn inject_label(metric_key: &str, key: &str, value: &str) -> String {
    let (name, braces) = split_key_braces(metric_key);
    if braces.is_empty() {
        format!("{name}{{{key}=\"{value}\"}}")
    } else {
        let body = &braces[1..braces.len() - 1];
        format!("{name}{{{body},{key}=\"{value}\"}}")
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    // `Display` for finite floats is valid JSON; non-finite values have
    // no JSON spelling, so they flush as null.
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"count\":{},\"sum_ns\":{},\"max_ns\":{},\"p50\":{},\"p95\":{},\"p99\":{}",
        h.count,
        h.sum_ns,
        h.max_ns,
        json_f64(h.p50()),
        json_f64(h.p95()),
        json_f64(h.p99()),
    ));
    out.push_str(",\"exemplars\":[");
    for (i, e) in h.exemplars.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"trace_id\":\"{}\",\"value_ns\":{},\"bucket\":{}}}",
            json_escape(&e.trace_id),
            e.value_ns,
            e.bucket
        ));
    }
    out.push_str("]}");
    out
}

/// Renders one flush record: a single JSON object (no trailing newline)
/// with the scrape timestamp and every metric. Quantiles are
/// pre-computed so offline consumers need no bucket math.
pub fn render_jsonl_record(snap: &MetricsSnapshot, unix_ts_s: f64) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"ts\":{}", json_f64(unix_ts_s)));
    out.push_str(",\"counters\":{");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{v}", json_escape(k)));
    }
    out.push_str("},\"gauges\":{");
    for (i, (k, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{v}", json_escape(k)));
    }
    out.push_str("},\"histograms\":{");
    for (i, (k, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", json_escape(k), histogram_json(h)));
    }
    out.push_str("}}");
    out
}

/// Appends lines to a JSONL file under a size cap. When an append
/// would push the file past `max_bytes`, the file is renamed to
/// `<path>.1` (replacing any previous `.1`) and a fresh file is
/// started — so the pair never holds more than `2 × max_bytes` and a
/// long bench run cannot grow `results/logs/` without bound.
#[derive(Debug)]
pub struct RotatingJsonlWriter {
    path: PathBuf,
    max_bytes: u64,
}

impl RotatingJsonlWriter {
    /// A writer for `path` capped at `max_bytes` per file.
    ///
    /// # Panics
    ///
    /// Panics if `max_bytes == 0`.
    pub fn new(path: impl Into<PathBuf>, max_bytes: u64) -> Self {
        assert!(max_bytes > 0, "rotation cap must be positive");
        RotatingJsonlWriter {
            path: path.into(),
            max_bytes,
        }
    }

    /// The active file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The rotated (previous) file path.
    pub fn rotated_path(&self) -> PathBuf {
        let mut os = self.path.as_os_str().to_owned();
        os.push(".1");
        PathBuf::from(os)
    }

    /// Appends one line (newline added), rotating first if the append
    /// would exceed the cap. Creates parent directories as needed.
    pub fn append_line(&self, line: &str) -> std::io::Result<()> {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let incoming = line.len() as u64 + 1;
        let current = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        if current > 0 && current + incoming > self.max_bytes {
            std::fs::rename(&self.path, self.rotated_path())?;
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        f.write_all(line.as_bytes())?;
        f.write_all(b"\n")?;
        f.flush()
    }

    /// Appends many lines with one open/rotate check per line, so a
    /// batch larger than the cap still rotates mid-batch instead of
    /// blowing through it.
    pub fn append_lines<'a>(
        &self,
        lines: impl IntoIterator<Item = &'a str>,
    ) -> std::io::Result<()> {
        for line in lines {
            self.append_line(line)?;
        }
        Ok(())
    }
}

/// A background thread flushing registry snapshots as JSONL on an
/// interval. Stops (with a final flush) on [`MetricsFlusher::stop`] or
/// drop.
#[derive(Debug)]
pub struct MetricsFlusher {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsFlusher {
    /// Spawns a flusher writing `registry` snapshots to `path` every
    /// `interval`, rotating at `max_bytes`.
    pub fn spawn(
        registry: Registry,
        path: impl Into<PathBuf>,
        interval: Duration,
        max_bytes: u64,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let writer = RotatingJsonlWriter::new(path, max_bytes);
        let handle = std::thread::spawn(move || {
            let epoch = std::time::SystemTime::UNIX_EPOCH;
            let flush = |writer: &RotatingJsonlWriter, registry: &Registry| {
                let ts = std::time::SystemTime::now()
                    .duration_since(epoch)
                    .map(|d| d.as_secs_f64())
                    .unwrap_or(0.0);
                let record = render_jsonl_record(&registry.snapshot(), ts);
                // Export must never take the serving path down with it.
                let _ = writer.append_line(&record);
            };
            loop {
                // Poll the stop flag at a finer grain than the interval
                // so shutdown is prompt even with slow flush intervals.
                let mut slept = Duration::ZERO;
                while slept < interval {
                    if stop_flag.load(Ordering::Relaxed) {
                        flush(&writer, &registry);
                        return;
                    }
                    let step = Duration::from_millis(20).min(interval - slept);
                    std::thread::sleep(step);
                    slept += step;
                }
                flush(&writer, &registry);
            }
        });
        MetricsFlusher {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the flusher after one final flush and joins the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsFlusher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Labels;

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("magshield-obs-export-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_snapshot() -> MetricsSnapshot {
        let r = Registry::default();
        r.counter_vec("batch.shed")
            .with(&Labels::new().shed_reason("queue_full"))
            .add(17);
        r.gauge("server.queue.depth").set(3);
        let h = r.histogram("pipeline.verify.seconds");
        h.record_secs_with_exemplar(0.004, "sess-1");
        h.record_secs_with_exemplar(0.0113, "sess-41");
        r.snapshot()
    }

    #[test]
    fn text_exposition_lists_everything() {
        let text = render_text(&sample_snapshot());
        assert!(text.starts_with("# magshield metrics v1\n"));
        assert!(text.contains("batch.shed{shed_reason=\"queue_full\"} 17\n"));
        assert!(text.contains("server.queue.depth 3\n"));
        assert!(text.contains("pipeline.verify.seconds_count 2\n"));
        assert!(text.contains("pipeline.verify.seconds{quantile=\"0.99\"}"));
        assert!(
            text.contains("# exemplar pipeline.verify.seconds trace=\"sess-41\""),
            "{text}"
        );
    }

    #[test]
    fn labeled_histogram_quantile_injection_merges_braces() {
        let r = Registry::default();
        r.histogram_vec("lat.seconds")
            .with(&Labels::new().stage("sld"))
            .record_secs(0.01);
        let text = render_text(&r.snapshot());
        assert!(text.contains("lat.seconds_count{stage=\"sld\"} 1"));
        assert!(
            text.contains("lat.seconds{stage=\"sld\",quantile=\"0.5\"}"),
            "{text}"
        );
    }

    #[test]
    fn jsonl_record_is_parseable_shape() {
        let rec = render_jsonl_record(&sample_snapshot(), 1_700_000_000.5);
        assert!(rec.starts_with("{\"ts\":1700000000.5,"));
        assert!(rec.contains("\"batch.shed{shed_reason=\\\"queue_full\\\"}\":17"));
        assert!(rec.contains("\"exemplars\":[{\"trace_id\":\"sess-41\""));
        assert!(!rec.contains('\n'));
        // Balanced braces: a cheap structural sanity check that holds
        // because every emitted string is escaped.
        let depth = rec.chars().fold(0i64, |d, c| match c {
            '{' => d + 1,
            '}' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn json_escaping_handles_hostile_strings() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn rotation_caps_file_size() {
        let dir = test_dir("rotate");
        let path = dir.join("metrics.jsonl");
        let w = RotatingJsonlWriter::new(&path, 256);
        let line = "x".repeat(63); // 64 bytes with newline
        for _ in 0..20 {
            w.append_line(&line).unwrap();
        }
        let active = std::fs::metadata(&path).unwrap().len();
        let rotated = std::fs::metadata(w.rotated_path()).unwrap().len();
        assert!(active <= 256, "active file exceeded the cap: {active}");
        assert!(rotated <= 256, "rotated file exceeded the cap: {rotated}");
        // Nothing beyond the pair exists, so disk use is bounded.
        let entries = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(entries, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_single_line_still_lands() {
        let dir = test_dir("oversize");
        let path = dir.join("metrics.jsonl");
        let w = RotatingJsonlWriter::new(&path, 64);
        w.append_line(&"y".repeat(500)).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 501);
        // The next line rotates the oversized file out.
        w.append_line("z").unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flusher_writes_and_stops() {
        let dir = test_dir("flusher");
        let path = dir.join("metrics.jsonl");
        let r = Registry::default();
        r.counter("flush.test").add(5);
        let flusher = MetricsFlusher::spawn(
            r.clone(),
            &path,
            Duration::from_millis(10),
            DEFAULT_MAX_JSONL_BYTES,
        );
        std::thread::sleep(Duration::from_millis(60));
        flusher.stop();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.lines().count() >= 2, "interval + final flush");
        assert!(body.lines().all(|l| l.contains("\"flush.test\":5")));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

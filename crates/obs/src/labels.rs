//! Low-cardinality metric labels with a canonical encoded form.
//!
//! A [`Labels`] value is a small, sorted set of `key="value"` pairs
//! drawn from a fixed key vocabulary ([`LABEL_KEYS`]): `tenant`,
//! `stage`, `generation`, `policy` and `shed_reason`. Restricting the
//! keys keeps the metric space enumerable; restricting per-family
//! cardinality (see [`MAX_CARDINALITY`]) keeps it bounded even when a
//! label value is derived from runtime data (e.g. a generation number
//! that grows forever). Labeled series are stored in the registry under
//! the canonical encoded key `name{k1="v1",k2="v2"}`, which is also the
//! wire and text-exposition spelling, so a labeled snapshot needs no
//! schema beyond the flat one.

/// The allowed label keys, sorted. Anything else is a programming error:
/// label keys are part of the telemetry schema, not free-form data.
pub const LABEL_KEYS: [&str; 5] = ["generation", "policy", "shed_reason", "stage", "tenant"];

/// Maximum distinct label sets a single metric family will create.
/// Beyond this, samples are routed to the [`OVERFLOW_VALUE`] series so
/// a cardinality bug degrades precision, never memory.
pub const MAX_CARDINALITY: usize = 64;

/// Label value used for series beyond the cardinality cap.
pub const OVERFLOW_VALUE: &str = "overflow";

/// A sorted, validated set of label pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Labels {
    pairs: Vec<(&'static str, String)>,
}

fn assert_known_key(key: &'static str) {
    assert!(
        LABEL_KEYS.contains(&key),
        "unknown label key {key:?}: allowed keys are {LABEL_KEYS:?}"
    );
}

/// Keeps label values inside the charset that needs no escaping in the
/// canonical encoding: anything else becomes `_`.
fn sanitize(value: &str) -> String {
    value
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':' | '/') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl Labels {
    /// The empty label set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A single-pair label set.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not one of [`LABEL_KEYS`].
    pub fn of(key: &'static str, value: &str) -> Self {
        Self::new().and(key, value)
    }

    /// Adds (or replaces) a pair, keeping pairs sorted by key.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not one of [`LABEL_KEYS`].
    #[must_use]
    pub fn and(mut self, key: &'static str, value: &str) -> Self {
        assert_known_key(key);
        let value = sanitize(value);
        match self.pairs.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => self.pairs[i].1 = value,
            Err(i) => self.pairs.insert(i, (key, value)),
        }
        self
    }

    /// Shorthand for the `tenant` label.
    #[must_use]
    pub fn tenant(self, value: &str) -> Self {
        self.and("tenant", value)
    }

    /// Shorthand for the `stage` label.
    #[must_use]
    pub fn stage(self, value: &str) -> Self {
        self.and("stage", value)
    }

    /// Shorthand for the `generation` label.
    #[must_use]
    pub fn generation(self, generation: u64) -> Self {
        self.and("generation", &generation.to_string())
    }

    /// Shorthand for the `policy` label.
    #[must_use]
    pub fn policy(self, value: &str) -> Self {
        self.and("policy", value)
    }

    /// Shorthand for the `shed_reason` label.
    #[must_use]
    pub fn shed_reason(self, value: &str) -> Self {
        self.and("shed_reason", value)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// The pairs, sorted by key.
    pub fn pairs(&self) -> &[(&'static str, String)] {
        &self.pairs
    }

    /// The value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }

    /// This set with every value replaced by [`OVERFLOW_VALUE`] — the
    /// series a family routes to past its cardinality cap.
    #[must_use]
    pub fn to_overflow(&self) -> Self {
        Self {
            pairs: self
                .pairs
                .iter()
                .map(|(k, _)| (*k, OVERFLOW_VALUE.to_string()))
                .collect(),
        }
    }

    /// Canonical `{k1="v1",k2="v2"}` rendering; empty string when empty.
    pub fn render(&self) -> String {
        if self.pairs.is_empty() {
            return String::new();
        }
        let mut out = String::from("{");
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(v);
            out.push('"');
        }
        out.push('}');
        out
    }

    /// The canonical registry key for `name` with these labels:
    /// `name{k="v",…}`, or just `name` when empty.
    pub fn key_for(&self, name: &str) -> String {
        let mut out = String::with_capacity(name.len() + 16 * self.pairs.len());
        out.push_str(name);
        out.push_str(&self.render());
        out
    }
}

/// Splits a canonical metric key back into its base name and label
/// pairs. Keys without labels return an empty pair list; malformed
/// braces are treated as part of the name (flat metrics never contain
/// `{`, so this cannot misfire on registry-produced keys).
pub fn parse_metric_key(key: &str) -> (&str, Vec<(String, String)>) {
    let Some(open) = key.find('{') else {
        return (key, Vec::new());
    };
    if !key.ends_with('}') {
        return (key, Vec::new());
    }
    let name = &key[..open];
    let body = &key[open + 1..key.len() - 1];
    let mut pairs = Vec::new();
    for part in body.split(',') {
        let Some((k, v)) = part.split_once('=') else {
            return (key, Vec::new());
        };
        let v = v.trim_matches('"');
        pairs.push((k.to_string(), v.to_string()));
    }
    (name, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_sort_dedupe_and_render() {
        let l = Labels::new().tenant("acme").stage("sld").tenant("beta");
        assert_eq!(l.len(), 2);
        assert_eq!(l.get("tenant"), Some("beta"));
        assert_eq!(l.render(), r#"{stage="sld",tenant="beta"}"#);
        assert_eq!(
            l.key_for("pipeline.verify.seconds"),
            r#"pipeline.verify.seconds{stage="sld",tenant="beta"}"#
        );
        assert_eq!(Labels::new().render(), "");
        assert_eq!(Labels::new().key_for("x"), "x");
    }

    #[test]
    fn values_are_sanitized() {
        let l = Labels::of("tenant", "we\"ird té{na}nt");
        assert_eq!(l.get("tenant"), Some("we_ird_t__na_nt"));
        assert!(!l.render().contains('{') || l.render().starts_with('{'));
    }

    #[test]
    #[should_panic(expected = "unknown label key")]
    fn unknown_keys_panic() {
        let _ = Labels::of("user_id", "42");
    }

    #[test]
    fn overflow_set_replaces_values() {
        let l = Labels::new().stage("sld").generation(17);
        let o = l.to_overflow();
        assert_eq!(o.get("stage"), Some(OVERFLOW_VALUE));
        assert_eq!(o.get("generation"), Some(OVERFLOW_VALUE));
    }

    #[test]
    fn metric_key_round_trips() {
        let l = Labels::new().stage("distance").policy("short_circuit");
        let key = l.key_for("pipeline.stage.seconds");
        let (name, pairs) = parse_metric_key(&key);
        assert_eq!(name, "pipeline.stage.seconds");
        assert_eq!(
            pairs,
            vec![
                ("policy".to_string(), "short_circuit".to_string()),
                ("stage".to_string(), "distance".to_string()),
            ]
        );
        let (flat, none) = parse_metric_key("plain.name");
        assert_eq!(flat, "plain.name");
        assert!(none.is_empty());
    }
}

//! Declarative SLOs evaluated with multi-window burn rates, driving a
//! hysteretic health state machine.
//!
//! An [`SloSpec`] names an objective (availability of a counter family,
//! or a latency threshold on a histogram family), optionally scoped to
//! one `tenant`/`stage` label. The [`SloEngine`] ingests periodic
//! [`MetricsSnapshot`]s, keeps a short ring of cumulative samples per
//! spec, and computes the **burn rate** — error rate divided by the
//! error budget `1 − objective` — over a short and a long window. Burn
//! ≥ 1 means the budget is being spent exactly as fast as it accrues;
//! the classic multi-window thresholds (page at 14.4×, ticket at 6×)
//! follow the SRE-workbook alerting model: both windows must agree, so
//! a brief spike (short high, long low) and a stale incident (long
//! high, short recovered) neither page.
//!
//! The engine also ingests two built-in guards — worker panics and
//! admission sheds — so a panicking worker pool or a shed-storm is
//! visible as [`HealthState::Degraded`] (or worse) without any spec.
//! Time is passed in explicitly (`now_s`), which makes the math
//! deterministic and directly property-testable.

use crate::labels::parse_metric_key;
use crate::metrics::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Default short burn window, seconds.
pub const DEFAULT_SHORT_WINDOW_S: f64 = 300.0;
/// Default long burn window, seconds.
pub const DEFAULT_LONG_WINDOW_S: f64 = 3600.0;
/// Default burn rate that makes a spec `Unhealthy` (page severity).
pub const DEFAULT_PAGE_BURN: f64 = 14.4;
/// Default burn rate that makes a spec `Degraded` (ticket severity).
pub const DEFAULT_TICKET_BURN: f64 = 6.0;
/// Consecutive cleaner evaluations required before health improves.
pub const DEFAULT_RECOVERY_EVALS: u32 = 3;

/// Overall health, ordered from best to worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HealthState {
    /// All objectives within budget.
    Healthy,
    /// An objective is burning budget at ticket rate, workers have
    /// panicked recently, or admission is shedding.
    Degraded,
    /// An objective is burning budget at page rate (or sheds dominate).
    Unhealthy,
}

impl HealthState {
    /// Stable wire/text encoding.
    pub fn code(self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::Unhealthy => 2,
        }
    }

    /// Inverse of [`HealthState::code`]; unknown codes are treated as
    /// `Unhealthy` (fail toward alerting, never toward silence).
    pub fn from_code(code: u8) -> Self {
        match code {
            0 => HealthState::Healthy,
            1 => HealthState::Degraded,
            _ => HealthState::Unhealthy,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Unhealthy => "unhealthy",
        }
    }
}

/// What an [`SloSpec`] measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Good = `total − errors` over the `total` and `errors` counter
    /// families (base names; labeled series are summed within scope).
    Availability {
        /// Counter family counting all events.
        total: String,
        /// Counter family counting failed events.
        errors: String,
    },
    /// Good = samples at or under `threshold_s` in the histogram
    /// family (bucket-resolution, conservative).
    Latency {
        /// Histogram family of observed latencies.
        histogram: String,
        /// The latency objective threshold, seconds.
        threshold_s: f64,
    },
}

/// A declarative service-level objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Report name, e.g. `verify-availability`.
    pub name: String,
    /// Restrict to series carrying this `tenant` label (`None` = all).
    pub tenant: Option<String>,
    /// Restrict to series carrying this `stage` label (`None` = all).
    pub stage: Option<String>,
    /// Success objective in `(0, 1)`, e.g. `0.999`.
    pub objective: f64,
    /// What is measured.
    pub source: Objective,
    /// Short burn window, seconds.
    pub short_window_s: f64,
    /// Long burn window, seconds.
    pub long_window_s: f64,
    /// Burn rate (on both windows) that makes this spec `Unhealthy`.
    pub page_burn: f64,
    /// Burn rate (on both windows) that makes this spec `Degraded`.
    pub ticket_burn: f64,
}

impl SloSpec {
    /// An availability objective with default windows and thresholds.
    ///
    /// # Panics
    ///
    /// Panics unless `objective ∈ (0, 1)`.
    pub fn availability(name: &str, total: &str, errors: &str, objective: f64) -> Self {
        assert!(
            objective > 0.0 && objective < 1.0,
            "objective must be in (0,1), got {objective}"
        );
        SloSpec {
            name: name.to_string(),
            tenant: None,
            stage: None,
            objective,
            source: Objective::Availability {
                total: total.to_string(),
                errors: errors.to_string(),
            },
            short_window_s: DEFAULT_SHORT_WINDOW_S,
            long_window_s: DEFAULT_LONG_WINDOW_S,
            page_burn: DEFAULT_PAGE_BURN,
            ticket_burn: DEFAULT_TICKET_BURN,
        }
    }

    /// A latency objective: `objective` of samples at or under
    /// `threshold_s`, with default windows and thresholds.
    ///
    /// # Panics
    ///
    /// Panics unless `objective ∈ (0, 1)` and `threshold_s > 0`.
    pub fn latency(name: &str, histogram: &str, threshold_s: f64, objective: f64) -> Self {
        assert!(
            objective > 0.0 && objective < 1.0,
            "objective must be in (0,1), got {objective}"
        );
        assert!(threshold_s > 0.0, "latency threshold must be positive");
        SloSpec {
            name: name.to_string(),
            tenant: None,
            stage: None,
            objective,
            source: Objective::Latency {
                histogram: histogram.to_string(),
                threshold_s,
            },
            short_window_s: DEFAULT_SHORT_WINDOW_S,
            long_window_s: DEFAULT_LONG_WINDOW_S,
            page_burn: DEFAULT_PAGE_BURN,
            ticket_burn: DEFAULT_TICKET_BURN,
        }
    }

    /// Scopes the spec to one tenant.
    #[must_use]
    pub fn for_tenant(mut self, tenant: &str) -> Self {
        self.tenant = Some(tenant.to_string());
        self
    }

    /// Scopes the spec to one stage.
    #[must_use]
    pub fn for_stage(mut self, stage: &str) -> Self {
        self.stage = Some(stage.to_string());
        self
    }

    /// Overrides the burn windows (seconds).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < short ≤ long`.
    #[must_use]
    pub fn with_windows(mut self, short_s: f64, long_s: f64) -> Self {
        assert!(
            short_s > 0.0 && short_s <= long_s,
            "windows must satisfy 0 < short <= long"
        );
        self.short_window_s = short_s;
        self.long_window_s = long_s;
        self
    }

    /// Overrides the burn thresholds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ticket ≤ page`.
    #[must_use]
    pub fn with_burn_thresholds(mut self, ticket: f64, page: f64) -> Self {
        assert!(
            ticket > 0.0 && ticket <= page,
            "thresholds must satisfy 0 < ticket <= page"
        );
        self.ticket_burn = ticket;
        self.page_burn = page;
        self
    }

    /// The error budget `1 − objective`.
    pub fn budget(&self) -> f64 {
        1.0 - self.objective
    }

    fn in_scope(&self, pairs: &[(String, String)]) -> bool {
        let has = |key: &str, want: &Option<String>| match want {
            None => true,
            Some(v) => pairs.iter().any(|(k, val)| k == key && val == v),
        };
        has("tenant", &self.tenant) && has("stage", &self.stage)
    }

    /// Cumulative `(total, errors)` for this spec from a snapshot.
    pub fn totals(&self, snap: &MetricsSnapshot) -> (u64, u64) {
        match &self.source {
            Objective::Availability { total, errors } => {
                let sum = |family: &str| -> u64 {
                    snap.counters
                        .iter()
                        .filter(|(k, _)| {
                            let (name, pairs) = parse_metric_key(k);
                            name == family && self.in_scope(&pairs)
                        })
                        .map(|(_, v)| v)
                        .sum()
                };
                (sum(total), sum(errors))
            }
            Objective::Latency {
                histogram,
                threshold_s,
            } => {
                let mut total = 0u64;
                let mut good = 0u64;
                for (k, h) in &snap.histograms {
                    let (name, pairs) = parse_metric_key(k);
                    if name == histogram && self.in_scope(&pairs) {
                        total += h.count;
                        good += h.count_under(*threshold_s);
                    }
                }
                (total, total - good)
            }
        }
    }
}

/// Burn rates over the two windows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurnRate {
    /// Burn over the short window.
    pub short: f64,
    /// Burn over the long window.
    pub long: f64,
}

/// Pure multi-window burn math: `(errors/total)/budget` per window.
/// Zero-traffic windows burn nothing.
pub fn burn_rate(total_delta: u64, error_delta: u64, budget: f64) -> f64 {
    if total_delta == 0 {
        return 0.0;
    }
    let rate = error_delta.min(total_delta) as f64 / total_delta as f64;
    rate / budget.max(f64::EPSILON)
}

/// Maps a spec's two-window burn to its health contribution.
pub fn classify_burn(burn: BurnRate, ticket: f64, page: f64) -> HealthState {
    if burn.short >= page && burn.long >= page {
        HealthState::Unhealthy
    } else if burn.short >= ticket && burn.long >= ticket {
        HealthState::Degraded
    } else {
        HealthState::Healthy
    }
}

/// A ring of cumulative `(t, total, errors)` samples.
#[derive(Debug, Default, Clone)]
struct Ring {
    samples: VecDeque<(f64, u64, u64)>,
}

impl Ring {
    fn push(&mut self, now_s: f64, total: u64, errors: u64, keep_s: f64) {
        // Monotonic time: a rewound clock drops the stale future.
        while self.samples.back().is_some_and(|&(t, _, _)| t >= now_s) {
            self.samples.pop_back();
        }
        self.samples.push_back((now_s, total, errors));
        // Keep one sample at or before the window start so deltas over
        // the full window stay computable.
        while self.samples.len() > 2 && self.samples[1].0 <= now_s - keep_s {
            self.samples.pop_front();
        }
    }

    /// Cumulative deltas over the trailing `window_s`. The baseline is
    /// the newest sample at or before the window start, or the oldest
    /// sample while the ring is still filling (partial window).
    fn delta_over(&self, now_s: f64, window_s: f64) -> (u64, u64) {
        let Some(&(_, latest_total, latest_err)) = self.samples.back() else {
            return (0, 0);
        };
        let start = now_s - window_s;
        let mut base: Option<(u64, u64)> = None;
        for &(t, total, err) in self.samples.iter().rev().skip(1) {
            base = Some((total, err));
            if t <= start {
                break;
            }
        }
        let Some((base_total, base_err)) = base else {
            // A single sample carries no rate information yet.
            return (0, 0);
        };
        (
            latest_total.saturating_sub(base_total),
            latest_err.saturating_sub(base_err),
        )
    }
}

/// Built-in health guards that need no [`SloSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuardConfig {
    /// Counter family: contained worker panics.
    pub panic_counter: String,
    /// Counter family: admission sheds (all reasons).
    pub shed_counter: String,
    /// Counter family: requests actually served, the shed-rate
    /// denominator's other half.
    pub served_counter: String,
    /// Shed fraction (sheds / (sheds + served)) over the window that
    /// marks the plane `Degraded`.
    pub shed_degraded_ratio: f64,
    /// Shed fraction that marks the plane `Unhealthy`.
    pub shed_unhealthy_ratio: f64,
    /// Guard evaluation window, seconds.
    pub window_s: f64,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            panic_counter: "server.worker.panics".to_string(),
            shed_counter: "batch.shed".to_string(),
            served_counter: "batch.verdicts".to_string(),
            shed_degraded_ratio: 0.05,
            shed_unhealthy_ratio: 0.50,
            window_s: DEFAULT_SHORT_WINDOW_S,
        }
    }
}

/// Per-spec evaluation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloStatus {
    /// Spec name.
    pub name: String,
    /// Burn rates at evaluation time.
    pub burn: BurnRate,
    /// This spec's health contribution.
    pub state: HealthState,
}

/// The engine's answer: overall state plus per-spec evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Overall state (worst contribution, with recovery hysteresis).
    pub state: HealthState,
    /// Per-spec statuses, spec order.
    pub statuses: Vec<SloStatus>,
    /// Human-readable notes from the built-in guards.
    pub notes: Vec<String>,
}

/// Evaluates [`SloSpec`]s and guards against ingested snapshots.
#[derive(Debug, Clone)]
pub struct SloEngine {
    specs: Vec<SloSpec>,
    guards: GuardConfig,
    rings: Vec<Ring>,
    panic_ring: Ring,
    shed_ring: Ring,
    state: HealthState,
    candidate: HealthState,
    streak: u32,
    recovery_evals: u32,
}

impl SloEngine {
    /// An engine over `specs` with default guards.
    pub fn new(specs: Vec<SloSpec>) -> Self {
        Self::with_guards(specs, GuardConfig::default())
    }

    /// An engine with explicit guard configuration.
    pub fn with_guards(specs: Vec<SloSpec>, guards: GuardConfig) -> Self {
        let rings = vec![Ring::default(); specs.len()];
        SloEngine {
            specs,
            guards,
            rings,
            panic_ring: Ring::default(),
            shed_ring: Ring::default(),
            state: HealthState::Healthy,
            candidate: HealthState::Healthy,
            streak: 0,
            recovery_evals: DEFAULT_RECOVERY_EVALS,
        }
    }

    /// How many consecutive cleaner evaluations are required before the
    /// overall state improves (escalation is always immediate).
    pub fn set_recovery_evals(&mut self, evals: u32) {
        self.recovery_evals = evals.max(1);
    }

    /// The configured specs.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Records one cumulative sample per spec and guard from `snap`.
    pub fn ingest(&mut self, now_s: f64, snap: &MetricsSnapshot) {
        for (spec, ring) in self.specs.iter().zip(&mut self.rings) {
            let (total, errors) = spec.totals(snap);
            ring.push(now_s, total, errors, spec.long_window_s);
        }
        let family = |name: &str| snap.counter_family_total(name);
        self.panic_ring.push(
            now_s,
            family(&self.guards.panic_counter),
            0,
            self.guards.window_s,
        );
        let shed = family(&self.guards.shed_counter);
        let served = family(&self.guards.served_counter);
        self.shed_ring
            .push(now_s, shed + served, shed, self.guards.window_s);
    }

    /// Evaluates all specs and guards at `now_s`, advancing the state
    /// machine. Escalation is immediate; recovery requires
    /// [`DEFAULT_RECOVERY_EVALS`] consecutive cleaner evaluations so a
    /// flapping objective cannot oscillate the reported state.
    pub fn evaluate(&mut self, now_s: f64) -> HealthReport {
        let mut statuses = Vec::with_capacity(self.specs.len());
        let mut notes = Vec::new();
        let mut worst = HealthState::Healthy;

        for (spec, ring) in self.specs.iter().zip(&self.rings) {
            let (st, se) = ring.delta_over(now_s, spec.short_window_s);
            let (lt, le) = ring.delta_over(now_s, spec.long_window_s);
            let burn = BurnRate {
                short: burn_rate(st, se, spec.budget()),
                long: burn_rate(lt, le, spec.budget()),
            };
            let state = classify_burn(burn, spec.ticket_burn, spec.page_burn);
            worst = worst.max(state);
            statuses.push(SloStatus {
                name: spec.name.clone(),
                burn,
                state,
            });
        }

        let (panics, _) = self.panic_ring.delta_over(now_s, self.guards.window_s);
        if panics > 0 {
            worst = worst.max(HealthState::Degraded);
            notes.push(format!(
                "{panics} worker panic(s) in the last {:.0}s",
                self.guards.window_s
            ));
        }
        let (shed_total, sheds) = self.shed_ring.delta_over(now_s, self.guards.window_s);
        if shed_total > 0 && sheds > 0 {
            let ratio = sheds as f64 / shed_total as f64;
            if ratio >= self.guards.shed_unhealthy_ratio {
                worst = HealthState::Unhealthy;
            } else if ratio >= self.guards.shed_degraded_ratio {
                worst = worst.max(HealthState::Degraded);
            }
            if ratio >= self.guards.shed_degraded_ratio {
                notes.push(format!(
                    "admission shedding {:.1}% of traffic in the last {:.0}s",
                    ratio * 100.0,
                    self.guards.window_s
                ));
            }
        }

        // Hysteresis: up immediately, down only on a sustained streak.
        if worst >= self.state {
            self.state = worst;
            self.candidate = worst;
            self.streak = 0;
        } else if worst == self.candidate {
            self.streak += 1;
            if self.streak >= self.recovery_evals {
                self.state = worst;
                self.streak = 0;
            }
        } else {
            self.candidate = worst;
            self.streak = 1;
        }

        HealthReport {
            state: self.state,
            statuses,
            notes,
        }
    }

    /// [`SloEngine::ingest`] followed by [`SloEngine::evaluate`].
    pub fn observe(&mut self, now_s: f64, snap: &MetricsSnapshot) -> HealthReport {
        self.ingest(now_s, snap);
        self.evaluate(now_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::Labels;

    fn snap_with(total: u64, errors: u64) -> MetricsSnapshot {
        let r = Registry::default();
        r.counter("req.total").add(total);
        r.counter("req.errors").add(errors);
        r.snapshot()
    }

    fn spec() -> SloSpec {
        SloSpec::availability("avail", "req.total", "req.errors", 0.99)
    }

    #[test]
    fn healthy_under_budget() {
        let mut eng = SloEngine::new(vec![spec()]);
        for i in 0..100u64 {
            // 1000 req per tick, none failing.
            let report = eng.observe(i as f64 * 60.0, &snap_with(i * 1000, 0));
            assert_eq!(report.state, HealthState::Healthy, "tick {i}");
        }
    }

    #[test]
    fn sustained_burn_pages_and_recovery_is_hysteretic() {
        let mut eng = SloEngine::new(vec![spec()]);
        // Budget 1%; 30% errors = burn 30 ≥ 14.4 on both windows.
        let mut t = 0.0;
        let mut report = None;
        for i in 0..80u64 {
            t = i as f64 * 60.0;
            report = Some(eng.observe(t, &snap_with(i * 1000, i * 300)));
        }
        assert_eq!(report.unwrap().state, HealthState::Unhealthy);
        // Stop the bleeding: totals keep growing, errors freeze. The
        // state must not flap back in one clean evaluation.
        let (frozen_total, frozen_err) = (80_000u64, 24_000u64);
        let mut clean = 0;
        let mut states = Vec::new();
        for i in 1..=130u64 {
            let s = snap_with(frozen_total + i * 1000, frozen_err);
            let r = eng.observe(t + i as f64 * 60.0, &s);
            states.push(r.state);
            if r.state == HealthState::Healthy {
                clean += 1;
            }
        }
        assert_eq!(
            *states.last().unwrap(),
            HealthState::Healthy,
            "must eventually recover: {states:?}"
        );
        assert!(clean > 0);
        // The first post-incident evaluations stay non-healthy even
        // though the short window clears quickly.
        assert_ne!(states[0], HealthState::Healthy, "no instant recovery");
    }

    #[test]
    fn short_spike_alone_does_not_page() {
        let mut eng = SloEngine::new(vec![spec()]);
        // One hour of clean traffic...
        for i in 0..60u64 {
            eng.observe(i as f64 * 60.0, &snap_with(i * 1000, 0));
        }
        // ...then five bad minutes: the long window stays under page.
        let mut worst = HealthState::Healthy;
        for i in 60..65u64 {
            let r = eng.observe(i as f64 * 60.0, &snap_with(i * 1000, (i - 59) * 300));
            worst = worst.max(r.state);
        }
        assert!(
            worst < HealthState::Unhealthy,
            "short spike must not page (got {worst:?})"
        );
    }

    #[test]
    fn tenant_scoping_isolates_burn() {
        let r = Registry::default();
        let totals = r.counter_vec("req.total");
        let errors = r.counter_vec("req.errors");
        let acme = Labels::new().tenant("acme");
        let beta = Labels::new().tenant("beta");
        let mut eng = SloEngine::new(vec![
            spec().for_tenant("acme"),
            SloSpec::availability("beta-avail", "req.total", "req.errors", 0.99).for_tenant("beta"),
        ]);
        for i in 1..=70u64 {
            totals.with(&acme).add(1000);
            totals.with(&beta).add(1000);
            errors.with(&beta).add(400); // beta burns, acme is clean
            let report = eng.observe(i as f64 * 60.0, &r.snapshot());
            if i > 65 {
                assert_eq!(report.statuses[0].state, HealthState::Healthy);
                assert_eq!(report.statuses[1].state, HealthState::Unhealthy);
                assert_eq!(report.state, HealthState::Unhealthy);
            }
        }
    }

    #[test]
    fn latency_objective_counts_slow_samples() {
        let r = Registry::default();
        let h = r.histogram("verify.seconds");
        let mut eng = SloEngine::new(vec![SloSpec::latency(
            "verify-latency",
            "verify.seconds",
            0.050,
            0.99,
        )]);
        for i in 1..=70u64 {
            // Half the traffic is 10× over the 50 ms objective, against
            // a 1% slow-budget: burn rate 50×, far past the page line.
            for _ in 0..10 {
                h.record_secs(0.005);
                h.record_secs(0.500);
            }
            let report = eng.observe(i as f64 * 60.0, &r.snapshot());
            if i > 65 {
                assert_eq!(
                    report.state,
                    HealthState::Unhealthy,
                    "50% slow vs 1% budget must page"
                );
            }
        }
    }

    #[test]
    fn worker_panics_degrade() {
        let r = Registry::default();
        let mut eng = SloEngine::new(vec![]);
        let mut report = eng.observe(0.0, &r.snapshot());
        assert_eq!(report.state, HealthState::Healthy);
        r.counter("server.worker.panics").inc();
        report = eng.observe(60.0, &r.snapshot());
        assert_eq!(report.state, HealthState::Degraded);
        assert!(report.notes.iter().any(|n| n.contains("panic")));
    }

    #[test]
    fn shed_storm_goes_unhealthy() {
        let r = Registry::default();
        let mut eng = SloEngine::new(vec![]);
        eng.observe(0.0, &r.snapshot());
        r.counter("batch.shed").add(900);
        r.counter("batch.verdicts").add(100);
        let report = eng.observe(60.0, &r.snapshot());
        assert_eq!(report.state, HealthState::Unhealthy);
        assert!(report.notes.iter().any(|n| n.contains("shedding")));
    }

    #[test]
    fn mild_shed_ratio_is_degraded_not_unhealthy() {
        let r = Registry::default();
        let mut eng = SloEngine::new(vec![]);
        eng.observe(0.0, &r.snapshot());
        // 8% shed: past the 5% Degraded line, under the 50% page line.
        r.counter("batch.shed").add(8);
        r.counter("batch.verdicts").add(92);
        let report = eng.observe(60.0, &r.snapshot());
        assert_eq!(report.state, HealthState::Degraded);
    }

    #[test]
    fn zero_traffic_is_healthy() {
        let mut eng = SloEngine::new(vec![spec()]);
        for i in 0..10 {
            let report = eng.observe(i as f64 * 60.0, &snap_with(0, 0));
            assert_eq!(report.state, HealthState::Healthy);
        }
    }

    #[test]
    fn burn_rate_math_edges() {
        assert_eq!(burn_rate(0, 0, 0.01), 0.0);
        assert!((burn_rate(1000, 10, 0.01) - 1.0).abs() < 1e-12);
        assert!((burn_rate(1000, 1000, 0.01) - 100.0).abs() < 1e-9);
        // Errors clamp to total: merged rings can momentarily over-read.
        assert!((burn_rate(10, 20, 0.5) - 2.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Burn rate is monotone in errors and antitone in budget.
        #[test]
        fn burn_rate_monotone(total in 1u64..100_000, e1 in 0u64..100_000, e2 in 0u64..100_000) {
            let (lo, hi) = (e1.min(e2), e1.max(e2));
            prop_assert!(burn_rate(total, hi, 0.01) >= burn_rate(total, lo, 0.01));
            prop_assert!(burn_rate(total, lo, 0.001) >= burn_rate(total, lo, 0.01));
        }

        /// classify_burn is monotone: more burn never reports healthier.
        #[test]
        fn classify_monotone(s1 in 0.0f64..40.0, l1 in 0.0f64..40.0, ds in 0.0f64..40.0, dl in 0.0f64..40.0) {
            let a = classify_burn(BurnRate { short: s1, long: l1 }, 6.0, 14.4);
            let b = classify_burn(
                BurnRate { short: s1 + ds, long: l1 + dl },
                6.0,
                14.4,
            );
            prop_assert!(b >= a);
        }

        /// No false-healthy: sustained error traffic at ≥ page_burn ×
        /// budget over the whole long window must evaluate Unhealthy.
        #[test]
        fn sustained_burn_never_reports_healthy(
            err_permille in 200u64..1000,
            per_tick in 100u64..5000,
            ticks in 70u64..200,
        ) {
            // budget 1% and page 14.4 → any error rate ≥ 14.4% pages;
            // 20%+ sustained is well past it.
            let spec = SloSpec::availability("a", "t", "e", 0.99);
            let mut eng = SloEngine::new(vec![spec]);
            let mut report = None;
            for i in 0..ticks {
                let total = i * per_tick;
                let errors = total * err_permille / 1000;
                let mut snap = MetricsSnapshot::default();
                snap.counters.insert("t".to_string(), total);
                snap.counters.insert("e".to_string(), errors);
                report = Some(eng.observe(i as f64 * 60.0, &snap));
            }
            prop_assert_eq!(report.unwrap().state, HealthState::Unhealthy);
        }

        /// Windows see through ring pruning: the long-window delta never
        /// exceeds the true cumulative total.
        #[test]
        fn window_delta_bounded(per_tick in 1u64..1000, ticks in 2u64..120) {
            let spec = SloSpec::availability("a", "t", "e", 0.99);
            let mut eng = SloEngine::new(vec![spec]);
            for i in 0..ticks {
                let mut snap = MetricsSnapshot::default();
                snap.counters.insert("t".to_string(), i * per_tick);
                snap.counters.insert("e".to_string(), 0);
                let report = eng.observe(i as f64 * 60.0, &snap);
                prop_assert_eq!(report.state, HealthState::Healthy);
                prop_assert!(report.statuses[0].burn.short <= 0.0 + 1e-12);
            }
        }
    }
}

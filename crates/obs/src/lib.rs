#![warn(missing_docs)]

//! # magshield-obs
//!
//! The observability substrate for the magshield workspace: where a
//! verdict's milliseconds go, how deep the server queue runs, and what
//! each cascade component decided — as data, not log lines.
//!
//! Six pillars, all std + `parking_lot` + `serde`:
//!
//! 1. [`metrics`] — a lock-cheap [`metrics::Registry`] of named
//!    [`metrics::Counter`]s, [`metrics::Gauge`]s and fixed-bucket
//!    log-scale [`metrics::Histogram`]s with p50/p95/p99/max quantile
//!    estimation. Handles are `Arc`-backed atomics: registration takes a
//!    short lock once, the hot path is a relaxed atomic op. Histograms
//!    additionally retain [`metrics::Exemplar`]s — the trace IDs of the
//!    slowest samples per scrape window.
//! 2. [`labels`] — low-cardinality [`labels::Labels`] sets from a fixed
//!    key vocabulary, with `CounterVec`/`GaugeVec`/`HistogramVec`
//!    interned fast paths and a per-family cardinality cap.
//! 3. [`slo`] — declarative [`slo::SloSpec`] objectives evaluated by a
//!    multi-window burn-rate [`slo::SloEngine`] driving a
//!    [`slo::HealthState`] machine.
//! 4. [`export`] — text exposition and hand-rolled JSONL rendering of
//!    snapshots, with size-capped rotation and a background flusher.
//! 5. [`span`] — an RAII [`span::Span`] timing API
//!    (`Span::enter(collector, name) … drop`) with a bounded, thread-safe
//!    [`span::TraceCollector`] recording nested stage timings and
//!    structured key–value events, exportable as JSONL.
//! 6. [`trace`] — the [`trace::PipelineTrace`] pipeline-event type:
//!    per session, each cascade component's decision, attack score,
//!    threshold margin and duration.
//!
//! # Naming scheme
//!
//! Metric names are dot-separated `subsystem.object.unit` strings, e.g.
//! `pipeline.distance.seconds`, `server.queue.depth`,
//! `server.worker.3.processed`. Span names follow the cascade component
//! identifiers: `verify` is the root, `distance`, `sld`, `sound_field`,
//! `loudspeaker`, `speaker_id` its children. See DESIGN.md §7.
//!
//! # Example
//!
//! ```
//! use magshield_obs::metrics::Registry;
//! use magshield_obs::span::{Span, TraceCollector};
//!
//! let registry = Registry::default();
//! let collector = TraceCollector::default();
//!
//! let hist = registry.histogram("pipeline.verify.seconds");
//! {
//!     let mut span = Span::enter(&collector, "verify");
//!     let mut child = span.child("distance");
//!     child.event("attack_score", "0.42");
//!     drop(child);
//!     hist.record_secs(span.elapsed().as_secs_f64());
//! }
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.histograms["pipeline.verify.seconds"].count, 1);
//! assert_eq!(collector.records().len(), 2);
//! ```

pub mod export;
pub mod labels;
pub mod metrics;
pub mod slo;
pub mod span;
pub mod trace;

pub use export::{
    render_jsonl_record, render_text, MetricsFlusher, RotatingJsonlWriter, DEFAULT_MAX_JSONL_BYTES,
};
pub use labels::{parse_metric_key, Labels, LABEL_KEYS, MAX_CARDINALITY};
pub use metrics::{
    Counter, CounterVec, Exemplar, Gauge, GaugeVec, Histogram, HistogramSnapshot, HistogramVec,
    MetricsSnapshot, Registry, MAX_EXEMPLARS,
};
pub use slo::{
    BurnRate, GuardConfig, HealthReport, HealthState, Objective, SloEngine, SloSpec, SloStatus,
};
pub use span::{Span, SpanEvent, SpanRecord, TraceCollector};
pub use trace::{ComponentTrace, PipelineTrace};

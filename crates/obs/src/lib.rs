#![warn(missing_docs)]

//! # magshield-obs
//!
//! The observability substrate for the magshield workspace: where a
//! verdict's milliseconds go, how deep the server queue runs, and what
//! each cascade component decided — as data, not log lines.
//!
//! Three pillars, all std + `parking_lot` + `serde`:
//!
//! 1. [`metrics`] — a lock-cheap [`metrics::Registry`] of named
//!    [`metrics::Counter`]s, [`metrics::Gauge`]s and fixed-bucket
//!    log-scale [`metrics::Histogram`]s with p50/p95/p99/max quantile
//!    estimation. Handles are `Arc`-backed atomics: registration takes a
//!    short lock once, the hot path is a relaxed atomic op.
//! 2. [`span`] — an RAII [`span::Span`] timing API
//!    (`Span::enter(collector, name) … drop`) with a bounded, thread-safe
//!    [`span::TraceCollector`] recording nested stage timings and
//!    structured key–value events, exportable as JSONL.
//! 3. [`trace`] — the [`trace::PipelineTrace`] pipeline-event type:
//!    per session, each cascade component's decision, attack score,
//!    threshold margin and duration.
//!
//! # Naming scheme
//!
//! Metric names are dot-separated `subsystem.object.unit` strings, e.g.
//! `pipeline.distance.seconds`, `server.queue.depth`,
//! `server.worker.3.processed`. Span names follow the cascade component
//! identifiers: `verify` is the root, `distance`, `sld`, `sound_field`,
//! `loudspeaker`, `speaker_id` its children. See DESIGN.md §7.
//!
//! # Example
//!
//! ```
//! use magshield_obs::metrics::Registry;
//! use magshield_obs::span::{Span, TraceCollector};
//!
//! let registry = Registry::default();
//! let collector = TraceCollector::default();
//!
//! let hist = registry.histogram("pipeline.verify.seconds");
//! {
//!     let mut span = Span::enter(&collector, "verify");
//!     let mut child = span.child("distance");
//!     child.event("attack_score", "0.42");
//!     drop(child);
//!     hist.record_secs(span.elapsed().as_secs_f64());
//! }
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.histograms["pipeline.verify.seconds"].count, 1);
//! assert_eq!(collector.records().len(), 2);
//! ```

pub mod metrics;
pub mod span;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use span::{Span, SpanEvent, SpanRecord, TraceCollector};
pub use trace::{ComponentTrace, PipelineTrace};

//! Property-based and concurrency tests for the metrics substrate.

use magshield_obs::metrics::{Histogram, HistogramSnapshot, Registry, BUCKETS};
use proptest::prelude::*;

fn hist_of(values: &[f64]) -> HistogramSnapshot {
    let h = Histogram::default();
    for &v in values {
        h.record_secs(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantiles are monotone non-decreasing in q and bounded by the max.
    #[test]
    fn quantile_monotonicity(values in prop::collection::vec(1e-8f64..50.0, 1..300)) {
        let s = hist_of(&values);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = s.quantile(q);
            prop_assert!(v >= prev, "quantile({q}) = {v} < previous {prev}");
            prop_assert!(v <= s.max_s() + 1e-12, "quantile({q}) = {v} above max {}", s.max_s());
            prev = v;
        }
    }

    /// Every recorded value is counted exactly once across buckets.
    #[test]
    fn bucket_count_conservation(values in prop::collection::vec(-1.0f64..100.0, 0..300)) {
        let s = hist_of(&values);
        prop_assert_eq!(s.buckets.len(), BUCKETS);
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), values.len() as u64);
    }

    /// Snapshot merge is exactly associative (and consistent with
    /// recording everything into one histogram).
    #[test]
    fn merge_associativity(
        a in prop::collection::vec(1e-7f64..10.0, 0..100),
        b in prop::collection::vec(1e-7f64..10.0, 0..100),
        c in prop::collection::vec(1e-7f64..10.0, 0..100),
    ) {
        let (sa, sb, sc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let left = sa.clone().merged(&sb).merged(&sc);
        let right = sa.clone().merged(&sb.clone().merged(&sc));
        prop_assert_eq!(&left, &right);

        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        let direct = hist_of(&all);
        prop_assert_eq!(&left, &direct);
    }

    /// Merging with an empty snapshot is the identity.
    #[test]
    fn merge_identity(values in prop::collection::vec(1e-7f64..10.0, 0..100)) {
        let s = hist_of(&values);
        let merged = s.clone().merged(&HistogramSnapshot::default());
        prop_assert_eq!(merged, s);
    }
}

/// Hammer one registry from many threads: every increment must land.
#[test]
fn registry_concurrent_increments_are_not_lost() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 25_000;
    let registry = Registry::default();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = registry.clone();
            std::thread::spawn(move || {
                // Mix pre-registered handles with by-name lookups so the
                // get-or-register read/write paths race too.
                let counter = registry.counter("hammer.hits");
                let hist = registry.histogram("hammer.seconds");
                let gauge = registry.gauge("hammer.inflight");
                for i in 0..PER_THREAD {
                    gauge.inc();
                    counter.inc();
                    registry.counter(&format!("hammer.worker.{t}")).inc();
                    hist.record_secs((1 + i % 1000) as f64 * 1e-6);
                    gauge.dec();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(registry.counter("hammer.hits").get(), total);
    for t in 0..THREADS {
        assert_eq!(
            registry.counter(&format!("hammer.worker.{t}")).get(),
            PER_THREAD
        );
    }
    let snap = registry.histogram("hammer.seconds").snapshot();
    assert_eq!(snap.count, total);
    assert_eq!(snap.buckets.iter().sum::<u64>(), total);
    assert_eq!(registry.gauge("hammer.inflight").get(), 0);
}

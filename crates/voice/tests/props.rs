//! Property-based tests for the voice substrate.

use magshield_simkit::rng::SimRng;
use magshield_voice::attacks::{attack_audio, AttackKind};
use magshield_voice::corpus::random_passphrase;
use magshield_voice::devices::table_iv_catalog;
use magshield_voice::profile::SpeakerProfile;
use magshield_voice::synth::{FormantSynthesizer, SessionEffects};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any digit passphrase renders to bounded, finite, non-silent audio.
    #[test]
    fn synthesis_is_bounded(seed in 0u64..10_000, digits in "[0-9]{1,6}") {
        let rng = SimRng::from_seed(seed);
        let sp = SpeakerProfile::sample((seed % 64) as u32, &rng);
        let audio = FormantSynthesizer::default().render_digits(
            &sp,
            &digits,
            SessionEffects::sample(&rng.fork("fx"), 1.0),
            &rng.fork("take"),
        );
        prop_assert!(!audio.is_empty());
        prop_assert!(audio.iter().all(|x| x.is_finite() && x.abs() <= 1.0));
        let rms = (audio.iter().map(|x| x * x).sum::<f64>() / audio.len() as f64).sqrt();
        prop_assert!(rms > 0.005, "rms {rms}");
    }

    /// Speaker sampling stays within human parameter ranges.
    #[test]
    fn profiles_physiological(id in 0u32..500, seed in 0u64..1000) {
        let sp = SpeakerProfile::sample(id, &SimRng::from_seed(seed));
        prop_assert!((80.0..=260.0).contains(&sp.f0_hz));
        prop_assert!((0.7..=1.4).contains(&sp.vtl_factor));
        prop_assert!(sp.jitter > 0.0 && sp.jitter < 0.05);
        for o in sp.formant_offsets {
            prop_assert!((0.8..=1.2).contains(&o));
        }
    }

    /// Morphing is idempotent on the spectral parameters: morphing an
    /// already-morphed profile toward the same victim changes nothing
    /// spectral.
    #[test]
    fn morph_idempotent(a in 0u32..100, b in 0u32..100, seed in 0u64..100) {
        let rng = SimRng::from_seed(seed);
        let attacker = SpeakerProfile::sample(a, &rng);
        let victim = SpeakerProfile::sample(b, &rng);
        let once = attacker.morphed_toward(&victim);
        let twice = once.morphed_toward(&victim);
        prop_assert_eq!(once.f0_hz, twice.f0_hz);
        prop_assert_eq!(once.vtl_factor, twice.vtl_factor);
        prop_assert_eq!(once.formant_offsets, twice.formant_offsets);
    }

    /// Random passphrases have the requested length and only digits.
    #[test]
    fn passphrases_valid(len in 1usize..12, seed in 0u64..1000) {
        let mut rng = SimRng::from_seed(seed);
        let p = random_passphrase(len, &mut rng);
        prop_assert_eq!(p.len(), len);
        prop_assert!(p.chars().all(|c| c.is_ascii_digit()));
    }

    /// Attack audio is reproducible and finite for every kind.
    #[test]
    fn attacks_deterministic(seed in 0u64..200) {
        let rng = SimRng::from_seed(seed);
        let attacker = SpeakerProfile::sample(1, &rng);
        let victim = SpeakerProfile::sample(2, &rng);
        for kind in [
            AttackKind::Replay,
            AttackKind::Morphing,
            AttackKind::Synthesis,
            AttackKind::HumanMimicry,
        ] {
            let a = attack_audio(kind, &attacker, &victim, "42", &SimRng::from_seed(seed));
            let b = attack_audio(kind, &attacker, &victim, "42", &SimRng::from_seed(seed));
            prop_assert_eq!(&a, &b);
            prop_assert!(a.iter().all(|x| x.is_finite()));
        }
    }
}

#[test]
fn device_catalog_is_stable() {
    // Regression guard: device count and class-level calibration bands.
    let cat = table_iv_catalog();
    assert_eq!(cat.len(), 25);
    for d in &cat {
        assert!(d.aperture_radius_m > 0.0);
        assert!(d.low_hz < d.high_hz);
        assert!(d.magnet_ut_at_3cm >= 0.0);
    }
}

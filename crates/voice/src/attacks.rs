//! Voice impersonation attack models — §III-A of the paper.
//!
//! Machine-based attacks (Types 1–3) produce audio that must ultimately be
//! played through a loudspeaker; human mimicry (§III-A2) is spoken live.
//! Each generator returns the *audio the attacker feeds to the output
//! stage*; playback-device coloration and the physical channel are applied
//! by the session-capture layer (core crate) so the same attack audio can
//! be evaluated through different devices.

use crate::devices::PlaybackDevice;
use crate::profile::SpeakerProfile;
use crate::synth::{FormantSynthesizer, SessionEffects};
use magshield_simkit::rng::SimRng;
use serde::{Deserialize, Serialize};

/// The attack taxonomy of §III-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackKind {
    /// Type 1: replay of a surreptitious recording of the victim.
    Replay,
    /// Type 2: voice morphing (conversion) of the attacker's speech toward
    /// the victim.
    Morphing,
    /// Type 3: text-to-speech synthesis in the victim's voice.
    Synthesis,
    /// Type 3 variant: synthesis trained only on SceneGuard-protected
    /// recordings (scene-consistent audible noise poisons the attacker's
    /// parameter estimation — see [`crate::sceneguard`]).
    ProtectedSynthesis,
    /// Human imitation without machine assistance.
    HumanMimicry,
}

impl AttackKind {
    /// All machine-based kinds (those requiring a loudspeaker).
    pub fn machine_based() -> [AttackKind; 4] {
        [
            AttackKind::Replay,
            AttackKind::Morphing,
            AttackKind::Synthesis,
            AttackKind::ProtectedSynthesis,
        ]
    }

    /// Whether this attack needs a loudspeaker to deliver.
    pub fn requires_loudspeaker(self) -> bool {
        !matches!(self, AttackKind::HumanMimicry)
    }
}

/// Renders the audio an attacker of `kind` produces when impersonating
/// `victim` speaking `digits`.
///
/// `attacker` is the human operating the attack (his voice is the morph
/// source and the mimicry instrument).
pub fn attack_audio(
    kind: AttackKind,
    attacker: &SpeakerProfile,
    victim: &SpeakerProfile,
    digits: &str,
    rng: &SimRng,
) -> Vec<f64> {
    let synth = FormantSynthesizer::default();
    match kind {
        AttackKind::Replay => {
            // A genuine utterance of the victim, degraded by the covert
            // recording chain: band-limiting and recorder noise.
            let session = SessionEffects::sample(&rng.fork("covert-session"), 1.0);
            let mut audio = synth.render_digits(victim, digits, session, &rng.fork("covert"));
            degrade_recording(&mut audio, synth.sample_rate, &rng.fork("recorder"));
            audio
        }
        AttackKind::Morphing => {
            // High-quality conversion: victim's spectral parameters with
            // the attacker's residual source character + vocoder artifacts.
            let converted = attacker.morphed_toward(victim);
            let session = SessionEffects::sample(&rng.fork("morph-session"), 0.6);
            let mut audio = synth.render_digits(&converted, digits, session, &rng.fork("morph"));
            vocoder_artifacts(&mut audio, synth.sample_rate, &rng.fork("vocoder"));
            audio
        }
        AttackKind::Synthesis => {
            // TTS from text: victim parameters, robotic prosody (flattened
            // jitter/shimmer — synthetic speech is *too* regular).
            let mut tts = victim.clone();
            tts.jitter *= 0.15;
            tts.shimmer *= 0.15;
            tts.rate = 1.0;
            let mut audio =
                synth.render_digits(&tts, digits, SessionEffects::neutral(), &rng.fork("tts"));
            vocoder_artifacts(&mut audio, synth.sample_rate, &rng.fork("tts-vocoder"));
            audio
        }
        AttackKind::ProtectedSynthesis => {
            // TTS trained on SceneGuard-protected recordings: the voice
            // parameters are estimated through scene noise (degraded),
            // and the trained model reproduces a faint imprint of the
            // protective noise it learned from.
            let estimated = crate::sceneguard::clone_profile_through_protection(
                victim,
                crate::sceneguard::Scene::Cafe,
                crate::sceneguard::PROTECTIVE_SNR_DB,
                &rng.fork("protected-estimate"),
            );
            let mut tts = estimated;
            tts.jitter *= 0.15;
            tts.shimmer *= 0.15;
            tts.rate = 1.0;
            let mut audio = synth.render_digits(
                &tts,
                digits,
                SessionEffects::neutral(),
                &rng.fork("protected-tts"),
            );
            vocoder_artifacts(
                &mut audio,
                synth.sample_rate,
                &rng.fork("protected-vocoder"),
            );
            // Trained-in background imprint, well below the speech but
            // above the vocoder floor (~18 dB down).
            let speech_rms =
                (audio.iter().map(|x| x * x).sum::<f64>() / audio.len().max(1) as f64).sqrt();
            let imprint = crate::sceneguard::scene_noise(
                crate::sceneguard::Scene::Cafe,
                audio.len(),
                synth.sample_rate,
                &rng.fork("protected-imprint"),
            );
            let gain = speech_rms / 10f64.powf(18.0 / 20.0);
            for (x, n) in audio.iter_mut().zip(&imprint) {
                *x += n * gain;
            }
            audio
        }
        AttackKind::HumanMimicry => {
            let mimic = attacker.mimicking(victim, rng);
            let session = SessionEffects::sample(&rng.fork("mimic-session"), 1.0);
            synth.render_digits(&mimic, digits, session, &rng.fork("mimic"))
        }
    }
}

/// Applies a playback device's passband to attack audio — the coloration
/// the loudspeaker itself adds before the sound reaches the air.
pub fn apply_device_response(audio: &mut [f64], sample_rate: f64, device: &PlaybackDevice) {
    let nyq = sample_rate * 0.499;
    if device.low_hz > 20.0 {
        let mut hp = magshield_dsp::filter::Biquad::highpass(
            sample_rate,
            device.low_hz.min(nyq),
            std::f64::consts::FRAC_1_SQRT_2,
        );
        for x in audio.iter_mut() {
            *x = hp.process(*x);
        }
    }
    if device.high_hz < nyq {
        let mut lp = magshield_dsp::filter::Biquad::lowpass(
            sample_rate,
            device.high_hz,
            std::f64::consts::FRAC_1_SQRT_2,
        );
        for x in audio.iter_mut() {
            *x = lp.process(*x);
        }
    }
}

/// Covert-recording degradation: telephone-ish band-limit plus noise.
fn degrade_recording(audio: &mut [f64], sample_rate: f64, rng: &SimRng) {
    let mut r = rng.fork("degrade");
    let mut lp = magshield_dsp::filter::Biquad::lowpass(sample_rate, 6000.0, 0.7);
    let mut hp = magshield_dsp::filter::Biquad::highpass(sample_rate, 120.0, 0.7);
    for x in audio.iter_mut() {
        *x = hp.process(lp.process(*x)) + r.gauss(0.0, 0.003);
    }
}

/// Vocoder artifacts: frame-rate amplitude quantization and a weak
/// metallic resonance, the fingerprints voice-conversion detectors look
/// for (\[56\] in the paper).
fn vocoder_artifacts(audio: &mut [f64], sample_rate: f64, rng: &SimRng) {
    let mut r = rng.fork("artifact");
    let frame = (sample_rate * 0.010) as usize; // 10 ms synthesis frames
    for chunk in audio.chunks_mut(frame.max(1)) {
        // Per-frame gain steps (piecewise-constant envelope).
        let g = 1.0 + r.gauss(0.0, 0.04);
        for x in chunk.iter_mut() {
            *x *= g;
        }
    }
    let mut res = magshield_dsp::filter::Biquad::peaking(sample_rate, 3400.0, 8.0, 3.0);
    for x in audio.iter_mut() {
        *x = res.process(*x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::VOICE_SAMPLE_RATE;
    use magshield_dsp::mel::MfccExtractor;

    fn speakers() -> (SpeakerProfile, SpeakerProfile) {
        let rng = SimRng::from_seed(55);
        (
            SpeakerProfile::sample(0, &rng),
            SpeakerProfile::sample(1, &rng),
        )
    }

    fn mean_mfcc(audio: &[f64]) -> Vec<f64> {
        let ex = MfccExtractor::new(VOICE_SAMPLE_RATE);
        let frames = ex.extract(audio);
        let mut m = [0.0; 13];
        for f in frames.iter_rows() {
            for (mi, v) in m.iter_mut().zip(f) {
                *mi += v;
            }
        }
        m.iter().map(|v| v / frames.rows() as f64).collect()
    }

    fn cep_dist(a: &[f64], b: &[f64]) -> f64 {
        a[1..]
            .iter()
            .zip(&b[1..])
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn taxonomy() {
        assert_eq!(AttackKind::machine_based().len(), 4);
        assert!(AttackKind::Replay.requires_loudspeaker());
        assert!(AttackKind::ProtectedSynthesis.requires_loudspeaker());
        assert!(!AttackKind::HumanMimicry.requires_loudspeaker());
    }

    #[test]
    fn sceneguard_protection_degrades_the_clone() {
        // A synthesis attack trained on protected recordings must land
        // farther from the victim's spectral envelope than one trained on
        // clean recordings — that is the whole point of the protection.
        let rng = SimRng::from_seed(91);
        let synth = FormantSynthesizer::default();
        let n = 6;
        let mut d_clean_sum = 0.0;
        let mut d_protected_sum = 0.0;
        for k in 0..n {
            let attacker = SpeakerProfile::sample(2 * k, &rng);
            let victim = SpeakerProfile::sample(2 * k + 1, &rng);
            let genuine = mean_mfcc(&synth.render_digits(
                &victim,
                "123456",
                SessionEffects::neutral(),
                &rng.fork_indexed("g", u64::from(k)),
            ));
            let prng = rng.fork_indexed("pair", u64::from(k));
            let clean = attack_audio(AttackKind::Synthesis, &attacker, &victim, "123456", &prng);
            let protected = attack_audio(
                AttackKind::ProtectedSynthesis,
                &attacker,
                &victim,
                "123456",
                &prng,
            );
            d_clean_sum += cep_dist(&mean_mfcc(&clean), &genuine);
            d_protected_sum += cep_dist(&mean_mfcc(&protected), &genuine);
        }
        assert!(
            d_protected_sum > d_clean_sum,
            "protected-synthesis (avg {}) should impersonate worse than clean TTS (avg {})",
            d_protected_sum / n as f64,
            d_clean_sum / n as f64
        );
    }

    #[test]
    fn machine_attacks_sound_like_the_victim() {
        let (attacker, victim) = speakers();
        let rng = SimRng::from_seed(77);
        let synth = FormantSynthesizer::default();
        let genuine = synth.render_digits(
            &victim,
            "123456",
            SessionEffects::neutral(),
            &rng.fork("genuine"),
        );
        let genuine_m = mean_mfcc(&genuine);
        let attacker_own = synth.render_digits(
            &attacker,
            "123456",
            SessionEffects::neutral(),
            &rng.fork("own"),
        );
        let attacker_d = cep_dist(&mean_mfcc(&attacker_own), &genuine_m);
        // ProtectedSynthesis is excluded by design: SceneGuard protection
        // exists precisely to break this property (see
        // `sceneguard_protection_degrades_the_clone`).
        for kind in [
            AttackKind::Replay,
            AttackKind::Morphing,
            AttackKind::Synthesis,
        ] {
            let audio = attack_audio(kind, &attacker, &victim, "123456", &rng.fork("atk"));
            let d = cep_dist(&mean_mfcc(&audio), &genuine_m);
            assert!(
                d < attacker_d,
                "{kind:?}: distance to victim {d} should beat attacker's own voice {attacker_d}"
            );
        }
    }

    #[test]
    fn mimicry_helps_but_less_than_machines_on_average() {
        // Averaged over pairs: morphing (full spectral conversion) should
        // land closer to the victim's envelope than live human mimicry
        // (partial match with inflated variance). Individual pairs can go
        // either way in mean-MFCC space, so compare the averages.
        let rng = SimRng::from_seed(78);
        let synth = FormantSynthesizer::default();
        let n = 6;
        let mut d_mimic_sum = 0.0;
        let mut d_morph_sum = 0.0;
        for k in 0..n {
            let attacker = SpeakerProfile::sample(2 * k, &rng);
            let victim = SpeakerProfile::sample(2 * k + 1, &rng);
            let genuine = mean_mfcc(&synth.render_digits(
                &victim,
                "123456",
                SessionEffects::neutral(),
                &rng.fork_indexed("g", u64::from(k)),
            ));
            let prng = rng.fork_indexed("pair", u64::from(k));
            let mimic = attack_audio(
                AttackKind::HumanMimicry,
                &attacker,
                &victim,
                "123456",
                &prng,
            );
            let morph = attack_audio(AttackKind::Morphing, &attacker, &victim, "123456", &prng);
            d_mimic_sum += cep_dist(&mean_mfcc(&mimic), &genuine);
            d_morph_sum += cep_dist(&mean_mfcc(&morph), &genuine);
        }
        assert!(
            d_morph_sum < d_mimic_sum,
            "morphing (avg {}) should out-impersonate mimicry (avg {})",
            d_morph_sum / n as f64,
            d_mimic_sum / n as f64
        );
    }

    #[test]
    fn device_response_bandlimits() {
        use magshield_dsp::goertzel::tone_amplitude;
        let fs = 16_000.0;
        let mut audio: Vec<f64> = (0..16_000)
            .map(|i| {
                let t = i as f64 / fs;
                (std::f64::consts::TAU * 200.0 * t).sin()
                    + (std::f64::consts::TAU * 6000.0 * t).sin()
            })
            .collect();
        let phone_speaker = crate::devices::table_iv_catalog()
            .into_iter()
            .find(|d| d.name.contains("iPhone 4S"))
            .unwrap();
        apply_device_response(&mut audio, fs, &phone_speaker);
        // 200 Hz is below the 400 Hz cutoff of the tiny driver → attenuated.
        let low = tone_amplitude(&audio[8000..], 200.0, fs);
        let mid = tone_amplitude(&audio[8000..], 6000.0, fs);
        assert!(low < 0.6, "low tone should be attenuated: {low}");
        assert!(mid > 0.7, "mid tone should pass: {mid}");
    }

    #[test]
    fn attacks_are_reproducible() {
        let (attacker, victim) = speakers();
        let a = attack_audio(
            AttackKind::Synthesis,
            &attacker,
            &victim,
            "42",
            &SimRng::from_seed(5),
        );
        let b = attack_audio(
            AttackKind::Synthesis,
            &attacker,
            &victim,
            "42",
            &SimRng::from_seed(5),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn synthesis_is_unnaturally_regular() {
        // TTS output flattens jitter; verify via the profile used.
        let (_, victim) = speakers();
        let mut tts = victim.clone();
        tts.jitter *= 0.15;
        assert!(tts.jitter < victim.jitter);
    }
}

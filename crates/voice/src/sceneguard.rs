//! SceneGuard-style training-time voice protection — scene-consistent
//! audible background noise mixed into a victim's recordings.
//!
//! SceneGuard (PAPERS.md; SNIPPETS.md snippets 1/3) protects a speaker
//! from voice cloning by releasing only recordings with *plausible,
//! audible* background noise matched to a scene (café babble, street
//! rumble, office hum). Unlike imperceptible adversarial perturbations,
//! the noise survives countermeasures (denoising, resampling) because it
//! is real acoustic content — but it poisons the attacker's parameter
//! estimation: formant detail, glottal character and pitch statistics are
//! all fit through the noise floor.
//!
//! This module provides both sides of that arms race for the robustness
//! matrix:
//!
//! * [`protect_recording`] — what the victim publishes (enrollment audio
//!   with scene noise at a protective SNR);
//! * [`clone_profile_through_protection`] — the degraded speaker profile
//!   a cloning pipeline recovers from protected recordings, which is what
//!   a `ProtectedSynthesis` attack must speak with.

use crate::profile::{SpeakerProfile, NUM_FORMANTS};
use magshield_dsp::filter::Biquad;
use magshield_simkit::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Scene archetypes whose noise character SceneGuard matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scene {
    /// Café babble: speech-band modulated noise — the most poisonous to
    /// formant estimation because it lives exactly where formants do.
    Cafe,
    /// Street rumble: strong low-frequency content plus broadband hiss.
    Street,
    /// Office: mains-adjacent hum plus wideband ventilation noise.
    Office,
}

impl Scene {
    /// Every modeled scene.
    pub fn all() -> [Scene; 3] {
        [Scene::Cafe, Scene::Street, Scene::Office]
    }

    /// Stable lower-case name for logs and JSONL rows.
    pub fn name(self) -> &'static str {
        match self {
            Scene::Cafe => "cafe",
            Scene::Street => "street",
            Scene::Office => "office",
        }
    }

    /// Center of the scene's dominant noise band (Hz) — used both to
    /// shape the noise and to bias the attacker's tilt estimate.
    fn band_center_hz(self) -> f64 {
        match self {
            Scene::Cafe => 1200.0,
            Scene::Street => 180.0,
            Scene::Office => 400.0,
        }
    }

    /// How strongly the scene's spectrum overlaps the formant region —
    /// the fraction of estimation damage it does at a given SNR.
    fn formant_overlap(self) -> f64 {
        match self {
            Scene::Cafe => 1.0,
            Scene::Street => 0.45,
            Scene::Office => 0.65,
        }
    }
}

/// Renders `n` samples of scene-consistent background noise at unit RMS.
///
/// Deterministic in `(scene, n, sample_rate, rng seed)`.
pub fn scene_noise(scene: Scene, n: usize, sample_rate: f64, rng: &SimRng) -> Vec<f64> {
    let mut r = rng.fork("scene-noise");
    let mut shaped = Biquad::peaking(sample_rate, scene.band_center_hz(), 1.2, 12.0);
    let mut lp = Biquad::lowpass(sample_rate, 5500.0, 0.7);
    // Slow amplitude modulation makes the noise "live" (babble swell,
    // passing traffic) rather than stationary hiss.
    let mod_hz = match scene {
        Scene::Cafe => 3.0,
        Scene::Street => 0.7,
        Scene::Office => 1.5,
    };
    let mod_phase = r.uniform(0.0, std::f64::consts::TAU);
    let mut out: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 / sample_rate;
            let env = 1.0 + 0.35 * (std::f64::consts::TAU * mod_hz * t + mod_phase).sin();
            lp.process(shaped.process(r.gauss(0.0, 1.0))) * env
        })
        .collect();
    let rms = (out.iter().map(|x| x * x).sum::<f64>() / n.max(1) as f64).sqrt();
    if rms > 1e-12 {
        for x in &mut out {
            *x /= rms;
        }
    }
    out
}

/// Mixes scene noise into `audio` at `snr_db` (speech RMS over noise
/// RMS). This is the protected recording the victim publishes — fully
/// intelligible (the noise is audible but natural), useless as clean
/// cloning material.
pub fn protect_recording(
    audio: &[f64],
    scene: Scene,
    snr_db: f64,
    sample_rate: f64,
    rng: &SimRng,
) -> Vec<f64> {
    let speech_rms = (audio.iter().map(|x| x * x).sum::<f64>() / audio.len().max(1) as f64).sqrt();
    let noise_rms = speech_rms / 10f64.powf(snr_db / 20.0);
    let noise = scene_noise(scene, audio.len(), sample_rate, rng);
    audio
        .iter()
        .zip(&noise)
        .map(|(s, n)| s + n * noise_rms)
        .collect()
}

/// The speaker profile a cloning pipeline estimates from recordings
/// protected with `scene` noise at `snr_db`.
///
/// Estimation degrades as the SNR drops and as the scene's spectrum
/// overlaps the formant region:
///
/// * per-formant idiosyncrasies wash toward the population mean (noise-
///   weighted envelope fitting loses the fine structure that identifies
///   the speaker) and pick up a scene-colored bias;
/// * spectral tilt is dragged toward the noise band;
/// * f0 tracking through babble picks up octave/fill errors (a small
///   multiplicative bias);
/// * jitter and shimmer are *over*-estimated — frame-to-frame noise
///   variation reads as glottal perturbation, so the clone sounds rough.
pub fn clone_profile_through_protection(
    victim: &SpeakerProfile,
    scene: Scene,
    snr_db: f64,
    rng: &SimRng,
) -> SpeakerProfile {
    let mut r = rng.fork("protected-clone");
    // Damage weight in [0, 1): 0 dB SNR ≈ 0.5 overlap-weighted, high SNR → 0.
    let w = (scene.formant_overlap() / (1.0 + 10f64.powf(snr_db / 10.0) * 0.1)).clamp(0.0, 0.95);
    let blend = |own: f64, anon: f64| own * (1.0 - w) + anon * w;
    let mut offsets = [1.0; NUM_FORMANTS];
    for (o, &v) in offsets.iter_mut().zip(&victim.formant_offsets) {
        // Wash toward 1.0 plus a scene-correlated estimation bias.
        *o = blend(v, 1.0) * (1.0 + w * r.uniform(-0.04, 0.04));
    }
    let tilt_bias = if scene.band_center_hz() < 600.0 {
        -1.0
    } else {
        1.0
    };
    SpeakerProfile {
        id: victim.id,
        f0_hz: victim.f0_hz * (1.0 + w * r.uniform(-0.05, 0.05)),
        vtl_factor: blend(victim.vtl_factor, 1.0),
        formant_offsets: offsets,
        tilt_db_per_oct: victim.tilt_db_per_oct + w * tilt_bias * r.uniform(0.5, 2.0),
        jitter: victim.jitter * (1.0 + 2.5 * w),
        shimmer: victim.shimmer * (1.0 + 2.5 * w),
        rate: victim.rate,
    }
}

/// The protective SNR (dB) SceneGuard-style protection targets: loud
/// enough to poison cloning, quiet enough to stay natural.
pub const PROTECTIVE_SNR_DB: f64 = 5.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_unit_rms_and_reproducible() {
        for scene in Scene::all() {
            let a = scene_noise(scene, 8000, 16_000.0, &SimRng::from_seed(1));
            let b = scene_noise(scene, 8000, 16_000.0, &SimRng::from_seed(1));
            assert_eq!(a, b, "{scene:?} noise must be deterministic");
            let rms = (a.iter().map(|x| x * x).sum::<f64>() / a.len() as f64).sqrt();
            assert!((rms - 1.0).abs() < 1e-9, "{scene:?} rms {rms}");
        }
    }

    #[test]
    fn scenes_have_distinct_spectra() {
        use magshield_dsp::goertzel::tone_power;
        let fs = 16_000.0;
        let rng = SimRng::from_seed(2);
        let cafe = scene_noise(Scene::Cafe, 16_000, fs, &rng);
        let street = scene_noise(Scene::Street, 16_000, fs, &rng);
        // Street noise concentrates low; café concentrates mid.
        let low = |x: &[f64]| tone_power(x, 180.0, fs);
        let mid = |x: &[f64]| tone_power(x, 1200.0, fs);
        assert!(low(&street) / mid(&street) > low(&cafe) / mid(&cafe));
    }

    #[test]
    fn protection_preserves_speech_but_adds_noise() {
        let rng = SimRng::from_seed(3);
        let speech: Vec<f64> = (0..16_000)
            .map(|i| (std::f64::consts::TAU * 440.0 * i as f64 / 16_000.0).sin() * 0.3)
            .collect();
        let protected = protect_recording(&speech, Scene::Cafe, PROTECTIVE_SNR_DB, 16_000.0, &rng);
        assert_eq!(protected.len(), speech.len());
        let diff_rms = (protected
            .iter()
            .zip(&speech)
            .map(|(p, s)| (p - s) * (p - s))
            .sum::<f64>()
            / speech.len() as f64)
            .sqrt();
        let speech_rms = (speech.iter().map(|x| x * x).sum::<f64>() / speech.len() as f64).sqrt();
        let snr_db = 20.0 * (speech_rms / diff_rms).log10();
        assert!(
            (snr_db - PROTECTIVE_SNR_DB).abs() < 0.5,
            "mixed SNR {snr_db} dB should match the target"
        );
    }

    #[test]
    fn protected_clone_is_farther_from_the_victim_than_a_clean_clone() {
        let rng = SimRng::from_seed(4);
        let mut protected_worse = 0;
        let n = 10;
        for k in 0..n {
            let victim = SpeakerProfile::sample(k, &rng);
            let clean = victim.clone(); // a clean clone estimates perfectly
            let protected = clone_profile_through_protection(
                &victim,
                Scene::Cafe,
                PROTECTIVE_SNR_DB,
                &rng.fork_indexed("clone", u64::from(k)),
            );
            assert!(
                protected.distance(&victim) > 1e-4,
                "estimation must degrade"
            );
            if protected.distance(&victim) > clean.distance(&victim) {
                protected_worse += 1;
            }
        }
        assert_eq!(
            protected_worse, n,
            "protection must always cost the attacker"
        );
    }

    #[test]
    fn higher_snr_means_less_damage() {
        let rng = SimRng::from_seed(5);
        let victim = SpeakerProfile::sample(7, &rng);
        let at = |snr: f64| {
            clone_profile_through_protection(&victim, Scene::Cafe, snr, &rng.fork("snr"))
                .distance(&victim)
        };
        assert!(at(0.0) > at(20.0), "louder noise must hurt more");
    }

    #[test]
    fn clone_estimation_is_reproducible() {
        let victim = SpeakerProfile::sample(3, &SimRng::from_seed(6));
        let a = clone_profile_through_protection(
            &victim,
            Scene::Office,
            PROTECTIVE_SNR_DB,
            &SimRng::from_seed(7),
        );
        let b = clone_profile_through_protection(
            &victim,
            Scene::Office,
            PROTECTIVE_SNR_DB,
            &SimRng::from_seed(7),
        );
        assert_eq!(a, b);
    }
}

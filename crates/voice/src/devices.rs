//! Playback device catalog — Appendix A (Table IV) of the paper.
//!
//! The paper evaluates 25 conventional loudspeakers "ranging from low-end
//! to high-end, including PC loudspeakers, mobile phone internal speakers,
//! laptop internal speakers, and earphones", plus (§VII) unconventional
//! electrostatic and piezoelectric speakers. Each catalog entry carries the
//! physical parameters the defense keys on:
//!
//! * near-field magnet strength (µT at the 3 cm reference — the paper's
//!   Fig. 10 band is 30–210 µT),
//! * radiating aperture radius (sound-field signature),
//! * passband (affects replayed speech coloration).

use serde::{Deserialize, Serialize};

/// Broad device classes with distinct physical signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Desktop PC / bookshelf / outdoor loudspeakers.
    PcSpeaker,
    /// Portable Bluetooth speakers.
    Bluetooth,
    /// Laptop internal speakers.
    LaptopInternal,
    /// Smartphone internal speakers.
    PhoneInternal,
    /// In-ear / earbud drivers.
    Earphone,
    /// Electrostatic panel (no permanent magnet; §VII).
    Electrostatic,
    /// Piezoelectric tweeter (no magnet, poor audio quality; §VII).
    Piezoelectric,
}

/// A concrete playback device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlaybackDevice {
    /// Maker + model as listed in Table IV.
    pub name: &'static str,
    /// Device class.
    pub class: DeviceClass,
    /// Permanent-magnet field (µT) at the 3 cm reference distance.
    /// Zero for electrostatic/piezo devices.
    pub magnet_ut_at_3cm: f64,
    /// Radiating aperture radius (m).
    pub aperture_radius_m: f64,
    /// Low cutoff of the passband (Hz).
    pub low_hz: f64,
    /// High cutoff of the passband (Hz).
    pub high_hz: f64,
}

impl PlaybackDevice {
    /// Whether the device contains a permanent-magnet (dynamic) driver.
    pub fn has_magnet(&self) -> bool {
        self.magnet_ut_at_3cm > 0.0
    }

    /// For unconventional drivers: residual magnetic signature (µT at
    /// 3 cm) from metal grids / wiring, detectable only very close. The
    /// paper notes the ESL "can still be detected by magnetometer as the
    /// metal grids generate the magnetic interference".
    pub fn residual_interference_ut(&self) -> f64 {
        match self.class {
            DeviceClass::Electrostatic => 6.0,
            DeviceClass::Piezoelectric => 1.5,
            _ => 0.0,
        }
    }
}

/// The full Table IV catalog (25 conventional loudspeakers and earphones).
///
/// Magnet strengths are assigned per device class and size within the
/// paper's measured 30–210 µT near-field band (Fig. 10); exact per-unit
/// values were not published, so these are class-calibrated (DESIGN.md §2).
pub fn table_iv_catalog() -> Vec<PlaybackDevice> {
    use DeviceClass::*;
    let d = |name, class, magnet, aperture, low, high| PlaybackDevice {
        name,
        class,
        magnet_ut_at_3cm: magnet,
        aperture_radius_m: aperture,
        low_hz: low,
        high_hz: high,
    };
    vec![
        d(
            "Logitech LS21 2.1 Stereo",
            PcSpeaker,
            150.0,
            0.035,
            60.0,
            18_000.0,
        ),
        d(
            "Klipsch KHO-7 Indoor/Outdoor",
            PcSpeaker,
            210.0,
            0.057,
            60.0,
            19_000.0,
        ),
        d(
            "Insignia NS-OS112 Indoor/Outdoor",
            PcSpeaker,
            170.0,
            0.050,
            70.0,
            18_000.0,
        ),
        d(
            "Sony SRSX2/BLK Portable BT",
            Bluetooth,
            110.0,
            0.022,
            80.0,
            18_000.0,
        ),
        d(
            "Bose SoundLink Mini PINK",
            Bluetooth,
            130.0,
            0.025,
            70.0,
            18_500.0,
        ),
        d(
            "Bose 151 SE Environmental",
            PcSpeaker,
            190.0,
            0.055,
            60.0,
            18_000.0,
        ),
        d(
            "Yamaha NS-AW190BL 5\" Outdoor",
            PcSpeaker,
            180.0,
            0.063,
            65.0,
            19_000.0,
        ),
        d(
            "Pioneer SP-FS52 Floor",
            PcSpeaker,
            205.0,
            0.065,
            40.0,
            20_000.0,
        ),
        d(
            "HP D9J19AT 2.0 System",
            PcSpeaker,
            95.0,
            0.025,
            90.0,
            17_000.0,
        ),
        d(
            "GPX HT12B 2.1 System",
            PcSpeaker,
            120.0,
            0.030,
            80.0,
            17_500.0,
        ),
        d(
            "Coby CSMP67 2.1 Home Audio",
            PcSpeaker,
            115.0,
            0.030,
            80.0,
            17_000.0,
        ),
        d(
            "Acoustic Audio AA2101",
            PcSpeaker,
            140.0,
            0.040,
            70.0,
            18_000.0,
        ),
        d(
            "Macbook Pro A1286 Internal",
            LaptopInternal,
            55.0,
            0.012,
            150.0,
            18_000.0,
        ),
        d(
            "Macbook Air A1466 Internal",
            LaptopInternal,
            45.0,
            0.010,
            200.0,
            17_500.0,
        ),
        d(
            "iMac MB952XX/A Internal",
            LaptopInternal,
            80.0,
            0.020,
            100.0,
            18_000.0,
        ),
        d(
            "HP 6510b GM949 Internal",
            LaptopInternal,
            42.0,
            0.010,
            250.0,
            16_500.0,
        ),
        d(
            "Toshiba Satellite C55-B5101 Internal",
            LaptopInternal,
            40.0,
            0.010,
            250.0,
            16_500.0,
        ),
        d(
            "Dell Inspiron I5558-2571BLK Internal",
            LaptopInternal,
            44.0,
            0.011,
            220.0,
            17_000.0,
        ),
        d(
            "iPhone 6 Plus A1524 Internal",
            PhoneInternal,
            48.0,
            0.007,
            300.0,
            18_000.0,
        ),
        d(
            "iPhone 5S A1533 Internal",
            PhoneInternal,
            40.0,
            0.006,
            350.0,
            18_000.0,
        ),
        d(
            "iPhone 4S A1387 Internal",
            PhoneInternal,
            35.0,
            0.006,
            400.0,
            17_000.0,
        ),
        d(
            "LG Nexus 5 LG-D820 Internal",
            PhoneInternal,
            38.0,
            0.006,
            350.0,
            18_000.0,
        ),
        d(
            "LG Nexus 4 LG-E960 Internal",
            PhoneInternal,
            36.0,
            0.006,
            350.0,
            17_500.0,
        ),
        d(
            "Samsung Galaxy S Headset EHS44",
            Earphone,
            14.0,
            0.004,
            100.0,
            19_000.0,
        ),
        d(
            "Apple EarPods MD827LL/A",
            Earphone,
            16.0,
            0.005,
            80.0,
            19_500.0,
        ),
    ]
}

/// Unconventional loudspeakers discussed in §VII.
pub fn unconventional_catalog() -> Vec<PlaybackDevice> {
    use DeviceClass::*;
    vec![
        PlaybackDevice {
            name: "Generic electrostatic panel (ESL)",
            class: Electrostatic,
            magnet_ut_at_3cm: 0.0,
            aperture_radius_m: 0.15,
            low_hz: 200.0,
            high_hz: 20_000.0,
        },
        PlaybackDevice {
            name: "Generic piezoelectric tweeter",
            class: Piezoelectric,
            magnet_ut_at_3cm: 0.0,
            aperture_radius_m: 0.008,
            low_hz: 1500.0,
            high_hz: 20_000.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_25_devices() {
        assert_eq!(table_iv_catalog().len(), 25);
    }

    #[test]
    fn conventional_magnets_in_paper_band() {
        // Fig. 10 / §VI: conventional loudspeaker near fields are
        // 30–210 µT; earphone drivers are small and fall below.
        for dev in table_iv_catalog() {
            if dev.class == DeviceClass::Earphone {
                assert!(dev.magnet_ut_at_3cm < 30.0, "{}", dev.name);
            } else {
                assert!(
                    (30.0..=210.0).contains(&dev.magnet_ut_at_3cm),
                    "{}: {} µT",
                    dev.name,
                    dev.magnet_ut_at_3cm
                );
            }
            assert!(dev.has_magnet());
        }
    }

    #[test]
    fn class_diversity_present() {
        use std::collections::HashSet;
        let classes: HashSet<_> = table_iv_catalog().into_iter().map(|d| d.class).collect();
        assert!(classes.contains(&DeviceClass::PcSpeaker));
        assert!(classes.contains(&DeviceClass::LaptopInternal));
        assert!(classes.contains(&DeviceClass::PhoneInternal));
        assert!(classes.contains(&DeviceClass::Earphone));
        assert!(classes.contains(&DeviceClass::Bluetooth));
    }

    #[test]
    fn earphones_have_small_apertures() {
        for dev in table_iv_catalog() {
            if dev.class == DeviceClass::Earphone {
                assert!(dev.aperture_radius_m <= 0.005, "{}", dev.name);
            }
        }
    }

    #[test]
    fn unconventional_devices_lack_magnets_but_interfere() {
        for dev in unconventional_catalog() {
            assert!(!dev.has_magnet());
            assert!(dev.residual_interference_ut() > 0.0);
        }
        // Conventional devices report no "residual" channel (the magnet is
        // the signature).
        assert_eq!(table_iv_catalog()[0].residual_interference_ut(), 0.0);
    }

    #[test]
    fn names_are_unique() {
        use std::collections::HashSet;
        let names: HashSet<_> = table_iv_catalog().iter().map(|d| d.name).collect();
        assert_eq!(names.len(), 25);
    }
}

//! Parametric speaker profiles.
//!
//! A speaker is the parameter set of the source–filter model: fundamental
//! frequency, a vocal-tract length factor scaling all formants, small
//! per-formant idiosyncrasies, and glottal character (spectral tilt,
//! jitter, shimmer). Distinct parameter sets produce distinct MFCC
//! distributions, which is what the ASV stack discriminates on.

use magshield_simkit::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Number of formants modeled.
pub const NUM_FORMANTS: usize = 4;

/// A synthetic speaker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeakerProfile {
    /// Stable identifier.
    pub id: u32,
    /// Mean fundamental frequency (Hz). ~85–180 male, ~165–255 female.
    pub f0_hz: f64,
    /// Vocal-tract length factor: multiplies all formant targets
    /// (shorter tract → factor > 1 → higher formants).
    pub vtl_factor: f64,
    /// Per-formant multiplicative idiosyncrasy (≈ 1.0 ± 5 %).
    pub formant_offsets: [f64; NUM_FORMANTS],
    /// Glottal spectral tilt (dB/octave beyond the source's natural −12).
    pub tilt_db_per_oct: f64,
    /// Cycle-to-cycle pitch perturbation (fraction of f0).
    pub jitter: f64,
    /// Cycle-to-cycle amplitude perturbation (fraction).
    pub shimmer: f64,
    /// Speaking-rate factor (1.0 = nominal segment durations).
    pub rate: f64,
}

impl SpeakerProfile {
    /// Draws a random speaker with id `id`.
    pub fn sample(id: u32, rng: &SimRng) -> Self {
        let mut r = rng.fork_indexed("speaker-profile", u64::from(id));
        let female = r.chance(0.5);
        let f0 = if female {
            r.uniform(165.0, 245.0)
        } else {
            r.uniform(90.0, 160.0)
        };
        let vtl = if female {
            r.uniform(1.06, 1.28)
        } else {
            r.uniform(0.82, 1.06)
        };
        let mut offsets = [1.0; NUM_FORMANTS];
        for o in &mut offsets {
            *o = r.uniform(0.90, 1.10);
        }
        Self {
            id,
            f0_hz: f0,
            vtl_factor: vtl,
            formant_offsets: offsets,
            tilt_db_per_oct: r.uniform(-4.0, 4.0),
            jitter: r.uniform(0.003, 0.012),
            shimmer: r.uniform(0.01, 0.05),
            rate: r.uniform(0.9, 1.1),
        }
    }

    /// Formant frequency `i` (0-based) for a neutral vowel target `base_hz`.
    pub fn formant_hz(&self, i: usize, base_hz: f64) -> f64 {
        self.vtl_factor * self.formant_offsets[i.min(NUM_FORMANTS - 1)] * base_hz
    }

    /// A crude perceptual distance between two speakers (used to pick
    /// plausible imitation targets and to assert synthetic diversity).
    pub fn distance(&self, other: &SpeakerProfile) -> f64 {
        let df0 = ((self.f0_hz / other.f0_hz).ln()).powi(2);
        let dvtl = ((self.vtl_factor / other.vtl_factor).ln()).powi(2) * 25.0;
        let dform: f64 = self
            .formant_offsets
            .iter()
            .zip(&other.formant_offsets)
            .map(|(a, b)| ((a / b).ln()).powi(2) * 10.0)
            .sum();
        (df0 + dvtl + dform).sqrt()
    }

    /// The profile an ideal voice-conversion system would produce from
    /// `self` targeting `victim`: spectral parameters (tract and formants)
    /// fully converted, residual source character (jitter/shimmer/rate)
    /// retained from the attacker.
    pub fn morphed_toward(&self, victim: &SpeakerProfile) -> SpeakerProfile {
        SpeakerProfile {
            id: victim.id,
            f0_hz: victim.f0_hz,
            vtl_factor: victim.vtl_factor,
            formant_offsets: victim.formant_offsets,
            tilt_db_per_oct: victim.tilt_db_per_oct,
            jitter: self.jitter * 1.5,
            shimmer: self.shimmer * 1.5,
            rate: self.rate,
        }
    }

    /// The profile of a *human* imitation of `victim`.
    ///
    /// Imitators control prosody (pitch, rate) far better than spectral
    /// envelope: vocal-tract length is anatomy and formant detail is
    /// essentially out of voluntary reach. Mariéthoz & Bengio (the paper's
    /// \[26\]) found even professional imitators cannot repeatedly fool a
    /// GMM-based verifier, and \[5\]/\[9\] note imitators "are less
    /// practiced and exhibit larger acoustic parameter variations" — hence
    /// the strong pitch blend, weak tract/formant blends and inflated
    /// jitter/shimmer here.
    pub fn mimicking(&self, victim: &SpeakerProfile, rng: &SimRng) -> SpeakerProfile {
        let mut r = rng.fork_indexed("mimic", u64::from(self.id) << 16 | u64::from(victim.id));
        let blend = |own: f64, target: f64, w: f64| own * (1.0 - w) + target * w;
        let mut offsets = self.formant_offsets;
        offsets[0] =
            blend(self.formant_offsets[0], victim.formant_offsets[0], 0.3) * r.uniform(0.97, 1.03);
        offsets[1] =
            blend(self.formant_offsets[1], victim.formant_offsets[1], 0.2) * r.uniform(0.97, 1.03);
        SpeakerProfile {
            id: self.id,
            f0_hz: blend(self.f0_hz, victim.f0_hz, 0.7) * r.uniform(0.95, 1.05),
            vtl_factor: blend(self.vtl_factor, victim.vtl_factor, 0.15),
            formant_offsets: offsets,
            tilt_db_per_oct: blend(self.tilt_db_per_oct, victim.tilt_db_per_oct, 0.3),
            jitter: self.jitter * 2.5,
            shimmer: self.shimmer * 2.5,
            rate: self.rate * r.uniform(0.9, 1.1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_speakers_are_diverse() {
        let rng = SimRng::from_seed(1);
        let speakers: Vec<SpeakerProfile> =
            (0..20).map(|i| SpeakerProfile::sample(i, &rng)).collect();
        let mut min_d = f64::INFINITY;
        for i in 0..speakers.len() {
            for j in i + 1..speakers.len() {
                min_d = min_d.min(speakers[i].distance(&speakers[j]));
            }
        }
        assert!(min_d > 0.01, "speakers should differ: min distance {min_d}");
    }

    #[test]
    fn sampling_is_reproducible() {
        let a = SpeakerProfile::sample(3, &SimRng::from_seed(9));
        let b = SpeakerProfile::sample(3, &SimRng::from_seed(9));
        assert_eq!(a, b);
    }

    #[test]
    fn f0_in_human_range() {
        let rng = SimRng::from_seed(2);
        for i in 0..50 {
            let s = SpeakerProfile::sample(i, &rng);
            assert!((85.0..=260.0).contains(&s.f0_hz), "f0 {}", s.f0_hz);
        }
    }

    #[test]
    fn morph_matches_spectral_params_keeps_source_character() {
        let rng = SimRng::from_seed(3);
        let attacker = SpeakerProfile::sample(0, &rng);
        let victim = SpeakerProfile::sample(1, &rng);
        let m = attacker.morphed_toward(&victim);
        assert_eq!(m.f0_hz, victim.f0_hz);
        assert_eq!(m.vtl_factor, victim.vtl_factor);
        assert!(m.jitter > victim.jitter * 0.99 || m.jitter > attacker.jitter);
    }

    #[test]
    fn mimicry_is_closer_than_original_but_not_exact() {
        let rng = SimRng::from_seed(4);
        // Average over several attacker/victim pairs; an individual mimic
        // can get lucky on the low-dimensional distance.
        let mut closer = 0;
        let n = 20;
        for k in 0..n {
            let attacker = SpeakerProfile::sample(2 * k, &rng);
            let victim = SpeakerProfile::sample(2 * k + 1, &rng);
            let mimic = attacker.mimicking(&victim, &rng);
            assert!(mimic.distance(&victim) > 1e-4, "mimicry must be imperfect");
            if mimic.distance(&victim) < attacker.distance(&victim) {
                closer += 1;
            }
        }
        assert!(
            closer >= n * 3 / 4,
            "mimicry should usually help: {closer}/{n}"
        );
    }

    #[test]
    fn mimicry_inflates_variability() {
        let rng = SimRng::from_seed(5);
        let attacker = SpeakerProfile::sample(0, &rng);
        let victim = SpeakerProfile::sample(1, &rng);
        let mimic = attacker.mimicking(&victim, &rng);
        assert!(mimic.jitter > attacker.jitter * 2.0);
        assert!(mimic.shimmer > attacker.shimmer * 2.0);
    }

    #[test]
    fn formant_scaling() {
        let rng = SimRng::from_seed(6);
        let s = SpeakerProfile::sample(0, &rng);
        let f1 = s.formant_hz(0, 700.0);
        assert!((f1 / 700.0 - s.vtl_factor * s.formant_offsets[0]).abs() < 1e-12);
    }
}

//! Source–filter formant synthesis of digit passphrases.
//!
//! A classic cascade formant synthesizer: a glottal pulse train (with
//! jitter/shimmer and spectral tilt) plus aspiration noise excites a
//! cascade of two-pole formant resonators whose targets follow the vowel
//! sequence of the spoken digits. The output is not natural-sounding
//! speech — it is a *speaker-discriminative* signal with the same
//! spectral-envelope structure real ASV front ends consume, which is the
//! property Table I's experiments need.

use crate::profile::SpeakerProfile;
use magshield_simkit::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Audio sample rate used throughout the voice stack (Hz).
pub const VOICE_SAMPLE_RATE: f64 = 16_000.0;

/// Per-session (per-recording) variability: channel coloration and pitch
/// offset. Two utterances of the same speaker in the same session share
/// these; different sessions differ — the structure the ISV back end
/// compensates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionEffects {
    /// Multiplicative f0 offset for the session (voice state, effort).
    pub f0_scale: f64,
    /// Channel spectral tilt (dB/octave, microphone + room coloration).
    pub channel_tilt_db_per_oct: f64,
    /// Channel resonance center (Hz) and gain (dB) — one coloration peak.
    pub channel_peak_hz: f64,
    /// Gain of the coloration peak (dB).
    pub channel_peak_db: f64,
    /// Additive recording noise floor (linear RMS).
    pub noise_floor: f64,
}

impl SessionEffects {
    /// Draws session effects; `strength` scales how much sessions differ
    /// (1.0 = normal telephone-style variability).
    pub fn sample(rng: &SimRng, strength: f64) -> Self {
        let mut r = rng.fork("session");
        Self {
            f0_scale: 1.0 + strength * r.uniform(-0.06, 0.06),
            channel_tilt_db_per_oct: strength * r.uniform(-2.0, 2.0),
            channel_peak_hz: r.uniform(500.0, 3500.0),
            channel_peak_db: strength * r.uniform(-4.0, 4.0),
            noise_floor: 0.002 + strength * r.uniform(0.0, 0.004),
        }
    }

    /// A neutral (identity) session.
    pub fn neutral() -> Self {
        Self {
            f0_scale: 1.0,
            channel_tilt_db_per_oct: 0.0,
            channel_peak_hz: 1000.0,
            channel_peak_db: 0.0,
            noise_floor: 0.001,
        }
    }
}

/// Vowel formant targets (Hz), neutral adult reference.
/// F1, F2, F3, F4.
const VOWELS: [[f64; 4]; 6] = [
    [270.0, 2290.0, 3010.0, 3600.0], // i
    [390.0, 1990.0, 2550.0, 3500.0], // e
    [730.0, 1090.0, 2440.0, 3400.0], // a
    [570.0, 840.0, 2410.0, 3300.0],  // o
    [300.0, 870.0, 2240.0, 3200.0],  // u
    [490.0, 1350.0, 1690.0, 3300.0], // ɜ (r-colored)
];

/// Formant bandwidths (Hz).
const BANDWIDTHS: [f64; 4] = [60.0, 90.0, 120.0, 160.0];

/// Digit → (leading consonant noise?, vowel sequence) mapping. Every digit
/// gets a distinct two-vowel trajectory so passphrases have phonetic
/// structure.
fn digit_vowels(d: u8) -> (bool, [usize; 2]) {
    match d % 10 {
        0 => (false, [4, 3]), // "zero"-ish u→o
        1 => (true, [5, 0]),  // w-ʌ-n
        2 => (true, [4, 4]),  // t-uu
        3 => (true, [1, 0]),  // th-r-ee
        4 => (true, [3, 5]),  // f-o-r
        5 => (true, [2, 0]),  // f-ai-v
        6 => (true, [0, 0]),  // s-i-ks
        7 => (true, [1, 2]),  // s-e-ven
        8 => (false, [1, 0]), // ei-t
        9 => (true, [2, 0]),  // n-ai-n
        _ => unreachable!(),
    }
}

/// Formant peak gains in dB (F1 strongest).
const FORMANT_PEAK_DB: [f64; 4] = [22.0, 17.0, 12.0, 9.0];

/// Log-magnitude vocal-tract + source envelope (dB) at frequency `f` for a
/// speaker-scaled vowel target set.
fn envelope_db(f: f64, formants: &[f64; 4], bandwidths: &[f64; 4], tilt_db_per_oct: f64) -> f64 {
    // Source tilt relative to 200 Hz.
    let tilt = tilt_db_per_oct * (f.max(50.0) / 200.0).log2();
    // Lorentzian formant peaks.
    let peaks: f64 = formants
        .iter()
        .zip(bandwidths)
        .zip(&FORMANT_PEAK_DB)
        .map(|((&fc, &bw), &g)| {
            let half = bw / 2.0;
            g * half * half / ((f - fc).powi(2) + half * half)
        })
        .sum();
    tilt + peaks
}

/// The formant synthesizer.
#[derive(Debug, Clone)]
pub struct FormantSynthesizer {
    /// Output sample rate (Hz).
    pub sample_rate: f64,
}

impl Default for FormantSynthesizer {
    fn default() -> Self {
        Self {
            sample_rate: VOICE_SAMPLE_RATE,
        }
    }
}

impl FormantSynthesizer {
    /// Creates a synthesizer at `sample_rate`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is below 8 kHz (formant targets need headroom).
    pub fn new(sample_rate: f64) -> Self {
        assert!(
            sample_rate >= 8000.0,
            "sample rate too low for formant synthesis"
        );
        Self { sample_rate }
    }

    /// Renders `speaker` saying the digit string `digits` under `session`
    /// effects. Returns mono samples in [−1, 1].
    ///
    /// # Panics
    ///
    /// Panics if `digits` contains a non-digit character.
    pub fn render_digits(
        &self,
        speaker: &SpeakerProfile,
        digits: &str,
        session: SessionEffects,
        rng: &SimRng,
    ) -> Vec<f64> {
        let fs = self.sample_rate;
        let mut r = rng.fork("synth");
        let mut out: Vec<f64> = Vec::new();

        let tilt_total = -10.0 + speaker.tilt_db_per_oct;
        let f0_session = speaker.f0_hz * session.f0_scale;
        // Slow per-take pitch wander (jitter) and loudness wander (shimmer)
        // realized as random walks updated per segment.
        let mut f0_wander = 1.0;
        let mut amp_wander = 1.0;
        let mut digit_index = 0.0;
        let total_digits = digits.chars().count().max(1) as f64;

        for ch in digits.chars() {
            let d = ch
                .to_digit(10)
                .unwrap_or_else(|| panic!("passphrase must be digits, got {ch:?}"))
                as u8;
            let (consonant, vowels) = digit_vowels(d);
            let seg_s = 0.11 / speaker.rate;
            let gap_s = 0.03;

            if consonant {
                // Unvoiced burst: noise shaped around a speaker-scaled
                // frication center (~4 kHz / vtl).
                let n = (0.04 * fs) as usize;
                let center = (4000.0 * speaker.vtl_factor).min(fs * 0.4);
                let mut bp = magshield_dsp::filter::Biquad::bandpass(fs, center, 1.2);
                for i in 0..n {
                    let env = (i as f64 / n as f64 * std::f64::consts::PI).sin();
                    out.push(0.25 * env * bp.process(r.gauss(0.0, 1.0)));
                }
            }

            for &v in vowels.iter() {
                let n = (seg_s * fs) as usize;
                // Speaker-scaled formant targets for this vowel.
                let mut formants = [0.0; 4];
                let mut bands = [0.0; 4];
                for fi in 0..4 {
                    formants[fi] = speaker.formant_hz(fi, VOWELS[v][fi]).min(fs * 0.45);
                    bands[fi] = BANDWIDTHS[fi] * speaker.vtl_factor;
                }
                // Per-segment prosody: declination + jitter/shimmer walks.
                f0_wander *= 1.0 + r.gauss(0.0, speaker.jitter * 3.0);
                f0_wander = f0_wander.clamp(0.9, 1.1);
                amp_wander *= 1.0 + r.gauss(0.0, speaker.shimmer * 2.0);
                amp_wander = amp_wander.clamp(0.85, 1.2);
                let declination = 1.0 - 0.06 * digit_index / total_digits;
                let f0 = f0_session * declination * f0_wander;

                // Additive harmonic synthesis: amplitudes sampled from the
                // speaker's spectral envelope at the harmonic frequencies.
                let nharm = ((fs * 0.45 / f0) as usize).max(1);
                let mut amps = Vec::with_capacity(nharm);
                let mut phases = Vec::with_capacity(nharm);
                for h in 1..=nharm {
                    let fh = h as f64 * f0;
                    let db = envelope_db(fh, &formants, &bands, tilt_total);
                    amps.push(10f64.powf(db / 20.0));
                    phases.push(r.uniform(0.0, std::f64::consts::TAU));
                }
                let norm: f64 = amps.iter().map(|a| a * a).sum::<f64>().sqrt().max(1e-9);
                let vibrato_hz = 5.0;
                let vibrato_depth = 0.01 + speaker.jitter;
                for i in 0..n {
                    let t = i as f64 / fs;
                    let frac = i as f64 / n as f64;
                    let vib = 1.0 + vibrato_depth * (std::f64::consts::TAU * vibrato_hz * t).sin();
                    let mut x = 0.0;
                    for (h, (a, ph)) in amps.iter().zip(&phases).enumerate() {
                        let fh = (h as f64 + 1.0) * f0 * vib;
                        if fh > fs * 0.48 {
                            break;
                        }
                        x += a * (std::f64::consts::TAU * fh * t + ph).sin();
                    }
                    // Aspiration noise, a few % of the voiced energy.
                    x = x / norm + 0.02 * r.gauss(0.0, 1.0);
                    let env = (frac * std::f64::consts::PI).sin().powf(0.4);
                    out.push(x * env * amp_wander);
                }
            }
            // Inter-digit gap.
            out.extend(std::iter::repeat_n(0.0, (gap_s * fs) as usize));
            digit_index += 1.0;
        }

        self.apply_channel(&mut out, session, &mut r);
        normalize(&mut out, 0.6);
        out
    }

    /// Applies session channel coloration and noise in place.
    fn apply_channel(&self, samples: &mut [f64], session: SessionEffects, r: &mut SimRng) {
        let fs = self.sample_rate;
        // Tilt filter.
        let k = tilt_coefficient(session.channel_tilt_db_per_oct, fs);
        if session.channel_tilt_db_per_oct.abs() > 1e-9 {
            if session.channel_tilt_db_per_oct < 0.0 {
                let mut s = 0.0;
                for x in samples.iter_mut() {
                    s += k * (*x - s);
                    *x = s;
                }
            } else {
                // Positive tilt: first-difference blended.
                let alpha = (session.channel_tilt_db_per_oct / 12.0).min(1.0);
                let mut prev = 0.0;
                for x in samples.iter_mut() {
                    let hp = *x - prev;
                    prev = *x;
                    *x = (1.0 - alpha) * *x + alpha * hp;
                }
            }
        }
        // One coloration peak.
        if session.channel_peak_db.abs() > 1e-9 {
            let mut f = magshield_dsp::filter::Biquad::peaking(
                fs,
                session.channel_peak_hz.min(fs * 0.45),
                1.2,
                session.channel_peak_db,
            );
            for x in samples.iter_mut() {
                *x = f.process(*x);
            }
        }
        // Noise floor.
        for x in samples.iter_mut() {
            *x += r.gauss(0.0, session.noise_floor);
        }
    }
}

fn tilt_coefficient(db_per_oct: f64, fs: f64) -> f64 {
    // Map tilt to a one-pole cutoff: stronger negative tilt → lower cutoff.
    let cutoff = (4000.0 * 2f64.powf(db_per_oct / 6.0)).clamp(200.0, fs * 0.45);
    1.0 - (-std::f64::consts::TAU * cutoff / fs).exp()
}

fn normalize(samples: &mut [f64], peak: f64) {
    let max = samples.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
    if max > 1e-12 {
        let g = peak / max;
        for x in samples.iter_mut() {
            *x *= g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magshield_dsp::mel::MfccExtractor;

    fn speaker(id: u32) -> SpeakerProfile {
        SpeakerProfile::sample(id, &SimRng::from_seed(100))
    }

    fn render(id: u32, digits: &str, seed: u64) -> Vec<f64> {
        FormantSynthesizer::default().render_digits(
            &speaker(id),
            digits,
            SessionEffects::neutral(),
            &SimRng::from_seed(seed),
        )
    }

    #[test]
    fn output_is_bounded_and_nonsilent() {
        let audio = render(0, "123456", 1);
        assert!(audio.len() > 16_000, "six digits should exceed 1 s");
        assert!(audio.iter().all(|x| x.abs() <= 1.0));
        let rms = (audio.iter().map(|x| x * x).sum::<f64>() / audio.len() as f64).sqrt();
        assert!(rms > 0.02, "rms {rms}");
    }

    #[test]
    fn same_speaker_same_digits_similar_mfcc() {
        let ex = MfccExtractor::new(VOICE_SAMPLE_RATE);
        let mean_mfcc = |audio: &[f64]| -> Vec<f64> {
            let frames = ex.extract(audio);
            let mut m = [0.0; 13];
            for f in frames.iter_rows() {
                for (mi, v) in m.iter_mut().zip(f) {
                    *mi += v;
                }
            }
            m.iter().map(|v| v / frames.rows() as f64).collect()
        };
        let a = mean_mfcc(&render(0, "123456", 1));
        let b = mean_mfcc(&render(0, "123456", 2)); // different take
        let c = mean_mfcc(&render(7, "123456", 3)); // different speaker
        let dist = |x: &[f64], y: &[f64]| -> f64 {
            // Skip C0 (energy) for the comparison.
            x[1..]
                .iter()
                .zip(&y[1..])
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let within = dist(&a, &b);
        let between = dist(&a, &c);
        assert!(
            between > within * 1.5,
            "between-speaker {between} should exceed within-speaker {within}"
        );
    }

    #[test]
    fn pitch_is_speaker_dependent() {
        use magshield_dsp::fft::magnitude_spectrum;
        // Speaker f0 should show as the spacing of harmonic peaks; compare
        // low-frequency energy centroid of a low- vs high-pitch speaker.
        let rng = SimRng::from_seed(100);
        let mut low = SpeakerProfile::sample(0, &rng);
        low.f0_hz = 95.0;
        let mut high = low.clone();
        high.f0_hz = 230.0;
        let synth = FormantSynthesizer::default();
        let centroid = |p: &SpeakerProfile| -> f64 {
            let audio =
                synth.render_digits(p, "22", SessionEffects::neutral(), &SimRng::from_seed(4));
            let (freqs, mags) = magnitude_spectrum(&audio[2000..6096], VOICE_SAMPLE_RATE);
            let band: Vec<(f64, f64)> = freqs
                .iter()
                .zip(&mags)
                .filter(|(f, _)| **f > 50.0 && **f < 400.0)
                .map(|(f, m)| (*f, *m))
                .collect();
            let e: f64 = band.iter().map(|(_, m)| m * m).sum();
            band.iter().map(|(f, m)| f * m * m).sum::<f64>() / e
        };
        assert!(
            centroid(&high) > centroid(&low) + 30.0,
            "high-pitch speaker should raise the low-band centroid"
        );
    }

    #[test]
    fn session_effects_change_the_signal() {
        let sp = speaker(0);
        let synth = FormantSynthesizer::default();
        let a = synth.render_digits(&sp, "99", SessionEffects::neutral(), &SimRng::from_seed(5));
        let strong = SessionEffects {
            channel_tilt_db_per_oct: -4.0,
            channel_peak_db: 6.0,
            ..SessionEffects::neutral()
        };
        let b = synth.render_digits(&sp, "99", strong, &SimRng::from_seed(5));
        let diff: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(diff > 0.1, "channel must alter the waveform: {diff}");
    }

    #[test]
    fn rendering_is_reproducible() {
        assert_eq!(render(3, "0718", 9), render(3, "0718", 9));
    }

    #[test]
    #[should_panic(expected = "must be digits")]
    fn rejects_non_digit_passphrase() {
        render(0, "12a4", 1);
    }

    #[test]
    fn all_digits_render() {
        let audio = render(1, "0123456789", 2);
        assert!(audio.len() > 2 * 16_000);
    }
}

#![warn(missing_docs)]

//! # magshield-voice
//!
//! Synthetic speech, speakers, impersonation attacks and playback devices —
//! the stand-ins for the paper's human subjects and loudspeaker testbed
//! (DESIGN.md documents each substitution):
//!
//! * [`profile`] — parametric speaker profiles (pitch, vocal-tract scale,
//!   per-formant offsets, glottal character);
//! * [`synth`] — a source–filter formant synthesizer rendering digit
//!   passphrases; each synthetic speaker has a distinct, stable spectral
//!   envelope, which is the property the GMM–UBM verifier measures;
//! * [`corpus`] — corpus builders: an enrollment/UBM corpus and a
//!   cross-channel test corpus standing in for Voxforge and CMU Arctic
//!   (Table I, Test 2);
//! * [`attacks`] — the paper's four §III-A attack types: voice replay,
//!   voice morphing, voice synthesis (machine-based, Types 1–3) and human
//!   mimicry, plus synthesis trained on SceneGuard-protected recordings;
//! * [`sceneguard`] — SceneGuard-style training-time voice protection:
//!   scene-consistent audible background noise and the degraded clone
//!   profiles an attacker recovers through it;
//! * [`devices`] — the playback device catalog of Appendix A (Table IV):
//!   25 conventional loudspeakers plus earphones, an electrostatic panel
//!   and a piezo tweeter, each with magnet strength, aperture and
//!   bandwidth.

pub mod attacks;
pub mod corpus;
pub mod devices;
pub mod profile;
pub mod sceneguard;
pub mod synth;

pub use attacks::AttackKind;
pub use devices::{DeviceClass, PlaybackDevice};
pub use profile::SpeakerProfile;
pub use synth::FormantSynthesizer;

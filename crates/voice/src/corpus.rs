//! Synthetic speech corpora.
//!
//! Table I's experiments need (1) a five-speaker passphrase dataset with
//! mimicry attempts (Test 1) and (2) two corpora with *different channel
//! statistics* for the cross-corpus test (Test 2: UBM trained on Voxforge,
//! tested on CMU Arctic). The builders here produce both; the "arctic"
//! variant applies a distinct fixed studio coloration so train/test
//! channels mismatch exactly as in the paper.

use crate::profile::SpeakerProfile;
use crate::synth::{FormantSynthesizer, SessionEffects, VOICE_SAMPLE_RATE};
use magshield_simkit::rng::SimRng;
use serde::{Deserialize, Serialize};

/// One recorded utterance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Utterance {
    /// Speaker who produced it.
    pub speaker_id: u32,
    /// The digit passphrase spoken.
    pub digits: String,
    /// Session index (recordings in one session share channel effects).
    pub session: u32,
    /// Mono audio at [`VOICE_SAMPLE_RATE`].
    pub audio: Vec<f64>,
}

/// A collection of utterances with the speaker roster.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    /// The speakers present.
    pub speakers: Vec<SpeakerProfile>,
    /// All utterances.
    pub utterances: Vec<Utterance>,
}

impl Corpus {
    /// Utterances of one speaker.
    pub fn of_speaker(&self, id: u32) -> Vec<&Utterance> {
        self.utterances
            .iter()
            .filter(|u| u.speaker_id == id)
            .collect()
    }

    /// The profile of a speaker id.
    pub fn speaker(&self, id: u32) -> Option<&SpeakerProfile> {
        self.speakers.iter().find(|s| s.id == id)
    }
}

/// Configuration for corpus generation.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of speakers.
    pub num_speakers: usize,
    /// Sessions per speaker.
    pub sessions_per_speaker: usize,
    /// Utterances per session.
    pub utterances_per_session: usize,
    /// Digits per passphrase.
    pub passphrase_len: usize,
    /// Session variability strength (see [`SessionEffects::sample`]).
    pub session_strength: f64,
    /// Extra fixed channel applied to every utterance (tilt dB/oct) —
    /// models a corpus-wide recording setup (e.g. Arctic's studio).
    pub corpus_tilt_db_per_oct: f64,
    /// First speaker id (so two corpora can have disjoint rosters).
    pub first_speaker_id: u32,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            num_speakers: 10,
            sessions_per_speaker: 2,
            utterances_per_session: 3,
            passphrase_len: 6,
            session_strength: 1.0,
            corpus_tilt_db_per_oct: 0.0,
            first_speaker_id: 0,
        }
    }
}

/// Generates a random digit passphrase.
pub fn random_passphrase(len: usize, rng: &mut SimRng) -> String {
    (0..len)
        .map(|_| char::from(b'0' + rng.index(10) as u8))
        .collect()
}

/// Builds a corpus per `config`; fully deterministic in `rng`.
pub fn build_corpus(config: &CorpusConfig, rng: &SimRng) -> Corpus {
    let synth = FormantSynthesizer::new(VOICE_SAMPLE_RATE);
    let speakers: Vec<SpeakerProfile> = (0..config.num_speakers)
        .map(|i| SpeakerProfile::sample(config.first_speaker_id + i as u32, rng))
        .collect();
    let mut utterances = Vec::new();
    for sp in &speakers {
        // Each speaker keeps one passphrase (text-dependent ASV).
        let mut prng = rng.fork_indexed("passphrase", u64::from(sp.id));
        let digits = random_passphrase(config.passphrase_len, &mut prng);
        for session in 0..config.sessions_per_speaker {
            let srng = rng.fork_indexed("session-fx", (u64::from(sp.id) << 8) | session as u64);
            let mut fx = SessionEffects::sample(&srng, config.session_strength);
            fx.channel_tilt_db_per_oct += config.corpus_tilt_db_per_oct;
            for utt in 0..config.utterances_per_session {
                let urng = rng.fork_indexed(
                    "utterance",
                    (u64::from(sp.id) << 16) | ((session as u64) << 8) | utt as u64,
                );
                let audio = synth.render_digits(sp, &digits, fx, &urng);
                utterances.push(Utterance {
                    speaker_id: sp.id,
                    digits: digits.clone(),
                    session: session as u32,
                    audio,
                });
            }
        }
    }
    Corpus {
        speakers,
        utterances,
    }
}

/// The paper's Test 1 dataset: five speakers, each pronouncing a unique
/// six-digit passphrase five times (§IV-C).
///
/// The five are drawn from a candidate pool with greedy max-separation,
/// mirroring the fact that the paper's volunteers are five *distinct
/// humans* — unconstrained random profile sampling occasionally produces
/// near-twin voices no short-utterance verifier could tell apart.
pub fn test1_corpus(rng: &SimRng) -> Corpus {
    // Greedily select 5 well-separated speakers from 15 candidates.
    let pool: Vec<SpeakerProfile> = (0..15)
        .map(|i| SpeakerProfile::sample(i, &rng.fork("t1-pool")))
        .collect();
    let mut chosen: Vec<SpeakerProfile> = vec![pool[0].clone()];
    while chosen.len() < 5 {
        let best = pool
            .iter()
            .filter(|c| chosen.iter().all(|s| s.id != c.id))
            .max_by(|a, b| {
                let da = chosen
                    .iter()
                    .map(|s| s.distance(a))
                    .fold(f64::INFINITY, f64::min);
                let db = chosen
                    .iter()
                    .map(|s| s.distance(b))
                    .fold(f64::INFINITY, f64::min);
                da.partial_cmp(&db).unwrap()
            })
            .expect("pool has candidates")
            .clone();
        chosen.push(best);
    }

    let synth = FormantSynthesizer::new(VOICE_SAMPLE_RATE);
    let mut utterances = Vec::new();
    for sp in &chosen {
        let mut prng = rng.fork_indexed("t1-passphrase", u64::from(sp.id));
        let digits = random_passphrase(6, &mut prng);
        let srng = rng.fork_indexed("t1-session-fx", u64::from(sp.id));
        let fx = SessionEffects::sample(&srng, 0.5);
        for utt in 0..5u32 {
            let urng = rng.fork_indexed("t1-utt", (u64::from(sp.id) << 8) | u64::from(utt));
            utterances.push(Utterance {
                speaker_id: sp.id,
                digits: digits.clone(),
                session: 0,
                audio: synth.render_digits(sp, &digits, fx, &urng),
            });
        }
    }
    Corpus {
        speakers: chosen,
        utterances,
    }
}

/// A Voxforge stand-in: many speakers, varied home-recording channels.
pub fn voxforge_like(num_speakers: usize, rng: &SimRng) -> Corpus {
    build_corpus(
        &CorpusConfig {
            num_speakers,
            sessions_per_speaker: 2,
            utterances_per_session: 3,
            passphrase_len: 6,
            session_strength: 1.2,
            corpus_tilt_db_per_oct: 0.0,
            first_speaker_id: 100,
        },
        rng,
    )
}

/// A CMU-Arctic stand-in: a small roster, clean studio channel with a
/// fixed coloration differing from the Voxforge-like corpus, and the same
/// utterance text for everyone (as in Arctic).
pub fn arctic_like(num_speakers: usize, rng: &SimRng) -> Corpus {
    let synth = FormantSynthesizer::new(VOICE_SAMPLE_RATE);
    let speakers: Vec<SpeakerProfile> = (0..num_speakers)
        .map(|i| SpeakerProfile::sample(500 + i as u32, rng))
        .collect();
    let digits = "314159"; // shared utterance, mimicking Arctic's fixed text
    let mut utterances = Vec::new();
    for sp in &speakers {
        for session in 0..2u32 {
            let srng = rng.fork_indexed("arctic-fx", (u64::from(sp.id) << 8) | u64::from(session));
            let mut fx = SessionEffects::sample(&srng, 0.3);
            fx.channel_tilt_db_per_oct += 1.5; // bright studio chain
            fx.noise_floor = 0.0008;
            for utt in 0..4u32 {
                let urng = rng.fork_indexed(
                    "arctic-utt",
                    (u64::from(sp.id) << 16) | (u64::from(session) << 8) | u64::from(utt),
                );
                utterances.push(Utterance {
                    speaker_id: sp.id,
                    digits: digits.to_string(),
                    session,
                    audio: synth.render_digits(sp, digits, fx, &urng),
                });
            }
        }
    }
    Corpus {
        speakers,
        utterances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test1_shape_matches_paper() {
        let c = test1_corpus(&SimRng::from_seed(1));
        assert_eq!(c.speakers.len(), 5);
        assert_eq!(c.utterances.len(), 25);
        for sp in &c.speakers {
            let utts = c.of_speaker(sp.id);
            assert_eq!(utts.len(), 5);
            // One unique passphrase per speaker.
            assert!(utts.iter().all(|u| u.digits == utts[0].digits));
            assert_eq!(utts[0].digits.len(), 6);
        }
    }

    #[test]
    fn passphrases_differ_across_speakers() {
        let c = test1_corpus(&SimRng::from_seed(2));
        let phrases: Vec<_> = c
            .speakers
            .iter()
            .map(|s| c.of_speaker(s.id)[0].digits.clone())
            .collect();
        let unique: std::collections::HashSet<_> = phrases.iter().collect();
        assert!(
            unique.len() >= 4,
            "passphrases should be (almost surely) unique"
        );
    }

    #[test]
    fn corpora_have_disjoint_rosters() {
        let rng = SimRng::from_seed(3);
        let vox = voxforge_like(4, &rng);
        let arc = arctic_like(3, &rng);
        for v in &vox.speakers {
            assert!(arc.speaker(v.id).is_none());
        }
    }

    #[test]
    fn arctic_shares_text() {
        let arc = arctic_like(3, &SimRng::from_seed(4));
        assert!(arc.utterances.iter().all(|u| u.digits == "314159"));
        assert_eq!(arc.utterances.len(), 3 * 2 * 4);
    }

    #[test]
    fn build_is_deterministic() {
        let a = test1_corpus(&SimRng::from_seed(5));
        let b = test1_corpus(&SimRng::from_seed(5));
        assert_eq!(a.utterances.len(), b.utterances.len());
        assert_eq!(a.utterances[7].audio, b.utterances[7].audio);
    }

    #[test]
    fn sessions_share_channel_but_not_takes() {
        let c = build_corpus(
            &CorpusConfig {
                num_speakers: 1,
                sessions_per_speaker: 1,
                utterances_per_session: 2,
                ..Default::default()
            },
            &SimRng::from_seed(6),
        );
        assert_ne!(
            c.utterances[0].audio, c.utterances[1].audio,
            "takes must differ even within a session"
        );
    }
}

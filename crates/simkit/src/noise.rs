//! Noise processes for sensor and interference modeling.
//!
//! * [`WhiteNoise`] — i.i.d. Gaussian samples (magnetometer/mic noise floor);
//! * [`PinkNoise`] — 1/f noise via the Voss–McCartney algorithm (ambient
//!   acoustic noise, broadband EMF);
//! * [`RandomWalk`] — integrated white noise (sensor bias drift);
//! * [`MainsHum`] — a deterministic mains-harmonic series (computer/car EMF
//!   interference carriers, Fig. 14).

use crate::rng::SimRng;
use crate::series::TimeSeries;

/// A source of noise samples at a fixed rate.
pub trait NoiseSource {
    /// Draws the next sample.
    fn next_sample(&mut self) -> f64;

    /// Generates `n` samples into a [`TimeSeries`] at `sample_rate`.
    fn series(&mut self, sample_rate: f64, n: usize) -> TimeSeries {
        let samples = (0..n).map(|_| self.next_sample()).collect();
        TimeSeries::from_samples(sample_rate, samples)
    }
}

/// I.i.d. Gaussian noise with a given standard deviation.
#[derive(Debug, Clone)]
pub struct WhiteNoise {
    rng: SimRng,
    std_dev: f64,
}

impl WhiteNoise {
    /// Creates a white-noise source.
    pub fn new(rng: SimRng, std_dev: f64) -> Self {
        Self { rng, std_dev }
    }
}

impl NoiseSource for WhiteNoise {
    fn next_sample(&mut self) -> f64 {
        self.rng.gauss(0.0, self.std_dev)
    }
}

/// Pink (1/f) noise via the Voss–McCartney multi-rate algorithm.
#[derive(Debug, Clone)]
pub struct PinkNoise {
    rng: SimRng,
    rows: Vec<f64>,
    counter: u64,
    scale: f64,
}

impl PinkNoise {
    /// Creates a pink-noise source with RMS roughly `std_dev`.
    pub fn new(mut rng: SimRng, std_dev: f64) -> Self {
        const ROWS: usize = 16;
        let rows = (0..ROWS).map(|_| rng.gauss(0.0, 1.0)).collect();
        Self {
            rng,
            rows,
            counter: 0,
            scale: std_dev / (ROWS as f64).sqrt(),
        }
    }
}

impl NoiseSource for PinkNoise {
    fn next_sample(&mut self) -> f64 {
        self.counter = self.counter.wrapping_add(1);
        // Row k updates every 2^k samples: trailing_zeros picks the row.
        let k = (self.counter.trailing_zeros() as usize).min(self.rows.len() - 1);
        self.rows[k] = self.rng.gauss(0.0, 1.0);
        self.rows.iter().sum::<f64>() * self.scale
    }
}

/// Integrated white noise: models slowly drifting sensor bias.
#[derive(Debug, Clone)]
pub struct RandomWalk {
    rng: SimRng,
    step_std: f64,
    state: f64,
}

impl RandomWalk {
    /// Creates a random walk starting at `start` with per-sample step
    /// standard deviation `step_std`.
    pub fn new(rng: SimRng, start: f64, step_std: f64) -> Self {
        Self {
            rng,
            step_std,
            state: start,
        }
    }
}

impl NoiseSource for RandomWalk {
    fn next_sample(&mut self) -> f64 {
        self.state += self.rng.gauss(0.0, self.step_std);
        self.state
    }
}

/// Mains-frequency hum with harmonics — the carrier structure of the EMF
/// interference near a computer or inside a car (Fig. 14).
#[derive(Debug, Clone)]
pub struct MainsHum {
    /// Fundamental (50 or 60 Hz).
    pub fundamental_hz: f64,
    /// Amplitude of each harmonic (index 0 = fundamental).
    pub harmonic_amps: Vec<f64>,
    phase: f64,
    sample_rate: f64,
}

impl MainsHum {
    /// Creates a hum source rendered at `sample_rate`.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is not positive.
    pub fn new(fundamental_hz: f64, harmonic_amps: Vec<f64>, sample_rate: f64) -> Self {
        assert!(sample_rate > 0.0, "sample rate must be positive");
        Self {
            fundamental_hz,
            harmonic_amps,
            phase: 0.0,
            sample_rate,
        }
    }
}

impl NoiseSource for MainsHum {
    fn next_sample(&mut self) -> f64 {
        let t = self.phase;
        self.phase += 1.0 / self.sample_rate;
        self.harmonic_amps
            .iter()
            .enumerate()
            .map(|(k, a)| {
                a * (std::f64::consts::TAU * self.fundamental_hz * (k as f64 + 1.0) * t).sin()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::from_seed(1234).fork("noise-tests")
    }

    #[test]
    fn white_noise_statistics() {
        let mut n = WhiteNoise::new(rng(), 2.0);
        let ts = n.series(100.0, 20_000);
        assert!(ts.mean().abs() < 0.1);
        assert!((ts.variance().sqrt() - 2.0).abs() < 0.1);
    }

    #[test]
    fn pink_noise_low_frequency_dominance() {
        let mut n = PinkNoise::new(rng(), 1.0);
        let ts = n.series(1000.0, 8192);
        // Pink noise should have more energy in a low band than an equally
        // wide high band. Use crude two-bin comparison via block averages.
        let block = 64;
        let lows: f64 = ts
            .samples()
            .chunks(block)
            .map(|c| c.iter().sum::<f64>() / block as f64)
            .map(|m| m * m)
            .sum();
        let highs: f64 = ts
            .samples()
            .windows(2)
            .map(|w| (w[1] - w[0]) / 2.0)
            .map(|d| d * d)
            .sum::<f64>()
            / block as f64;
        assert!(
            lows > highs * 0.5,
            "pink noise should carry low-frequency energy (low {lows}, high {highs})"
        );
    }

    #[test]
    fn random_walk_starts_at_start() {
        let mut w = RandomWalk::new(rng(), 10.0, 0.0);
        assert_eq!(w.next_sample(), 10.0);
        assert_eq!(w.next_sample(), 10.0);
    }

    #[test]
    fn random_walk_variance_grows() {
        let trials = 200;
        let mut early = Vec::new();
        let mut late = Vec::new();
        for i in 0..trials {
            let mut w = RandomWalk::new(SimRng::from_seed(5).fork_indexed("walk", i), 0.0, 1.0);
            let ts = w.series(1.0, 100);
            early.push(ts.samples()[9]);
            late.push(ts.samples()[99]);
        }
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64
        };
        assert!(var(&late) > var(&early) * 3.0);
    }

    #[test]
    fn mains_hum_is_periodic() {
        let mut hum = MainsHum::new(60.0, vec![1.0, 0.3], 6000.0);
        let ts = hum.series(6000.0, 200);
        // One period is 100 samples at 6 kHz.
        for i in 0..100 {
            assert!((ts.samples()[i] - ts.samples()[i + 100]).abs() < 1e-9);
        }
    }

    #[test]
    fn mains_hum_amplitude() {
        let mut hum = MainsHum::new(50.0, vec![2.0], 5000.0);
        let ts = hum.series(5000.0, 5000);
        assert!((ts.peak() - 2.0).abs() < 0.01);
    }
}

//! Interpolation and shaping helpers.

/// Linear interpolation: `a` at `t = 0`, `b` at `t = 1`.
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Clamped smoothstep easing over `[0, 1]` — used for natural hand-motion
/// velocity profiles (a person accelerates then decelerates the phone).
pub fn smoothstep(t: f64) -> f64 {
    let t = t.clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

/// Piecewise-linear lookup over sorted `(x, y)` breakpoints.
///
/// Out-of-range `x` clamps to the end values.
///
/// # Panics
///
/// Panics if `points` is empty or the x values are not strictly increasing.
pub fn piecewise_linear(points: &[(f64, f64)], x: f64) -> f64 {
    assert!(!points.is_empty(), "breakpoint table must be non-empty");
    for w in points.windows(2) {
        assert!(
            w[1].0 > w[0].0,
            "breakpoint x values must be strictly increasing"
        );
    }
    if x <= points[0].0 {
        return points[0].1;
    }
    if x >= points[points.len() - 1].0 {
        return points[points.len() - 1].1;
    }
    let idx = points.partition_point(|p| p.0 <= x);
    let (x0, y0) = points[idx - 1];
    let (x1, y1) = points[idx];
    lerp(y0, y1, (x - x0) / (x1 - x0))
}

/// Wraps an angle to `(-π, π]`.
pub fn wrap_angle(a: f64) -> f64 {
    let mut a = a % std::f64::consts::TAU;
    if a > std::f64::consts::PI {
        a -= std::f64::consts::TAU;
    } else if a <= -std::f64::consts::PI {
        a += std::f64::consts::TAU;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(2.0, 6.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 6.0, 1.0), 6.0);
        assert_eq!(lerp(2.0, 6.0, 0.5), 4.0);
    }

    #[test]
    fn smoothstep_shape() {
        assert_eq!(smoothstep(-1.0), 0.0);
        assert_eq!(smoothstep(2.0), 1.0);
        assert_eq!(smoothstep(0.5), 0.5);
        // Derivative is zero at the ends: nearby values stay near the ends.
        assert!(smoothstep(0.01) < 0.001);
        assert!(smoothstep(0.99) > 0.999);
    }

    #[test]
    fn piecewise_linear_lookup() {
        let pts = [(0.0, 0.0), (1.0, 10.0), (3.0, 10.0)];
        assert_eq!(piecewise_linear(&pts, -5.0), 0.0);
        assert_eq!(piecewise_linear(&pts, 0.5), 5.0);
        assert_eq!(piecewise_linear(&pts, 2.0), 10.0);
        assert_eq!(piecewise_linear(&pts, 99.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn piecewise_rejects_unsorted() {
        piecewise_linear(&[(1.0, 0.0), (0.0, 1.0)], 0.5);
    }

    #[test]
    fn wrap_angle_range() {
        for k in -10..10 {
            let a = 0.3 + k as f64 * std::f64::consts::TAU;
            assert!((wrap_angle(a) - 0.3).abs() < 1e-9);
        }
        assert!((wrap_angle(PI + 0.1) + PI - 0.1).abs() < 1e-9);
    }
}

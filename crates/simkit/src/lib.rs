#![warn(missing_docs)]

//! # magshield-simkit
//!
//! Deterministic simulation kernel underlying every magshield substrate.
//!
//! The ICDCS 2017 paper this workspace reproduces ("You Can Hear But You
//! Cannot Steal") evaluates its defense on physical hardware: smartphones,
//! loudspeakers, human speakers. This workspace replaces the hardware with
//! calibrated simulation, and *everything* in that simulation must be
//! reproducible from a single seed so experiments are regenerable.
//!
//! This crate provides:
//!
//! * [`rng`] — a seeded RNG with deterministic, label-based fan-out so
//!   independent subsystems draw independent but reproducible streams;
//! * [`vec3`] — minimal 3-D vector math shared by magnetics, acoustics and
//!   the trajectory stack;
//! * [`units`] — newtypes for the physical quantities the paper reasons in
//!   (µT, dB SPL, cm, Hz, s) with checked conversions;
//! * [`series`] — uniformly sampled time series with statistics and
//!   resampling;
//! * [`noise`] — white / pink / random-walk / mains-hum noise processes used
//!   by the sensor and interference models;
//! * [`clock`] — sample clocks for converting between durations and sample
//!   counts.
//!
//! # Example
//!
//! ```
//! use magshield_simkit::rng::SimRng;
//! use magshield_simkit::series::TimeSeries;
//!
//! let mut rng = SimRng::from_seed(42).fork("microphone");
//! let samples: Vec<f64> = (0..100).map(|_| rng.gauss(0.0, 1.0)).collect();
//! let ts = TimeSeries::from_samples(8000.0, samples);
//! assert_eq!(ts.len(), 100);
//! assert!(ts.rms() > 0.0);
//! ```

pub mod clock;
pub mod interp;
pub mod noise;
pub mod rng;
pub mod series;
pub mod units;
pub mod vec3;

pub use clock::SampleClock;
pub use rng::SimRng;
pub use series::TimeSeries;
pub use vec3::Vec3;

//! Minimal 3-D vector math.
//!
//! Shared by the magnetics models (dipole fields are vector fields), the
//! acoustics models (source/receiver geometry) and the trajectory stack.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-D vector of `f64` components.
///
/// # Example
///
/// ```
/// use magshield_simkit::vec3::Vec3;
/// let v = Vec3::new(3.0, 4.0, 0.0);
/// assert_eq!(v.norm(), 5.0);
/// assert_eq!(v.normalized().norm(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit X.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit Y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit Z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared norm (avoids the sqrt when comparing distances).
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Unit vector in this direction.
    ///
    /// # Panics
    ///
    /// Panics if the vector is (numerically) zero.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        assert!(n > f64::EPSILON, "cannot normalize a zero vector");
        self / n
    }

    /// Distance between two points.
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Componentwise linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Rotation about the Z axis by `angle_rad` (right-handed).
    pub fn rotated_z(self, angle_rad: f64) -> Vec3 {
        let (s, c) = angle_rad.sin_cos();
        Vec3::new(c * self.x - s * self.y, s * self.x + c * self.y, self.z)
    }

    /// True when every component is finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::X), -Vec3::Z);
    }

    #[test]
    fn norm_and_distance() {
        let v = Vec3::new(2.0, 3.0, 6.0);
        assert_eq!(v.norm(), 7.0);
        assert_eq!(v.norm_squared(), 49.0);
        assert_eq!(Vec3::ZERO.distance(v), 7.0);
    }

    #[test]
    fn rotation_z_quarter_turn() {
        let v = Vec3::X.rotated_z(std::f64::consts::FRAC_PI_2);
        assert!((v - Vec3::Y).norm() < 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 8.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalize_zero_panics() {
        Vec3::ZERO.normalized();
    }

    #[test]
    fn array_round_trip() {
        let v = Vec3::new(1.5, -2.5, 3.5);
        let a: [f64; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }
}

//! Newtypes for the physical quantities the paper reasons in.
//!
//! The evaluation of the paper is phrased in micro-tesla (magnetometer
//! readings, Fig. 10), centimeters (sound-source distance, Fig. 12/14),
//! decibels (sound field volumes) and hertz (pilot tone). Newtypes keep
//! those from being confused (C-NEWTYPE) and centralize the conversions.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// Raw numeric value.
            pub fn value(self) -> f64 {
                self.0
            }
            /// Absolute value.
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3} {}", self.0, $unit)
            }
        }

        impl std::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }
        impl std::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }
        impl std::ops::Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }
    };
}

quantity!(
    /// Magnetic flux density in micro-tesla (µT).
    ///
    /// The paper's magnetometer (AK8975) reads in µT; loudspeaker near
    /// fields are 30–210 µT, Earth's field is ~25–65 µT.
    MicroTesla,
    "µT"
);

quantity!(
    /// Distance in centimeters — the unit of Fig. 12/14's x-axis.
    Centimeters,
    "cm"
);

quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);

quantity!(
    /// Time in seconds.
    Seconds,
    "s"
);

quantity!(
    /// Sound pressure level in decibels (dB SPL, re 20 µPa).
    DbSpl,
    "dB SPL"
);

impl Centimeters {
    /// Converts to meters.
    pub fn to_meters(self) -> f64 {
        self.0 / 100.0
    }
    /// Creates from meters.
    pub fn from_meters(m: f64) -> Self {
        Self(m * 100.0)
    }
}

impl MicroTesla {
    /// Converts to tesla.
    pub fn to_tesla(self) -> f64 {
        self.0 * 1e-6
    }
    /// Creates from tesla.
    pub fn from_tesla(t: f64) -> Self {
        Self(t * 1e6)
    }
}

/// Reference RMS pressure for 0 dB SPL, in pascal.
pub const P_REF_PA: f64 = 20e-6;

/// Converts an RMS pressure (Pa) to dB SPL.
///
/// Pressures at or below zero map to `-inf`-avoiding floor of −120 dB, the
/// silence floor used throughout the workspace.
pub fn pa_to_db_spl(p_rms: f64) -> DbSpl {
    if p_rms <= 0.0 {
        return DbSpl(-120.0);
    }
    DbSpl(20.0 * (p_rms / P_REF_PA).log10())
}

/// Converts dB SPL to an RMS pressure in pascal.
pub fn db_spl_to_pa(db: DbSpl) -> f64 {
    P_REF_PA * 10f64.powf(db.0 / 20.0)
}

/// Converts a linear amplitude ratio to decibels (20·log10).
pub fn ratio_to_db(ratio: f64) -> f64 {
    if ratio <= 0.0 {
        return -120.0;
    }
    20.0 * ratio.log10()
}

/// Converts decibels to a linear amplitude ratio.
pub fn db_to_ratio(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Converts a power ratio to decibels (10·log10).
pub fn power_ratio_to_db(ratio: f64) -> f64 {
    if ratio <= 0.0 {
        return -120.0;
    }
    10.0 * ratio.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centimeters_meters_round_trip() {
        let d = Centimeters(6.0);
        assert!((Centimeters::from_meters(d.to_meters()).value() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn microtesla_tesla_round_trip() {
        let b = MicroTesla(210.0);
        assert!((MicroTesla::from_tesla(b.to_tesla()).value() - 210.0).abs() < 1e-9);
    }

    #[test]
    fn spl_reference_point() {
        // 94 dB SPL is 1 Pa by definition (within rounding).
        let db = pa_to_db_spl(1.0);
        assert!((db.value() - 93.979).abs() < 0.01, "{db}");
        assert!((db_spl_to_pa(DbSpl(94.0)) - 1.0).abs() < 0.01);
    }

    #[test]
    fn spl_floor_for_silence() {
        assert_eq!(pa_to_db_spl(0.0).value(), -120.0);
        assert_eq!(pa_to_db_spl(-1.0).value(), -120.0);
    }

    #[test]
    fn db_ratio_round_trip() {
        for &r in &[0.01, 0.5, 1.0, 3.0, 100.0] {
            let back = db_to_ratio(ratio_to_db(r));
            assert!((back - r).abs() / r < 1e-10);
        }
    }

    #[test]
    fn db_doubling_is_6db() {
        assert!((ratio_to_db(2.0) - 6.0206).abs() < 1e-3);
        assert!((power_ratio_to_db(2.0) - 3.0103).abs() < 1e-3);
    }

    #[test]
    fn quantity_arithmetic_and_display() {
        let a = MicroTesla(30.0) + MicroTesla(12.0);
        assert_eq!(a.value(), 42.0);
        assert_eq!((a - MicroTesla(2.0)).value(), 40.0);
        assert_eq!((a * 2.0).value(), 84.0);
        assert_eq!(format!("{}", Centimeters(6.0)), "6.000 cm");
    }
}

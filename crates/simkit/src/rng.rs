//! Seeded, forkable random number generation.
//!
//! Every stochastic component in the simulation (sensor noise, speaker
//! profile sampling, interference processes, ...) draws from a [`SimRng`].
//! A `SimRng` can be *forked* by label: the child stream is a pure function
//! of the parent seed and the label, so adding a new consumer never perturbs
//! the draws seen by existing consumers. This is the standard trick for
//! keeping large simulations reproducible under refactoring.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic random source with label-based fan-out.
///
/// # Example
///
/// ```
/// use magshield_simkit::rng::SimRng;
/// use rand::RngCore;
/// let mut a = SimRng::from_seed(7).fork("mag");
/// let mut b = SimRng::from_seed(7).fork("mag");
/// assert_eq!(a.next_u64(), b.next_u64());
/// let mut c = SimRng::from_seed(7).fork("mic");
/// assert_ne!(SimRng::from_seed(7).fork("mag").next_u64(), c.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: StdRng,
}

impl SimRng {
    /// Creates a root RNG from a master seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream from this RNG's seed and `label`.
    ///
    /// Forking is a pure function of `(seed, label)`; it does not consume
    /// state from `self`, so fork order is irrelevant.
    pub fn fork(&self, label: &str) -> Self {
        let child = splitmix(self.seed ^ fnv1a(label.as_bytes()));
        Self::from_seed(child)
    }

    /// Derives an independent child stream indexed by an integer, e.g. one
    /// stream per trial or per device instance.
    pub fn fork_indexed(&self, label: &str, index: u64) -> Self {
        let child = splitmix(self.seed ^ fnv1a(label.as_bytes()) ^ splitmix(index));
        Self::from_seed(child)
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Standard normal draw scaled to `mean` and `std_dev` (Box–Muller).
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn gauss(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            std_dev >= 0.0 && std_dev.is_finite(),
            "std_dev must be finite and non-negative, got {std_dev}"
        );
        // Box–Muller: u1 in (0,1] so the log is finite.
        let u1: f64 = 1.0 - self.inner.gen::<f64>();
        let u2: f64 = self.inner.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform range must be non-empty: [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw an index from an empty range");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0,1], got {p}"
        );
        self.inner.gen::<f64>() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// FNV-1a hash for label mixing.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer used to decorrelate derived seeds.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forks_are_reproducible() {
        let mut a = SimRng::from_seed(1).fork("x");
        let mut b = SimRng::from_seed(1).fork("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_differ_by_label_and_index() {
        let root = SimRng::from_seed(9);
        let va = root.fork("a").next_u64();
        let vb = root.fork("b").next_u64();
        assert_ne!(va, vb);
        let v0 = root.fork_indexed("trial", 0).next_u64();
        let v1 = root.fork_indexed("trial", 1).next_u64();
        assert_ne!(v0, v1);
    }

    #[test]
    fn fork_does_not_consume_parent_state() {
        let mut a = SimRng::from_seed(5);
        let _ = a.fork("child");
        let after_fork = a.next_u64();
        let mut b = SimRng::from_seed(5);
        assert_eq!(after_fork, b.next_u64());
    }

    #[test]
    fn gauss_statistics() {
        let mut r = SimRng::from_seed(3).fork("gauss");
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| r.gauss(2.0, 3.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::from_seed(4);
        for _ in 0..1000 {
            let x = r.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(8);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::from_seed(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "std_dev")]
    fn gauss_rejects_negative_std() {
        SimRng::from_seed(1).gauss(0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn uniform_rejects_empty_range() {
        SimRng::from_seed(1).uniform(1.0, 1.0);
    }
}

//! Uniformly sampled time series.
//!
//! Audio, magnetometer traces and IMU channels are all uniform-rate signals;
//! [`TimeSeries`] is the common container the substrates exchange.

use serde::{Deserialize, Serialize};

/// A uniformly sampled scalar signal.
///
/// # Example
///
/// ```
/// use magshield_simkit::series::TimeSeries;
/// let ts = TimeSeries::from_samples(100.0, vec![0.0, 1.0, 0.0, -1.0]);
/// assert_eq!(ts.duration(), 0.04);
/// assert!((ts.rms() - (0.5f64).sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    sample_rate: f64,
    samples: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series from a sample rate (Hz) and raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is not strictly positive and finite.
    pub fn from_samples(sample_rate: f64, samples: Vec<f64>) -> Self {
        assert!(
            sample_rate.is_finite() && sample_rate > 0.0,
            "sample rate must be positive, got {sample_rate}"
        );
        Self {
            sample_rate,
            samples,
        }
    }

    /// Creates an all-zero series lasting `duration_s` seconds.
    pub fn zeros(sample_rate: f64, duration_s: f64) -> Self {
        let n = (duration_s * sample_rate).round().max(0.0) as usize;
        Self::from_samples(sample_rate, vec![0.0; n])
    }

    /// Creates a series by evaluating `f(t)` at each sample instant.
    pub fn from_fn(sample_rate: f64, duration_s: f64, mut f: impl FnMut(f64) -> f64) -> Self {
        let n = (duration_s * sample_rate).round().max(0.0) as usize;
        let samples = (0..n).map(|i| f(i as f64 / sample_rate)).collect();
        Self::from_samples(sample_rate, samples)
    }

    /// Sample rate in Hz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Duration in seconds.
    pub fn duration(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate
    }

    /// Immutable view of the samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mutable view of the samples.
    pub fn samples_mut(&mut self) -> &mut [f64] {
        &mut self.samples
    }

    /// Consumes the series and returns the sample buffer.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }

    /// The time (s) of sample `i`.
    pub fn time_at(&self, i: usize) -> f64 {
        i as f64 / self.sample_rate
    }

    /// Linear-interpolated value at time `t` (s); clamps outside the range.
    #[inline]
    pub fn value_at(&self, t: f64) -> f64 {
        Self::lerp_sample(&self.samples, self.sample_rate, t)
    }

    /// Linear-interpolated read of a raw sample buffer at time `t` (s),
    /// clamping outside the range — the kernel behind
    /// [`TimeSeries::value_at`] and [`TimeSeries::resampled`], exposed so
    /// zero-allocation callers can resample a borrowed scratch buffer
    /// without constructing a `TimeSeries`.
    #[inline]
    pub fn lerp_sample(samples: &[f64], sample_rate: f64, t: f64) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let x = (t * sample_rate).clamp(0.0, (samples.len() - 1) as f64);
        let i = x.floor() as usize;
        let frac = x - i as f64;
        if i + 1 < samples.len() {
            samples[i] * (1.0 - frac) + samples[i + 1] * frac
        } else {
            samples[i]
        }
    }

    /// Arithmetic mean (0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Population variance (0 for an empty series).
    pub fn variance(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        self.samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / self.samples.len() as f64
    }

    /// Root-mean-square value.
    pub fn rms(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        (self.samples.iter().map(|x| x * x).sum::<f64>() / self.samples.len() as f64).sqrt()
    }

    /// Maximum sample value (−inf for an empty series is avoided: returns 0).
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max_by_empty(self)
    }

    /// Minimum sample value.
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min_by_empty(self)
    }

    /// Peak absolute amplitude.
    pub fn peak(&self) -> f64 {
        self.samples.iter().fold(0.0f64, |acc, x| acc.max(x.abs()))
    }

    /// Maximum absolute sample-to-sample difference times the sample rate —
    /// the peak *changing rate* in units/second. The loudspeaker detector
    /// thresholds this (`βt`).
    pub fn max_rate_of_change(&self) -> f64 {
        self.samples
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0f64, f64::max)
            * self.sample_rate
    }

    /// Extracts `[start_s, end_s)` as a new series (clamped to bounds).
    pub fn slice_time(&self, start_s: f64, end_s: f64) -> TimeSeries {
        let a = ((start_s * self.sample_rate).round().max(0.0) as usize).min(self.samples.len());
        let b = ((end_s * self.sample_rate).round().max(0.0) as usize).clamp(a, self.samples.len());
        TimeSeries::from_samples(self.sample_rate, self.samples[a..b].to_vec())
    }

    /// Resamples to `new_rate` Hz with linear interpolation.
    ///
    /// # Panics
    ///
    /// Panics if `new_rate` is not strictly positive.
    pub fn resampled(&self, new_rate: f64) -> TimeSeries {
        assert!(new_rate > 0.0, "new_rate must be positive");
        if self.samples.is_empty() {
            return TimeSeries::from_samples(new_rate, Vec::new());
        }
        let n = (self.duration() * new_rate).round() as usize;
        let samples = (0..n).map(|i| self.value_at(i as f64 / new_rate)).collect();
        TimeSeries::from_samples(new_rate, samples)
    }

    /// Adds another series sample-by-sample (rates must match; the shorter
    /// length wins).
    ///
    /// # Panics
    ///
    /// Panics if the sample rates differ.
    pub fn mix_in(&mut self, other: &TimeSeries, gain: f64) {
        assert!(
            (self.sample_rate - other.sample_rate).abs() < 1e-9,
            "sample-rate mismatch: {} vs {}",
            self.sample_rate,
            other.sample_rate
        );
        let n = self.samples.len().min(other.samples.len());
        for i in 0..n {
            self.samples[i] += gain * other.samples[i];
        }
    }

    /// Applies a gain to every sample.
    pub fn scaled(mut self, gain: f64) -> TimeSeries {
        for s in &mut self.samples {
            *s *= gain;
        }
        self
    }

    /// Appends another series of the same rate.
    ///
    /// # Panics
    ///
    /// Panics if the sample rates differ.
    pub fn append(&mut self, other: &TimeSeries) {
        assert!(
            (self.sample_rate - other.sample_rate).abs() < 1e-9,
            "sample-rate mismatch"
        );
        self.samples.extend_from_slice(&other.samples);
    }
}

/// Helper trait so `max()`/`min()` return 0 on empty series instead of ±inf.
trait EmptyGuard {
    fn max_by_empty(self, ts: &TimeSeries) -> f64;
    fn min_by_empty(self, ts: &TimeSeries) -> f64;
}

impl EmptyGuard for f64 {
    fn max_by_empty(self, ts: &TimeSeries) -> f64 {
        if ts.is_empty() {
            0.0
        } else {
            self
        }
    }
    fn min_by_empty(self, ts: &TimeSeries) -> f64 {
        if ts.is_empty() {
            0.0
        } else {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_stats() {
        let ts = TimeSeries::from_samples(10.0, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.duration(), 0.4);
        assert_eq!(ts.mean(), 2.5);
        assert_eq!(ts.max(), 4.0);
        assert_eq!(ts.min(), 1.0);
        assert!((ts.variance() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn empty_series_stats_are_zero() {
        let ts = TimeSeries::from_samples(10.0, vec![]);
        assert_eq!(ts.mean(), 0.0);
        assert_eq!(ts.rms(), 0.0);
        assert_eq!(ts.max(), 0.0);
        assert_eq!(ts.min(), 0.0);
        assert_eq!(ts.value_at(1.0), 0.0);
    }

    #[test]
    fn from_fn_sine_rms() {
        let ts = TimeSeries::from_fn(1000.0, 1.0, |t| (std::f64::consts::TAU * 10.0 * t).sin());
        assert!((ts.rms() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
    }

    #[test]
    fn value_at_interpolates() {
        let ts = TimeSeries::from_samples(1.0, vec![0.0, 10.0]);
        assert_eq!(ts.value_at(0.5), 5.0);
        assert_eq!(ts.value_at(-3.0), 0.0);
        assert_eq!(ts.value_at(99.0), 10.0);
    }

    #[test]
    fn slice_time_bounds() {
        let ts = TimeSeries::from_samples(10.0, (0..10).map(|i| i as f64).collect());
        let s = ts.slice_time(0.2, 0.5);
        assert_eq!(s.samples(), &[2.0, 3.0, 4.0]);
        let clamped = ts.slice_time(0.8, 99.0);
        assert_eq!(clamped.len(), 2);
    }

    #[test]
    fn resample_preserves_duration() {
        let ts = TimeSeries::from_fn(1000.0, 0.5, |t| t);
        let r = ts.resampled(400.0);
        assert!((r.duration() - 0.5).abs() < 0.01);
        assert!((r.value_at(0.25) - 0.25).abs() < 0.01);
    }

    #[test]
    fn mix_in_adds() {
        let mut a = TimeSeries::from_samples(10.0, vec![1.0, 1.0, 1.0]);
        let b = TimeSeries::from_samples(10.0, vec![1.0, 2.0]);
        a.mix_in(&b, 2.0);
        assert_eq!(a.samples(), &[3.0, 5.0, 1.0]);
    }

    #[test]
    fn max_rate_of_change() {
        let ts = TimeSeries::from_samples(100.0, vec![0.0, 0.5, 2.0, 2.1]);
        // Largest step is 1.5 per sample at 100 Hz → 150 /s.
        assert!((ts.max_rate_of_change() - 150.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "sample rate must be positive")]
    fn rejects_bad_rate() {
        TimeSeries::from_samples(0.0, vec![]);
    }

    #[test]
    #[should_panic(expected = "sample-rate mismatch")]
    fn mix_rejects_rate_mismatch() {
        let mut a = TimeSeries::from_samples(10.0, vec![0.0]);
        let b = TimeSeries::from_samples(20.0, vec![0.0]);
        a.mix_in(&b, 1.0);
    }
}

//! Sample clocks: convert between wall time and sample indices.

use serde::{Deserialize, Serialize};

/// A fixed-rate sample clock.
///
/// # Example
///
/// ```
/// use magshield_simkit::clock::SampleClock;
/// let clk = SampleClock::new(48_000.0);
/// assert_eq!(clk.samples_for(0.5), 24_000);
/// assert_eq!(clk.time_of(48_000), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleClock {
    rate_hz: f64,
}

impl SampleClock {
    /// Creates a clock at `rate_hz`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive and finite.
    pub fn new(rate_hz: f64) -> Self {
        assert!(
            rate_hz.is_finite() && rate_hz > 0.0,
            "clock rate must be positive, got {rate_hz}"
        );
        Self { rate_hz }
    }

    /// The clock rate in Hz.
    pub fn rate(&self) -> f64 {
        self.rate_hz
    }

    /// Number of whole samples in `duration_s` seconds (rounded).
    pub fn samples_for(&self, duration_s: f64) -> usize {
        (duration_s * self.rate_hz).round().max(0.0) as usize
    }

    /// Time (s) of sample index `i`.
    pub fn time_of(&self, i: usize) -> f64 {
        i as f64 / self.rate_hz
    }

    /// Sample period in seconds.
    pub fn dt(&self) -> f64 {
        1.0 / self.rate_hz
    }

    /// Iterator over the sample times of `n` samples.
    pub fn times(&self, n: usize) -> impl Iterator<Item = f64> + '_ {
        (0..n).map(move |i| self.time_of(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let c = SampleClock::new(100.0);
        assert_eq!(c.samples_for(1.0), 100);
        assert_eq!(c.samples_for(0.255), 26);
        assert_eq!(c.time_of(50), 0.5);
        assert_eq!(c.dt(), 0.01);
    }

    #[test]
    fn negative_duration_clamps_to_zero() {
        let c = SampleClock::new(100.0);
        assert_eq!(c.samples_for(-1.0), 0);
    }

    #[test]
    fn times_iterator() {
        let c = SampleClock::new(10.0);
        let t: Vec<f64> = c.times(3).collect();
        assert_eq!(t, vec![0.0, 0.1, 0.2]);
    }

    #[test]
    #[should_panic(expected = "clock rate must be positive")]
    fn rejects_zero_rate() {
        SampleClock::new(0.0);
    }
}

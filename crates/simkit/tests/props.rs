//! Property-based tests for the simulation kernel.

use magshield_simkit::interp::{lerp, piecewise_linear, smoothstep, wrap_angle};
use magshield_simkit::rng::SimRng;
use magshield_simkit::series::TimeSeries;
use magshield_simkit::vec3::Vec3;
use proptest::prelude::*;
use rand::RngCore;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fork determinism: same seed+label ⇒ identical stream; different
    /// labels ⇒ (almost surely) different streams.
    #[test]
    fn fork_determinism(seed in 0u64..u64::MAX, label in "[a-z]{1,12}") {
        let mut a = SimRng::from_seed(seed).fork(&label);
        let mut b = SimRng::from_seed(seed).fork(&label);
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Gauss draws are finite and shuffles permute.
    #[test]
    fn rng_outputs_sane(seed in 0u64..u64::MAX, std in 0.0f64..100.0) {
        let mut r = SimRng::from_seed(seed);
        for _ in 0..16 {
            prop_assert!(r.gauss(0.0, std).is_finite());
        }
        let mut v: Vec<u32> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
    }

    /// Vec3 triangle inequality and norm homogeneity.
    #[test]
    fn vec3_norm_properties(
        ax in -100.0f64..100.0, ay in -100.0f64..100.0, az in -100.0f64..100.0,
        bx in -100.0f64..100.0, by in -100.0f64..100.0, bz in -100.0f64..100.0,
        k in -10.0f64..10.0,
    ) {
        let a = Vec3::new(ax, ay, az);
        let b = Vec3::new(bx, by, bz);
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
        prop_assert!(((a * k).norm() - k.abs() * a.norm()).abs() < 1e-6 * (1.0 + a.norm()));
        // Rotation preserves norms.
        prop_assert!((a.rotated_z(k).norm() - a.norm()).abs() < 1e-9 * (1.0 + a.norm()));
    }

    /// wrap_angle lands in (−π, π] and preserves the angle mod 2π.
    #[test]
    fn wrap_angle_properties(a in -1000.0f64..1000.0) {
        let w = wrap_angle(a);
        prop_assert!(w > -std::f64::consts::PI - 1e-9);
        prop_assert!(w <= std::f64::consts::PI + 1e-9);
        let k = (a - w) / std::f64::consts::TAU;
        prop_assert!((k - k.round()).abs() < 1e-6);
    }

    /// lerp endpoints and monotonicity in t.
    #[test]
    fn lerp_properties(a in -100.0f64..100.0, b in -100.0f64..100.0, t in 0.0f64..1.0) {
        let v = lerp(a, b, t);
        let lo = a.min(b);
        let hi = a.max(b);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    /// smoothstep is monotone on [0, 1].
    #[test]
    fn smoothstep_monotone(t1 in 0.0f64..1.0, t2 in 0.0f64..1.0) {
        if t1 <= t2 {
            prop_assert!(smoothstep(t1) <= smoothstep(t2) + 1e-12);
        }
    }

    /// Piecewise-linear lookup stays within the y-range of its breakpoints.
    #[test]
    fn piecewise_bounded(ys in prop::collection::vec(-50.0f64..50.0, 2..8), x in -100.0f64..100.0) {
        let points: Vec<(f64, f64)> = ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect();
        let v = piecewise_linear(&points, x);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    /// slice_time never panics and yields consistent lengths.
    #[test]
    fn slice_time_total(
        samples in prop::collection::vec(-1.0f64..1.0, 1..100),
        a in -1.0f64..2.0,
        b in -1.0f64..2.0,
    ) {
        let ts = TimeSeries::from_samples(100.0, samples.clone());
        let s = ts.slice_time(a, b);
        prop_assert!(s.len() <= samples.len());
    }

    /// mix_in is additive: mixing twice with gain g equals once with 2g.
    #[test]
    fn mix_additivity(
        base in prop::collection::vec(-1.0f64..1.0, 1..32),
        add in prop::collection::vec(-1.0f64..1.0, 1..32),
        g in -2.0f64..2.0,
    ) {
        let b = TimeSeries::from_samples(10.0, base.clone());
        let a = TimeSeries::from_samples(10.0, add.clone());
        let mut once = b.clone();
        once.mix_in(&a, 2.0 * g);
        let mut twice = b;
        twice.mix_in(&a, g);
        twice.mix_in(&a, g);
        for (x, y) in once.samples().iter().zip(twice.samples()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }
}

//! Proof that the extraction fast path is allocation-free in steady
//! state: a counting global allocator is armed around a warmed-up
//! `extract_into` call and must observe zero heap traffic.
//!
//! The counter lives in its own integration-test binary (a
//! `#[global_allocator]` is process-wide) with a single `#[test]` so no
//! concurrent harness thread can pollute the armed window.

use magshield_asv::frontend::{FeatureExtractor, FrontendScratch};
use magshield_dsp::frame::FrameMatrix;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps the system allocator and counts every heap operation performed
/// by the *armed thread*. The armed flag is thread-local (const-init, so
/// reading it never allocates and `Cell<bool>` registers no destructor)
/// rather than global: the libtest harness owns other threads that may
/// legitimately allocate while the window is armed, and they must not
/// pollute the count.
struct CountingAlloc;

std::thread_local! {
    static ARMED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

fn armed() -> bool {
    // `try_with` so a late allocation during thread teardown can't panic
    // inside the allocator.
    ARMED.try_with(std::cell::Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn speechy(fs: f64) -> Vec<f64> {
    let mut v = vec![0.0; (0.3 * fs) as usize];
    for i in 0..(fs as usize) {
        let t = i as f64 / fs;
        v.push(
            (std::f64::consts::TAU * 150.0 * t).sin()
                + 0.4 * (std::f64::consts::TAU * 450.0 * t).sin(),
        );
    }
    v.extend(vec![0.0; (0.3 * fs) as usize]);
    v
}

#[test]
fn steady_state_extraction_is_allocation_free() {
    let fx = FeatureExtractor::new(16_000.0);
    let sig = speechy(16_000.0);
    let mut scratch = FrontendScratch::new();
    let mut out = FrameMatrix::default();

    // Warm-up: every buffer grows to its high-water mark.
    fx.extract_into(&sig, &mut scratch, &mut out);
    let warm = out.clone();

    ARMED.with(|a| a.set(true));
    fx.extract_into(&sig, &mut scratch, &mut out);
    ARMED.with(|a| a.set(false));

    let allocs = ALLOCS.load(Ordering::SeqCst);
    let bytes = BYTES.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "warmed extract_into must not touch the heap: \
         {allocs} allocations / {bytes} bytes observed"
    );
    assert_eq!(out, warm, "steady-state output must be identical");

    // Same proof for the fused real-FFT front end: the packed complex
    // buffer joins the scratch high-water mark on warm-up and is reused
    // thereafter.
    let mut fx_fused = FeatureExtractor::new(16_000.0);
    fx_fused.fused_frontend = true;
    fx_fused.extract_into(&sig, &mut scratch, &mut out);
    let warm_fused = out.clone();

    ALLOCS.store(0, Ordering::SeqCst);
    BYTES.store(0, Ordering::SeqCst);
    ARMED.with(|a| a.set(true));
    fx_fused.extract_into(&sig, &mut scratch, &mut out);
    ARMED.with(|a| a.set(false));

    let allocs = ALLOCS.load(Ordering::SeqCst);
    let bytes = BYTES.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "warmed fused extract_into must not touch the heap: \
         {allocs} allocations / {bytes} bytes observed"
    );
    assert_eq!(
        out, warm_fused,
        "fused steady-state output must be identical"
    );
}

//! Universal background model training.

use crate::frontend::FeatureExtractor;
use magshield_dsp::frame::FrameMatrix;
use magshield_ml::gmm::DiagonalGmm;
use magshield_simkit::rng::SimRng;

/// UBM training configuration.
#[derive(Debug, Clone, Copy)]
pub struct UbmConfig {
    /// Mixture components (Spear defaults are 256–512; the synthetic
    /// corpora here separate well with fewer).
    pub components: usize,
    /// EM iterations.
    pub em_iters: usize,
    /// Maximum frames pooled for training (subsampled beyond this).
    pub max_frames: usize,
}

impl Default for UbmConfig {
    fn default() -> Self {
        Self {
            components: 64,
            em_iters: 12,
            max_frames: 20_000,
        }
    }
}

/// Trains a UBM on pooled feature frames from many utterances.
///
/// # Panics
///
/// Panics if fewer frames than components are available.
pub fn train_ubm(
    extractor: &FeatureExtractor,
    utterances: &[&[f64]],
    config: UbmConfig,
    rng: &SimRng,
) -> DiagonalGmm {
    let mut pool = FrameMatrix::default();
    for audio in utterances {
        pool.extend_rows(&extractor.extract(audio));
    }
    assert!(
        pool.rows() >= config.components,
        "need at least {} frames, got {}",
        config.components,
        pool.rows()
    );
    // Training is a cold path; hand EM the row layout it expects.
    let rows: Vec<Vec<f64>> = if pool.rows() > config.max_frames {
        // Deterministic stride subsampling keeps coverage across speakers.
        let stride = pool.rows() as f64 / config.max_frames as f64;
        (0..config.max_frames)
            .map(|i| pool.row((i as f64 * stride) as usize).to_vec())
            .collect()
    } else {
        pool.to_rows()
    };
    DiagonalGmm::train(
        &rows,
        config.components,
        config.em_iters,
        1e-4,
        &rng.fork("ubm"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use magshield_voice::corpus::voxforge_like;
    use magshield_voice::synth::VOICE_SAMPLE_RATE;

    #[test]
    fn ubm_trains_on_synthetic_corpus() {
        let rng = SimRng::from_seed(1);
        let corpus = voxforge_like(3, &rng);
        let fx = FeatureExtractor::new(VOICE_SAMPLE_RATE);
        let utts: Vec<&[f64]> = corpus
            .utterances
            .iter()
            .map(|u| u.audio.as_slice())
            .collect();
        let ubm = train_ubm(
            &fx,
            &utts,
            UbmConfig {
                components: 8,
                em_iters: 4,
                max_frames: 3000,
            },
            &rng,
        );
        assert_eq!(ubm.num_components(), 8);
        assert_eq!(ubm.dim(), fx.dim());
        // The UBM should assign reasonable likelihood to corpus frames.
        let frames = fx.extract(&corpus.utterances[0].audio);
        assert!(ubm.mean_log_likelihood(&frames).is_finite());
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn rejects_insufficient_data() {
        let fx = FeatureExtractor::new(16_000.0);
        let silence = vec![0.0; 800];
        train_ubm(
            &fx,
            &[silence.as_slice()],
            UbmConfig {
                components: 512,
                em_iters: 1,
                max_frames: 1000,
            },
            &SimRng::from_seed(1),
        );
    }
}

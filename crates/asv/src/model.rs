//! Speaker enrollment and GMM–UBM verification with Z-norm score
//! normalization.
//!
//! Raw log-likelihood-ratio scores carry speaker-dependent offsets (some
//! models score *everyone* higher), which makes a single global threshold
//! unreliable. Spear — the toolbox the paper uses — applies Z-norm: each
//! enrolled model is scored against an impostor cohort, and verification
//! scores are reported in standard deviations above that cohort. We do the
//! same, drawing the cohort from the UBM training corpus.

use crate::frontend::FeatureExtractor;
use magshield_ml::gmm::DiagonalGmm;

/// MAP relevance factor (Reynolds' classic value).
pub const RELEVANCE_FACTOR: f64 = 16.0;

/// Maximum cohort utterances used for Z-norm statistics.
const MAX_COHORT: usize = 24;

/// An enrolled speaker: a MAP-adapted GMM plus Z-norm statistics.
#[derive(Debug, Clone)]
pub struct SpeakerModel {
    /// Claimed identity this model verifies.
    pub speaker_id: u32,
    /// The adapted mixture.
    pub gmm: DiagonalGmm,
    /// Z-norm statistics `(mean, std)` of the model's impostor-cohort raw
    /// scores; `None` when no cohort was available (raw scores returned).
    pub znorm: Option<(f64, f64)>,
    /// Expected genuine score (normalized units), estimated at enrollment
    /// by leave-one-out scoring of the enrollment utterances. Per-user
    /// threshold calibration — standard practice for text-dependent voice
    /// authentication — anchors the operating point to this value.
    pub genuine_ref: Option<f64>,
}

impl SpeakerModel {
    /// Applies Z-norm (identity when no statistics are present).
    pub fn normalize(&self, raw: f64) -> f64 {
        match self.znorm {
            Some((mu, sigma)) => (raw - mu) / sigma,
            None => raw,
        }
    }

    /// The calibrated per-user acceptance threshold: a fraction of the
    /// expected genuine score, floored at `floor` (normalized units).
    pub fn calibrated_threshold(&self, floor: f64) -> f64 {
        match self.genuine_ref {
            Some(g) => (0.7 * g).max(floor),
            None => floor,
        }
    }
}

/// The GMM–UBM verification backend (the "UBM" system of Table I).
#[derive(Debug, Clone)]
pub struct UbmBackend {
    /// Shared front end.
    pub extractor: FeatureExtractor,
    /// The background model.
    pub ubm: DiagonalGmm,
    /// Pre-extracted cohort utterance frames for Z-norm.
    cohort: Vec<Vec<Vec<f64>>>,
}

impl UbmBackend {
    /// Creates a backend from a trained UBM (no Z-norm cohort).
    pub fn new(extractor: FeatureExtractor, ubm: DiagonalGmm) -> Self {
        Self {
            extractor,
            ubm,
            cohort: Vec::new(),
        }
    }

    /// Attaches a Z-norm cohort (typically utterances from the UBM
    /// training corpus); at most `MAX_COHORT` are kept.
    pub fn with_cohort(mut self, utterances: &[&[f64]]) -> Self {
        self.cohort = utterances
            .iter()
            .take(MAX_COHORT)
            .map(|audio| self.extractor.extract(audio))
            .filter(|f| !f.is_empty())
            .collect();
        self
    }

    /// Number of cohort utterances held.
    pub fn cohort_size(&self) -> usize {
        self.cohort.len()
    }

    /// The cohort frame sets (ISV reuses them, compensated).
    pub fn cohort_frames(&self) -> &[Vec<Vec<f64>>] {
        &self.cohort
    }

    /// Enrolls a speaker from one or more utterances.
    ///
    /// # Panics
    ///
    /// Panics if no feature frames can be extracted.
    pub fn enroll(&self, speaker_id: u32, utterances: &[&[f64]]) -> SpeakerModel {
        let per_utt: Vec<Vec<Vec<f64>>> = utterances
            .iter()
            .map(|audio| self.extractor.extract(audio))
            .collect();
        let frames: Vec<Vec<f64>> = per_utt.iter().flatten().cloned().collect();
        assert!(!frames.is_empty(), "enrollment produced no frames");
        let gmm = self.ubm.map_adapt_means(&frames, RELEVANCE_FACTOR);
        let znorm = znorm_stats(&gmm, &self.ubm, self.cohort.iter());
        let genuine_ref = genuine_reference(&self.ubm, &per_utt, self.cohort.iter().collect());
        SpeakerModel {
            speaker_id,
            gmm,
            znorm,
            genuine_ref,
        }
    }

    /// Verification score of `audio` against `model`: Z-normalized average
    /// per-frame log-likelihood ratio (higher = more likely genuine).
    pub fn score(&self, model: &SpeakerModel, audio: &[f64]) -> f64 {
        let frames = self.extractor.extract(audio);
        self.score_frames(model, &frames)
    }

    /// Scores pre-extracted frames (used by the ISV backend after
    /// compensation).
    pub fn score_frames(&self, model: &SpeakerModel, frames: &[Vec<f64>]) -> f64 {
        model.normalize(model.gmm.llr_score(&self.ubm, frames))
    }
}

/// Leave-one-out genuine-score estimate: each enrollment utterance is
/// scored (normalized) against a model adapted from the *other*
/// utterances. Needs at least two utterances; returns the mean LOO score.
pub fn genuine_reference(
    ubm: &DiagonalGmm,
    per_utterance_frames: &[Vec<Vec<f64>>],
    cohort: Vec<&Vec<Vec<f64>>>,
) -> Option<f64> {
    let usable: Vec<&Vec<Vec<f64>>> = per_utterance_frames
        .iter()
        .filter(|f| !f.is_empty())
        .collect();
    if usable.len() < 2 {
        return None;
    }
    let mut scores = Vec::new();
    for i in 0..usable.len() {
        let rest: Vec<Vec<f64>> = usable
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .flat_map(|(_, f)| (*f).clone())
            .collect();
        let sub = ubm.map_adapt_means(&rest, RELEVANCE_FACTOR);
        let raw = sub.llr_score(ubm, usable[i]);
        let z = match znorm_stats(&sub, ubm, cohort.iter().copied()) {
            Some((mu, sigma)) => (raw - mu) / sigma,
            None => raw,
        };
        if z.is_finite() {
            scores.push(z);
        }
    }
    if scores.is_empty() {
        return None;
    }
    Some(scores.iter().sum::<f64>() / scores.len() as f64)
}

/// Computes Z-norm statistics of a model against cohort frame sets.
pub fn znorm_stats<'a>(
    model: &DiagonalGmm,
    ubm: &DiagonalGmm,
    cohort: impl Iterator<Item = &'a Vec<Vec<f64>>>,
) -> Option<(f64, f64)> {
    let scores: Vec<f64> = cohort
        .map(|frames| model.llr_score(ubm, frames))
        .filter(|s| s.is_finite())
        .collect();
    if scores.len() < 3 {
        return None;
    }
    let mu = scores.iter().sum::<f64>() / scores.len() as f64;
    let var = scores.iter().map(|s| (s - mu).powi(2)).sum::<f64>() / scores.len() as f64;
    Some((mu, var.sqrt().max(1e-3)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ubm::{train_ubm, UbmConfig};
    use magshield_simkit::rng::SimRng;
    use magshield_voice::corpus::{build_corpus, CorpusConfig};
    use magshield_voice::synth::VOICE_SAMPLE_RATE;

    fn small_setup() -> (UbmBackend, magshield_voice::corpus::Corpus) {
        let rng = SimRng::from_seed(21);
        let corpus = build_corpus(
            &CorpusConfig {
                num_speakers: 4,
                sessions_per_speaker: 2,
                utterances_per_session: 2,
                passphrase_len: 4,
                session_strength: 0.6,
                corpus_tilt_db_per_oct: 0.0,
                first_speaker_id: 0,
            },
            &rng,
        );
        let fx = FeatureExtractor::new(VOICE_SAMPLE_RATE);
        let utts: Vec<&[f64]> = corpus
            .utterances
            .iter()
            .map(|u| u.audio.as_slice())
            .collect();
        let ubm = train_ubm(
            &fx,
            &utts,
            UbmConfig {
                components: 16,
                em_iters: 6,
                max_frames: 6000,
            },
            &rng,
        );
        let backend = UbmBackend::new(fx, ubm).with_cohort(&utts);
        (backend, corpus)
    }

    #[test]
    fn genuine_scores_beat_impostor_scores() {
        let (backend, corpus) = small_setup();
        let mut genuine = Vec::new();
        let mut impostor = Vec::new();
        for sp in &corpus.speakers {
            let utts = corpus.of_speaker(sp.id);
            let enroll: Vec<&[f64]> = utts[..2].iter().map(|u| u.audio.as_slice()).collect();
            let model = backend.enroll(sp.id, &enroll);
            for u in &utts[2..] {
                genuine.push(backend.score(&model, &u.audio));
            }
            for other in &corpus.speakers {
                if other.id != sp.id {
                    let u = corpus.of_speaker(other.id)[2];
                    impostor.push(backend.score(&model, &u.audio));
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&genuine) > mean(&impostor) + 0.5,
            "genuine {} vs impostor {} (z-scores)",
            mean(&genuine),
            mean(&impostor)
        );
        let eer = magshield_ml::metrics::equal_error_rate(&genuine, &impostor);
        assert!(
            eer < 0.25,
            "EER {eer} too high for a clean synthetic corpus"
        );
    }

    #[test]
    fn znorm_centers_impostor_scores() {
        let (backend, corpus) = small_setup();
        let sp = &corpus.speakers[0];
        let utts = corpus.of_speaker(sp.id);
        let enroll: Vec<&[f64]> = utts[..2].iter().map(|u| u.audio.as_slice()).collect();
        let model = backend.enroll(sp.id, &enroll);
        assert!(model.znorm.is_some(), "cohort attached → znorm computed");
        // Impostor z-scores should hover near 0 with unit-ish scale.
        let mut imp = Vec::new();
        for other in &corpus.speakers[1..] {
            for u in corpus.of_speaker(other.id) {
                imp.push(backend.score(&model, &u.audio));
            }
        }
        let mean = imp.iter().sum::<f64>() / imp.len() as f64;
        assert!(mean.abs() < 1.5, "impostor z-mean {mean}");
    }

    #[test]
    fn no_cohort_means_raw_scores() {
        let (backend, corpus) = small_setup();
        let bare = UbmBackend::new(backend.extractor.clone(), backend.ubm.clone());
        let sp = &corpus.speakers[0];
        let utts = corpus.of_speaker(sp.id);
        let enroll: Vec<&[f64]> = utts[..2].iter().map(|u| u.audio.as_slice()).collect();
        let model = bare.enroll(sp.id, &enroll);
        assert!(model.znorm.is_none());
    }

    #[test]
    fn adaptation_moves_model_toward_speaker() {
        let (backend, corpus) = small_setup();
        let sp = &corpus.speakers[0];
        let utts = corpus.of_speaker(sp.id);
        let enroll: Vec<&[f64]> = utts[..2].iter().map(|u| u.audio.as_slice()).collect();
        let model = backend.enroll(sp.id, &enroll);
        let moved = model
            .gmm
            .means()
            .iter()
            .zip(backend.ubm.means())
            .any(|(a, b)| a.iter().zip(b).any(|(x, y)| (x - y).abs() > 1e-6));
        assert!(moved, "MAP adaptation should move at least one mean");
        assert!(backend.score(&model, &utts[0].audio) > 0.0);
    }

    #[test]
    #[should_panic(expected = "no frames")]
    fn enroll_rejects_empty_audio() {
        let (backend, _) = small_setup();
        backend.enroll(0, &[&[]]);
    }
}

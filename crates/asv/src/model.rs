//! Speaker enrollment and GMM–UBM verification with Z-norm score
//! normalization.
//!
//! Raw log-likelihood-ratio scores carry speaker-dependent offsets (some
//! models score *everyone* higher), which makes a single global threshold
//! unreliable. Spear — the toolbox the paper uses — applies Z-norm: each
//! enrolled model is scored against an impostor cohort, and verification
//! scores are reported in standard deviations above that cohort. We do the
//! same, drawing the cohort from the UBM training corpus.
//!
//! The scoring hot path is allocation-free: features land in a reusable
//! [`FrameMatrix`], both mixtures are lazily folded into [`PreparedGmm`]
//! constants, and the model-independent UBM half of every cohort
//! utterance's LLR is cached at cohort-attach time, so Z-norm and
//! leave-one-out enrollment never re-score the cohort against the UBM.

use crate::frontend::{FeatureExtractor, FrontendScratch};
use magshield_dsp::frame::{FrameMatrix, FrameSource};
use magshield_ml::codec::{self, BinaryCodec, ByteReader, ByteWriter, CodecError};
use magshield_ml::gmm::{
    llr_score_prepared, llr_score_quantized, DiagonalGmm, PreparedGmm, QuantizedGmm, ScoreScratch,
};
use std::cell::RefCell;
use std::sync::OnceLock;

/// MAP relevance factor (Reynolds' classic value).
pub const RELEVANCE_FACTOR: f64 = 16.0;

/// Maximum cohort utterances used for Z-norm statistics.
const MAX_COHORT: usize = 24;

/// An enrolled speaker: a MAP-adapted GMM plus Z-norm statistics.
#[derive(Debug, Clone)]
pub struct SpeakerModel {
    /// Claimed identity this model verifies.
    pub speaker_id: u32,
    /// The adapted mixture. Mutating it after the model has been scored
    /// does not invalidate the cached prepared form; build a fresh
    /// [`SpeakerModel`] instead.
    pub gmm: DiagonalGmm,
    /// Z-norm statistics `(mean, std)` of the model's impostor-cohort raw
    /// scores; `None` when no cohort was available (raw scores returned).
    pub znorm: Option<(f64, f64)>,
    /// Expected genuine score (normalized units), estimated at enrollment
    /// by leave-one-out scoring of the enrollment utterances. Per-user
    /// threshold calibration — standard practice for text-dependent voice
    /// authentication — anchors the operating point to this value.
    pub genuine_ref: Option<f64>,
    prepared: OnceLock<PreparedGmm>,
    quantized: OnceLock<QuantizedGmm>,
}

impl SpeakerModel {
    /// Bundles an adapted mixture with its normalization statistics.
    pub fn new(
        speaker_id: u32,
        gmm: DiagonalGmm,
        znorm: Option<(f64, f64)>,
        genuine_ref: Option<f64>,
    ) -> Self {
        Self {
            speaker_id,
            gmm,
            znorm,
            genuine_ref,
            prepared: OnceLock::new(),
            quantized: OnceLock::new(),
        }
    }

    /// The mixture folded into fast-scoring constants (computed once,
    /// cached for the model's lifetime).
    pub fn prepared(&self) -> &PreparedGmm {
        self.prepared.get_or_init(|| PreparedGmm::new(&self.gmm))
    }

    /// The prepared mixture quantized for the low-bandwidth scoring path
    /// (computed once, cached for the model's lifetime).
    pub fn quantized(&self) -> &QuantizedGmm {
        self.quantized
            .get_or_init(|| QuantizedGmm::from_prepared(self.prepared()))
    }

    /// Applies Z-norm (identity when no statistics are present).
    pub fn normalize(&self, raw: f64) -> f64 {
        match self.znorm {
            Some((mu, sigma)) => (raw - mu) / sigma,
            None => raw,
        }
    }

    /// The calibrated per-user acceptance threshold: a fraction of the
    /// expected genuine score, floored at `floor` (normalized units).
    pub fn calibrated_threshold(&self, floor: f64) -> f64 {
        match self.genuine_ref {
            Some(g) => (0.7 * g).max(floor),
            None => floor,
        }
    }
}

/// A Z-norm cohort utterance: pre-extracted frames plus the cached
/// model-independent UBM half of its LLR.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortUtterance {
    /// Extracted (and, for ISV, compensated) feature frames.
    pub frames: FrameMatrix,
    /// Mean per-frame UBM log-likelihood of `frames`, computed once when
    /// the cohort is attached. The LLR against any speaker model is then
    /// `mean_spk_ll − ubm_mean_ll`, so cohort scoring only evaluates the
    /// speaker side.
    pub ubm_mean_ll: f64,
}

/// Everything [`UbmBackend::score_detailed`] computed for one utterance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsvScore {
    /// Z-normalized verification score (higher = more likely genuine).
    pub z: f64,
    /// Feature frames scored.
    pub frames: usize,
    /// Speaker-side Gaussian evaluations skipped by top-C pruning.
    pub pruned_components: u64,
    /// Speaker-side Gaussian evaluations performed.
    pub evaluated_components: u64,
    /// Bytes of scratch growth this call caused; zero once the
    /// per-thread buffers have reached their high-water mark.
    pub scratch_grew_bytes: u64,
}

/// Per-thread reusable state for the full extract-and-score path.
#[derive(Debug, Clone, Default)]
pub struct SessionScratch {
    pub(crate) frontend: FrontendScratch,
    pub(crate) frames: FrameMatrix,
    pub(crate) score: ScoreScratch,
}

impl SessionScratch {
    /// A fresh scratch with no reserved memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently reserved across all buffers (capacities).
    pub fn footprint_bytes(&self) -> usize {
        self.frontend.footprint_bytes()
            + self.frames.capacity_bytes()
            + self.score.footprint_bytes()
    }
}

thread_local! {
    static SESSION_SCRATCH: RefCell<SessionScratch> = RefCell::new(SessionScratch::new());
}

/// Runs `f` with this thread's shared [`SessionScratch`]. The batch
/// engine's workers are OS threads, so stage-major batches naturally share
/// one scratch per worker. `f` must not call back into this function.
pub fn with_session_scratch<R>(f: impl FnOnce(&mut SessionScratch) -> R) -> R {
    SESSION_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// The GMM–UBM verification backend (the "UBM" system of Table I).
#[derive(Debug, Clone)]
pub struct UbmBackend {
    /// Shared front end.
    pub extractor: FeatureExtractor,
    /// The background model.
    pub ubm: DiagonalGmm,
    /// Pre-extracted cohort utterances for Z-norm, with cached UBM terms.
    cohort: Vec<CohortUtterance>,
    prepared: OnceLock<PreparedGmm>,
    quantized: OnceLock<QuantizedGmm>,
}

impl UbmBackend {
    /// Creates a backend from a trained UBM (no Z-norm cohort).
    pub fn new(extractor: FeatureExtractor, ubm: DiagonalGmm) -> Self {
        Self {
            extractor,
            ubm,
            cohort: Vec::new(),
            prepared: OnceLock::new(),
            quantized: OnceLock::new(),
        }
    }

    /// The UBM folded into fast-scoring constants (computed once, cached).
    pub fn prepared_ubm(&self) -> &PreparedGmm {
        self.prepared.get_or_init(|| PreparedGmm::new(&self.ubm))
    }

    /// The prepared UBM quantized for the low-bandwidth scoring path
    /// (computed once, cached).
    pub fn quantized_ubm(&self) -> &QuantizedGmm {
        self.quantized
            .get_or_init(|| QuantizedGmm::from_prepared(self.prepared_ubm()))
    }

    /// Attaches a Z-norm cohort (typically utterances from the UBM
    /// training corpus); at most `MAX_COHORT` are kept. Each utterance's
    /// UBM log-likelihood is computed here, once, and reused by every
    /// subsequent enrollment.
    pub fn with_cohort(mut self, utterances: &[&[f64]]) -> Self {
        let prepared = PreparedGmm::new(&self.ubm);
        let mut buf = Vec::new();
        self.cohort = utterances
            .iter()
            .take(MAX_COHORT)
            .map(|audio| self.extractor.extract(audio))
            .filter(|f| !f.is_empty())
            .map(|frames| {
                let ubm_mean_ll = prepared.mean_log_likelihood(&frames, &mut buf);
                CohortUtterance {
                    frames,
                    ubm_mean_ll,
                }
            })
            .collect();
        self
    }

    /// Number of cohort utterances held.
    pub fn cohort_size(&self) -> usize {
        self.cohort.len()
    }

    /// The cohort utterances (ISV reuses them, compensated).
    pub fn cohort(&self) -> &[CohortUtterance] {
        &self.cohort
    }

    /// Enrolls a speaker from one or more utterances.
    ///
    /// # Panics
    ///
    /// Panics if no feature frames can be extracted.
    pub fn enroll(&self, speaker_id: u32, utterances: &[&[f64]]) -> SpeakerModel {
        let per_utt: Vec<FrameMatrix> = utterances
            .iter()
            .map(|audio| self.extractor.extract(audio))
            .collect();
        let mut frames = FrameMatrix::default();
        for f in &per_utt {
            frames.extend_rows(f);
        }
        assert!(!frames.is_empty(), "enrollment produced no frames");
        let gmm = self.ubm.map_adapt_means(&frames, RELEVANCE_FACTOR);
        let znorm = znorm_stats(&gmm, &self.cohort);
        let genuine_ref = genuine_reference(&self.ubm, &per_utt, &self.cohort);
        SpeakerModel::new(speaker_id, gmm, znorm, genuine_ref)
    }

    /// Verification score of `audio` against `model`: Z-normalized average
    /// per-frame log-likelihood ratio (higher = more likely genuine).
    /// Exact scoring (no pruning); see [`Self::score_detailed`] for the
    /// configurable fast path.
    pub fn score(&self, model: &SpeakerModel, audio: &[f64]) -> f64 {
        self.score_detailed(model, audio, 0).z
    }

    /// Scores `audio` on the zero-allocation fast path using this thread's
    /// scratch. `top_c` bounds the speaker-side Gaussian evaluations per
    /// frame (`0` = exact, all components).
    pub fn score_detailed(&self, model: &SpeakerModel, audio: &[f64], top_c: usize) -> AsvScore {
        self.score_detailed_opts(model, audio, top_c, false)
    }

    /// [`Self::score_detailed`] with the scoring backend selectable:
    /// `quantized` scores on the i16-mean [`QuantizedGmm`] pair (see
    /// [`magshield_ml::gmm::llr_drift_bound`] for the drift guarantee).
    pub fn score_detailed_opts(
        &self,
        model: &SpeakerModel,
        audio: &[f64],
        top_c: usize,
        quantized: bool,
    ) -> AsvScore {
        with_session_scratch(|s| self.score_detailed_opts_with(model, audio, top_c, quantized, s))
    }

    /// [`Self::score_detailed`] with an explicit scratch (for callers that
    /// manage their own per-worker buffers).
    pub fn score_detailed_with(
        &self,
        model: &SpeakerModel,
        audio: &[f64],
        top_c: usize,
        s: &mut SessionScratch,
    ) -> AsvScore {
        self.score_detailed_opts_with(model, audio, top_c, false, s)
    }

    /// [`Self::score_detailed_opts`] with an explicit scratch.
    pub fn score_detailed_opts_with(
        &self,
        model: &SpeakerModel,
        audio: &[f64],
        top_c: usize,
        quantized: bool,
        s: &mut SessionScratch,
    ) -> AsvScore {
        let before = s.footprint_bytes();
        self.extractor
            .extract_into(audio, &mut s.frontend, &mut s.frames);
        let b = if quantized {
            llr_score_quantized(
                model.quantized(),
                self.quantized_ubm(),
                &s.frames,
                top_c,
                &mut s.score,
            )
        } else {
            llr_score_prepared(
                model.prepared(),
                self.prepared_ubm(),
                &s.frames,
                top_c,
                &mut s.score,
            )
        };
        AsvScore {
            z: model.normalize(b.score),
            frames: b.frames,
            pruned_components: b.pruned_components,
            evaluated_components: b.evaluated_components,
            scratch_grew_bytes: (s.footprint_bytes() - before) as u64,
        }
    }

    /// Scores pre-extracted frames on the reference path (used by the ISV
    /// backend after compensation, and as the exactness oracle in tests).
    pub fn score_frames<F: FrameSource + ?Sized>(&self, model: &SpeakerModel, frames: &F) -> f64 {
        model.normalize(model.gmm.llr_score(&self.ubm, frames))
    }
}

/// Leave-one-out genuine-score estimate: each enrollment utterance is
/// scored (normalized) against a model adapted from the *other*
/// utterances. Needs at least two utterances; returns the mean LOO score.
pub fn genuine_reference(
    ubm: &DiagonalGmm,
    per_utterance_frames: &[FrameMatrix],
    cohort: &[CohortUtterance],
) -> Option<f64> {
    let usable: Vec<&FrameMatrix> = per_utterance_frames
        .iter()
        .filter(|f| !f.is_empty())
        .collect();
    if usable.len() < 2 {
        return None;
    }
    let ubm_prepared = PreparedGmm::new(ubm);
    let mut buf = Vec::new();
    // The held-out utterance's UBM term never changes across iterations.
    let utt_ubm_ll: Vec<f64> = usable
        .iter()
        .map(|f| ubm_prepared.mean_log_likelihood(*f, &mut buf))
        .collect();
    let mut rest = FrameMatrix::default();
    let mut scores = Vec::new();
    for i in 0..usable.len() {
        rest.reset(usable[0].cols());
        for (j, f) in usable.iter().enumerate() {
            if j != i {
                rest.extend_rows(f);
            }
        }
        let sub = ubm.map_adapt_means(&rest, RELEVANCE_FACTOR);
        let sub_prepared = PreparedGmm::new(&sub);
        let raw = sub_prepared.mean_log_likelihood(usable[i], &mut buf) - utt_ubm_ll[i];
        let z = match znorm_stats_prepared(&sub_prepared, cohort, &mut buf) {
            Some((mu, sigma)) => (raw - mu) / sigma,
            None => raw,
        };
        if z.is_finite() {
            scores.push(z);
        }
    }
    if scores.is_empty() {
        return None;
    }
    Some(scores.iter().sum::<f64>() / scores.len() as f64)
}

/// Computes Z-norm statistics of a model against cohort utterances. The
/// UBM half of each cohort LLR comes from [`CohortUtterance::ubm_mean_ll`];
/// only the speaker side is evaluated here.
pub fn znorm_stats(model: &DiagonalGmm, cohort: &[CohortUtterance]) -> Option<(f64, f64)> {
    let mut buf = Vec::new();
    znorm_stats_prepared(&PreparedGmm::new(model), cohort, &mut buf)
}

/// Encodes a [`FrameMatrix`] as `cols, rows, row-major f64s`.
pub(crate) fn put_frame_matrix(w: &mut ByteWriter, m: &FrameMatrix) {
    w.put_len(m.cols());
    w.put_len(m.rows());
    w.put_f64_slice(m.as_slice());
}

/// Decodes a [`FrameMatrix`] written by [`put_frame_matrix`].
pub(crate) fn get_frame_matrix(
    r: &mut ByteReader<'_>,
    artifact: &'static str,
) -> Result<FrameMatrix, CodecError> {
    let cols = r.get_len()?;
    let rows = r.get_len()?;
    if cols == 0 && rows > 0 {
        return Err(CodecError::Invalid {
            artifact,
            reason: "frame matrix with rows but zero columns".to_string(),
        });
    }
    let total = rows.checked_mul(cols).ok_or_else(|| CodecError::Invalid {
        artifact,
        reason: "frame matrix shape overflows".to_string(),
    })?;
    let flat = r.get_f64_vec(total)?;
    let mut m = FrameMatrix::new(cols);
    for row in flat.chunks_exact(cols.max(1)) {
        m.push_row(row);
    }
    Ok(m)
}

impl BinaryCodec for CohortUtterance {
    const MAGIC: u32 = codec::magic(b"MCOH");
    const VERSION: u8 = 1;
    const NAME: &'static str = "CohortUtterance";

    fn encode_payload(&self, w: &mut ByteWriter) {
        put_frame_matrix(w, &self.frames);
        w.put_f64(self.ubm_mean_ll);
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            frames: get_frame_matrix(r, Self::NAME)?,
            ubm_mean_ll: r.get_f64()?,
        })
    }
}

impl BinaryCodec for SpeakerModel {
    const MAGIC: u32 = codec::magic(b"MSPK");
    const VERSION: u8 = 1;
    const NAME: &'static str = "SpeakerModel";

    fn encode_payload(&self, w: &mut ByteWriter) {
        w.put_u32(self.speaker_id);
        w.put_nested(&self.gmm.to_bytes());
        match self.znorm {
            Some((mu, sigma)) => {
                w.put_bool(true);
                w.put_f64(mu);
                w.put_f64(sigma);
            }
            None => w.put_bool(false),
        }
        match self.genuine_ref {
            Some(g) => {
                w.put_bool(true);
                w.put_f64(g);
            }
            None => w.put_bool(false),
        }
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let speaker_id = r.get_u32()?;
        let gmm = DiagonalGmm::from_bytes(r.get_nested()?)?;
        let znorm = if r.get_bool()? {
            let mu = r.get_f64()?;
            let sigma = r.get_f64()?;
            if !(mu.is_finite() && sigma.is_finite() && sigma > 0.0) {
                return Err(CodecError::Invalid {
                    artifact: Self::NAME,
                    reason: "z-norm statistics must be finite with positive sigma".to_string(),
                });
            }
            Some((mu, sigma))
        } else {
            None
        };
        let genuine_ref = if r.get_bool()? {
            Some(r.get_f64()?)
        } else {
            None
        };
        Ok(Self::new(speaker_id, gmm, znorm, genuine_ref))
    }
}

impl BinaryCodec for UbmBackend {
    const MAGIC: u32 = codec::magic(b"MUBM");
    const VERSION: u8 = 1;
    const NAME: &'static str = "UbmBackend";

    fn encode_payload(&self, w: &mut ByteWriter) {
        w.put_nested(&self.extractor.to_bytes());
        w.put_nested(&self.ubm.to_bytes());
        w.put_len(self.cohort.len());
        for c in &self.cohort {
            c.encode_payload(w);
        }
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let extractor = FeatureExtractor::from_bytes(r.get_nested()?)?;
        let ubm = DiagonalGmm::from_bytes(r.get_nested()?)?;
        let n = r.get_len()?;
        if n > MAX_COHORT {
            return Err(CodecError::Invalid {
                artifact: Self::NAME,
                reason: format!("cohort of {n} exceeds the {MAX_COHORT}-utterance cap"),
            });
        }
        let mut cohort = Vec::with_capacity(n);
        for _ in 0..n {
            let c = CohortUtterance::decode_payload(r)?;
            if !c.frames.is_empty() && c.frames.cols() != ubm.dim() {
                return Err(CodecError::Invalid {
                    artifact: Self::NAME,
                    reason: format!(
                        "cohort frame dimension {} does not match UBM dimension {}",
                        c.frames.cols(),
                        ubm.dim()
                    ),
                });
            }
            cohort.push(c);
        }
        let mut backend = Self::new(extractor, ubm);
        backend.cohort = cohort;
        Ok(backend)
    }
}

fn znorm_stats_prepared(
    model: &PreparedGmm,
    cohort: &[CohortUtterance],
    buf: &mut Vec<f64>,
) -> Option<(f64, f64)> {
    let scores: Vec<f64> = cohort
        .iter()
        .map(|c| model.mean_log_likelihood(&c.frames, buf) - c.ubm_mean_ll)
        .filter(|s| s.is_finite())
        .collect();
    if scores.len() < 3 {
        return None;
    }
    let mu = scores.iter().sum::<f64>() / scores.len() as f64;
    let var = scores.iter().map(|s| (s - mu).powi(2)).sum::<f64>() / scores.len() as f64;
    Some((mu, var.sqrt().max(1e-3)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ubm::{train_ubm, UbmConfig};
    use magshield_simkit::rng::SimRng;
    use magshield_voice::corpus::{build_corpus, CorpusConfig};
    use magshield_voice::synth::VOICE_SAMPLE_RATE;

    fn small_setup() -> (UbmBackend, magshield_voice::corpus::Corpus) {
        let rng = SimRng::from_seed(21);
        let corpus = build_corpus(
            &CorpusConfig {
                num_speakers: 4,
                sessions_per_speaker: 2,
                utterances_per_session: 2,
                passphrase_len: 4,
                session_strength: 0.6,
                corpus_tilt_db_per_oct: 0.0,
                first_speaker_id: 0,
            },
            &rng,
        );
        let fx = FeatureExtractor::new(VOICE_SAMPLE_RATE);
        let utts: Vec<&[f64]> = corpus
            .utterances
            .iter()
            .map(|u| u.audio.as_slice())
            .collect();
        let ubm = train_ubm(
            &fx,
            &utts,
            UbmConfig {
                components: 16,
                em_iters: 6,
                max_frames: 6000,
            },
            &rng,
        );
        let backend = UbmBackend::new(fx, ubm).with_cohort(&utts);
        (backend, corpus)
    }

    #[test]
    fn genuine_scores_beat_impostor_scores() {
        let (backend, corpus) = small_setup();
        let mut genuine = Vec::new();
        let mut impostor = Vec::new();
        for sp in &corpus.speakers {
            let utts = corpus.of_speaker(sp.id);
            let enroll: Vec<&[f64]> = utts[..2].iter().map(|u| u.audio.as_slice()).collect();
            let model = backend.enroll(sp.id, &enroll);
            for u in &utts[2..] {
                genuine.push(backend.score(&model, &u.audio));
            }
            for other in &corpus.speakers {
                if other.id != sp.id {
                    let u = corpus.of_speaker(other.id)[2];
                    impostor.push(backend.score(&model, &u.audio));
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&genuine) > mean(&impostor) + 0.5,
            "genuine {} vs impostor {} (z-scores)",
            mean(&genuine),
            mean(&impostor)
        );
        let eer = magshield_ml::metrics::equal_error_rate(&genuine, &impostor);
        assert!(
            eer < 0.25,
            "EER {eer} too high for a clean synthetic corpus"
        );
    }

    #[test]
    fn znorm_centers_impostor_scores() {
        let (backend, corpus) = small_setup();
        let sp = &corpus.speakers[0];
        let utts = corpus.of_speaker(sp.id);
        let enroll: Vec<&[f64]> = utts[..2].iter().map(|u| u.audio.as_slice()).collect();
        let model = backend.enroll(sp.id, &enroll);
        assert!(model.znorm.is_some(), "cohort attached → znorm computed");
        // Impostor z-scores should hover near 0 with unit-ish scale.
        let mut imp = Vec::new();
        for other in &corpus.speakers[1..] {
            for u in corpus.of_speaker(other.id) {
                imp.push(backend.score(&model, &u.audio));
            }
        }
        let mean = imp.iter().sum::<f64>() / imp.len() as f64;
        assert!(mean.abs() < 1.5, "impostor z-mean {mean}");
    }

    #[test]
    fn no_cohort_means_raw_scores() {
        let (backend, corpus) = small_setup();
        let bare = UbmBackend::new(backend.extractor.clone(), backend.ubm.clone());
        let sp = &corpus.speakers[0];
        let utts = corpus.of_speaker(sp.id);
        let enroll: Vec<&[f64]> = utts[..2].iter().map(|u| u.audio.as_slice()).collect();
        let model = bare.enroll(sp.id, &enroll);
        assert!(model.znorm.is_none());
    }

    #[test]
    fn adaptation_moves_model_toward_speaker() {
        let (backend, corpus) = small_setup();
        let sp = &corpus.speakers[0];
        let utts = corpus.of_speaker(sp.id);
        let enroll: Vec<&[f64]> = utts[..2].iter().map(|u| u.audio.as_slice()).collect();
        let model = backend.enroll(sp.id, &enroll);
        let moved = model
            .gmm
            .means()
            .iter()
            .zip(backend.ubm.means())
            .any(|(a, b)| a.iter().zip(b).any(|(x, y)| (x - y).abs() > 1e-6));
        assert!(moved, "MAP adaptation should move at least one mean");
        assert!(backend.score(&model, &utts[0].audio) > 0.0);
    }

    #[test]
    fn fast_path_score_matches_reference_path() {
        let (backend, corpus) = small_setup();
        let sp = &corpus.speakers[0];
        let utts = corpus.of_speaker(sp.id);
        let enroll: Vec<&[f64]> = utts[..2].iter().map(|u| u.audio.as_slice()).collect();
        let model = backend.enroll(sp.id, &enroll);
        for u in utts {
            let frames = backend.extractor.extract(&u.audio);
            let reference = backend.score_frames(&model, &frames);
            let exact = backend.score_detailed(&model, &u.audio, 0);
            assert!(
                (exact.z - reference).abs() < 1e-9,
                "fast {} vs reference {reference}",
                exact.z
            );
            assert_eq!(exact.pruned_components, 0);
            assert_eq!(exact.frames, frames.rows());
            // Pruned scoring never exceeds exact (subset log-sum) and
            // accounts for exactly (k − C) skips per frame.
            let pruned = backend.score_detailed(&model, &u.audio, 4);
            let sigma = model.znorm.map_or(1.0, |(_, s)| s);
            assert!(pruned.z <= exact.z + 1e-9 / sigma);
            assert_eq!(pruned.pruned_components, (frames.rows() * (16 - 4)) as u64);
        }
    }

    #[test]
    fn session_scratch_stops_growing_after_warmup() {
        let (backend, corpus) = small_setup();
        let sp = &corpus.speakers[0];
        let utts = corpus.of_speaker(sp.id);
        let enroll: Vec<&[f64]> = utts[..2].iter().map(|u| u.audio.as_slice()).collect();
        let model = backend.enroll(sp.id, &enroll);
        let mut s = SessionScratch::new();
        let first = backend.score_detailed_with(&model, &utts[0].audio, 4, &mut s);
        assert!(first.scratch_grew_bytes > 0, "cold scratch must grow");
        for u in &utts {
            backend.score_detailed_with(&model, &u.audio, 4, &mut s); // warm-up
        }
        for u in &utts {
            let again = backend.score_detailed_with(&model, &u.audio, 4, &mut s);
            assert_eq!(
                again.scratch_grew_bytes, 0,
                "warm scratch regrew on an already-seen utterance"
            );
        }
    }

    #[test]
    #[should_panic(expected = "no frames")]
    fn enroll_rejects_empty_audio() {
        let (backend, _) = small_setup();
        backend.enroll(0, &[&[]]);
    }

    mod codec_round_trip {
        use super::*;
        use magshield_ml::codec::{assert_hostile_input_fails, BinaryCodec, CodecError};
        use proptest::prelude::*;

        fn assert_speaker_models_equal(a: &SpeakerModel, b: &SpeakerModel) {
            assert_eq!(a.speaker_id, b.speaker_id);
            assert_eq!(a.gmm, b.gmm);
            assert_eq!(a.znorm, b.znorm);
            assert_eq!(a.genuine_ref, b.genuine_ref);
        }

        fn assert_backends_equal(a: &UbmBackend, b: &UbmBackend) {
            assert_eq!(a.extractor.sample_rate(), b.extractor.sample_rate());
            assert_eq!(a.extractor.use_deltas, b.extractor.use_deltas);
            assert_eq!(a.extractor.use_cmn, b.extractor.use_cmn);
            assert_eq!(a.ubm, b.ubm);
            assert_eq!(a.cohort, b.cohort);
        }

        #[test]
        fn trained_backend_and_model_round_trip_exactly() {
            let (backend, corpus) = small_setup();
            let back = UbmBackend::from_bytes(&backend.to_bytes()).unwrap();
            assert_backends_equal(&backend, &back);

            let sp = &corpus.speakers[0];
            let utts = corpus.of_speaker(sp.id);
            let enroll: Vec<&[f64]> = utts[..2].iter().map(|u| u.audio.as_slice()).collect();
            let model = backend.enroll(sp.id, &enroll);
            let model_back = SpeakerModel::from_bytes(&model.to_bytes()).unwrap();
            assert_speaker_models_equal(&model, &model_back);

            // The decoded pair scores bit-identically to the original.
            for u in utts {
                assert_eq!(
                    backend.score(&model, &u.audio),
                    back.score(&model_back, &u.audio)
                );
            }
        }

        #[test]
        fn cohort_utterance_round_trips() {
            let (backend, _) = small_setup();
            for c in backend.cohort() {
                let back = CohortUtterance::from_bytes(&c.to_bytes()).unwrap();
                assert_eq!(&back, c);
            }
        }

        #[test]
        fn extractor_round_trips() {
            let mut fx = FeatureExtractor::new(22_050.0);
            fx.use_cmn = false;
            let back = FeatureExtractor::from_bytes(&fx.to_bytes()).unwrap();
            assert_eq!(back.sample_rate(), fx.sample_rate());
            assert_eq!(back.use_deltas, fx.use_deltas);
            assert_eq!(back.use_cmn, fx.use_cmn);
            assert_eq!(back.dim(), fx.dim());
        }

        #[test]
        fn hostile_input_yields_typed_errors() {
            let (backend, corpus) = small_setup();
            assert_hostile_input_fails::<FeatureExtractor>(&backend.extractor.to_bytes());
            let sp = &corpus.speakers[0];
            let utts = corpus.of_speaker(sp.id);
            let enroll: Vec<&[f64]> = utts[..2].iter().map(|u| u.audio.as_slice()).collect();
            let model = backend.enroll(sp.id, &enroll);
            assert_hostile_input_fails::<SpeakerModel>(&model.to_bytes());
            // The full backend frame is large; bit-flipping every byte of
            // it would dominate the suite, so fuzz a truncated-cohort
            // backend instead — same code paths, bounded size.
            let small = UbmBackend::new(backend.extractor.clone(), backend.ubm.clone());
            assert_hostile_input_fails::<UbmBackend>(&small.to_bytes());
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            #[test]
            fn speaker_model_round_trips(seed in 0u64..u64::MAX, id in 0u32..u32::MAX) {
                let mut rng = SimRng::from_seed(seed);
                let k = 1 + (seed % 3) as usize;
                let dim = 1 + (seed % 4) as usize;
                let raw: Vec<f64> = (0..k).map(|_| rng.uniform(0.1, 1.0)).collect();
                let sum: f64 = raw.iter().sum();
                let gmm = DiagonalGmm::from_parameters(
                    raw.iter().map(|w| w / sum).collect(),
                    (0..k).map(|_| (0..dim).map(|_| rng.gauss(0.0, 2.0)).collect()).collect(),
                    (0..k).map(|_| (0..dim).map(|_| rng.uniform(0.01, 3.0)).collect()).collect(),
                );
                let znorm = if seed % 2 == 0 {
                    Some((rng.gauss(0.0, 1.0), rng.uniform(0.1, 2.0)))
                } else {
                    None
                };
                let genuine_ref = if seed % 3 == 0 { Some(rng.gauss(2.0, 1.0)) } else { None };
                let model = SpeakerModel::new(id, gmm, znorm, genuine_ref);
                let back = SpeakerModel::from_bytes(&model.to_bytes()).unwrap();
                assert_speaker_models_equal(&model, &back);
            }
        }

        #[test]
        fn oversized_cohort_is_invalid() {
            // Craft a backend frame claiming more cohort utterances than
            // MAX_COHORT: must be rejected before any are decoded.
            let fx = FeatureExtractor::new(16_000.0);
            let ubm = DiagonalGmm::from_parameters(vec![1.0], vec![vec![0.0]], vec![vec![1.0]]);
            let mut w = ByteWriter::new();
            w.put_nested(&fx.to_bytes());
            w.put_nested(&ubm.to_bytes());
            w.put_len(MAX_COHORT + 1);
            let payload = w.into_bytes();
            let mut r = ByteReader::new(&payload);
            assert!(matches!(
                UbmBackend::decode_payload(&mut r),
                Err(CodecError::Invalid { .. })
            ));
        }
    }
}

//! Acoustic replay-detection baseline.
//!
//! §II of the paper surveys prior replay countermeasures (\[30\], \[38\],
//! \[46\], \[47\], \[50\]) that detect playback from the *audio alone* —
//! channel pattern noise, far-field spectral statistics, score
//! normalization — and notes that "all these systems suffer from high
//! false acceptance rate (FAR) compared to the respective baselines."
//!
//! This module implements such a baseline so the claim can be measured:
//! a linear classifier over spectral artifacts that playback chains leave
//! in the signal:
//!
//! 1. low-band deficit — small drivers cannot reproduce speech lows;
//! 2. high-band deficit — recording + playback band-limits the top octave;
//! 3. spectral flatness deviations — resonances of cheap cones color the
//!    spectrum;
//! 4. pause-floor noise — the covert recording's noise floor plays back
//!    in the gaps between digits;
//! 5. frame-rate modulation energy — vocoder artifacts (for synthetic
//!    speech).
//!
//! Against band-limited playback (phone/laptop speakers) these features
//! work; against a flat, full-range loudspeaker they have nothing to hold
//! on to — which is exactly the paper's argument for moving the decision
//! to the magnetometer.

use crate::eval::VerificationReport;
use magshield_dsp::fft::magnitude_spectrum;
use magshield_ml::scaler::StandardScaler;
use magshield_ml::svm::{LinearSvm, SvmConfig};
use magshield_simkit::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Number of features extracted per utterance.
pub const BASELINE_FEATURE_DIM: usize = 8;

/// Extracts the replay-artifact feature vector from an utterance.
///
/// Returns `None` for audio too short to analyze (< 0.25 s).
pub fn replay_features(audio: &[f64], sample_rate: f64) -> Option<Vec<f64>> {
    if audio.len() < (sample_rate * 0.25) as usize {
        return None;
    }
    // Band energies over the whole utterance.
    let (freqs, mags) = magnitude_spectrum(audio, sample_rate);
    let band_energy = |lo: f64, hi: f64| -> f64 {
        freqs
            .iter()
            .zip(&mags)
            .filter(|(f, _)| **f >= lo && **f < hi)
            .map(|(_, m)| m * m)
            .sum::<f64>()
            .max(1e-12)
    };
    let total = band_energy(50.0, sample_rate * 0.45);
    let low_ratio = (band_energy(50.0, 250.0) / total).ln();
    let mid_ratio = (band_energy(250.0, 2500.0) / total).ln();
    let high_ratio = (band_energy(5000.0, 7500.0) / total).ln();

    // Spectral flatness of the speech band.
    let speech_bins: Vec<f64> = freqs
        .iter()
        .zip(&mags)
        .filter(|(f, _)| **f >= 250.0 && **f < 4000.0)
        .map(|(_, m)| (m * m).max(1e-12))
        .collect();
    let flatness = {
        let log_mean = speech_bins.iter().map(|p| p.ln()).sum::<f64>() / speech_bins.len() as f64;
        let mean = speech_bins.iter().sum::<f64>() / speech_bins.len() as f64;
        (log_mean - mean.ln()).exp()
    };

    // Pause-floor: 5th-percentile frame RMS vs overall RMS.
    let frame = (sample_rate * 0.02) as usize;
    let mut frame_rms: Vec<f64> = audio
        .chunks(frame.max(1))
        .map(|c| (c.iter().map(|x| x * x).sum::<f64>() / c.len() as f64).sqrt())
        .collect();
    frame_rms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let floor = frame_rms[(0.05 * (frame_rms.len() - 1) as f64) as usize].max(1e-9);
    let overall = frame_rms[frame_rms.len() / 2].max(1e-9);
    let pause_floor_db = 20.0 * (floor / overall).log10();

    // Envelope modulation energy near the 100 Hz vocoder frame rate.
    let env: Vec<f64> = audio
        .chunks(frame.max(1))
        .map(|c| c.iter().map(|x| x.abs()).sum::<f64>() / c.len() as f64)
        .collect();
    let env_rate = sample_rate / frame.max(1) as f64; // ~50 Hz envelope rate
    let (efreqs, emags) = magnitude_spectrum(&env, env_rate);
    let mod_total: f64 = emags.iter().skip(1).map(|m| m * m).sum::<f64>().max(1e-12);
    let mod_hi: f64 = efreqs
        .iter()
        .zip(&emags)
        .filter(|(f, _)| **f >= 15.0)
        .map(|(_, m)| m * m)
        .sum::<f64>()
        .max(1e-12);
    let mod_ratio = (mod_hi / mod_total).ln();

    // Crest factor — compression in playback chains lowers it.
    let peak = audio.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
    let rms = (audio.iter().map(|x| x * x).sum::<f64>() / audio.len() as f64).sqrt();
    let crest_db = 20.0 * (peak / rms.max(1e-9)).log10();

    Some(vec![
        low_ratio,
        mid_ratio,
        high_ratio,
        flatness,
        pause_floor_db,
        mod_ratio,
        crest_db,
        (audio.len() as f64 / sample_rate).ln(),
    ])
}

/// A trained acoustic replay detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayDetector {
    svm: LinearSvm,
    scaler: StandardScaler,
}

impl ReplayDetector {
    /// Trains on labeled utterances (`genuine` = live speech, `replayed` =
    /// loudspeaker playback).
    ///
    /// # Panics
    ///
    /// Panics if either class yields no usable feature vectors.
    pub fn train(genuine: &[&[f64]], replayed: &[&[f64]], sample_rate: f64, rng: &SimRng) -> Self {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for audio in genuine {
            if let Some(v) = replay_features(audio, sample_rate) {
                data.push(v);
                labels.push(1.0);
            }
        }
        let n_pos = data.len();
        for audio in replayed {
            if let Some(v) = replay_features(audio, sample_rate) {
                data.push(v);
                labels.push(-1.0);
            }
        }
        assert!(
            n_pos > 0 && data.len() > n_pos,
            "need usable genuine and replayed training audio"
        );
        let scaler = StandardScaler::fit(&data);
        let scaled = scaler.transform_batch(&data);
        let svm = LinearSvm::train(&scaled, &labels, SvmConfig::default(), &rng.fork("replay"));
        Self { svm, scaler }
    }

    /// Liveness score: positive = live speech, negative = playback.
    ///
    /// Returns `-1.0` (reject) for audio too short to featurize.
    pub fn score(&self, audio: &[f64], sample_rate: f64) -> f64 {
        match replay_features(audio, sample_rate) {
            Some(v) => self.svm.decision(&self.scaler.transform(&v)),
            None => -1.0,
        }
    }

    /// Evaluates FAR/FRR/EER over labeled test sets.
    pub fn evaluate(
        &self,
        genuine: &[&[f64]],
        replayed: &[&[f64]],
        sample_rate: f64,
    ) -> VerificationReport {
        VerificationReport {
            genuine_scores: genuine.iter().map(|a| self.score(a, sample_rate)).collect(),
            impostor_scores: replayed
                .iter()
                .map(|a| self.score(a, sample_rate))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magshield_simkit::rng::SimRng;
    use magshield_voice::attacks::{apply_device_response, attack_audio, AttackKind};
    use magshield_voice::devices::table_iv_catalog;
    use magshield_voice::profile::SpeakerProfile;
    use magshield_voice::synth::{FormantSynthesizer, SessionEffects, VOICE_SAMPLE_RATE};

    fn corpus(device_filter: &str, n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let rng = SimRng::from_seed(808);
        let synth = FormantSynthesizer::default();
        let dev = table_iv_catalog()
            .into_iter()
            .find(|d| d.name.contains(device_filter))
            .unwrap();
        let mut genuine = Vec::new();
        let mut replayed = Vec::new();
        for i in 0..n as u32 {
            let sp = SpeakerProfile::sample(i, &rng);
            let fx = SessionEffects::sample(&rng.fork_indexed("fx", u64::from(i)), 0.8);
            genuine.push(synth.render_digits(
                &sp,
                "314159",
                fx,
                &rng.fork_indexed("g", u64::from(i)),
            ));
            let attacker = SpeakerProfile::sample(100 + i, &rng);
            let mut atk = attack_audio(
                AttackKind::Replay,
                &attacker,
                &sp,
                "314159",
                &rng.fork_indexed("a", u64::from(i)),
            );
            apply_device_response(&mut atk, VOICE_SAMPLE_RATE, &dev);
            replayed.push(atk);
        }
        (genuine, replayed)
    }

    #[test]
    fn features_are_finite_and_sized() {
        let (g, _) = corpus("iPhone 6", 2);
        let v = replay_features(&g[0], VOICE_SAMPLE_RATE).unwrap();
        assert_eq!(v.len(), BASELINE_FEATURE_DIM);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn short_audio_yields_none() {
        assert!(replay_features(&[0.1; 100], VOICE_SAMPLE_RATE).is_none());
    }

    #[test]
    fn detects_bandlimited_phone_speaker_replay() {
        // Phone internal speakers cut everything below ~300 Hz: the
        // low-band deficit is a strong cue.
        let (g, r) = corpus("iPhone 4S", 10);
        let gr: Vec<&[f64]> = g.iter().map(|v| v.as_slice()).collect();
        let rr: Vec<&[f64]> = r.iter().map(|v| v.as_slice()).collect();
        let det =
            ReplayDetector::train(&gr[..6], &rr[..6], VOICE_SAMPLE_RATE, &SimRng::from_seed(1));
        let report = det.evaluate(&gr[6..], &rr[6..], VOICE_SAMPLE_RATE);
        assert!(
            report.eer() < 0.3,
            "band-limited replay should be detectable: EER {}",
            report.eer()
        );
    }

    #[test]
    fn struggles_against_full_range_speaker() {
        // The paper's point: a flat floor-standing speaker leaves few
        // acoustic artifacts, so audio-only detection degrades — while the
        // magnetometer channel is indifferent to audio quality.
        let (g, r) = corpus("Pioneer", 10);
        let gr: Vec<&[f64]> = g.iter().map(|v| v.as_slice()).collect();
        let rr: Vec<&[f64]> = r.iter().map(|v| v.as_slice()).collect();
        let det =
            ReplayDetector::train(&gr[..6], &rr[..6], VOICE_SAMPLE_RATE, &SimRng::from_seed(2));
        let full_range = det.evaluate(&gr[6..], &rr[6..], VOICE_SAMPLE_RATE);

        let (g2, r2) = corpus("iPhone 4S", 10);
        let gr2: Vec<&[f64]> = g2.iter().map(|v| v.as_slice()).collect();
        let rr2: Vec<&[f64]> = r2.iter().map(|v| v.as_slice()).collect();
        let det2 = ReplayDetector::train(
            &gr2[..6],
            &rr2[..6],
            VOICE_SAMPLE_RATE,
            &SimRng::from_seed(2),
        );
        let band_limited = det2.evaluate(&gr2[6..], &rr2[6..], VOICE_SAMPLE_RATE);
        assert!(
            full_range.eer() >= band_limited.eer(),
            "full-range replay ({}) should be at least as hard as band-limited ({})",
            full_range.eer(),
            band_limited.eer()
        );
    }

    #[test]
    fn training_is_deterministic() {
        let (g, r) = corpus("Logitech", 4);
        let gr: Vec<&[f64]> = g.iter().map(|v| v.as_slice()).collect();
        let rr: Vec<&[f64]> = r.iter().map(|v| v.as_slice()).collect();
        let a = ReplayDetector::train(&gr, &rr, VOICE_SAMPLE_RATE, &SimRng::from_seed(3));
        let b = ReplayDetector::train(&gr, &rr, VOICE_SAMPLE_RATE, &SimRng::from_seed(3));
        assert_eq!(
            a.score(&g[0], VOICE_SAMPLE_RATE),
            b.score(&g[0], VOICE_SAMPLE_RATE)
        );
    }

    #[test]
    #[should_panic(expected = "usable genuine and replayed")]
    fn rejects_empty_training() {
        ReplayDetector::train(&[], &[], VOICE_SAMPLE_RATE, &SimRng::from_seed(1));
    }
}

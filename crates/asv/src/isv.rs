//! Inter-session variability (ISV) compensation in the GMM supervector
//! domain.
//!
//! Spear's ISV models a per-session offset `U·x` on the GMM mean
//! supervector: stacking every component's mean gives a `k·d` vector, and
//! channel/session effects move that vector along a low-rank subspace `U`
//! estimated from within-speaker, between-session variation. We implement
//! the standard simplification:
//!
//! 1. for each training (speaker, session) group, compute the *centered
//!    supervector*: relevance-weighted deviations of component means from
//!    the UBM (`Baum–Welch first-order statistics`);
//! 2. difference each session supervector against its speaker's mean
//!    supervector, and fit `U` by PCA over those deltas (the Gram trick
//!    handles `k·d ≫ #sessions`);
//! 3. at enrollment and test time, estimate the utterance's session
//!    offset by projecting its supervector onto `U`, and subtract the
//!    offset from every frame, weighted by the frame's component
//!    responsibilities — feature-domain application of the supervector
//!    correction.

use crate::frontend::FeatureExtractor;
use crate::model::{with_session_scratch, AsvScore, CohortUtterance, SpeakerModel, UbmBackend};
use magshield_dsp::frame::{FrameMatrix, FrameSource, FrameSourceMut};
use magshield_ml::codec::{self, BinaryCodec, ByteReader, ByteWriter, CodecError};
use magshield_ml::gmm::{llr_score_prepared, llr_score_quantized, DiagonalGmm};
use magshield_ml::pca::Pca;

/// Relevance factor damping low-evidence components in the supervector.
const SUPERVECTOR_RELEVANCE: f64 = 8.0;

/// A trained session-variability subspace over GMM supervectors.
#[derive(Debug, Clone)]
pub struct SessionSubspace {
    /// Orthonormal basis (rows) in supervector space, `rank × (k·d)`.
    basis: Vec<Vec<f64>>,
    /// Components and dimension of the supervector layout.
    num_components: usize,
    dim: usize,
}

impl SessionSubspace {
    /// Estimates the subspace from `(speaker, session, frames)` groups
    /// against `ubm`.
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0` or fewer than two multi-session supervector
    /// deltas are available.
    pub fn estimate<F: FrameSource>(
        ubm: &DiagonalGmm,
        groups: &[(u32, u32, F)],
        rank: usize,
    ) -> Self {
        assert!(rank > 0, "rank must be positive");
        // speaker → (session → supervectors).
        let mut by_speaker: std::collections::BTreeMap<
            u32,
            std::collections::BTreeMap<u32, Vec<Vec<f64>>>,
        > = std::collections::BTreeMap::new();
        for (spk, sess, frames) in groups {
            if frames.num_frames() == 0 {
                continue;
            }
            by_speaker
                .entry(*spk)
                .or_default()
                .entry(*sess)
                .or_default()
                .push(supervector(ubm, frames));
        }
        let mut deltas: Vec<Vec<f64>> = Vec::new();
        for sessions in by_speaker.values() {
            if sessions.len() < 2 {
                continue;
            }
            let session_means: Vec<Vec<f64>> = sessions.values().map(|svs| mean_of(svs)).collect();
            let speaker_mean = mean_of(&session_means);
            for sm in &session_means {
                deltas.push(sm.iter().zip(&speaker_mean).map(|(a, b)| a - b).collect());
            }
        }
        assert!(
            deltas.len() >= 2,
            "need multi-session training data to estimate session variability \
             ({} deltas)",
            deltas.len()
        );
        let pca = Pca::fit_gram(&deltas, rank);
        Self {
            basis: pca.components().to_vec(),
            num_components: ubm.num_components(),
            dim: ubm.dim(),
        }
    }

    /// Rank of the subspace (may be below the requested rank when the
    /// training data had less session variation).
    pub fn rank(&self) -> usize {
        self.basis.len()
    }

    /// Removes the session component of `frames` in place.
    ///
    /// The utterance's supervector offset is projected onto the subspace;
    /// the projected per-component offsets are subtracted from each frame
    /// in proportion to the frame's component responsibilities.
    pub fn compensate<F: FrameSourceMut + ?Sized>(&self, ubm: &DiagonalGmm, frames: &mut F) {
        if frames.num_frames() == 0 || self.basis.is_empty() {
            return;
        }
        let sv = supervector(ubm, frames);
        // Projection onto the basis.
        let mut offset = vec![0.0; sv.len()];
        for b in &self.basis {
            let coef: f64 = b.iter().zip(&sv).map(|(x, y)| x * y).sum();
            for (o, bi) in offset.iter_mut().zip(b) {
                *o += coef * bi;
            }
        }
        // Subtract responsibility-weighted per-component offsets.
        let mut log_w = Vec::new();
        ubm.log_weights_into(&mut log_w);
        let mut r = Vec::new();
        for i in 0..frames.num_frames() {
            let f = frames.frame_mut(i);
            ubm.responsibilities_into(f, &log_w, &mut r);
            for d in 0..self.dim {
                let mut corr = 0.0;
                for (c, &rc) in r.iter().enumerate().take(self.num_components) {
                    corr += rc * offset[c * self.dim + d];
                }
                f[d] -= corr;
            }
        }
    }
}

/// Relevance-weighted centered supervector of an utterance: for each UBM
/// component, `w_c · (E_c[x] − m_c)` with `w_c = n_c / (n_c + τ)`.
pub fn supervector<F: FrameSource + ?Sized>(ubm: &DiagonalGmm, frames: &F) -> Vec<f64> {
    let k = ubm.num_components();
    let dim = ubm.dim();
    let mut log_w = Vec::new();
    ubm.log_weights_into(&mut log_w);
    let mut r = Vec::new();
    let mut nk = vec![0.0; k];
    let mut sum = vec![0.0; k * dim];
    for i in 0..frames.num_frames() {
        let x = frames.frame(i);
        ubm.responsibilities_into(x, &log_w, &mut r);
        for c in 0..k {
            nk[c] += r[c];
            let row = &mut sum[c * dim..(c + 1) * dim];
            for (s, &xi) in row.iter_mut().zip(x) {
                *s += r[c] * xi;
            }
        }
    }
    let mut sv = vec![0.0; k * dim];
    for c in 0..k {
        if nk[c] < 1e-8 {
            continue;
        }
        let w = nk[c] / (nk[c] + SUPERVECTOR_RELEVANCE);
        for d in 0..dim {
            sv[c * dim + d] = w * (sum[c * dim + d] / nk[c] - ubm.means()[c][d]);
        }
    }
    sv
}

/// The ISV verification backend (the "ISV" system of Table I): GMM–UBM
/// scoring on session-compensated features.
#[derive(Debug, Clone)]
pub struct IsvBackend {
    /// The underlying GMM–UBM machinery.
    pub ubm_backend: UbmBackend,
    /// The session subspace.
    pub subspace: SessionSubspace,
    /// The UBM backend's Z-norm cohort, session-compensated (with UBM
    /// likelihood terms recomputed on the compensated frames).
    cohort: Vec<CohortUtterance>,
}

impl IsvBackend {
    /// Builds an ISV backend over an existing UBM backend; the backend's
    /// Z-norm cohort (if any) is re-used with compensation applied.
    pub fn new(ubm_backend: UbmBackend, subspace: SessionSubspace) -> Self {
        let mut buf = Vec::new();
        let cohort = ubm_backend
            .cohort()
            .iter()
            .map(|c| {
                let mut frames = c.frames.clone();
                subspace.compensate(&ubm_backend.ubm, &mut frames);
                let ubm_mean_ll = ubm_backend
                    .prepared_ubm()
                    .mean_log_likelihood(&frames, &mut buf);
                CohortUtterance {
                    frames,
                    ubm_mean_ll,
                }
            })
            .collect();
        Self {
            ubm_backend,
            subspace,
            cohort,
        }
    }

    /// The shared front end.
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.ubm_backend.extractor
    }

    /// Enrolls a speaker on compensated features.
    ///
    /// # Panics
    ///
    /// Panics if no feature frames can be extracted.
    pub fn enroll(&self, speaker_id: u32, utterances: &[&[f64]]) -> SpeakerModel {
        let per_utt: Vec<FrameMatrix> = utterances
            .iter()
            .map(|audio| {
                let mut f = self.ubm_backend.extractor.extract(audio);
                self.subspace.compensate(&self.ubm_backend.ubm, &mut f);
                f
            })
            .collect();
        let mut frames = FrameMatrix::default();
        for f in &per_utt {
            frames.extend_rows(f);
        }
        assert!(!frames.is_empty(), "enrollment produced no frames");
        let gmm = self
            .ubm_backend
            .ubm
            .map_adapt_means(&frames, crate::model::RELEVANCE_FACTOR);
        let znorm = crate::model::znorm_stats(&gmm, &self.cohort);
        let genuine_ref =
            crate::model::genuine_reference(&self.ubm_backend.ubm, &per_utt, &self.cohort);
        SpeakerModel::new(speaker_id, gmm, znorm, genuine_ref)
    }

    /// Scores audio against a model on compensated features (exact,
    /// reference scoring path).
    pub fn score(&self, model: &SpeakerModel, audio: &[f64]) -> f64 {
        let mut frames = self.ubm_backend.extractor.extract(audio);
        self.subspace.compensate(&self.ubm_backend.ubm, &mut frames);
        self.ubm_backend.score_frames(model, &frames)
    }

    /// Scores audio on compensated features with top-C pruning and
    /// per-call accounting. Extraction and compensation still allocate
    /// (the supervector projection dominates the ISV path); only the
    /// GMM scoring reuses the per-thread scratch.
    pub fn score_detailed(&self, model: &SpeakerModel, audio: &[f64], top_c: usize) -> AsvScore {
        self.score_detailed_opts(model, audio, top_c, false)
    }

    /// [`Self::score_detailed`] with an explicit quantized-model toggle:
    /// when `quantized` is set, GMM scoring runs on the cached i16-mean
    /// [`magshield_ml::gmm::QuantizedGmm`] pair instead of the exact
    /// [`magshield_ml::gmm::PreparedGmm`] pair. Compensation always runs
    /// on the exact UBM (the subspace was trained against it).
    pub fn score_detailed_opts(
        &self,
        model: &SpeakerModel,
        audio: &[f64],
        top_c: usize,
        quantized: bool,
    ) -> AsvScore {
        let mut frames = self.ubm_backend.extractor.extract(audio);
        self.subspace.compensate(&self.ubm_backend.ubm, &mut frames);
        let b = with_session_scratch(|s| {
            if quantized {
                llr_score_quantized(
                    model.quantized(),
                    self.ubm_backend.quantized_ubm(),
                    &frames,
                    top_c,
                    &mut s.score,
                )
            } else {
                llr_score_prepared(
                    model.prepared(),
                    self.ubm_backend.prepared_ubm(),
                    &frames,
                    top_c,
                    &mut s.score,
                )
            }
        });
        AsvScore {
            z: model.normalize(b.score),
            frames: b.frames,
            pruned_components: b.pruned_components,
            evaluated_components: b.evaluated_components,
            scratch_grew_bytes: 0,
        }
    }
}

impl BinaryCodec for SessionSubspace {
    const MAGIC: u32 = codec::magic(b"MSUB");
    const VERSION: u8 = 1;
    const NAME: &'static str = "SessionSubspace";

    fn encode_payload(&self, w: &mut ByteWriter) {
        w.put_len(self.num_components);
        w.put_len(self.dim);
        w.put_len(self.basis.len());
        for b in &self.basis {
            w.put_f64_slice(b);
        }
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let invalid = |reason: String| CodecError::Invalid {
            artifact: Self::NAME,
            reason,
        };
        let num_components = r.get_len()?;
        let dim = r.get_len()?;
        if num_components == 0 || dim == 0 {
            return Err(invalid("supervector shape must be positive".to_string()));
        }
        let flat = num_components
            .checked_mul(dim)
            .ok_or_else(|| invalid("supervector shape overflows".to_string()))?;
        let rank = r.get_len()?;
        let mut basis = Vec::with_capacity(rank);
        for _ in 0..rank {
            let b = r.get_f64_vec(flat)?;
            if !b.iter().all(|v| v.is_finite()) {
                return Err(invalid("basis must be finite".to_string()));
            }
            basis.push(b);
        }
        Ok(Self {
            basis,
            num_components,
            dim,
        })
    }
}

/// Only the UBM machinery and the subspace are serialized: the compensated
/// Z-norm cohort is a deterministic function of both, so decoding rebuilds
/// it through [`IsvBackend::new`] exactly as the trainer did.
impl BinaryCodec for IsvBackend {
    const MAGIC: u32 = codec::magic(b"MISV");
    const VERSION: u8 = 1;
    const NAME: &'static str = "IsvBackend";

    fn encode_payload(&self, w: &mut ByteWriter) {
        w.put_nested(&self.ubm_backend.to_bytes());
        w.put_nested(&self.subspace.to_bytes());
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let ubm_backend = UbmBackend::from_bytes(r.get_nested()?)?;
        let subspace = SessionSubspace::from_bytes(r.get_nested()?)?;
        if subspace.num_components != ubm_backend.ubm.num_components()
            || subspace.dim != ubm_backend.ubm.dim()
        {
            return Err(CodecError::Invalid {
                artifact: Self::NAME,
                reason: "subspace supervector layout does not match the UBM".to_string(),
            });
        }
        Ok(Self::new(ubm_backend, subspace))
    }
}

fn mean_of(vectors: &[Vec<f64>]) -> Vec<f64> {
    let dim = vectors[0].len();
    let mut m = vec![0.0; dim];
    for v in vectors {
        for (mi, x) in m.iter_mut().zip(v) {
            *mi += x;
        }
    }
    for mi in &mut m {
        *mi /= vectors.len() as f64;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use magshield_simkit::rng::SimRng;

    /// A 2-component, 2-D UBM with well-separated components.
    fn toy_ubm() -> DiagonalGmm {
        DiagonalGmm::from_parameters(
            vec![0.5, 0.5],
            vec![vec![-3.0, 0.0], vec![3.0, 0.0]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
        )
    }

    /// Frames around both components, with a session offset along y and a
    /// per-speaker offset along... y as well but opposed across sessions.
    fn session_frames(rng: &SimRng, session_y: f64, speaker_y: f64, n: usize) -> Vec<Vec<f64>> {
        let mut r = rng.fork("frames");
        (0..n)
            .map(|i| {
                let cx = if i % 2 == 0 { -3.0 } else { 3.0 };
                vec![
                    cx + r.gauss(0.0, 0.3),
                    session_y + speaker_y + r.gauss(0.0, 0.3),
                ]
            })
            .collect()
    }

    fn toy_groups(rng: &SimRng) -> Vec<(u32, u32, Vec<Vec<f64>>)> {
        let mut groups = Vec::new();
        for spk in 0..3u32 {
            let speaker_y = (spk as f64 - 1.0) * 0.3; // small speaker trait
            for sess in 0..3u32 {
                let session_y = (sess as f64 - 1.0) * 2.0; // big session shift
                groups.push((
                    spk,
                    sess,
                    session_frames(
                        &rng.fork_indexed("g", u64::from(spk) << 8 | u64::from(sess)),
                        session_y,
                        speaker_y,
                        60,
                    ),
                ));
            }
        }
        groups
    }

    #[test]
    fn subspace_captures_session_direction() {
        let rng = SimRng::from_seed(1);
        let ubm = toy_ubm();
        let sub = SessionSubspace::estimate(&ubm, &toy_groups(&rng), 1);
        assert_eq!(sub.rank(), 1);
        // The session shift moves the y-mean of both components equally:
        // basis should weight the y dims of both components.
        let b = &sub.basis[0];
        let y_energy = b[1] * b[1] + b[3] * b[3];
        assert!(y_energy > 0.9, "basis {b:?} should live on the y dims");
    }

    #[test]
    fn compensation_removes_session_shift() {
        let rng = SimRng::from_seed(2);
        let ubm = toy_ubm();
        let sub = SessionSubspace::estimate(&ubm, &toy_groups(&rng), 1);
        let mut frames = session_frames(&rng.fork("test"), 2.0, 0.0, 60);
        let mean_y_before: f64 = frames.iter().map(|f| f[1]).sum::<f64>() / frames.len() as f64;
        sub.compensate(&ubm, &mut frames);
        let mean_y_after: f64 = frames.iter().map(|f| f[1]).sum::<f64>() / frames.len() as f64;
        assert!(
            mean_y_after.abs() < mean_y_before.abs() * 0.5,
            "session y-shift should shrink: {mean_y_before} → {mean_y_after}"
        );
    }

    #[test]
    fn compensation_agrees_across_frame_layouts() {
        let rng = SimRng::from_seed(8);
        let ubm = toy_ubm();
        let sub = SessionSubspace::estimate(&ubm, &toy_groups(&rng), 1);
        let mut rows = session_frames(&rng.fork("layout"), 1.5, 0.2, 40);
        let mut flat = FrameMatrix::from_rows(&rows);
        sub.compensate(&ubm, &mut rows);
        sub.compensate(&ubm, &mut flat);
        assert_eq!(flat, FrameMatrix::from_rows(&rows), "layouts must agree");
    }

    #[test]
    fn compensation_preserves_component_structure() {
        let rng = SimRng::from_seed(3);
        let ubm = toy_ubm();
        let sub = SessionSubspace::estimate(&ubm, &toy_groups(&rng), 1);
        let mut frames = session_frames(&rng.fork("test2"), -2.0, 0.0, 60);
        sub.compensate(&ubm, &mut frames);
        // x-means of the two clusters must stay near ±3.
        let left: Vec<f64> = frames.iter().filter(|f| f[0] < 0.0).map(|f| f[0]).collect();
        let right: Vec<f64> = frames.iter().filter(|f| f[0] > 0.0).map(|f| f[0]).collect();
        let m = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!((m(&left) + 3.0).abs() < 0.4);
        assert!((m(&right) - 3.0).abs() < 0.4);
    }

    #[test]
    fn supervector_is_zero_for_ubm_centered_data() {
        let rng = SimRng::from_seed(4);
        let ubm = toy_ubm();
        let frames = session_frames(&rng.fork("c"), 0.0, 0.0, 400);
        let sv = supervector(&ubm, &frames);
        let norm: f64 = sv.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(norm < 0.5, "centered data → small supervector, got {norm}");
    }

    #[test]
    fn empty_frames_are_noop() {
        let rng = SimRng::from_seed(5);
        let ubm = toy_ubm();
        let sub = SessionSubspace::estimate(&ubm, &toy_groups(&rng), 1);
        let mut frames: Vec<Vec<f64>> = Vec::new();
        sub.compensate(&ubm, &mut frames);
        assert!(frames.is_empty());
    }

    #[test]
    #[should_panic(expected = "rank must be positive")]
    fn rejects_zero_rank() {
        let rng = SimRng::from_seed(6);
        SessionSubspace::estimate(&toy_ubm(), &toy_groups(&rng), 0);
    }

    #[test]
    #[should_panic(expected = "multi-session")]
    fn rejects_single_session_data() {
        let rng = SimRng::from_seed(7);
        let groups = vec![(0u32, 0u32, session_frames(&rng, 0.0, 0.0, 30))];
        SessionSubspace::estimate(&toy_ubm(), &groups, 1);
    }

    mod codec_round_trip {
        use super::*;
        use magshield_ml::codec::{assert_hostile_input_fails, BinaryCodec, CodecError};

        #[test]
        fn subspace_round_trips_exactly() {
            let rng = SimRng::from_seed(9);
            let ubm = toy_ubm();
            let sub = SessionSubspace::estimate(&ubm, &toy_groups(&rng), 2);
            let back = SessionSubspace::from_bytes(&sub.to_bytes()).unwrap();
            assert_eq!(back.basis, sub.basis);
            assert_eq!(back.num_components, sub.num_components);
            assert_eq!(back.dim, sub.dim);
            // Compensation — the subspace's one job — is bit-identical.
            let mut a = session_frames(&rng.fork("rt"), 1.0, 0.1, 30);
            let mut b = a.clone();
            sub.compensate(&ubm, &mut a);
            back.compensate(&ubm, &mut b);
            assert_eq!(a, b);
        }

        #[test]
        fn isv_backend_round_trips_with_identical_cohort_rebuild() {
            let rng = SimRng::from_seed(10);
            let ubm = toy_ubm();
            let sub = SessionSubspace::estimate(&ubm, &toy_groups(&rng), 1);
            // A backend with a tiny synthetic "audio" cohort is enough to
            // exercise the deterministic cohort recompensation.
            let fx = crate::frontend::FeatureExtractor::new(16_000.0);
            let backend = IsvBackend::new(UbmBackend::new(fx, ubm), sub);
            let back = IsvBackend::from_bytes(&backend.to_bytes()).unwrap();
            assert_eq!(back.ubm_backend.ubm, backend.ubm_backend.ubm);
            assert_eq!(back.subspace.basis, backend.subspace.basis);
            assert_eq!(back.cohort, backend.cohort);
        }

        #[test]
        fn hostile_input_yields_typed_errors() {
            let rng = SimRng::from_seed(11);
            let sub = SessionSubspace::estimate(&toy_ubm(), &toy_groups(&rng), 1);
            assert_hostile_input_fails::<SessionSubspace>(&sub.to_bytes());
        }

        #[test]
        fn mismatched_subspace_layout_is_invalid() {
            let rng = SimRng::from_seed(12);
            let sub = SessionSubspace::estimate(&toy_ubm(), &toy_groups(&rng), 1);
            // A 3-D UBM cannot host a subspace estimated over a 2-D one.
            let other_ubm = DiagonalGmm::from_parameters(
                vec![1.0],
                vec![vec![0.0, 0.0, 0.0]],
                vec![vec![1.0, 1.0, 1.0]],
            );
            let fx = crate::frontend::FeatureExtractor::new(16_000.0);
            let mut w = magshield_ml::codec::ByteWriter::new();
            w.put_nested(&UbmBackend::new(fx, other_ubm).to_bytes());
            w.put_nested(&sub.to_bytes());
            let payload = w.into_bytes();
            let mut r = magshield_ml::codec::ByteReader::new(&payload);
            assert!(matches!(
                IsvBackend::decode_payload(&mut r),
                Err(CodecError::Invalid { .. })
            ));
        }
    }
}

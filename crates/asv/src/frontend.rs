//! ASV acoustic front end: VAD → MFCC (+Δ) → cepstral mean normalization.

use magshield_dsp::frame::{FrameMatrix, ScratchPad};
use magshield_dsp::mel::{
    append_deltas_into, cepstral_mean_normalize_flat, MfccExtractor, StreamingMfcc,
};
use magshield_dsp::vad::{trim_silence_into, StreamingVad, VadConfig, VadScratch};
use magshield_ml::codec::{self, BinaryCodec, ByteReader, ByteWriter, CodecError};

/// Reusable buffers for [`FeatureExtractor::extract_into`]: DSP scratch,
/// VAD scratch, the trimmed-speech buffer and the pre-delta coefficient
/// matrix. One per scoring thread; every buffer grows to its high-water
/// mark once and is then reused allocation-free.
#[derive(Debug, Clone, Default)]
pub struct FrontendScratch {
    dsp: ScratchPad,
    vad: VadScratch,
    speech: Vec<f64>,
    base: FrameMatrix,
}

impl FrontendScratch {
    /// A fresh scratch with no reserved memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently reserved across all buffers (capacities).
    pub fn footprint_bytes(&self) -> usize {
        self.dsp.footprint_bytes()
            + self.vad.footprint_bytes()
            + self.speech.capacity() * std::mem::size_of::<f64>()
            + self.base.capacity_bytes()
    }
}

/// Feature extraction configuration and machinery.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    mfcc: MfccExtractor,
    vad: VadConfig,
    /// Whether to append delta features.
    pub use_deltas: bool,
    /// Whether to apply per-utterance cepstral mean normalization.
    pub use_cmn: bool,
    /// Run MFCC extraction through the fused pre-emphasis+window+real-FFT
    /// front end ([`MfccExtractor::extract_fused_into`]). Opt-in: fused
    /// output agrees with the exact path to rounding error but is not
    /// bitwise identical, so the default stays on the path every committed
    /// score was produced with.
    pub fused_frontend: bool,
}

impl FeatureExtractor {
    /// Standard speech front end at `sample_rate`: 13 MFCCs + deltas, CMN.
    pub fn new(sample_rate: f64) -> Self {
        Self {
            mfcc: MfccExtractor::new(sample_rate),
            vad: VadConfig::default(),
            use_deltas: true,
            use_cmn: true,
            fused_frontend: false,
        }
    }

    /// Feature dimensionality produced.
    pub fn dim(&self) -> usize {
        if self.use_deltas {
            2 * self.mfcc.num_coeffs
        } else {
            self.mfcc.num_coeffs
        }
    }

    /// Audio sample rate this front end was built for (Hz).
    pub fn sample_rate(&self) -> f64 {
        self.mfcc.sample_rate
    }

    /// Extracts features from one utterance.
    ///
    /// Convenience wrapper over [`Self::extract_into`] with throwaway
    /// scratch; hot paths should hold a [`FrontendScratch`] and call
    /// `extract_into` directly.
    pub fn extract(&self, audio: &[f64]) -> FrameMatrix {
        let mut scratch = FrontendScratch::new();
        let mut out = FrameMatrix::default();
        self.extract_into(audio, &mut scratch, &mut out);
        out
    }

    /// Zero-allocation feature extraction into a caller-owned matrix.
    pub fn extract_into(&self, audio: &[f64], s: &mut FrontendScratch, out: &mut FrameMatrix) {
        trim_silence_into(
            audio,
            self.mfcc.sample_rate,
            self.vad,
            &mut s.vad,
            &mut s.speech,
        );
        let source: &[f64] = if s.speech.len() >= self.mfcc.frame_len {
            &s.speech
        } else {
            audio // fall back if VAD ate everything (e.g. quiet replays)
        };
        if self.use_deltas {
            self.mfcc_into(source, &mut s.dsp, &mut s.base);
            if self.use_cmn {
                cepstral_mean_normalize_flat(&mut s.base);
            }
            append_deltas_into(&s.base, out);
        } else {
            self.mfcc_into(source, &mut s.dsp, out);
            if self.use_cmn {
                cepstral_mean_normalize_flat(out);
            }
        }
    }

    /// Base MFCC extraction through the configured path (exact by default,
    /// fused when [`Self::fused_frontend`] is set).
    fn mfcc_into(&self, source: &[f64], pad: &mut ScratchPad, out: &mut FrameMatrix) {
        if self.fused_frontend {
            self.mfcc.extract_fused_into(source, pad, out);
        } else {
            self.mfcc.extract_into(source, pad, out);
        }
    }
}

/// Chunk-fed front end for streaming verification.
///
/// Carries pre-emphasis and frame-boundary state across chunk seams (via
/// [`StreamingMfcc`]) plus a chunk-fed VAD, so per-chunk ASV sufficient
/// statistics can be accumulated while audio is still arriving.
///
/// Exactness contract: the base MFCC rows are a bit-identical prefix of
/// `MfccExtractor::extract_into` over the *untrimmed* concatenated audio.
/// The one-shot front end additionally trims silence with a
/// whole-utterance noise floor and normalizes cepstral means over the whole
/// utterance, both of which depend on audio that has not arrived yet —
/// so [`StreamingExtractor::provisional_into`] features are provisional by
/// construction (they converge toward the one-shot features as the stream
/// completes, and chunking never changes what any given prefix produces).
/// Final decisions must come from the one-shot
/// [`FeatureExtractor::extract_into`] on the complete utterance; the
/// streaming cascade uses these provisional features only for mid-stream
/// score trends.
#[derive(Debug, Clone)]
pub struct StreamingExtractor {
    use_deltas: bool,
    use_cmn: bool,
    mfcc: StreamingMfcc,
    vad: StreamingVad,
    /// Scratch for the CMN copy inside [`Self::provisional_into`].
    norm: FrameMatrix,
}

impl StreamingExtractor {
    /// Opens a streaming front end mirroring `fx`'s configuration.
    pub fn new(fx: &FeatureExtractor) -> Self {
        Self {
            use_deltas: fx.use_deltas,
            use_cmn: fx.use_cmn,
            mfcc: StreamingMfcc::new(fx.mfcc.clone()),
            vad: StreamingVad::new(fx.mfcc.sample_rate, fx.vad),
            norm: FrameMatrix::default(),
        }
    }

    /// Feature dimensionality of [`Self::provisional_into`] rows.
    pub fn dim(&self) -> usize {
        let base = self.mfcc.extractor().num_coeffs;
        if self.use_deltas {
            2 * base
        } else {
            base
        }
    }

    /// Ingests the next chunk of raw audio; returns the number of new base
    /// MFCC rows produced.
    pub fn push(&mut self, chunk: &[f64]) -> usize {
        self.vad.push(chunk);
        self.mfcc.push(chunk)
    }

    /// Base MFCC rows so far (bit-identical prefix of the untrimmed
    /// one-shot extraction).
    pub fn base_frames(&self) -> &FrameMatrix {
        self.mfcc.frames()
    }

    /// Provisional speech-activity ratio over the prefix seen so far.
    pub fn activity_ratio(&self) -> f64 {
        self.vad.snapshot().activity_ratio()
    }

    /// Writes provisional features (CMN over the prefix, deltas per the
    /// front-end configuration) for everything ingested so far into `out`.
    pub fn provisional_into(&mut self, out: &mut FrameMatrix) {
        let base = self.mfcc.frames();
        if self.use_deltas {
            self.norm.reset(base.cols());
            self.norm.extend_rows(base);
            if self.use_cmn {
                cepstral_mean_normalize_flat(&mut self.norm);
            }
            append_deltas_into(&self.norm, out);
        } else {
            out.reset(base.cols());
            out.extend_rows(base);
            if self.use_cmn {
                cepstral_mean_normalize_flat(out);
            }
        }
    }
}

/// The front end is configuration, not learned state: serializing the
/// sample rate and feature switches is enough to rebuild it exactly via
/// [`FeatureExtractor::new`] (MFCC geometry and VAD defaults are derived).
///
/// Version 2 appends the `fused_frontend` switch; version-1 artifacts
/// (the committed golden bundle among them) still decode with the flag
/// off — the path they were trained and scored on.
impl BinaryCodec for FeatureExtractor {
    const MAGIC: u32 = codec::magic(b"MFEX");
    const VERSION: u8 = 2;
    const MIN_VERSION: u8 = 1;
    const NAME: &'static str = "FeatureExtractor";

    fn encode_payload(&self, w: &mut ByteWriter) {
        w.put_f64(self.sample_rate());
        w.put_bool(self.use_deltas);
        w.put_bool(self.use_cmn);
        w.put_bool(self.fused_frontend);
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Self::decode_versioned_payload(Self::VERSION, r)
    }

    fn decode_versioned_payload(version: u8, r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let sample_rate = r.get_f64()?;
        let use_deltas = r.get_bool()?;
        let use_cmn = r.get_bool()?;
        let fused_frontend = if version >= 2 { r.get_bool()? } else { false };
        if !(sample_rate.is_finite() && sample_rate >= 1000.0) {
            return Err(CodecError::Invalid {
                artifact: Self::NAME,
                reason: format!("implausible sample rate {sample_rate}"),
            });
        }
        let mut fx = Self::new(sample_rate);
        fx.use_deltas = use_deltas;
        fx.use_cmn = use_cmn;
        fx.fused_frontend = fused_frontend;
        Ok(fx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speechy(fs: f64) -> Vec<f64> {
        let mut v = vec![0.0; (0.3 * fs) as usize];
        for i in 0..(fs as usize) {
            let t = i as f64 / fs;
            v.push(
                (std::f64::consts::TAU * 150.0 * t).sin()
                    + 0.4 * (std::f64::consts::TAU * 450.0 * t).sin(),
            );
        }
        v.extend(vec![0.0; (0.3 * fs) as usize]);
        v
    }

    #[test]
    fn produces_delta_augmented_frames() {
        let fx = FeatureExtractor::new(16_000.0);
        let frames = fx.extract(&speechy(16_000.0));
        assert!(!frames.is_empty());
        assert_eq!(frames.cols(), fx.dim());
        assert_eq!(fx.dim(), 26);
    }

    #[test]
    fn vad_trims_silence() {
        let fx = FeatureExtractor::new(16_000.0);
        let frames_padded = fx.extract(&speechy(16_000.0));
        // 1 s of speech → ~98 frames; with the 0.6 s of silence trimmed the
        // count should be near that, not ~158.
        assert!(
            frames_padded.rows() < 125,
            "VAD should trim: {} frames",
            frames_padded.rows()
        );
    }

    #[test]
    fn cmn_zeroes_static_means() {
        let mut fx = FeatureExtractor::new(16_000.0);
        fx.use_deltas = false;
        let frames = fx.extract(&speechy(16_000.0));
        for d in 0..13 {
            let mean: f64 = frames.iter_rows().map(|f| f[d]).sum::<f64>() / frames.rows() as f64;
            assert!(mean.abs() < 1e-9, "dim {d} mean {mean}");
        }
    }

    #[test]
    fn silence_only_falls_back_gracefully() {
        let fx = FeatureExtractor::new(16_000.0);
        let frames = fx.extract(&vec![0.0; 16_000]);
        // Falls back to the raw audio; still produces finite frames.
        assert!(!frames.is_empty());
        assert!(frames.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn streaming_base_rows_match_untrimmed_one_shot() {
        let fx = FeatureExtractor::new(16_000.0);
        let sig = speechy(16_000.0);
        let oracle = fx.mfcc.extract(&sig);
        for chunk in [160usize, 1600, 1601, sig.len()] {
            let mut sx = StreamingExtractor::new(&fx);
            for c in sig.chunks(chunk) {
                sx.push(c);
            }
            assert_eq!(
                sx.base_frames().as_slice(),
                oracle.as_slice(),
                "chunk {chunk}"
            );
        }
    }

    #[test]
    fn streaming_provisional_features_have_frontend_shape() {
        let fx = FeatureExtractor::new(16_000.0);
        let sig = speechy(16_000.0);
        let mut sx = StreamingExtractor::new(&fx);
        sx.push(&sig[..8000]);
        let mut out = FrameMatrix::default();
        sx.provisional_into(&mut out);
        assert!(!out.is_empty());
        assert_eq!(out.cols(), fx.dim());
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
        // CMN over the prefix: per-dimension base means are zero.
        for d in 0..13 {
            let mean: f64 = out.iter_rows().map(|r| r[d]).sum::<f64>() / out.rows() as f64;
            assert!(mean.abs() < 1e-9, "dim {d} mean {mean}");
        }
        // Activity should register once the loud segment starts.
        sx.push(&sig[8000..]);
        assert!(sx.activity_ratio() > 0.3);
    }

    #[test]
    fn fused_frontend_agrees_with_exact_to_rounding() {
        let sig = speechy(16_000.0);
        let exact_fx = FeatureExtractor::new(16_000.0);
        let mut fused_fx = FeatureExtractor::new(16_000.0);
        fused_fx.fused_frontend = true;
        let exact = exact_fx.extract(&sig);
        let fused = fused_fx.extract(&sig);
        assert_eq!(fused.rows(), exact.rows());
        assert_eq!(fused.cols(), exact.cols());
        for (t, (f, e)) in fused.iter_rows().zip(exact.iter_rows()).enumerate() {
            for (d, (fv, ev)) in f.iter().zip(e).enumerate() {
                assert!((fv - ev).abs() < 1e-7, "frame {t} dim {d}: {fv} vs {ev}");
            }
        }
    }

    #[test]
    fn fused_flag_round_trips_and_v1_defaults_off() {
        let mut fx = FeatureExtractor::new(16_000.0);
        fx.fused_frontend = true;
        let back = FeatureExtractor::from_bytes(&fx.to_bytes()).unwrap();
        assert!(back.fused_frontend);
        // A v1 frame: version byte 1, payload without the trailing flag.
        let mut payload = ByteWriter::new();
        fx.encode_payload(&mut payload);
        let mut payload = payload.into_bytes();
        payload.pop();
        let mut w = ByteWriter::new();
        w.put_u32(FeatureExtractor::MAGIC);
        w.put_u8(1);
        w.put_len(payload.len());
        let mut frame = w.into_bytes();
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&codec::fnv1a_64(&frame).to_le_bytes());
        let v1 = FeatureExtractor::from_bytes(&frame).unwrap();
        assert!(
            !v1.fused_frontend,
            "v1 artifacts must decode with fused off"
        );
        assert_eq!(v1.sample_rate(), fx.sample_rate());
    }

    #[test]
    fn scratch_reuse_is_allocation_stable_and_identical() {
        let fx = FeatureExtractor::new(16_000.0);
        let sig = speechy(16_000.0);
        let mut s = FrontendScratch::new();
        let mut out = FrameMatrix::default();
        fx.extract_into(&sig, &mut s, &mut out);
        let first = out.clone();
        let footprint = s.footprint_bytes();
        fx.extract_into(&sig, &mut s, &mut out);
        assert_eq!(out, first);
        assert_eq!(s.footprint_bytes(), footprint, "scratch regrew");
        assert_eq!(out, fx.extract(&sig), "one-shot path must agree");
    }
}

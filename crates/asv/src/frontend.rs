//! ASV acoustic front end: VAD → MFCC (+Δ) → cepstral mean normalization.

use magshield_dsp::mel::{append_deltas, cepstral_mean_normalize, MfccExtractor};
use magshield_dsp::vad::{trim_silence, VadConfig};

/// Feature extraction configuration and machinery.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    mfcc: MfccExtractor,
    vad: VadConfig,
    /// Whether to append delta features.
    pub use_deltas: bool,
    /// Whether to apply per-utterance cepstral mean normalization.
    pub use_cmn: bool,
}

impl FeatureExtractor {
    /// Standard speech front end at `sample_rate`: 13 MFCCs + deltas, CMN.
    pub fn new(sample_rate: f64) -> Self {
        Self {
            mfcc: MfccExtractor::new(sample_rate),
            vad: VadConfig::default(),
            use_deltas: true,
            use_cmn: true,
        }
    }

    /// Feature dimensionality produced.
    pub fn dim(&self) -> usize {
        if self.use_deltas {
            2 * self.mfcc.num_coeffs
        } else {
            self.mfcc.num_coeffs
        }
    }

    /// Extracts features from one utterance.
    pub fn extract(&self, audio: &[f64]) -> Vec<Vec<f64>> {
        let speech = trim_silence(audio, self.mfcc.sample_rate, self.vad);
        let source = if speech.len() >= self.mfcc.frame_len {
            &speech
        } else {
            audio // fall back if VAD ate everything (e.g. quiet replays)
        };
        let mut frames = self.mfcc.extract(source);
        if self.use_cmn {
            cepstral_mean_normalize(&mut frames);
        }
        if self.use_deltas {
            frames = append_deltas(&frames);
        }
        frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speechy(fs: f64) -> Vec<f64> {
        let mut v = vec![0.0; (0.3 * fs) as usize];
        for i in 0..(fs as usize) {
            let t = i as f64 / fs;
            v.push(
                (std::f64::consts::TAU * 150.0 * t).sin()
                    + 0.4 * (std::f64::consts::TAU * 450.0 * t).sin(),
            );
        }
        v.extend(vec![0.0; (0.3 * fs) as usize]);
        v
    }

    #[test]
    fn produces_delta_augmented_frames() {
        let fx = FeatureExtractor::new(16_000.0);
        let frames = fx.extract(&speechy(16_000.0));
        assert!(!frames.is_empty());
        assert!(frames.iter().all(|f| f.len() == fx.dim()));
        assert_eq!(fx.dim(), 26);
    }

    #[test]
    fn vad_trims_silence() {
        let fx = FeatureExtractor::new(16_000.0);
        let frames_padded = fx.extract(&speechy(16_000.0));
        // 1 s of speech → ~98 frames; with the 0.6 s of silence trimmed the
        // count should be near that, not ~158.
        assert!(
            frames_padded.len() < 125,
            "VAD should trim: {} frames",
            frames_padded.len()
        );
    }

    #[test]
    fn cmn_zeroes_static_means() {
        let mut fx = FeatureExtractor::new(16_000.0);
        fx.use_deltas = false;
        let frames = fx.extract(&speechy(16_000.0));
        for d in 0..13 {
            let mean: f64 = frames.iter().map(|f| f[d]).sum::<f64>() / frames.len() as f64;
            assert!(mean.abs() < 1e-9, "dim {d} mean {mean}");
        }
    }

    #[test]
    fn silence_only_falls_back_gracefully() {
        let fx = FeatureExtractor::new(16_000.0);
        let frames = fx.extract(&vec![0.0; 16_000]);
        // Falls back to the raw audio; still produces finite frames.
        assert!(!frames.is_empty());
        assert!(frames.iter().flatten().all(|v| v.is_finite()));
    }
}

//! Trial protocols and verification reporting.

use magshield_ml::metrics::{eer_threshold, equal_error_rate, ErrorRates};
use serde::{Deserialize, Serialize};

/// One scored verification trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Claimed speaker id.
    pub claimed: u32,
    /// True speaker id of the audio.
    pub actual: u32,
    /// Verification score.
    pub score: f64,
}

impl TrialOutcome {
    /// Whether this is a genuine (target) trial.
    pub fn is_genuine(&self) -> bool {
        self.claimed == self.actual
    }
}

/// Aggregated verification results over a trial set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerificationReport {
    /// Genuine-trial scores.
    pub genuine_scores: Vec<f64>,
    /// Impostor-trial scores.
    pub impostor_scores: Vec<f64>,
}

impl VerificationReport {
    /// Builds a report from trial outcomes.
    pub fn from_trials(trials: &[TrialOutcome]) -> Self {
        let (genuine, impostor): (Vec<&TrialOutcome>, Vec<&TrialOutcome>) =
            trials.iter().partition(|t| t.is_genuine());
        Self {
            genuine_scores: genuine.iter().map(|t| t.score).collect(),
            impostor_scores: impostor.iter().map(|t| t.score).collect(),
        }
    }

    /// Equal error rate over the trial set.
    pub fn eer(&self) -> f64 {
        equal_error_rate(&self.genuine_scores, &self.impostor_scores)
    }

    /// The threshold at the EER operating point.
    pub fn eer_threshold(&self) -> f64 {
        eer_threshold(&self.genuine_scores, &self.impostor_scores)
    }

    /// FAR/FRR at an explicit threshold (accept iff score ≥ threshold).
    pub fn rates_at(&self, threshold: f64) -> ErrorRates {
        let frr = if self.genuine_scores.is_empty() {
            0.0
        } else {
            self.genuine_scores
                .iter()
                .filter(|&&s| s < threshold)
                .count() as f64
                / self.genuine_scores.len() as f64
        };
        let far = if self.impostor_scores.is_empty() {
            0.0
        } else {
            self.impostor_scores
                .iter()
                .filter(|&&s| s >= threshold)
                .count() as f64
                / self.impostor_scores.len() as f64
        };
        ErrorRates { far, frr }
    }

    /// FAR at the threshold where FRR first reaches zero — the paper's
    /// Table I reports FAR with genuine users accepted.
    pub fn far_at_zero_frr(&self) -> f64 {
        if self.genuine_scores.is_empty() {
            return 0.0;
        }
        let min_genuine = self
            .genuine_scores
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        self.rates_at(min_genuine).far
    }

    /// Trial counts `(genuine, impostor)`.
    pub fn counts(&self) -> (usize, usize) {
        (self.genuine_scores.len(), self.impostor_scores.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trials() -> Vec<TrialOutcome> {
        vec![
            TrialOutcome {
                claimed: 0,
                actual: 0,
                score: 2.0,
            },
            TrialOutcome {
                claimed: 0,
                actual: 0,
                score: 3.0,
            },
            TrialOutcome {
                claimed: 0,
                actual: 1,
                score: -1.0,
            },
            TrialOutcome {
                claimed: 0,
                actual: 2,
                score: 0.5,
            },
        ]
    }

    #[test]
    fn partitions_genuine_and_impostor() {
        let r = VerificationReport::from_trials(&trials());
        assert_eq!(r.counts(), (2, 2));
        assert_eq!(r.genuine_scores, vec![2.0, 3.0]);
    }

    #[test]
    fn eer_zero_when_separated() {
        let r = VerificationReport::from_trials(&trials());
        assert_eq!(r.eer(), 0.0);
    }

    #[test]
    fn far_at_zero_frr() {
        let r = VerificationReport::from_trials(&trials());
        // Accepting every genuine trial (threshold 2.0) admits no impostor.
        assert_eq!(r.far_at_zero_frr(), 0.0);
        // With a higher-scoring impostor it would not be zero.
        let mut ts = trials();
        ts.push(TrialOutcome {
            claimed: 0,
            actual: 3,
            score: 2.5,
        });
        let r2 = VerificationReport::from_trials(&ts);
        assert!((r2.far_at_zero_frr() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rates_at_threshold() {
        let r = VerificationReport::from_trials(&trials());
        let rates = r.rates_at(2.5);
        assert_eq!(rates.frr, 0.5);
        assert_eq!(rates.far, 0.0);
    }
}

#![warn(missing_docs)]

//! # magshield-asv
//!
//! An automatic speaker verification (ASV) stack standing in for the
//! Spear/Bob toolbox the paper uses as its fourth verification component
//! (§IV-C): "We further choose the Gaussian Mixture Model (GMM) and
//! Inter-Session Variability (ISV) techniques."
//!
//! Pipeline:
//!
//! 1. [`frontend`] — VAD-trimmed MFCC + delta features with cepstral mean
//!    normalization;
//! 2. [`ubm`] — EM-trained universal background model;
//! 3. [`model`] — MAP-adapted per-speaker models and LLR scoring
//!    (the "UBM" row of Table I);
//! 4. [`isv`] — feature-domain inter-session variability compensation: a
//!    session subspace estimated from within-speaker between-session
//!    variation, removed at both enrollment and test time (the "ISV" row
//!    of Table I);
//! 5. [`eval`] — trial protocols and FAR/FRR/EER evaluation.
//!
//! [`delta`] shrinks enrolled models to kilobyte wire records for the
//! durable store: a MAP-adapted speaker is means-only off the UBM, so
//! only the moved means ship (bit-identical reconstruction).

pub mod delta;
pub mod eval;
pub mod frontend;
pub mod isv;
pub mod model;
pub mod replay_baseline;
pub mod ubm;

pub use delta::DeltaSpeakerRecord;
pub use eval::{TrialOutcome, VerificationReport};
pub use frontend::{FeatureExtractor, FrontendScratch, StreamingExtractor};
pub use isv::IsvBackend;
pub use model::{
    with_session_scratch, AsvScore, CohortUtterance, SessionScratch, SpeakerModel, UbmBackend,
};
pub use replay_baseline::ReplayDetector;

//! Delta speaker records: kilobyte enrollment artifacts.
//!
//! An enrolled [`SpeakerModel`] is a MAP-adapted copy of the UBM —
//! [`UbmBackend::enroll`] calls `map_adapt_means`, which only moves the
//! component means. Serializing the full model therefore re-ships the
//! UBM's weights and variances with every enrollment, and a serving
//! bundle re-export re-ships the whole backend. A
//! [`DeltaSpeakerRecord`] instead stores the speaker's scalar metadata
//! (id, Z-norm statistics, genuine reference) plus a sparse
//! [`GmmMeanDelta`] against the UBM, reconstructing a **bit-identical**
//! `SpeakerModel` at decode time. This is what makes the durable
//! store's write-ahead log (and future replica sync) cost kilobytes per
//! enrollment instead of megabytes.

use crate::model::SpeakerModel;
use magshield_ml::codec::{self, BinaryCodec, ByteReader, ByteWriter, CodecError};
use magshield_ml::delta::{DeltaError, GmmMeanDelta};
use magshield_ml::gmm::DiagonalGmm;

/// A [`SpeakerModel`] expressed as a delta against the UBM it was
/// adapted from (magic `MSPD`).
///
/// Encode with [`DeltaSpeakerRecord::encode`]; reconstruct with
/// [`DeltaSpeakerRecord::reconstruct`] against the same UBM — the
/// result is bit-identical to the original model (every weight, mean
/// and variance compares equal under `to_bits()`). Models that are not
/// means-only adaptations of the given UBM refuse to delta-encode; the
/// caller falls back to the full [`SpeakerModel`] codec.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaSpeakerRecord {
    /// Claimed identity, mirrored from [`SpeakerModel::speaker_id`].
    pub speaker_id: u32,
    /// Z-norm statistics, mirrored from [`SpeakerModel::znorm`].
    pub znorm: Option<(f64, f64)>,
    /// Genuine reference, mirrored from [`SpeakerModel::genuine_ref`].
    pub genuine_ref: Option<f64>,
    /// Sparse mean delta of the adapted mixture against the UBM.
    pub delta: GmmMeanDelta,
}

impl DeltaSpeakerRecord {
    /// Encodes `model` as a delta record against `ubm`.
    ///
    /// Fails (so the caller can fall back to a full record) when the
    /// model's mixture is not a means-only adaptation of `ubm`.
    pub fn encode(ubm: &DiagonalGmm, model: &SpeakerModel) -> Result<Self, DeltaError> {
        Ok(Self {
            speaker_id: model.speaker_id,
            znorm: model.znorm,
            genuine_ref: model.genuine_ref,
            delta: GmmMeanDelta::encode(ubm, &model.gmm)?,
        })
    }

    /// Reconstructs the original [`SpeakerModel`], bit-identical to the
    /// one passed to [`DeltaSpeakerRecord::encode`]. The UBM must be the
    /// exact prior the record was encoded against (fingerprint-checked).
    pub fn reconstruct(&self, ubm: &DiagonalGmm) -> Result<SpeakerModel, DeltaError> {
        Ok(SpeakerModel::new(
            self.speaker_id,
            self.delta.apply(ubm)?,
            self.znorm,
            self.genuine_ref,
        ))
    }
}

impl BinaryCodec for DeltaSpeakerRecord {
    const MAGIC: u32 = codec::magic(b"MSPD");
    const VERSION: u8 = 1;
    const NAME: &'static str = "DeltaSpeakerRecord";

    fn encode_payload(&self, w: &mut ByteWriter) {
        w.put_u32(self.speaker_id);
        match self.znorm {
            Some((mu, sigma)) => {
                w.put_bool(true);
                w.put_f64(mu);
                w.put_f64(sigma);
            }
            None => w.put_bool(false),
        }
        match self.genuine_ref {
            Some(g) => {
                w.put_bool(true);
                w.put_f64(g);
            }
            None => w.put_bool(false),
        }
        w.put_nested(&self.delta.to_bytes());
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let speaker_id = r.get_u32()?;
        let znorm = if r.get_bool()? {
            let mu = r.get_f64()?;
            let sigma = r.get_f64()?;
            if !(mu.is_finite() && sigma.is_finite() && sigma > 0.0) {
                return Err(CodecError::Invalid {
                    artifact: Self::NAME,
                    reason: "z-norm statistics must be finite with positive sigma".to_string(),
                });
            }
            Some((mu, sigma))
        } else {
            None
        };
        let genuine_ref = if r.get_bool()? {
            Some(r.get_f64()?)
        } else {
            None
        };
        let delta = GmmMeanDelta::from_bytes(r.get_nested()?)?;
        Ok(Self {
            speaker_id,
            znorm,
            genuine_ref,
            delta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::FeatureExtractor;
    use crate::ubm::{train_ubm, UbmConfig};
    use crate::UbmBackend;
    use magshield_ml::codec::assert_hostile_input_fails;
    use magshield_simkit::rng::SimRng;
    use magshield_voice::corpus::{build_corpus, CorpusConfig};
    use magshield_voice::synth::VOICE_SAMPLE_RATE;
    use proptest::prelude::*;

    fn backend_and_corpus(
        num_speakers: usize,
        components: usize,
        seed: u64,
    ) -> (UbmBackend, magshield_voice::corpus::Corpus) {
        let rng = SimRng::from_seed(seed);
        let corpus = build_corpus(
            &CorpusConfig {
                num_speakers,
                sessions_per_speaker: 2,
                utterances_per_session: 2,
                passphrase_len: 4,
                session_strength: 0.6,
                corpus_tilt_db_per_oct: 0.0,
                first_speaker_id: 0,
            },
            &rng,
        );
        let fx = FeatureExtractor::new(VOICE_SAMPLE_RATE);
        let utts: Vec<&[f64]> = corpus
            .utterances
            .iter()
            .map(|u| u.audio.as_slice())
            .collect();
        let ubm = train_ubm(
            &fx,
            &utts,
            UbmConfig {
                components,
                em_iters: 4,
                max_frames: 4000,
            },
            &rng,
        );
        let backend = UbmBackend::new(fx, ubm).with_cohort(&utts);
        (backend, corpus)
    }

    fn assert_bit_identical(a: &SpeakerModel, b: &SpeakerModel) {
        assert_eq!(a.speaker_id, b.speaker_id);
        assert_eq!(
            a.znorm.map(|(m, s)| (m.to_bits(), s.to_bits())),
            b.znorm.map(|(m, s)| (m.to_bits(), s.to_bits()))
        );
        assert_eq!(
            a.genuine_ref.map(f64::to_bits),
            b.genuine_ref.map(f64::to_bits)
        );
        for (x, y) in a.gmm.weights().iter().zip(b.gmm.weights()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (ra, rb) in a.gmm.means().iter().zip(b.gmm.means()) {
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        for (ra, rb) in a.gmm.variances().iter().zip(b.gmm.variances()) {
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn enrolled_speaker_round_trips_bit_identically_and_shrinks() {
        let (backend, corpus) = backend_and_corpus(3, 16, 31);
        let sp = &corpus.speakers[0];
        let utts = corpus.of_speaker(sp.id);
        let enroll: Vec<&[f64]> = utts[..2].iter().map(|u| u.audio.as_slice()).collect();
        let model = backend.enroll(sp.id, &enroll);

        let record = DeltaSpeakerRecord::encode(&backend.ubm, &model).unwrap();
        let wire = DeltaSpeakerRecord::from_bytes(&record.to_bytes()).unwrap();
        let back = wire.reconstruct(&backend.ubm).unwrap();
        assert_bit_identical(&model, &back);

        // The reconstructed model scores bit-identically.
        for u in utts {
            assert_eq!(
                backend.score(&model, &u.audio).to_bits(),
                backend.score(&back, &u.audio).to_bits()
            );
        }

        // The record is materially smaller than the full model — it drops
        // the weights and variances the UBM already carries.
        let full = model.to_bytes().len();
        let delta = record.to_bytes().len();
        assert!(
            delta * 2 < full,
            "delta record {delta}B not smaller than full model {full}B"
        );
    }

    #[test]
    fn wrong_ubm_is_refused() {
        let (backend, corpus) = backend_and_corpus(3, 8, 32);
        let (other, _) = backend_and_corpus(3, 8, 33);
        let sp = &corpus.speakers[0];
        let enroll: Vec<&[f64]> = corpus.of_speaker(sp.id)[..2]
            .iter()
            .map(|u| u.audio.as_slice())
            .collect();
        let model = backend.enroll(sp.id, &enroll);
        let record = DeltaSpeakerRecord::encode(&backend.ubm, &model).unwrap();
        assert!(matches!(
            record.reconstruct(&other.ubm),
            Err(DeltaError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn non_adapted_model_refuses_delta_encoding() {
        let (backend, _) = backend_and_corpus(3, 8, 34);
        let (other, _) = backend_and_corpus(3, 8, 35);
        // A model whose mixture is a *different* UBM (weights/variances
        // differ) is not a means-only adaptation: full-record fallback.
        let foreign = SpeakerModel::new(7, other.ubm.clone(), None, None);
        assert_eq!(
            DeltaSpeakerRecord::encode(&backend.ubm, &foreign),
            Err(DeltaError::NotMeansOnly)
        );
    }

    #[test]
    fn hostile_input_yields_typed_errors() {
        let (backend, corpus) = backend_and_corpus(3, 8, 36);
        let sp = &corpus.speakers[0];
        let enroll: Vec<&[f64]> = corpus.of_speaker(sp.id)[..2]
            .iter()
            .map(|u| u.audio.as_slice())
            .collect();
        let model = backend.enroll(sp.id, &enroll);
        let record = DeltaSpeakerRecord::encode(&backend.ubm, &model).unwrap();
        assert_hostile_input_fails::<DeltaSpeakerRecord>(&record.to_bytes());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Delta-encode → wire → decode → reconstruct is bit-identical
        /// across mixture sizes, corpus shapes and adaptation strengths
        /// (more enrollment audio adapts the model more strongly).
        #[test]
        fn delta_records_reconstruct_bit_identically(
            seed in 0u64..u64::MAX,
            components_pow in 2u32..5,
            enroll_utts in 1usize..4,
        ) {
            let components = 1usize << components_pow; // 4, 8 or 16
            let (backend, corpus) = backend_and_corpus(3, components, seed);
            for sp in &corpus.speakers {
                let utts = corpus.of_speaker(sp.id);
                let n = enroll_utts.min(utts.len());
                let enroll: Vec<&[f64]> =
                    utts[..n].iter().map(|u| u.audio.as_slice()).collect();
                let model = backend.enroll(sp.id, &enroll);
                let record = DeltaSpeakerRecord::encode(&backend.ubm, &model).unwrap();
                let wire = DeltaSpeakerRecord::from_bytes(&record.to_bytes()).unwrap();
                let back = wire.reconstruct(&backend.ubm).unwrap();
                assert_bit_identical(&model, &back);
            }
        }
    }
}

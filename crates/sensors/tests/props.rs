//! Property-based tests for the sensor models.

use magshield_sensors::imu::{Accelerometer, AccelerometerSpec, Gyroscope, GyroscopeSpec};
use magshield_sensors::magnetometer::{Magnetometer, MagnetometerSpec};
use magshield_sensors::microphone::{Microphone, MicrophoneSpec};
use magshield_sensors::orientation::HeadingFilter;
use magshield_sensors::speaker::{PhoneSpeakerSpec, PilotEmitter};
use magshield_simkit::rng::SimRng;
use magshield_simkit::vec3::Vec3;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Magnetometer readings are always on the quantization grid and in
    /// range, regardless of the true field.
    #[test]
    fn magnetometer_quantized_and_clipped(
        fx in -5000.0f64..5000.0, fy in -5000.0f64..5000.0, fz in -5000.0f64..5000.0,
        seed in 0u64..1000,
    ) {
        let spec = MagnetometerSpec::ak8975();
        let mut m = Magnetometer::new(spec, SimRng::from_seed(seed));
        let r = m.read(Vec3::new(fx, fy, fz));
        for c in [r.x, r.y, r.z] {
            prop_assert!(c.abs() <= spec.range_ut + 1e-9);
            let steps = c / spec.resolution_ut;
            prop_assert!((steps - steps.round()).abs() < 1e-9);
        }
    }

    /// Gyro readings differ from truth by bounded bias + noise.
    #[test]
    fn gyro_error_bounded(rate in -5.0f64..5.0, seed in 0u64..500) {
        let spec = GyroscopeSpec::default();
        let mut g = Gyroscope::new(spec, SimRng::from_seed(seed));
        let r = g.read(Vec3::new(0.0, 0.0, rate));
        // 6σ noise + 6σ bias margin.
        let bound = 6.0 * spec.noise_std + 6.0 * spec.bias;
        prop_assert!((r.z - rate).abs() < bound, "error {}", (r.z - rate).abs());
    }

    /// Accelerometer readings are finite for any finite input.
    #[test]
    fn accel_finite(ax in -50.0f64..50.0, seed in 0u64..500) {
        let mut a = Accelerometer::new(AccelerometerSpec::default(), SimRng::from_seed(seed));
        let r = a.read(Vec3::new(ax, -ax, ax / 2.0));
        prop_assert!(r.is_finite());
    }

    /// Microphone output is always within full scale.
    #[test]
    fn microphone_clips(
        input in prop::collection::vec(-10.0f64..10.0, 1..512),
        seed in 0u64..500,
    ) {
        let mut m = Microphone::new(MicrophoneSpec::default(), SimRng::from_seed(seed));
        for y in m.record(&input) {
            prop_assert!(y.abs() <= 1.0 + 1e-12);
            prop_assert!(y.is_finite());
        }
    }

    /// Pilot calibration always lands in (16 kHz, Nyquist) and at a
    /// frequency the speaker can actually emit within the margin.
    #[test]
    fn pilot_calibration_valid(limit in 16_500.0f64..23_000.0) {
        let e = PilotEmitter::new(PhoneSpeakerSpec {
            upper_limit_hz: limit,
            ..Default::default()
        });
        let pilot = e.calibrate_pilot(250.0, 1.0);
        prop_assert!(pilot >= 16_000.0);
        prop_assert!(pilot < 24_000.0);
        prop_assert!(20.0 * e.gain(pilot).log10() >= -1.0 - 1e-9);
    }

    /// Heading filter output is always a wrapped angle and follows a pure
    /// rotation exactly when the magnetometer agrees.
    #[test]
    fn heading_filter_tracks(rate in -2.0f64..2.0, n in 10usize..200) {
        let mut f = HeadingFilter::new(0.02);
        let dt = 0.01;
        let mut true_heading: f64 = 0.0;
        f.update(0.0, dt, Some(0.0));
        for _ in 0..n {
            true_heading += rate * dt;
            // Perfect gyro + perfect mag.
            let wrapped = {
                let mut a = true_heading % std::f64::consts::TAU;
                if a > std::f64::consts::PI { a -= std::f64::consts::TAU; }
                if a <= -std::f64::consts::PI { a += std::f64::consts::TAU; }
                a
            };
            let h = f.update(rate, dt, Some(wrapped));
            prop_assert!(h.is_finite());
            prop_assert!(h.abs() <= std::f64::consts::PI + 1e-9);
        }
        let err = {
            let mut d = (f.heading() - true_heading) % std::f64::consts::TAU;
            if d > std::f64::consts::PI { d -= std::f64::consts::TAU; }
            if d <= -std::f64::consts::PI { d += std::f64::consts::TAU; }
            d
        };
        prop_assert!(err.abs() < 0.05, "heading error {err}");
    }
}

//! Testbed phone presets — Table II of the paper.

use crate::imu::{Accelerometer, AccelerometerSpec, Gyroscope, GyroscopeSpec};
use crate::magnetometer::{Magnetometer, MagnetometerSpec};
use crate::microphone::{Microphone, MicrophoneSpec};
use crate::speaker::{PhoneSpeakerSpec, PilotEmitter};
use magshield_simkit::rng::SimRng;
use serde::{Deserialize, Serialize};

/// The paper's smartphone testbed models (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhoneModel {
    /// Google (LG) Nexus 5, Android 4.4.
    Nexus5,
    /// Google (LG) Nexus 4, Android 4.4 (dual microphones, §VII).
    Nexus4,
    /// Samsung Galaxy Nexus, Android 4.4.
    GalaxyNexus,
}

impl PhoneModel {
    /// All testbed models.
    pub fn all() -> [PhoneModel; 3] {
        [
            PhoneModel::Nexus5,
            PhoneModel::Nexus4,
            PhoneModel::GalaxyNexus,
        ]
    }

    /// Human-readable maker/model string as in Table II.
    pub fn label(self) -> &'static str {
        match self {
            PhoneModel::Nexus5 => "Google (LG) Nexus 5",
            PhoneModel::Nexus4 => "Google (LG) Nexus 4",
            PhoneModel::GalaxyNexus => "Samsung Galaxy Nexus",
        }
    }

    /// Magnetometer fitted to this model (all three use AK89xx-class
    /// parts; noise differs slightly by integration).
    pub fn magnetometer_spec(self) -> MagnetometerSpec {
        let base = MagnetometerSpec::ak8975();
        match self {
            PhoneModel::Nexus5 => MagnetometerSpec {
                noise_std_ut: 0.30,
                ..base
            },
            PhoneModel::Nexus4 => base,
            PhoneModel::GalaxyNexus => MagnetometerSpec {
                noise_std_ut: 0.45,
                hard_iron_ut: 4.0,
                ..base
            },
        }
    }

    /// Speaker spec (pilot-tone upper limit differs per device; the paper
    /// calibrates the pilot per phone).
    pub fn speaker_spec(self) -> PhoneSpeakerSpec {
        match self {
            PhoneModel::Nexus5 => PhoneSpeakerSpec {
                upper_limit_hz: 20_000.0,
                ..Default::default()
            },
            PhoneModel::Nexus4 => PhoneSpeakerSpec {
                upper_limit_hz: 19_000.0,
                ..Default::default()
            },
            PhoneModel::GalaxyNexus => PhoneSpeakerSpec {
                upper_limit_hz: 18_000.0,
                ..Default::default()
            },
        }
    }

    /// Whether the device exposes a second (noise-cancellation)
    /// microphone — the §VII "Dual Microphones" extension.
    pub fn has_dual_microphones(self) -> bool {
        matches!(self, PhoneModel::Nexus4)
    }
}

/// A fully instantiated phone: all sensors with device-specific specs and
/// per-instance error realizations.
#[derive(Debug, Clone)]
pub struct Phone {
    /// Which model this is.
    pub model: PhoneModel,
    /// Magnetometer instance.
    pub magnetometer: Magnetometer,
    /// Accelerometer instance.
    pub accelerometer: Accelerometer,
    /// Gyroscope instance.
    pub gyroscope: Gyroscope,
    /// Primary microphone instance.
    pub microphone: Microphone,
    /// Pilot-tone emitter.
    pub emitter: PilotEmitter,
    /// Calibrated pilot frequency for this device (Hz).
    pub pilot_hz: f64,
}

impl Phone {
    /// Instantiates a phone of `model`; sensor error realizations are drawn
    /// from `rng`.
    pub fn new(model: PhoneModel, rng: &SimRng) -> Self {
        let emitter = PilotEmitter::new(model.speaker_spec());
        let pilot_hz = emitter.calibrate_pilot(250.0, 1.0);
        Self {
            model,
            magnetometer: Magnetometer::new(model.magnetometer_spec(), rng.fork("mag")),
            accelerometer: Accelerometer::new(AccelerometerSpec::default(), rng.fork("accel")),
            gyroscope: Gyroscope::new(GyroscopeSpec::default(), rng.fork("gyro")),
            microphone: Microphone::new(MicrophoneSpec::default(), rng.fork("mic")),
            emitter,
            pilot_hz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_instantiate() {
        for m in PhoneModel::all() {
            let p = Phone::new(m, &SimRng::from_seed(1));
            assert!(p.pilot_hz > 16_000.0, "{}: pilot {}", m.label(), p.pilot_hz);
        }
    }

    #[test]
    fn pilot_frequency_is_device_specific() {
        let n5 = Phone::new(PhoneModel::Nexus5, &SimRng::from_seed(1)).pilot_hz;
        let gn = Phone::new(PhoneModel::GalaxyNexus, &SimRng::from_seed(1)).pilot_hz;
        assert!(
            n5 > gn,
            "Nexus 5 ({n5}) should support a higher pilot than Galaxy Nexus ({gn})"
        );
    }

    #[test]
    fn only_nexus4_has_dual_mics() {
        assert!(PhoneModel::Nexus4.has_dual_microphones());
        assert!(!PhoneModel::Nexus5.has_dual_microphones());
        assert!(!PhoneModel::GalaxyNexus.has_dual_microphones());
    }

    #[test]
    fn labels_match_table_ii() {
        assert_eq!(PhoneModel::Nexus5.label(), "Google (LG) Nexus 5");
        assert_eq!(PhoneModel::GalaxyNexus.label(), "Samsung Galaxy Nexus");
    }
}

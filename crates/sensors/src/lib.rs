#![warn(missing_docs)]

//! # magshield-sensors
//!
//! Models of the smartphone sensors the paper's defense reads:
//!
//! * [`magnetometer`] — an AK8975-class 3-axis magnetometer (the part in
//!   the paper's Nexus testbeds): 0.3 µT/LSB quantization, ±1200 µT range,
//!   hard-iron bias, white noise floor, ~100 Hz sampling;
//! * [`imu`] — accelerometer and gyroscope with bias, drift and noise;
//! * [`microphone`] — a phone microphone with noise floor, clipping and a
//!   gentle high-frequency rolloff (phones receive 18 kHz pilots a few dB
//!   down);
//! * [`speaker`] — the phone's own speaker emitting the inaudible pilot
//!   tone, with the per-device maximum-frequency calibration of §IV-B1;
//! * [`orientation`] — complementary-filter fusion of gyro + accel + mag
//!   into a heading estimate (the paper jointly uses all three, citing
//!   \[31\]/\[37\]);
//! * [`phone`] — presets for the paper's Table II testbed devices
//!   (Nexus 5, Nexus 4, Galaxy Nexus).

pub mod imu;
pub mod magnetometer;
pub mod microphone;
pub mod orientation;
pub mod phone;
pub mod speaker;

pub use magnetometer::Magnetometer;
pub use microphone::Microphone;
pub use phone::PhoneModel;

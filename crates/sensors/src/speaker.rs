//! The phone's own loudspeaker as a pilot-tone emitter.
//!
//! §IV-B1: "we let the smartphone's speaker generate inaudible tone in a
//! static high frequency fs (fs > 16 kHz). ... Based on the limitation of
//! the speaker on commodity smartphones, we select the highest possible
//! frequency using a calibration method described in \[18\]." We reproduce
//! that calibration: sweep candidate frequencies, measure emitted level
//! through the device's response rolloff, and pick the highest frequency
//! that still clears a level margin.

use magshield_simkit::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Phone-speaker behavioral parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhoneSpeakerSpec {
    /// Audio sample rate (Hz).
    pub sample_rate_hz: f64,
    /// Frequency (Hz) above which output rolls off steeply.
    pub upper_limit_hz: f64,
    /// Rolloff steepness (dB per kHz beyond the limit).
    pub rolloff_db_per_khz: f64,
}

impl Default for PhoneSpeakerSpec {
    fn default() -> Self {
        Self {
            sample_rate_hz: 48_000.0,
            upper_limit_hz: 19_500.0,
            rolloff_db_per_khz: 18.0,
        }
    }
}

/// A pilot-tone emitter.
#[derive(Debug, Clone)]
pub struct PilotEmitter {
    spec: PhoneSpeakerSpec,
}

impl PilotEmitter {
    /// Creates an emitter for a given speaker spec.
    pub fn new(spec: PhoneSpeakerSpec) -> Self {
        Self { spec }
    }

    /// Linear output gain at `freq_hz` (1.0 in the flat band).
    pub fn gain(&self, freq_hz: f64) -> f64 {
        if freq_hz <= self.spec.upper_limit_hz {
            1.0
        } else {
            let excess_khz = (freq_hz - self.spec.upper_limit_hz) / 1000.0;
            10f64.powf(-self.spec.rolloff_db_per_khz * excess_khz / 20.0)
        }
    }

    /// Calibration from \[18\]: the highest candidate frequency (16 kHz up
    /// to Nyquist, in `step_hz` steps) whose emitted level is within
    /// `margin_db` of the flat band. Returns 16 kHz if even that is down.
    pub fn calibrate_pilot(&self, step_hz: f64, margin_db: f64) -> f64 {
        let mut best = 16_000.0;
        let mut f = 16_000.0;
        let nyquist = self.spec.sample_rate_hz / 2.0;
        while f < nyquist {
            if 20.0 * self.gain(f).log10() >= -margin_db {
                best = f;
            }
            f += step_hz;
        }
        best
    }

    /// Renders the pilot tone at `freq_hz` for `n` samples, including the
    /// speaker's gain at that frequency and slight phase noise.
    pub fn render(&self, freq_hz: f64, n: usize, rng: &SimRng) -> Vec<f64> {
        let g = self.gain(freq_hz);
        let mut prng = rng.fork("pilot-phase");
        let jitter = prng.gauss(0.0, 0.01);
        (0..n)
            .map(|i| {
                let t = i as f64 / self.spec.sample_rate_hz;
                g * (std::f64::consts::TAU * freq_hz * t + jitter).cos()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_band_gain_is_unity() {
        let e = PilotEmitter::new(PhoneSpeakerSpec::default());
        assert_eq!(e.gain(18_000.0), 1.0);
    }

    #[test]
    fn rolloff_beyond_limit() {
        let e = PilotEmitter::new(PhoneSpeakerSpec::default());
        assert!(e.gain(21_000.0) < 0.6);
        assert!(e.gain(23_000.0) < e.gain(21_000.0));
    }

    #[test]
    fn calibration_selects_near_limit() {
        let e = PilotEmitter::new(PhoneSpeakerSpec::default());
        let f = e.calibrate_pilot(250.0, 1.0);
        assert!(
            (19_000.0..=20_000.0).contains(&f),
            "pilot {f} should sit near the 19.5 kHz device limit"
        );
        assert!(f > 16_000.0, "paper requires > 16 kHz");
    }

    #[test]
    fn calibration_respects_weak_speakers() {
        let weak = PilotEmitter::new(PhoneSpeakerSpec {
            upper_limit_hz: 17_000.0,
            ..Default::default()
        });
        let f = weak.calibrate_pilot(250.0, 1.0);
        assert!(f <= 17_250.0, "weak speaker pilot {f}");
    }

    #[test]
    fn rendered_tone_has_expected_amplitude() {
        let e = PilotEmitter::new(PhoneSpeakerSpec::default());
        let sig = e.render(18_000.0, 4800, &SimRng::from_seed(1));
        let peak = sig.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
        assert!((peak - 1.0).abs() < 0.01);
    }
}

//! Inertial sensors: accelerometer and gyroscope.
//!
//! The trajectory reconstruction (§IV-B1) jointly uses the magnetometer,
//! gyroscope and accelerometer to obtain the phone's direction change Δω
//! and correlate motion with the acoustic phase track. These models add the
//! error sources that make IMU-only dead reckoning drift: constant bias,
//! bias random walk, and white noise.

use magshield_simkit::noise::{NoiseSource, RandomWalk};
use magshield_simkit::rng::SimRng;
use magshield_simkit::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Standard gravity (m/s²).
pub const GRAVITY: f64 = 9.80665;

/// Accelerometer behavioral parameters (consumer MEMS class).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccelerometerSpec {
    /// Sample rate (Hz).
    pub sample_rate_hz: f64,
    /// White noise std per axis (m/s²).
    pub noise_std: f64,
    /// Constant bias magnitude (m/s²).
    pub bias: f64,
    /// Bias random-walk step std per sample (m/s²).
    pub bias_walk_std: f64,
}

impl Default for AccelerometerSpec {
    fn default() -> Self {
        Self {
            sample_rate_hz: 100.0,
            noise_std: 0.03,
            bias: 0.05,
            bias_walk_std: 2e-5,
        }
    }
}

/// A MEMS accelerometer instance.
#[derive(Debug, Clone)]
pub struct Accelerometer {
    spec: AccelerometerSpec,
    bias_walks: [RandomWalk; 3],
    rng: SimRng,
}

impl Accelerometer {
    /// Creates an accelerometer with its own bias realization.
    pub fn new(spec: AccelerometerSpec, rng: SimRng) -> Self {
        let mut brng = rng.fork("accel-bias");
        let mk = |i: u64, b: f64| {
            RandomWalk::new(rng.fork_indexed("accel-walk", i), b, spec.bias_walk_std)
        };
        let b0 = brng.gauss(0.0, spec.bias);
        let b1 = brng.gauss(0.0, spec.bias);
        let b2 = brng.gauss(0.0, spec.bias);
        Self {
            spec,
            bias_walks: [mk(0, b0), mk(1, b1), mk(2, b2)],
            rng: rng.fork("accel-noise"),
        }
    }

    /// Sample rate (Hz).
    pub fn sample_rate(&self) -> f64 {
        self.spec.sample_rate_hz
    }

    /// Converts a true *specific force* (body acceleration minus gravity
    /// vector, in the sensor frame) into a reading.
    pub fn read(&mut self, specific_force: Vec3) -> Vec3 {
        let b = Vec3::new(
            self.bias_walks[0].next_sample(),
            self.bias_walks[1].next_sample(),
            self.bias_walks[2].next_sample(),
        );
        specific_force
            + b
            + Vec3::new(
                self.rng.gauss(0.0, self.spec.noise_std),
                self.rng.gauss(0.0, self.spec.noise_std),
                self.rng.gauss(0.0, self.spec.noise_std),
            )
    }

    /// Reads a series of true specific forces.
    pub fn read_series(&mut self, forces: &[Vec3]) -> Vec<Vec3> {
        forces.iter().map(|&f| self.read(f)).collect()
    }
}

/// Gyroscope behavioral parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GyroscopeSpec {
    /// Sample rate (Hz).
    pub sample_rate_hz: f64,
    /// White noise std per axis (rad/s).
    pub noise_std: f64,
    /// Constant bias magnitude (rad/s).
    pub bias: f64,
}

impl Default for GyroscopeSpec {
    fn default() -> Self {
        Self {
            sample_rate_hz: 100.0,
            noise_std: 0.002,
            bias: 0.005,
        }
    }
}

/// A MEMS gyroscope instance.
#[derive(Debug, Clone)]
pub struct Gyroscope {
    spec: GyroscopeSpec,
    bias: Vec3,
    rng: SimRng,
}

impl Gyroscope {
    /// Creates a gyroscope with its own bias realization.
    pub fn new(spec: GyroscopeSpec, rng: SimRng) -> Self {
        let mut brng = rng.fork("gyro-bias");
        let bias = Vec3::new(
            brng.gauss(0.0, spec.bias),
            brng.gauss(0.0, spec.bias),
            brng.gauss(0.0, spec.bias),
        );
        Self {
            spec,
            bias,
            rng: rng.fork("gyro-noise"),
        }
    }

    /// Sample rate (Hz).
    pub fn sample_rate(&self) -> f64 {
        self.spec.sample_rate_hz
    }

    /// Converts a true angular rate (rad/s, body frame) into a reading.
    pub fn read(&mut self, angular_rate: Vec3) -> Vec3 {
        angular_rate
            + self.bias
            + Vec3::new(
                self.rng.gauss(0.0, self.spec.noise_std),
                self.rng.gauss(0.0, self.spec.noise_std),
                self.rng.gauss(0.0, self.spec.noise_std),
            )
    }

    /// Reads a series of true angular rates.
    pub fn read_series(&mut self, rates: &[Vec3]) -> Vec<Vec3> {
        rates.iter().map(|&r| self.read(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accel_at_rest_reads_bias_plus_noise() {
        let mut a = Accelerometer::new(AccelerometerSpec::default(), SimRng::from_seed(1));
        let readings = a.read_series(&vec![Vec3::ZERO; 2000]);
        let mean = readings.iter().fold(Vec3::ZERO, |x, &y| x + y) / 2000.0;
        assert!(mean.norm() < 0.3, "bias-dominated mean {}", mean.norm());
        assert!(mean.norm() > 1e-4, "some bias must be present");
    }

    #[test]
    fn gyro_integration_drifts() {
        // Integrating a stationary gyro accumulates bias — the reason the
        // paper fuses the magnetometer for heading.
        let mut g = Gyroscope::new(GyroscopeSpec::default(), SimRng::from_seed(2));
        let dt = 1.0 / g.sample_rate();
        let mut angle = 0.0;
        for r in g.read_series(&vec![Vec3::ZERO; 3000]) {
            angle += r.z * dt;
        }
        assert!(angle.abs() > 1e-3, "expected visible drift, got {angle}");
        assert!(
            angle.abs() < 0.6,
            "drift should stay bounded in 30 s: {angle}"
        );
    }

    #[test]
    fn gyro_tracks_true_rotation() {
        let mut g = Gyroscope::new(GyroscopeSpec::default(), SimRng::from_seed(3));
        let dt = 1.0 / g.sample_rate();
        let true_rate = Vec3::new(0.0, 0.0, 0.5);
        let mut angle = 0.0;
        for r in g.read_series(&vec![true_rate; 200]) {
            angle += r.z * dt;
        }
        assert!(
            (angle - 1.0).abs() < 0.05,
            "integrated {angle} rad, expected 1.0"
        );
    }

    #[test]
    fn instances_are_reproducible() {
        let mk = || {
            let mut a = Accelerometer::new(AccelerometerSpec::default(), SimRng::from_seed(7));
            a.read_series(&vec![Vec3::new(0.1, 0.0, 0.0); 32])
        };
        assert_eq!(mk(), mk());
    }
}

//! Phone microphone model.
//!
//! Converts incident sound pressure (normalized amplitude) into recorded
//! samples: adds a thermal/electronic noise floor, applies a gentle
//! high-frequency rolloff (MEMS mics on phones are a few dB down by
//! 18–20 kHz, which is why §IV-B1 calibrates the "highest usable"
//! pilot frequency), and clips at full scale.

use magshield_simkit::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Microphone behavioral parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicrophoneSpec {
    /// Audio sample rate (Hz).
    pub sample_rate_hz: f64,
    /// Noise floor standard deviation (full-scale units).
    pub noise_std: f64,
    /// Frequency (Hz) where the response is −3 dB.
    pub rolloff_hz: f64,
    /// Full-scale clipping level.
    pub full_scale: f64,
}

impl Default for MicrophoneSpec {
    fn default() -> Self {
        Self {
            sample_rate_hz: 48_000.0,
            noise_std: 2e-4,
            rolloff_hz: 19_000.0,
            full_scale: 1.0,
        }
    }
}

/// A phone microphone instance.
#[derive(Debug, Clone)]
pub struct Microphone {
    spec: MicrophoneSpec,
    rng: SimRng,
    lp_state: f64,
    lp_k: f64,
}

impl Microphone {
    /// Creates a microphone.
    pub fn new(spec: MicrophoneSpec, rng: SimRng) -> Self {
        // One-pole lowpass matching the −3 dB rolloff point.
        let k = 1.0 - (-std::f64::consts::TAU * spec.rolloff_hz / spec.sample_rate_hz).exp();
        Self {
            spec,
            rng: rng.fork("mic-noise"),
            lp_state: 0.0,
            lp_k: k.clamp(0.0, 1.0),
        }
    }

    /// Audio sample rate (Hz).
    pub fn sample_rate(&self) -> f64 {
        self.spec.sample_rate_hz
    }

    /// Records one incident-pressure sample.
    pub fn record_sample(&mut self, pressure: f64) -> f64 {
        self.lp_state += self.lp_k * (pressure - self.lp_state);
        let noisy = self.lp_state + self.rng.gauss(0.0, self.spec.noise_std);
        noisy.clamp(-self.spec.full_scale, self.spec.full_scale)
    }

    /// Records a whole buffer of incident pressure.
    pub fn record(&mut self, pressure: &[f64]) -> Vec<f64> {
        pressure.iter().map(|&p| self.record_sample(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mic(seed: u64) -> Microphone {
        Microphone::new(MicrophoneSpec::default(), SimRng::from_seed(seed))
    }

    fn tone(f: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (std::f64::consts::TAU * f * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn passes_midband_audio() {
        let mut m = mic(1);
        let rec = m.record(&tone(1000.0, 48_000.0, 48_000));
        let rms = (rec.iter().map(|x| x * x).sum::<f64>() / rec.len() as f64).sqrt();
        assert!(
            (rms - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.02,
            "rms {rms}"
        );
    }

    #[test]
    fn attenuates_pilot_band_mildly() {
        let fs = 48_000.0;
        let mut m = mic(2);
        let low = m.record(&tone(1000.0, fs, 48_000));
        let mut m2 = mic(2);
        let high = m2.record(&tone(18_000.0, fs, 48_000));
        let rms = |v: &[f64]| (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt();
        let ratio = rms(&high) / rms(&low);
        assert!(
            ratio > 0.3 && ratio < 0.95,
            "18 kHz should be a few dB down: {ratio}"
        );
    }

    #[test]
    fn clips_at_full_scale() {
        let mut m = mic(3);
        let rec = m.record(&vec![10.0; 100]);
        assert!(rec.iter().all(|&x| x <= 1.0 + 1e-12));
        assert!(rec[50] > 0.99);
    }

    #[test]
    fn noise_floor_on_silence() {
        let mut m = mic(4);
        let rec = m.record(&vec![0.0; 20_000]);
        let rms = (rec.iter().map(|x| x * x).sum::<f64>() / rec.len() as f64).sqrt();
        assert!((rms - 2e-4).abs() < 1e-4, "noise floor rms {rms}");
    }
}

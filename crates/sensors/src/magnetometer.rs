//! 3-axis magnetometer model (AK8975 class).
//!
//! The paper (§VI, "Various Classes of Speakers") quotes the AK8975's
//! datasheet figures: 0.3 µT/LSB sensitivity and a ±1200 µT measurement
//! range, sampled here at the typical Android `SENSOR_DELAY_GAME` rate of
//! ~100 Hz. The model adds hard-iron bias (the phone's own magnetized
//! parts), a white noise floor, quantization and range clipping.

use magshield_simkit::rng::SimRng;
use magshield_simkit::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Magnetometer datasheet/behavioral parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MagnetometerSpec {
    /// Output sample rate (Hz).
    pub sample_rate_hz: f64,
    /// Quantization step (µT per LSB).
    pub resolution_ut: f64,
    /// Saturation range (±µT).
    pub range_ut: f64,
    /// Per-axis white noise standard deviation (µT).
    pub noise_std_ut: f64,
    /// Magnitude of the per-device hard-iron bias (µT).
    pub hard_iron_ut: f64,
}

impl MagnetometerSpec {
    /// AK8975 (Nexus 4 / Galaxy Nexus era part, cited by the paper).
    pub fn ak8975() -> Self {
        Self {
            sample_rate_hz: 100.0,
            resolution_ut: 0.3,
            range_ut: 1200.0,
            noise_std_ut: 0.35,
            hard_iron_ut: 3.0,
        }
    }
}

impl Default for MagnetometerSpec {
    fn default() -> Self {
        Self::ak8975()
    }
}

/// A concrete magnetometer instance with its own bias realization.
#[derive(Debug, Clone)]
pub struct Magnetometer {
    spec: MagnetometerSpec,
    bias: Vec3,
    rng: SimRng,
}

impl Magnetometer {
    /// Instantiates a magnetometer; the hard-iron bias direction is drawn
    /// from `rng` so each simulated device differs.
    pub fn new(spec: MagnetometerSpec, rng: SimRng) -> Self {
        let mut brng = rng.fork("mag-bias");
        let dir = Vec3::new(
            brng.gauss(0.0, 1.0),
            brng.gauss(0.0, 1.0),
            brng.gauss(0.0, 1.0),
        );
        let bias = if dir.norm() > 1e-9 {
            dir.normalized() * spec.hard_iron_ut
        } else {
            Vec3::new(spec.hard_iron_ut, 0.0, 0.0)
        };
        Self {
            spec,
            bias,
            rng: rng.fork("mag-noise"),
        }
    }

    /// The sensor's sampling rate (Hz).
    pub fn sample_rate(&self) -> f64 {
        self.spec.sample_rate_hz
    }

    /// The spec this instance was built from.
    pub fn spec(&self) -> &MagnetometerSpec {
        &self.spec
    }

    /// Converts one true field vector (µT) into a sensor reading:
    /// bias + noise, then clip, then quantize.
    pub fn read(&mut self, field_ut: Vec3) -> Vec3 {
        let noisy = field_ut
            + self.bias
            + Vec3::new(
                self.rng.gauss(0.0, self.spec.noise_std_ut),
                self.rng.gauss(0.0, self.spec.noise_std_ut),
                self.rng.gauss(0.0, self.spec.noise_std_ut),
            );
        let clip = |x: f64| x.clamp(-self.spec.range_ut, self.spec.range_ut);
        let quant = |x: f64| (x / self.spec.resolution_ut).round() * self.spec.resolution_ut;
        Vec3::new(
            quant(clip(noisy.x)),
            quant(clip(noisy.y)),
            quant(clip(noisy.z)),
        )
    }

    /// Reads a whole trajectory of true fields.
    pub fn read_series(&mut self, fields_ut: &[Vec3]) -> Vec<Vec3> {
        fields_ut.iter().map(|&f| self.read(f)).collect()
    }
}

/// Derived scalar channel used by the loudspeaker detector: per-sample
/// field magnitudes.
pub fn magnitude_trace(readings: &[Vec3]) -> Vec<f64> {
    readings.iter().map(|r| r.norm()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mag(seed: u64) -> Magnetometer {
        Magnetometer::new(MagnetometerSpec::ak8975(), SimRng::from_seed(seed))
    }

    #[test]
    fn readings_are_quantized() {
        let mut m = mag(1);
        let r = m.read(Vec3::new(47.3, -12.8, 30.1));
        for c in [r.x, r.y, r.z] {
            let steps = c / 0.3;
            assert!(
                (steps - steps.round()).abs() < 1e-9,
                "{c} not on 0.3 µT grid"
            );
        }
    }

    #[test]
    fn readings_clip_at_range() {
        let mut m = mag(2);
        let r = m.read(Vec3::new(5000.0, -5000.0, 0.0));
        assert!(r.x <= 1200.0 + 1e-9);
        assert!(r.y >= -1200.0 - 1e-9);
    }

    #[test]
    fn noise_floor_statistics() {
        let mut m = mag(3);
        let readings = m.read_series(&vec![Vec3::ZERO; 5000]);
        // Mean reading reveals the hard-iron bias (~3 µT magnitude).
        let mean = readings.iter().fold(Vec3::ZERO, |a, &b| a + b) / readings.len() as f64;
        assert!(
            (mean.norm() - 3.0).abs() < 0.5,
            "bias magnitude {}",
            mean.norm()
        );
        // Per-axis std ≈ noise std (0.35) ⊕ quantization (0.3/√12 ≈ 0.087).
        let var_x =
            readings.iter().map(|r| (r.x - mean.x).powi(2)).sum::<f64>() / readings.len() as f64;
        assert!(
            (var_x.sqrt() - 0.36).abs() < 0.08,
            "noise std {}",
            var_x.sqrt()
        );
    }

    #[test]
    fn different_devices_have_different_bias() {
        let mut a = mag(10);
        let mut b = mag(11);
        let ra = a.read_series(&vec![Vec3::ZERO; 200]);
        let rb = b.read_series(&vec![Vec3::ZERO; 200]);
        let mean = |v: &[Vec3]| v.iter().fold(Vec3::ZERO, |x, &y| x + y) / v.len() as f64;
        assert!((mean(&ra) - mean(&rb)).norm() > 0.5);
    }

    #[test]
    fn speaker_signal_visible_over_noise() {
        // A 100 µT near-field anomaly must dominate the ~0.4 µT noise.
        let mut m = mag(4);
        let quiet: Vec<f64> =
            magnitude_trace(&m.read_series(&vec![Vec3::new(0.0, 28.0, -39.0); 300]));
        let mut m2 = mag(4);
        let loud: Vec<f64> =
            magnitude_trace(&m2.read_series(&vec![Vec3::new(0.0, 128.0, -39.0); 300]));
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&loud) - mean(&quiet) > 50.0);
    }

    #[test]
    fn reproducible_given_seed() {
        let mut a = mag(9);
        let mut b = mag(9);
        let f = vec![Vec3::new(1.0, 2.0, 3.0); 64];
        assert_eq!(a.read_series(&f), b.read_series(&f));
    }
}

//! Heading estimation by complementary fusion of gyroscope and
//! magnetometer.
//!
//! §IV-B1: "As the magnetometer reading can result in some error in an
//! indoor environment, we jointly use the magnetometer, gyroscope, and
//! accelerometer to obtain the direction change Δω." For the paper's 2-D
//! approach plane the relevant state is a single heading angle: the gyro
//! integrates smoothly but drifts; the magnetometer gives an absolute but
//! noisy heading. A complementary filter blends them.

use magshield_simkit::interp::wrap_angle;
use magshield_simkit::vec3::Vec3;

/// Complementary-filter heading estimator for the 2-D approach plane.
///
/// Headings are angles in the scene X–Y plane, measured from +y (the
/// "toward the user" axis), positive counterclockwise.
#[derive(Debug, Clone)]
pub struct HeadingFilter {
    /// Weight of the magnetometer correction per sample (0..1).
    pub mag_weight: f64,
    heading: f64,
    initialized: bool,
}

impl HeadingFilter {
    /// Creates a filter; `mag_weight` ≈ 0.02 at 100 Hz gives a ~0.5 s
    /// correction time constant.
    ///
    /// # Panics
    ///
    /// Panics if `mag_weight` is outside `[0, 1]`.
    pub fn new(mag_weight: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&mag_weight),
            "mag_weight must be in [0,1]"
        );
        Self {
            mag_weight,
            heading: 0.0,
            initialized: false,
        }
    }

    /// Heading implied by a *body-frame* magnetometer reading, given the
    /// known local field direction in the world frame (horizontal
    /// components). A device at heading θ sees the world field rotated by
    /// −θ into its axes, so the heading is the angle **from the reading to
    /// the reference**.
    ///
    /// Returns `None` when the horizontal field is too weak to define a
    /// heading (e.g. sensor saturated by a nearby magnet).
    pub fn mag_heading(reading_body_ut: Vec3, reference_world_ut: Vec3) -> Option<f64> {
        let r = Vec3::new(reading_body_ut.x, reading_body_ut.y, 0.0);
        let f = Vec3::new(reference_world_ut.x, reference_world_ut.y, 0.0);
        if r.norm() < 2.0 || f.norm() < 2.0 {
            return None;
        }
        // Angle from reading to reference around +z.
        let cross = r.cross(f).z;
        let dot = r.dot(f);
        Some(cross.atan2(dot))
    }

    /// Advances the filter by one sample: integrates the gyro z-rate and
    /// applies a fractional correction toward the magnetometer heading when
    /// one is available.
    pub fn update(&mut self, gyro_z: f64, dt: f64, mag: Option<f64>) -> f64 {
        if !self.initialized {
            self.heading = mag.unwrap_or(0.0);
            self.initialized = true;
            return self.heading;
        }
        self.heading = wrap_angle(self.heading + gyro_z * dt);
        if let Some(m) = mag {
            let err = wrap_angle(m - self.heading);
            self.heading = wrap_angle(self.heading + self.mag_weight * err);
        }
        self.heading
    }

    /// Current heading estimate (radians).
    pub fn heading(&self) -> f64 {
        self.heading
    }
}

/// Integrates a gyro z-rate series into total direction change Δω.
pub fn direction_change(gyro_z: &[f64], dt: f64) -> f64 {
    gyro_z.iter().sum::<f64>() * dt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gyro_only_tracks_rotation() {
        let mut f = HeadingFilter::new(0.0);
        f.update(0.0, 0.01, Some(0.0)); // initialize at 0
        for _ in 0..100 {
            f.update(0.5, 0.01, None);
        }
        assert!((f.heading() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mag_corrects_gyro_drift() {
        let mut f = HeadingFilter::new(0.05);
        f.update(0.0, 0.01, Some(0.0));
        // Biased gyro (0.1 rad/s) on a stationary phone; magnetometer says 0.
        for _ in 0..2000 {
            f.update(0.1, 0.01, Some(0.0));
        }
        // Steady state error = rate*dt/weight = 0.02 rad, not 2 rad.
        assert!(f.heading().abs() < 0.05, "residual {}", f.heading());
    }

    #[test]
    fn mag_heading_recovers_rotation() {
        let reference = Vec3::new(0.0, 28.0, -39.0);
        // Phone rotated +30°: in its body axes the world field appears
        // rotated by −30°.
        let reading = reference.rotated_z(-30f64.to_radians());
        let h = HeadingFilter::mag_heading(reading, reference).unwrap();
        assert!((h - 30f64.to_radians()).abs() < 1e-9);
    }

    #[test]
    fn saturated_field_yields_none() {
        let reference = Vec3::new(0.0, 28.0, -39.0);
        assert!(HeadingFilter::mag_heading(Vec3::new(0.5, 0.5, 900.0), reference).is_none());
    }

    #[test]
    fn direction_change_integral() {
        let rates = vec![0.2; 50];
        assert!((direction_change(&rates, 0.01) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn initialization_uses_first_mag() {
        let mut f = HeadingFilter::new(0.02);
        let h = f.update(99.0, 0.01, Some(1.0));
        assert_eq!(h, 1.0, "first update should snap to the mag heading");
    }

    #[test]
    #[should_panic(expected = "mag_weight")]
    fn rejects_bad_weight() {
        HeadingFilter::new(1.5);
    }
}

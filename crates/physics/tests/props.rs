//! Property-based tests for the physics substrates.

use magshield_physics::acoustics::medium::{wavelength, wavenumber, SPEED_OF_SOUND};
use magshield_physics::acoustics::piston::{bessel_j1, piston_directivity};
use magshield_physics::acoustics::source::AcousticSource;
use magshield_physics::acoustics::tube::SoundTube;
use magshield_physics::magnetics::dipole::MagneticDipole;
use magshield_physics::magnetics::shielding::Shield;
use magshield_simkit::units::DbSpl;
use magshield_simkit::vec3::Vec3;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dipole superposition: the field of two dipoles is the sum of the
    /// fields (linearity of magnetostatics).
    #[test]
    fn dipole_superposition(
        m1 in 0.001f64..0.05, m2 in 0.001f64..0.05,
        px in -0.3f64..0.3, py in 0.05f64..0.3, pz in -0.3f64..0.3,
    ) {
        let a = MagneticDipole::new(Vec3::ZERO, Vec3::Z * m1);
        let b = MagneticDipole::new(Vec3::new(0.1, 0.0, 0.0), Vec3::Y * m2);
        let p = Vec3::new(px, py, pz);
        let sum = a.field_at(p) + b.field_at(p);
        let combined = MagneticDipole::new(Vec3::ZERO, Vec3::Z * m1).field_at(p)
            + MagneticDipole::new(Vec3::new(0.1, 0.0, 0.0), Vec3::Y * m2).field_at(p);
        prop_assert!((sum - combined).norm() < 1e-9);
        // Field scales linearly with the moment.
        let double = MagneticDipole::new(Vec3::ZERO, Vec3::Z * (2.0 * m1)).field_at(p);
        prop_assert!((double - a.field_at(p) * 2.0).norm() < 1e-9 * (1.0 + double.norm()));
    }

    /// Calibration round-trip: a dipole calibrated to B µT at r reads B at r.
    #[test]
    fn dipole_calibration_round_trip(b_ut in 1.0f64..500.0, r in 0.02f64..0.2) {
        let d = MagneticDipole::calibrated(Vec3::ZERO, Vec3::Y, b_ut, r);
        let read = d.field_at(Vec3::new(0.0, r, 0.0)).norm();
        prop_assert!((read - b_ut).abs() < 1e-6 * b_ut);
    }

    /// Shield leakage is always an attenuation (≤ 1) of the bare far field
    /// when the ambient field is zero.
    #[test]
    fn shield_attenuates(b_ut in 10.0f64..300.0, r in 0.03f64..0.3) {
        let src = MagneticDipole::calibrated(Vec3::ZERO, Vec3::Y, b_ut, 0.03);
        let s = Shield::mu_metal();
        let p = Vec3::new(0.0, r, 0.0);
        let bare = src.field_at(p).norm();
        let shielded = s.field_at(src, Vec3::ZERO, p).norm();
        prop_assert!(shielded <= bare + 1e-9);
    }

    /// J1 stays bounded (|J1| ≤ 0.59) and the directivity never exceeds 1.
    #[test]
    fn piston_directivity_bounded(a in 0.001f64..0.2, f in 100.0f64..20_000.0, theta in 0.0f64..1.57) {
        prop_assert!(bessel_j1(wavenumber(f) * a).abs() < 0.6);
        let d = piston_directivity(a, f, theta);
        prop_assert!(d.abs() <= 1.0 + 1e-9);
        prop_assert!(piston_directivity(a, f, 0.0) == 1.0);
    }

    /// Wavelength × frequency = speed of sound.
    #[test]
    fn dispersionless_medium(f in 20.0f64..24_000.0) {
        prop_assert!((wavelength(f) * f - SPEED_OF_SOUND).abs() < 1e-9);
    }

    /// Source gain decays monotonically with on-axis distance.
    #[test]
    fn source_gain_monotone(f in 200.0f64..8000.0) {
        let s = AcousticSource::human_mouth(Vec3::ZERO, Vec3::Y);
        let mut prev = f64::INFINITY;
        for k in 1..10 {
            let g = s.gain_at(Vec3::new(0.0, 0.03 * k as f64, 0.0), f);
            prop_assert!(g <= prev + 1e-12);
            prev = g;
        }
    }

    /// Speaker SPL at the reference point equals the configured level at
    /// low frequency, for any aperture.
    #[test]
    fn speaker_reference_level(a in 0.003f64..0.08, level in 50.0f64..90.0) {
        let s = AcousticSource::speaker(Vec3::ZERO, Vec3::Y, a, DbSpl(level));
        let spl = s.spl_at(Vec3::new(0.0, 0.10, 0.0), 100.0).value();
        prop_assert!((spl - level).abs() < 0.5, "spl {spl} vs level {level}");
    }

    /// Tube transmission gain is in (0, 1] and the resonance count grows
    /// with length.
    #[test]
    fn tube_sanity(len in 0.05f64..0.5, bore in 0.004f64..0.02, f in 100.0f64..4000.0) {
        let t = SoundTube::new(len, bore);
        let g = t.transmission_gain(f);
        prop_assert!(g > 0.0 && g <= 1.0 + 1e-9);
        let short = SoundTube::new(len / 2.0, bore);
        prop_assert!(t.resonances(4000.0).len() >= short.resonances(4000.0).len());
    }
}

#![warn(missing_docs)]

//! # magshield-physics
//!
//! First-principles physical models standing in for the hardware testbed of
//! the ICDCS 2017 paper:
//!
//! * [`magnetics`] — magnetic dipole fields (loudspeaker drivers), Earth's
//!   field, Mu-metal shielding, environmental EMF interference (computer /
//!   car, Fig. 14), and scene superposition sampled along a phone
//!   trajectory;
//! * [`acoustics`] — baffled-piston sound sources (human mouth vs. earphone
//!   vs. PC speaker apertures, Fig. 7/8), spherical spreading, air
//!   absorption, sound-tube waveguides (§VII), and pilot-tone propagation
//!   with exact path-length phase for the ranging stack.
//!
//! The models are deliberately low-order — dipoles, pistons, comb filters —
//! because the paper's detectors key on low-order structure: 1/r³ field
//! decay, aperture-dependent directivity, resonant coloration. Calibration
//! constants are chosen to match the paper's reported magnitudes (30–210 µT
//! loudspeaker near fields, Fig. 10; detection collapse beyond ~10 cm,
//! Fig. 12).

pub mod acoustics;
pub mod magnetics;

pub use acoustics::source::AcousticSource;
pub use magnetics::dipole::MagneticDipole;
pub use magnetics::scene::MagneticScene;

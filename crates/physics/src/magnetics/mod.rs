//! Magnetic-field models: dipoles, Earth field, shielding, interference,
//! and scene superposition.

pub mod dipole;
pub mod earth;
pub mod evasion;
pub mod interference;
pub mod scene;
pub mod shielding;

/// µ0 / 4π in SI units (T·m/A).
pub const MU0_OVER_4PI: f64 = 1e-7;

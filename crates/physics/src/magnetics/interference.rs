//! Environmental EMF interference — §VI "Environmental Magnetic
//! Interference" (Fig. 14).
//!
//! The paper evaluates two hostile environments: next to an iMac (average
//! exposure 500–2500 µW/m² at 30 cm) and in a car's front seat. For the
//! magnetometer what matters is the *low-frequency magnetic noise* these
//! electronics inject, which masks or mimics a loudspeaker signature and
//! inflates the false-rejection rate. We model an environment as a set of
//! point interference sources (mains-harmonic + broadband noise whose
//! amplitude decays as 1/r²) plus an isotropic ambient noise floor.

use magshield_simkit::noise::{MainsHum, NoiseSource, WhiteNoise};
use magshield_simkit::rng::SimRng;
use magshield_simkit::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A localized EMF emitter (computer, dashboard electronics, ...).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmfSource {
    /// Emitter position (meters).
    pub position: Vec3,
    /// RMS magnetic noise (µT) measured at the 30 cm reference distance —
    /// matching how the paper characterizes the iMac with an RF meter at
    /// 30 cm.
    pub noise_ut_at_30cm: f64,
    /// Mains fundamental (Hz); harmonics ride on top.
    pub mains_hz: f64,
    /// Fraction of the noise power that is broadband (vs. mains-locked).
    pub broadband_fraction: f64,
}

impl EmfSource {
    /// RMS noise amplitude (µT) at `point`, using 1/r² decay from the 30 cm
    /// reference (induced near fields of extended circuitry decay slower
    /// than a dipole).
    pub fn noise_rms_at(&self, point: Vec3) -> f64 {
        let r = (point - self.position).norm().max(0.05);
        self.noise_ut_at_30cm * (0.30 / r).powi(2)
    }
}

/// A complete interference environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmfEnvironment {
    /// Localized emitters.
    pub sources: Vec<EmfSource>,
    /// Isotropic ambient magnetic noise floor (µT RMS) — building wiring,
    /// distant appliances. A quiet lab is ~0.05–0.2 µT.
    pub ambient_noise_ut: f64,
}

impl EmfEnvironment {
    /// A quiet laboratory/office — the paper's baseline test environment.
    pub fn quiet() -> Self {
        Self {
            sources: Vec::new(),
            ambient_noise_ut: 0.08,
        }
    }

    /// "Near a computer": an iMac 27" class emitter at `position`.
    ///
    /// Calibrated so the magnetometer sees a few µT of noise when the phone
    /// trajectory approaches within ~10 cm of the screen, reproducing the
    /// Fig. 14(a) FRR spike, while 30+ cm away the effect is mild.
    pub fn near_computer(position: Vec3) -> Self {
        Self {
            sources: vec![EmfSource {
                position,
                noise_ut_at_30cm: 0.45,
                mains_hz: 60.0,
                broadband_fraction: 0.35,
            }],
            ambient_noise_ut: 0.1,
        }
    }

    /// "In a car's front seat" (Hyundai Sonata class): electronics all
    /// around, so a high ambient floor plus a dashboard emitter. The paper
    /// reports FRR of 29–50 % across all distances here (Fig. 14(b)).
    pub fn in_car() -> Self {
        Self {
            sources: vec![
                EmfSource {
                    position: Vec3::new(0.0, 0.40, 0.0),
                    noise_ut_at_30cm: 1.0,
                    mains_hz: 50.0,
                    broadband_fraction: 0.6,
                },
                EmfSource {
                    position: Vec3::new(-0.45, 0.0, -0.3),
                    noise_ut_at_30cm: 0.7,
                    mains_hz: 50.0,
                    broadband_fraction: 0.6,
                },
            ],
            ambient_noise_ut: 0.55,
        }
    }

    /// Total interference RMS (µT) at a point — used by adaptive
    /// thresholding to calibrate the environment (§VII).
    pub fn noise_rms_at(&self, point: Vec3) -> f64 {
        let source_power: f64 = self
            .sources
            .iter()
            .map(|s| s.noise_rms_at(point).powi(2))
            .sum();
        (source_power + self.ambient_noise_ut.powi(2)).sqrt()
    }

    /// Generates per-sample vector interference (µT) along a trajectory of
    /// `positions` sampled at `sample_rate`.
    pub fn noise_along(&self, positions: &[Vec3], sample_rate: f64, rng: &SimRng) -> Vec<Vec3> {
        let mut axes: Vec<(WhiteNoise, MainsHum)> = (0..3)
            .map(|axis| {
                let white = WhiteNoise::new(rng.fork_indexed("emf-white", axis), 1.0);
                // Randomize the hum phase per axis via harmonic amplitudes.
                let mut hrng = rng.fork_indexed("emf-hum", axis);
                let fundamental = self.sources.first().map_or(60.0, |s| s.mains_hz);
                let amps = vec![
                    1.0,
                    0.4 + 0.2 * hrng.uniform(0.0, 1.0),
                    0.2 * hrng.uniform(0.0, 1.0),
                ];
                (white, MainsHum::new(fundamental, amps, sample_rate))
            })
            .collect();
        // Mains hum normalization: RMS of the harmonic stack ≈ sqrt(Σa²/2).
        let hum_rms: f64 = {
            let a0: f64 = 1.0;
            (a0 * a0 / 2.0 + 0.25f64 / 2.0 + 0.01 / 2.0).sqrt()
        };
        positions
            .iter()
            .map(|&p| {
                let rms = self.noise_rms_at(p);
                let bb = self
                    .sources
                    .first()
                    .map_or(1.0, |s| s.broadband_fraction.clamp(0.0, 1.0));
                let bb_amp = rms * bb.sqrt();
                let hum_amp = rms * (1.0 - bb).sqrt() / hum_rms;
                let mut v = [0.0; 3];
                for (axis, slot) in v.iter_mut().enumerate() {
                    let (white, hum) = &mut axes[axis];
                    *slot = bb_amp * white.next_sample() + hum_amp * hum.next_sample();
                }
                Vec3::new(v[0], v[1], v[2])
            })
            .collect()
    }
}

impl Default for EmfEnvironment {
    fn default() -> Self {
        Self::quiet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_environment_noise_is_small() {
        let env = EmfEnvironment::quiet();
        assert!(env.noise_rms_at(Vec3::ZERO) < 0.2);
    }

    #[test]
    fn computer_noise_grows_near_screen() {
        let env = EmfEnvironment::near_computer(Vec3::new(0.0, 0.30, 0.0));
        let far = env.noise_rms_at(Vec3::new(0.0, -0.2, 0.0));
        let near = env.noise_rms_at(Vec3::new(0.0, 0.22, 0.0));
        assert!(near > far * 4.0, "near {near} vs far {far}");
        assert!(
            near > 1.0,
            "near-screen interference should be µT-scale: {near}"
        );
    }

    #[test]
    fn car_is_noisy_everywhere() {
        let env = EmfEnvironment::in_car();
        for &p in &[
            Vec3::ZERO,
            Vec3::new(0.1, 0.1, 0.0),
            Vec3::new(-0.1, 0.2, 0.1),
        ] {
            assert!(env.noise_rms_at(p) > 0.5, "car noise at {p:?}");
        }
    }

    #[test]
    fn noise_series_rms_tracks_prediction() {
        let env = EmfEnvironment::in_car();
        let rng = SimRng::from_seed(77);
        let p = Vec3::new(0.05, 0.1, 0.0);
        let positions = vec![p; 4000];
        let noise = env.noise_along(&positions, 100.0, &rng);
        let rms =
            (noise.iter().map(|v| v.norm_squared() / 3.0).sum::<f64>() / noise.len() as f64).sqrt();
        let predicted = env.noise_rms_at(p);
        assert!(
            (rms / predicted - 1.0).abs() < 0.35,
            "rms {rms} vs predicted {predicted}"
        );
    }

    #[test]
    fn noise_is_reproducible() {
        let env = EmfEnvironment::near_computer(Vec3::new(0.0, 0.3, 0.0));
        let rng = SimRng::from_seed(5);
        let pos = vec![Vec3::ZERO; 64];
        let a = env.noise_along(&pos, 100.0, &rng);
        let b = env.noise_along(&pos, 100.0, &rng);
        assert_eq!(a, b);
    }

    #[test]
    fn min_distance_clamp_prevents_blowup() {
        let s = EmfSource {
            position: Vec3::ZERO,
            noise_ut_at_30cm: 1.0,
            mains_hz: 60.0,
            broadband_fraction: 0.5,
        };
        assert!(s.noise_rms_at(Vec3::ZERO).is_finite());
        assert!(s.noise_rms_at(Vec3::ZERO) <= 36.0 + 1e-9);
    }
}

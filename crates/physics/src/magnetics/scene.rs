//! Magnetic scene: superposition of Earth field, driven loudspeaker
//! dipoles, shielded sources and environmental interference, sampled along
//! a phone trajectory.
//!
//! This is the "world" the magnetometer model observes. A genuine session
//! has a scene with no driver dipole near the mouth; a machine-based attack
//! adds a [`DrivenDipole`] at the sound-source position.

use super::dipole::MagneticDipole;
use super::earth::EarthField;
use super::evasion::ActiveCompensation;
use super::interference::EmfEnvironment;
use super::shielding::Shield;
use magshield_simkit::rng::SimRng;
use magshield_simkit::vec3::Vec3;

/// A loudspeaker driver: permanent magnet plus an audio-driven voice coil.
///
/// The coil's field is proportional to the drive current, i.e. to the audio
/// waveform; its magnitude is a small fraction of the permanent magnet's
/// but it is what makes the reading *fluctuate while sound plays* — the
/// changing-rate signature the paper thresholds with `βt`.
#[derive(Debug, Clone)]
pub struct DrivenDipole {
    /// The permanent-magnet dipole.
    pub magnet: MagneticDipole,
    /// Coil moment amplitude as a fraction of the magnet moment at full
    /// drive (|audio| = 1).
    pub coil_fraction: f64,
    /// Audio drive waveform resampled to the magnetometer rate; empty means
    /// undriven.
    pub drive: Vec<f64>,
    /// Optional shield around the driver.
    pub shield: Shield,
    /// Optional MagLive-style active compensation rig fighting both the
    /// static magnet and the coil modulation (magnetic-pattern evasion).
    pub compensation: Option<ActiveCompensation>,
}

impl DrivenDipole {
    /// An unshielded driver with a typical 2 % coil fraction.
    pub fn new(magnet: MagneticDipole, drive: Vec<f64>) -> Self {
        Self {
            magnet,
            coil_fraction: 0.02,
            drive,
            shield: Shield::none(),
            compensation: None,
        }
    }

    /// Wraps the driver in a shield.
    pub fn shielded(mut self, shield: Shield) -> Self {
        self.shield = shield;
        self
    }

    /// Straps an active compensation rig to the driver.
    pub fn compensated(mut self, rig: ActiveCompensation) -> Self {
        self.compensation = Some(rig);
        self
    }

    /// Instantaneous dipole including coil modulation at sample `i`, after
    /// any active compensation has eaten its share of magnet and drive.
    fn dipole_at_sample(&self, i: usize) -> MagneticDipole {
        let (dc, drive) = match &self.compensation {
            Some(rig) => (rig.dc_factor(), rig.residual_drive(&self.drive, i)),
            None => (1.0, self.drive.get(i).copied().unwrap_or(0.0)),
        };
        MagneticDipole::new(
            self.magnet.position,
            self.magnet.moment * (dc + self.coil_fraction * drive),
        )
    }

    /// Field (µT) at `point` for sample index `i`, given ambient field for
    /// the shield's induced moment.
    pub fn field_at(&self, point: Vec3, i: usize, ambient_ut: Vec3) -> Vec3 {
        self.shield
            .field_at(self.dipole_at_sample(i), ambient_ut, point)
    }
}

/// The complete magnetic world for one verification session.
#[derive(Debug, Clone, Default)]
pub struct MagneticScene {
    /// Geomagnetic background.
    pub earth: EarthField,
    /// Static dipoles (furniture, fixed magnets).
    pub static_dipoles: Vec<MagneticDipole>,
    /// Audio-driven loudspeakers (present only in machine-based attacks).
    pub drivers: Vec<DrivenDipole>,
    /// Environmental EMF interference.
    pub environment: EmfEnvironment,
}

impl MagneticScene {
    /// A quiet scene with only the Earth field — the genuine-user baseline.
    pub fn quiet() -> Self {
        Self {
            earth: EarthField::typical(),
            static_dipoles: Vec::new(),
            drivers: Vec::new(),
            environment: EmfEnvironment::quiet(),
        }
    }

    /// Adds a driven loudspeaker.
    pub fn with_driver(mut self, driver: DrivenDipole) -> Self {
        self.drivers.push(driver);
        self
    }

    /// Replaces the interference environment.
    pub fn with_environment(mut self, env: EmfEnvironment) -> Self {
        self.environment = env;
        self
    }

    /// Deterministic (noise-free) field at `point` for sample index `i`.
    pub fn field_at(&self, point: Vec3, i: usize) -> Vec3 {
        let ambient = self.earth.field_at();
        let mut b = ambient;
        for d in &self.static_dipoles {
            b += d.field_at(point);
        }
        for drv in &self.drivers {
            b += drv.field_at(point, i, ambient);
        }
        b
    }

    /// Samples the total field (µT), including stochastic interference,
    /// at each position of a trajectory sampled at `sample_rate`.
    pub fn sample_along(&self, positions: &[Vec3], sample_rate: f64, rng: &SimRng) -> Vec<Vec3> {
        let noise = self
            .environment
            .noise_along(positions, sample_rate, &rng.fork("scene-emf"));
        positions
            .iter()
            .enumerate()
            .map(|(i, &p)| self.field_at(p, i) + noise[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approach_trajectory(n: usize, from: Vec3, to: Vec3) -> Vec<Vec3> {
        (0..n)
            .map(|i| from.lerp(to, i as f64 / (n - 1) as f64))
            .collect()
    }

    #[test]
    fn quiet_scene_reads_earth_field() {
        let scene = MagneticScene::quiet();
        let b = scene.field_at(Vec3::new(0.1, 0.2, 0.3), 0);
        assert!((b.norm() - EarthField::typical().field_at().norm()).abs() < 1e-9);
    }

    #[test]
    fn approaching_a_speaker_raises_the_reading() {
        let magnet = MagneticDipole::calibrated(Vec3::ZERO, Vec3::Y, 120.0, 0.03);
        let scene = MagneticScene::quiet().with_driver(DrivenDipole::new(magnet, Vec::new()));
        let far = scene.field_at(Vec3::new(0.0, -0.20, 0.0), 0).norm();
        let near = scene.field_at(Vec3::new(0.0, -0.03, 0.0), 0).norm();
        let earth = EarthField::typical().field_at().norm();
        assert!(
            (far - earth).abs() < 3.0,
            "at 20 cm the speaker is invisible"
        );
        assert!(near > earth + 50.0, "at 3 cm the speaker dominates: {near}");
    }

    #[test]
    fn coil_drive_modulates_field() {
        let magnet = MagneticDipole::calibrated(Vec3::ZERO, Vec3::Y, 120.0, 0.03);
        let drive: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin()).collect();
        let scene = MagneticScene::quiet().with_driver(DrivenDipole::new(magnet, drive));
        let p = Vec3::new(0.0, -0.03, 0.0);
        let readings: Vec<f64> = (0..100).map(|i| scene.field_at(p, i).norm()).collect();
        let min = readings.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = readings.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max - min > 1.0,
            "coil modulation should be visible: {}",
            max - min
        );
    }

    #[test]
    fn sample_along_adds_interference() {
        let scene = MagneticScene::quiet().with_environment(EmfEnvironment::in_car());
        let traj = approach_trajectory(500, Vec3::new(0.0, -0.2, 0.0), Vec3::new(0.0, -0.04, 0.0));
        let rng = SimRng::from_seed(3);
        let samples = scene.sample_along(&traj, 100.0, &rng);
        let earth = EarthField::typical().field_at();
        let dev: f64 = samples
            .iter()
            .map(|b| (*b - earth).norm_squared())
            .sum::<f64>()
            / samples.len() as f64;
        assert!(dev.sqrt() > 0.4, "car interference should perturb readings");
    }

    #[test]
    fn sample_along_is_reproducible() {
        let scene = MagneticScene::quiet().with_environment(EmfEnvironment::in_car());
        let traj = approach_trajectory(64, Vec3::new(0.0, -0.2, 0.0), Vec3::new(0.0, -0.04, 0.0));
        let a = scene.sample_along(&traj, 100.0, &SimRng::from_seed(10));
        let b = scene.sample_along(&traj, 100.0, &SimRng::from_seed(10));
        assert_eq!(a, b);
    }

    #[test]
    fn compensated_driver_is_quieter_but_not_silent() {
        let magnet = MagneticDipole::calibrated(Vec3::ZERO, Vec3::Y, 120.0, 0.03);
        let drive: Vec<f64> = (0..200).map(|i| (i as f64 * 0.9).sin()).collect();
        let p = Vec3::new(0.0, -0.04, 0.0);
        let earth = EarthField::typical().field_at().norm();
        let bare = MagneticScene::quiet()
            .with_driver(DrivenDipole::new(magnet, drive.clone()))
            .field_at(p, 0)
            .norm();
        let rigged = MagneticScene::quiet()
            .with_driver(DrivenDipole::new(magnet, drive).compensated(ActiveCompensation::tuned()));
        let compensated = rigged.field_at(p, 0).norm();
        assert!(
            (compensated - earth).abs() < (bare - earth).abs() * 0.25,
            "compensation should eat most of the anomaly: bare {bare}, rigged {compensated}"
        );
        // The residual anomaly plus coil slew leakage must still exist.
        let readings: Vec<f64> = (0..200).map(|i| rigged.field_at(p, i).norm()).collect();
        let spread = readings.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - readings.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 1e-4, "lag leakage should still modulate: {spread}");
    }

    #[test]
    fn drive_shorter_than_trajectory_is_padded() {
        let magnet = MagneticDipole::calibrated(Vec3::ZERO, Vec3::Y, 100.0, 0.03);
        let scene = MagneticScene::quiet().with_driver(DrivenDipole::new(magnet, vec![1.0; 3]));
        // Sample index beyond the drive length must not panic.
        let b = scene.field_at(Vec3::new(0.0, -0.05, 0.0), 1000);
        assert!(b.is_finite());
    }
}

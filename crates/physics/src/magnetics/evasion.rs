//! MagLive-style magnetic-pattern evasion — active compensation of a
//! loudspeaker's field signature.
//!
//! Magnetometer-based liveness defenses (this paper; MagLive in PAPERS.md)
//! key on two components of a loudspeaker's signature: the static
//! permanent-magnet field and the audio-correlated voice-coil modulation.
//! A motivated attacker can fight both with an *active compensation coil*:
//! a second coil near the driver fed the inverted drive signal (against
//! the AC component) plus a DC bias (against the magnet).
//!
//! Physics keeps this evasion imperfect:
//!
//! 1. **DC mismatch** — the permanent magnet's dipole moment must be
//!    matched in magnitude, orientation and position; a hand-tuned bias
//!    coil leaves a residual fraction of the static field.
//! 2. **Loop lag** — the compensation coil replays the drive through an
//!    amplifier with finite group delay, so the cancellation signal lags
//!    the coil it fights by a few samples. The residual AC field is then
//!    proportional to the drive *difference* across the lag — small for
//!    slowly varying drive, but speech envelopes are exactly the fast
//!    modulation the defense thresholds on.
//! 3. **Geometry error** — the compensation coil cannot be co-located
//!    with the voice coil, so even a perfectly timed inverse leaves a
//!    position-dependent residual; we fold this into the residual
//!    fractions (they are *effective* values at protocol range).

use serde::{Deserialize, Serialize};

/// An active compensation rig an attacker straps to a loudspeaker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActiveCompensation {
    /// Fraction of the static (permanent-magnet) moment that survives the
    /// DC bias coil, in `[0, 1]`. 1.0 = no DC cancellation.
    pub dc_residual: f64,
    /// Fraction of the drive-correlated (voice-coil) moment that survives
    /// perfect-timing cancellation, in `[0, 1]`; models amplitude and
    /// geometry mismatch.
    pub ac_residual: f64,
    /// Compensation-loop group delay, in magnetometer samples. The lagged
    /// inverse leaves a residual proportional to the drive slew over this
    /// window.
    pub lag_samples: usize,
}

impl ActiveCompensation {
    /// A carefully tuned rig: 8 % DC leakage, 10 % AC amplitude mismatch,
    /// two samples (~20 ms at 100 Hz) of loop lag. Representative of what
    /// a dedicated attacker achieves on a bench without lab-grade field
    /// mapping.
    pub fn tuned() -> Self {
        Self {
            dc_residual: 0.08,
            ac_residual: 0.10,
            lag_samples: 2,
        }
    }

    /// A crude rig: DC bias only (the easy part), no usable AC tracking.
    pub fn dc_only() -> Self {
        Self {
            dc_residual: 0.15,
            ac_residual: 1.0,
            lag_samples: 0,
        }
    }

    /// The effective static-moment multiplier.
    pub fn dc_factor(&self) -> f64 {
        self.dc_residual.clamp(0.0, 1.0)
    }

    /// The effective drive value at sample `i`, given the raw drive
    /// waveform: the attacker's inverse cancels `1 - ac_residual` of the
    /// drive, but lagged by [`ActiveCompensation::lag_samples`], so what
    /// leaks is the residual fraction plus the slew across the lag.
    pub fn residual_drive(&self, drive: &[f64], i: usize) -> f64 {
        let at = |k: usize| drive.get(k).copied().unwrap_or(0.0);
        let now = at(i);
        let ac = self.ac_residual.clamp(0.0, 1.0);
        let cancelled = (1.0 - ac) * at(i.saturating_sub(self.lag_samples));
        now - cancelled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_rig_with_no_lag_cancels_ac() {
        let c = ActiveCompensation {
            dc_residual: 0.0,
            ac_residual: 0.0,
            lag_samples: 0,
        };
        let drive = [0.5, -0.3, 0.9];
        for i in 0..drive.len() {
            assert!(c.residual_drive(&drive, i).abs() < 1e-12);
        }
        assert_eq!(c.dc_factor(), 0.0);
    }

    #[test]
    fn lag_leaks_the_slew() {
        let c = ActiveCompensation {
            dc_residual: 0.0,
            ac_residual: 0.0,
            lag_samples: 1,
        };
        // Constant drive: lagged inverse still cancels exactly.
        let flat = [0.7, 0.7, 0.7, 0.7];
        assert!(c.residual_drive(&flat, 3).abs() < 1e-12);
        // Step: the sample after the step leaks the full step height.
        let step = [0.0, 0.0, 1.0, 1.0];
        assert!((c.residual_drive(&step, 2) - 1.0).abs() < 1e-12);
        assert!(c.residual_drive(&step, 3).abs() < 1e-12);
    }

    #[test]
    fn residual_fraction_bounds_the_leak() {
        let c = ActiveCompensation {
            dc_residual: 0.1,
            ac_residual: 0.25,
            lag_samples: 0,
        };
        let drive = [1.0];
        assert!((c.residual_drive(&drive, 0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn dc_only_rig_leaves_drive_untouched() {
        let c = ActiveCompensation::dc_only();
        let drive = [0.4, -0.8];
        assert!((c.residual_drive(&drive, 1) - (-0.8)).abs() < 1e-12);
        assert!(c.dc_factor() > 0.0);
    }

    #[test]
    fn tuned_rig_is_a_strong_but_imperfect_attenuator() {
        let c = ActiveCompensation::tuned();
        assert!(c.dc_factor() > 0.0 && c.dc_factor() < 0.2);
        // Slowly varying drive: residual well under the raw drive.
        let drive: Vec<f64> = (0..50).map(|i| (i as f64 * 0.05).sin()).collect();
        let raw_peak = drive.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        let res_peak = (0..50)
            .map(|i| c.residual_drive(&drive, i).abs())
            .fold(0.0f64, f64::max);
        assert!(
            res_peak < raw_peak * 0.5,
            "residual {res_peak} vs {raw_peak}"
        );
        assert!(res_peak > 1e-6, "imperfect: some leak must remain");
    }
}

//! Point magnetic dipole — the model for a loudspeaker's permanent magnet
//! and (when driven) its voice coil.
//!
//! The field of a dipole with moment **m** at displacement **r** is
//!
//! ```text
//! B(r) = µ0/4π · (3 (m·r̂) r̂ − m) / |r|³
//! ```
//!
//! The paper's detector relies on exactly this 1/r³ decay: at 2–4 cm a
//! speaker driver reads 30–210 µT (Fig. 10), by 10–14 cm it is buried in the
//! magnetometer noise floor (Fig. 12).

use super::MU0_OVER_4PI;
use magshield_simkit::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A point magnetic dipole at a fixed position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MagneticDipole {
    /// Dipole position (meters).
    pub position: Vec3,
    /// Dipole moment vector (A·m²).
    pub moment: Vec3,
}

impl MagneticDipole {
    /// Creates a dipole at `position` with moment `moment` (A·m²).
    pub fn new(position: Vec3, moment: Vec3) -> Self {
        Self { position, moment }
    }

    /// Convenience: a dipole whose on-axis field at `reference_distance_m`
    /// equals `field_ut` µT, pointing along `axis`.
    ///
    /// Useful for calibrating device models from measured near fields,
    /// since real drivers are not ideal dipoles and only the effective
    /// near-field moment matters for detection.
    ///
    /// # Panics
    ///
    /// Panics if `reference_distance_m <= 0` or `field_ut < 0`.
    pub fn calibrated(
        position: Vec3,
        axis: Vec3,
        field_ut: f64,
        reference_distance_m: f64,
    ) -> Self {
        assert!(
            reference_distance_m > 0.0,
            "reference distance must be positive"
        );
        assert!(field_ut >= 0.0, "field must be non-negative");
        // On-axis dipole field: B = µ0/4π · 2m / r³ → m = B r³ / (2 µ0/4π).
        let b_tesla = field_ut * 1e-6;
        let m = b_tesla * reference_distance_m.powi(3) / (2.0 * MU0_OVER_4PI);
        Self {
            position,
            moment: axis.normalized() * m,
        }
    }

    /// Magnetic flux density (in µT) at `point` (meters).
    ///
    /// Returns zero within 1 mm of the dipole center to avoid the
    /// singularity (inside the driver the sensor would saturate anyway; the
    /// sensor model applies its own ±1200 µT clipping).
    pub fn field_at(&self, point: Vec3) -> Vec3 {
        let r = point - self.position;
        let dist = r.norm();
        if dist < 1e-3 {
            return Vec3::ZERO;
        }
        let rhat = r / dist;
        let b_tesla =
            (rhat * (3.0 * self.moment.dot(rhat)) - self.moment) * (MU0_OVER_4PI / dist.powi(3));
        b_tesla * 1e6
    }

    /// Scalar on-axis field magnitude (µT) at distance `r` meters — the
    /// closed form `µ0/4π · 2m/r³` used to cross-check `field_at`.
    pub fn on_axis_field_ut(&self, r: f64) -> f64 {
        2.0 * MU0_OVER_4PI * self.moment.norm() / r.powi(3) * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_axis_field_matches_closed_form() {
        let d = MagneticDipole::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 0.01));
        for &r in &[0.02, 0.05, 0.1] {
            let b = d.field_at(Vec3::new(0.0, 0.0, r));
            assert!((b.norm() - d.on_axis_field_ut(r)).abs() < 1e-9);
            // On-axis field is parallel to the moment.
            assert!(b.z > 0.0 && b.x.abs() < 1e-12 && b.y.abs() < 1e-12);
        }
    }

    #[test]
    fn equatorial_field_is_half_axial_and_opposed() {
        let d = MagneticDipole::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 0.01));
        let r = 0.05;
        let axial = d.field_at(Vec3::new(0.0, 0.0, r));
        let equatorial = d.field_at(Vec3::new(r, 0.0, 0.0));
        assert!((equatorial.norm() - axial.norm() / 2.0).abs() < 1e-9);
        assert!(equatorial.z < 0.0, "equatorial field opposes the moment");
    }

    #[test]
    fn inverse_cube_decay() {
        let d = MagneticDipole::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 0.02));
        let b1 = d.field_at(Vec3::new(0.0, 0.0, 0.04)).norm();
        let b2 = d.field_at(Vec3::new(0.0, 0.0, 0.08)).norm();
        assert!((b1 / b2 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_hits_target_field() {
        let d = MagneticDipole::calibrated(Vec3::ZERO, Vec3::Z, 100.0, 0.03);
        let b = d.field_at(Vec3::new(0.0, 0.0, 0.03));
        assert!((b.norm() - 100.0).abs() < 1e-6, "got {}", b.norm());
    }

    #[test]
    fn calibrated_speaker_matches_paper_band() {
        // A mid-range speaker calibrated to 100 µT at 3 cm should be feeble
        // (< 3 µT, sub-Earth-field) at 12 cm — the Fig. 12 collapse.
        let d = MagneticDipole::calibrated(Vec3::ZERO, Vec3::Z, 100.0, 0.03);
        let far = d.field_at(Vec3::new(0.0, 0.0, 0.12)).norm();
        assert!(far < 3.0, "field at 12 cm should be feeble, got {far} µT");
    }

    #[test]
    fn singularity_guard() {
        let d = MagneticDipole::new(Vec3::ZERO, Vec3::Z);
        assert_eq!(d.field_at(Vec3::ZERO), Vec3::ZERO);
        assert_eq!(d.field_at(Vec3::new(0.0005, 0.0, 0.0)), Vec3::ZERO);
    }
}

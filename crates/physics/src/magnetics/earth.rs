//! Earth's geomagnetic field.
//!
//! Indoors the Earth field is a quasi-static ~25–65 µT vector; it is the
//! baseline every magnetometer reading rides on, and the reason the
//! loudspeaker detector works on *deviation and changing rate* rather than
//! absolute magnitude alone.

use magshield_simkit::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A locally uniform geomagnetic field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EarthField {
    /// Field vector in µT, in the scene frame (x east, y north, z up).
    pub field_ut: Vec3,
}

impl EarthField {
    /// Mid-latitude default: ~48 µT total, 60° inclination (downward),
    /// pointing magnetic north.
    pub fn typical() -> Self {
        let total = 48.0;
        let incl = 60f64.to_radians();
        Self {
            field_ut: Vec3::new(0.0, total * incl.cos(), -total * incl.sin()),
        }
    }

    /// Creates a field with explicit horizontal magnitude, declination from
    /// the scene +y axis (radians), and vertical (downward-positive)
    /// component, all in µT.
    pub fn from_components(horizontal_ut: f64, declination_rad: f64, down_ut: f64) -> Self {
        Self {
            field_ut: Vec3::new(
                horizontal_ut * declination_rad.sin(),
                horizontal_ut * declination_rad.cos(),
                -down_ut,
            ),
        }
    }

    /// The (position-independent) field vector in µT.
    pub fn field_at(&self) -> Vec3 {
        self.field_ut
    }
}

impl Default for EarthField {
    fn default() -> Self {
        Self::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_magnitude_in_band() {
        let e = EarthField::typical();
        let b = e.field_at().norm();
        assert!((25.0..=65.0).contains(&b), "Earth field {b} µT out of band");
    }

    #[test]
    fn typical_points_down_in_northern_hemisphere() {
        assert!(EarthField::typical().field_at().z < 0.0);
    }

    #[test]
    fn components_constructor() {
        let e = EarthField::from_components(20.0, 0.0, 40.0);
        assert!((e.field_at().y - 20.0).abs() < 1e-12);
        assert!((e.field_at().z + 40.0).abs() < 1e-12);
        assert!((e.field_at().norm() - (20f64 * 20.0 + 1600.0).sqrt()).abs() < 1e-9);
    }
}

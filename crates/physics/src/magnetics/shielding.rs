//! Magnetic shielding (Mu-metal enclosures) — §VI "Magnetic Field
//! Shielding" of the paper.
//!
//! A high-permeability enclosure routes flux through its walls, reducing
//! the external dipole field by a *shielding effectiveness* factor. Two
//! effects keep a shielded loudspeaker detectable at very short range
//! (which is why Fig. 12(b) still shows zero error at ≤ 6 cm):
//!
//! 1. leakage — practical enclosures have openings (the sound must get
//!    out), so effectiveness is finite (the paper's data at 8 cm implies
//!    roughly an order of magnitude reduction);
//! 2. the enclosure itself is a lump of ferromagnetic metal that perturbs
//!    the ambient (Earth) field — a *soft-iron* induced-moment signature a
//!    magnetometer notices as an anomaly when it comes close, as the paper
//!    notes ("the magnetometer can detect both the magnet and the metal").

use super::dipole::MagneticDipole;
use magshield_simkit::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A Mu-metal (or other) shield placed around a dipole source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Shield {
    /// Field attenuation factor applied to the enclosed dipole's moment
    /// (e.g. `0.08` = −22 dB leakage).
    pub leakage: f64,
    /// Effective induced soft-iron moment per unit ambient field
    /// (A·m² per µT), modeling the enclosure metal.
    pub induced_moment_per_ut: f64,
}

impl Shield {
    /// A Mu-metal box representative of the paper's experiment.
    ///
    /// The leakage factor is calibrated against Fig. 12(b): with shielding,
    /// FAR at 8 cm rises only from 5.3 % to 8 %, i.e. the *practical*
    /// enclosure (which must have a sound opening) attenuates the external
    /// field by a modest factor, not the 40–60 dB of a sealed lab shield.
    /// A leakage of 0.30 plus the induced soft-iron signature of the box
    /// reproduces the paper's crossover: detectable at ≤ 6 cm, degrading
    /// from 8 cm outward.
    pub fn mu_metal() -> Self {
        Self {
            leakage: 0.30,
            induced_moment_per_ut: 2.4e-5,
        }
    }

    /// No shield (identity).
    pub fn none() -> Self {
        Self {
            leakage: 1.0,
            induced_moment_per_ut: 0.0,
        }
    }

    /// The leaked (attenuated) version of `source`.
    pub fn leaked_dipole(&self, source: MagneticDipole) -> MagneticDipole {
        MagneticDipole::new(source.position, source.moment * self.leakage)
    }

    /// The soft-iron dipole induced in the enclosure by `ambient_ut` (µT).
    pub fn induced_dipole(&self, position: Vec3, ambient_ut: Vec3) -> MagneticDipole {
        MagneticDipole::new(position, ambient_ut * self.induced_moment_per_ut)
    }

    /// Total external field (µT) of the shielded source at `point`, given
    /// the local ambient field `ambient_ut`.
    pub fn field_at(&self, source: MagneticDipole, ambient_ut: Vec3, point: Vec3) -> Vec3 {
        self.leaked_dipole(source).field_at(point)
            + self
                .induced_dipole(source.position, ambient_ut)
                .field_at(point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speaker() -> MagneticDipole {
        MagneticDipole::calibrated(Vec3::ZERO, Vec3::Z, 120.0, 0.03)
    }

    #[test]
    fn shield_attenuates_far_field() {
        let s = Shield::mu_metal();
        let p = Vec3::new(0.0, 0.0, 0.10);
        let bare = speaker().field_at(p).norm();
        let shielded = s.field_at(speaker(), Vec3::new(0.0, 20.0, -40.0), p).norm();
        assert!(
            shielded < bare * 0.45,
            "shielded {shielded} µT vs bare {bare} µT"
        );
    }

    #[test]
    fn shielded_source_still_detectable_close() {
        // Fig. 12(b): zero error at ≤ 6 cm because leakage + induced metal
        // still stand out over the sensor noise (~1 µT) near the box.
        let s = Shield::mu_metal();
        let p = Vec3::new(0.0, 0.0, 0.04);
        let b = s.field_at(speaker(), Vec3::new(0.0, 20.0, -40.0), p).norm();
        assert!(b > 3.0, "shielded box at 4 cm should still perturb: {b} µT");
    }

    #[test]
    fn no_shield_is_identity() {
        let s = Shield::none();
        let p = Vec3::new(0.01, 0.02, 0.05);
        let a = s.field_at(speaker(), Vec3::ZERO, p);
        let b = speaker().field_at(p);
        assert!((a - b).norm() < 1e-12);
    }

    #[test]
    fn induced_moment_follows_ambient() {
        let s = Shield::mu_metal();
        let d = s.induced_dipole(Vec3::ZERO, Vec3::new(0.0, 48.0, 0.0));
        assert!(d.moment.y > 0.0);
        assert_eq!(d.moment.x, 0.0);
    }
}

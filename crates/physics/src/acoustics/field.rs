//! Sound-field sampling along a phone trajectory.
//!
//! The sound-field verification component (§IV-B2) sweeps the phone across
//! the sound source and records `(volume, rotation-angle)` tuples; this
//! module produces the physical volume readings those tuples contain, for
//! any [`AcousticSource`].

use super::source::AcousticSource;
use magshield_simkit::units::DbSpl;
use magshield_simkit::vec3::Vec3;

/// One spatial sample of the sound field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldSample {
    /// Microphone position (m).
    pub position: Vec3,
    /// Angle of the mic relative to the source axis (radians).
    pub angle_rad: f64,
    /// Received level.
    pub level: DbSpl,
}

/// Samples the field of `source` at each `position`, evaluating the level
/// as the energy sum over the given analysis frequencies (speech band by
/// default — see [`speech_band`]).
pub fn sample_field(
    source: &AcousticSource,
    positions: &[Vec3],
    freqs_hz: &[f64],
) -> Vec<FieldSample> {
    positions
        .iter()
        .map(|&p| {
            let r_vec = p - source.position;
            let angle = if r_vec.norm() < 1e-9 {
                0.0
            } else {
                (r_vec.normalized().dot(source.axis))
                    .clamp(-1.0, 1.0)
                    .acos()
            };
            // Energy-sum over the band, assuming equal per-band source power.
            let energy: f64 = freqs_hz
                .iter()
                .map(|&f| source.gain_at(p, f).powi(2))
                .sum::<f64>()
                / freqs_hz.len().max(1) as f64;
            let level = if energy > 0.0 {
                DbSpl(source.level_at_ref.value() + 10.0 * energy.log10())
            } else {
                DbSpl(-120.0)
            };
            FieldSample {
                position: p,
                angle_rad: angle,
                level,
            }
        })
        .collect()
}

/// Analysis frequencies spanning the speech band, octave-spaced.
pub fn speech_band() -> Vec<f64> {
    vec![250.0, 500.0, 1000.0, 2000.0, 4000.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use magshield_simkit::units::DbSpl;

    fn arc_positions(radius: f64, n: usize) -> Vec<Vec3> {
        // Sweep −60°..60° around the source axis (+y) at constant radius.
        (0..n)
            .map(|i| {
                let a = (-60.0 + 120.0 * i as f64 / (n - 1) as f64).to_radians();
                Vec3::new(radius * a.sin(), radius * a.cos(), 0.0)
            })
            .collect()
    }

    #[test]
    fn mouth_rolls_off_where_earphone_stays_flat() {
        // The §IV-B2 discriminator: a mouth in a head shadows beyond ~40°
        // off-axis; a bare earphone driver at the same position does not.
        let mouth = AcousticSource::human_mouth(Vec3::ZERO, Vec3::Y);
        let ear = AcousticSource {
            side_shadow_db_per_rad: 0.0,
            rear_shadow_db: 0.0,
            ..AcousticSource::speaker(Vec3::ZERO, Vec3::Y, 0.003, DbSpl(70.0))
        };
        let pos = arc_positions(0.08, 21);
        let band = speech_band();
        let spread = |src: &AcousticSource| {
            let s = sample_field(src, &pos, &band);
            let levels: Vec<f64> = s.iter().map(|x| x.level.value()).collect();
            levels.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - levels.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        assert!(
            spread(&mouth) > spread(&ear) + 2.0,
            "mouth spread {} should exceed earphone spread {}",
            spread(&mouth),
            spread(&ear)
        );
    }

    #[test]
    fn angles_are_computed_from_axis() {
        let src = AcousticSource::human_mouth(Vec3::ZERO, Vec3::Y);
        let s = sample_field(
            &src,
            &[Vec3::new(0.0, 0.1, 0.0), Vec3::new(0.1, 0.0, 0.0)],
            &speech_band(),
        );
        assert!(s[0].angle_rad.abs() < 1e-9);
        assert!((s[1].angle_rad - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn level_decays_with_distance() {
        let src = AcousticSource::human_mouth(Vec3::ZERO, Vec3::Y);
        let s = sample_field(
            &src,
            &[Vec3::new(0.0, 0.05, 0.0), Vec3::new(0.0, 0.20, 0.0)],
            &speech_band(),
        );
        assert!(s[0].level.value() > s[1].level.value() + 10.0);
    }

    #[test]
    fn empty_band_gives_floor() {
        let src = AcousticSource::human_mouth(Vec3::ZERO, Vec3::Y);
        let s = sample_field(&src, &[Vec3::new(0.0, 0.1, 0.0)], &[]);
        assert_eq!(s[0].level.value(), -120.0);
    }
}

//! Time-domain propagation with exact, time-varying path delay.
//!
//! The phase-based ranging of §IV-B1 works because moving the phone changes
//! the acoustic path length, and therefore the arrival phase of the pilot
//! tone. Rendering that faithfully requires a *fractional* delay line whose
//! delay varies per output sample.

use super::medium::SPEED_OF_SOUND;

/// Renders a signal received over a path whose length (meters) is given
/// per output sample.
///
/// `output[i] = gain(path[i]) · signal(t_i − path[i]/c)` with linear
/// fractional-delay interpolation. `ref_distance_m` sets the distance at
/// which the gain is unity (spherical spreading `ref/r`).
///
/// # Panics
///
/// Panics if `sample_rate <= 0` or `ref_distance_m <= 0`.
pub fn render_path(
    signal: &[f64],
    sample_rate: f64,
    path_len_m: &[f64],
    ref_distance_m: f64,
) -> Vec<f64> {
    assert!(sample_rate > 0.0, "sample rate must be positive");
    assert!(ref_distance_m > 0.0, "reference distance must be positive");
    path_len_m
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let delay_samples = d / SPEED_OF_SOUND * sample_rate;
            let idx = i as f64 - delay_samples;
            if idx < 0.0 {
                return 0.0;
            }
            let lo = idx.floor() as usize;
            let frac = idx - lo as f64;
            let a = signal.get(lo).copied().unwrap_or(0.0);
            let b = signal.get(lo + 1).copied().unwrap_or(0.0);
            let sample = a * (1.0 - frac) + b * frac;
            let gain = ref_distance_m / d.max(ref_distance_m * 0.1);
            sample * gain
        })
        .collect()
}

/// Static-delay convenience wrapper.
pub fn render_static_path(
    signal: &[f64],
    sample_rate: f64,
    distance_m: f64,
    ref_distance_m: f64,
) -> Vec<f64> {
    render_path(
        signal,
        sample_rate,
        &vec![distance_m; signal.len()],
        ref_distance_m,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    #[test]
    fn static_path_delays_by_distance() {
        let fs = 48_000.0;
        // An impulse at sample 100.
        let mut sig = vec![0.0; 480];
        sig[100] = 1.0;
        let d = 0.343; // exactly 48 samples of delay at 48 kHz
        let out = render_static_path(&sig, fs, d, 0.343);
        let peak = out
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 148);
    }

    #[test]
    fn gain_follows_inverse_distance() {
        let fs = 8000.0;
        let sig = vec![1.0; 800];
        let near = render_static_path(&sig, fs, 0.1, 0.1);
        let far = render_static_path(&sig, fs, 0.2, 0.1);
        assert!((near[700] - 1.0).abs() < 1e-9);
        assert!((far[700] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn moving_path_shifts_received_phase() {
        // Path shrinking at constant rate ⇒ received tone is Doppler
        // shifted up; verify via phase slope change.
        let fs = 48_000.0;
        let f = 18_000.0;
        let n = 48_000;
        let sig: Vec<f64> = (0..n).map(|i| (TAU * f * i as f64 / fs).cos()).collect();
        let path: Vec<f64> = (0..n)
            .map(|i| 0.25 - 0.10 * (i as f64 / fs)) // approach at 10 cm/s
            .collect();
        let out = render_path(&sig, fs, &path, 0.1);
        // Goertzel over early vs late windows: phase advances because the
        // path shortens. Compare unwrapped phase difference to prediction.
        use magshield_dsp_test_shim::phase_of;
        let early = phase_of(&out[4800..9600], f, fs, 4800);
        let late = phase_of(&out[38_400..43_200], f, fs, 38_400);
        // Expected Δφ = 2π f Δd / c, Δd = path(late)−path(early).
        let dd = (0.25 - 0.10 * (38_400.0 / fs)) - (0.25 - 0.10 * (4800.0 / fs));
        let expected = -TAU * f * dd / SPEED_OF_SOUND;
        let mut diff = late - early - expected;
        while diff > std::f64::consts::PI {
            diff -= TAU;
        }
        while diff < -std::f64::consts::PI {
            diff += TAU;
        }
        assert!(diff.abs() < 0.3, "phase error {diff}");
    }

    /// Minimal local Goertzel so this crate avoids a dev-dependency cycle
    /// with magshield-dsp.
    mod magshield_dsp_test_shim {
        pub fn phase_of(frame: &[f64], f: f64, fs: f64, start: usize) -> f64 {
            let omega = std::f64::consts::TAU * f / fs;
            let (mut s1, mut s2) = (0.0, 0.0);
            for &x in frame {
                let s0 = x + 2.0 * omega.cos() * s1 - s2;
                s2 = s1;
                s1 = s0;
            }
            let re = s1 * omega.cos() - s2;
            let im = s1 * omega.sin();
            // De-rotate by the carrier phase accumulated up to frame start.
            let z = (im).atan2(re);
            z - omega * start as f64
        }
    }

    #[test]
    fn pre_arrival_samples_are_silent() {
        let fs = 8000.0;
        let sig = vec![1.0; 100];
        let out = render_static_path(&sig, fs, 3.43, 0.1); // 80-sample delay
        for &s in &out[..80] {
            assert_eq!(s, 0.0);
        }
        assert!(out[85] > 0.0);
    }
}

//! Sound-tube waveguides — the §VII "Sound-tube Attacks" experiment.
//!
//! An attacker pipes loudspeaker output through a narrow plastic tube so the
//! speaker (and its magnet) can stay far from the phone while a mouth-sized
//! opening sits close. The paper reports all such attacks failed: the tube
//! imposes strong resonant coloration (organ-pipe modes) and cannot
//! replicate a human sound field.
//!
//! We model the tube as an open–open cylindrical waveguide: resonances at
//! `f_n = n·c/(2L)`, inter-resonance attenuation, plus viscous wall loss
//! growing with length and narrowness. The outlet behaves as a new piston
//! source with the tube's bore radius.

use super::medium::SPEED_OF_SOUND;
use serde::{Deserialize, Serialize};

/// A cylindrical sound tube.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoundTube {
    /// Tube length (m).
    pub length_m: f64,
    /// Bore radius (m).
    pub bore_radius_m: f64,
    /// Resonance quality factor (sharpness of the comb peaks).
    pub q: f64,
}

impl SoundTube {
    /// Creates a tube.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is non-positive.
    pub fn new(length_m: f64, bore_radius_m: f64) -> Self {
        assert!(
            length_m > 0.0 && bore_radius_m > 0.0,
            "dimensions must be positive"
        );
        Self {
            length_m,
            bore_radius_m,
            q: 12.0,
        }
    }

    /// Resonant mode frequencies up to `max_hz`.
    pub fn resonances(&self, max_hz: f64) -> Vec<f64> {
        let f1 = SPEED_OF_SOUND / (2.0 * self.length_m);
        (1..)
            .map(|n| n as f64 * f1)
            .take_while(|&f| f <= max_hz)
            .collect()
    }

    /// Linear amplitude transmission gain at `freq_hz`.
    ///
    /// Near a resonance the tube transmits well (gain toward ~1 with a
    /// resonant bump); between resonances transmission dips. Viscous losses
    /// scale with `L/r`.
    pub fn transmission_gain(&self, freq_hz: f64) -> f64 {
        let f1 = SPEED_OF_SOUND / (2.0 * self.length_m);
        // Distance (in mode units) from the nearest resonance.
        let mode = freq_hz / f1;
        let frac = (mode - mode.round()).abs(); // 0 at resonance, 0.5 between
        let resonance_shape = 1.0 / (1.0 + (2.0 * self.q * frac / mode.max(1.0)).powi(2));
        // Comb response: full transmission at resonance, dips between.
        let comb = 0.25 + 0.75 * resonance_shape;
        // Viscous wall loss: ~0.02 dB per (length/radius) unit at 1 kHz,
        // growing with sqrt(f).
        let loss_db = 0.02 * (self.length_m / self.bore_radius_m) * (freq_hz / 1000.0).sqrt();
        comb * 10f64.powf(-loss_db / 20.0)
    }

    /// Spectral flatness penalty: ratio of geometric to arithmetic mean of
    /// the power transmission over the speech band. A transparent channel
    /// scores ~1; a comb-filtered tube scores well below.
    pub fn spectral_flatness(&self, freqs_hz: &[f64]) -> f64 {
        if freqs_hz.is_empty() {
            return 1.0;
        }
        let powers: Vec<f64> = freqs_hz
            .iter()
            .map(|&f| self.transmission_gain(f).powi(2).max(1e-12))
            .collect();
        let log_mean = powers.iter().map(|p| p.ln()).sum::<f64>() / powers.len() as f64;
        let mean = powers.iter().sum::<f64>() / powers.len() as f64;
        (log_mean.exp() / mean).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resonances_are_harmonic() {
        let t = SoundTube::new(0.343, 0.0125); // 34.3 cm → f1 = 500 Hz
        let r = t.resonances(2200.0);
        assert_eq!(r.len(), 4);
        assert!((r[0] - 500.0).abs() < 1e-9);
        assert!((r[3] - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn transmission_peaks_at_resonance() {
        let t = SoundTube::new(0.343, 0.0125);
        let at_res = t.transmission_gain(500.0);
        let between = t.transmission_gain(750.0);
        assert!(
            at_res > between,
            "resonance {at_res} vs antiresonance {between}"
        );
    }

    #[test]
    fn longer_tube_attenuates_more() {
        let short = SoundTube::new(0.10, 0.0125);
        let long = SoundTube::new(0.40, 0.0125);
        // Compare at each tube's own first resonance (peak transmission).
        let g_short = short.transmission_gain(SPEED_OF_SOUND / 0.2);
        let g_long = long.transmission_gain(SPEED_OF_SOUND / 0.8);
        assert!(g_long < g_short);
    }

    #[test]
    fn tube_is_not_spectrally_flat() {
        let t = SoundTube::new(0.30, 0.0125);
        let band: Vec<f64> = (1..40).map(|i| i as f64 * 100.0).collect();
        let flatness = t.spectral_flatness(&band);
        assert!(
            flatness < 0.85,
            "tube should comb-filter: flatness {flatness}"
        );
    }

    #[test]
    fn empty_band_flatness_is_one() {
        assert_eq!(SoundTube::new(0.3, 0.01).spectral_flatness(&[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn rejects_zero_length() {
        SoundTube::new(0.0, 0.01);
    }
}

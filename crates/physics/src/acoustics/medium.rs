//! Properties of the propagation medium (air).

/// Speed of sound in air at 20 °C (m/s).
pub const SPEED_OF_SOUND: f64 = 343.0;

/// Air density at 20 °C (kg/m³).
pub const AIR_DENSITY: f64 = 1.204;

/// Wavelength (m) of a tone at `freq_hz`.
///
/// # Panics
///
/// Panics if `freq_hz <= 0`.
pub fn wavelength(freq_hz: f64) -> f64 {
    assert!(freq_hz > 0.0, "frequency must be positive");
    SPEED_OF_SOUND / freq_hz
}

/// Wavenumber `k = 2πf/c` (rad/m).
pub fn wavenumber(freq_hz: f64) -> f64 {
    std::f64::consts::TAU * freq_hz / SPEED_OF_SOUND
}

/// Atmospheric absorption coefficient (dB per meter), simple parametric fit
/// adequate below 20 kHz at room conditions: absorption grows roughly with
/// f² and is ~0.1 dB/m at 10 kHz.
pub fn air_absorption_db_per_m(freq_hz: f64) -> f64 {
    1.0e-9 * freq_hz * freq_hz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pilot_tone_wavelength_under_3cm() {
        // The paper picks fs > 16 kHz so λ < 3 cm (§IV-B1).
        assert!(wavelength(16_000.0) < 0.03);
        assert!(wavelength(18_000.0) < 0.02);
    }

    #[test]
    fn wavenumber_consistency() {
        let f = 1000.0;
        assert!((wavenumber(f) * wavelength(f) - std::f64::consts::TAU).abs() < 1e-9);
    }

    #[test]
    fn absorption_grows_with_frequency() {
        assert!(air_absorption_db_per_m(18_000.0) > air_absorption_db_per_m(1_000.0));
        // Sub-dB per meter at speech distances.
        assert!(air_absorption_db_per_m(18_000.0) < 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn wavelength_rejects_zero() {
        wavelength(0.0);
    }
}

//! Acoustic models: sources with aperture-dependent directivity, free-field
//! propagation with exact path-length phase, and sound-tube waveguides.

pub mod field;
pub mod medium;
pub mod piston;
pub mod propagation;
pub mod source;
pub mod tube;

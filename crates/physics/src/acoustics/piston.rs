//! Baffled circular piston directivity.
//!
//! The far-field pressure directivity of a circular piston of radius `a`
//! at wavenumber `k` is
//!
//! ```text
//! D(θ) = 2 J₁(ka·sinθ) / (ka·sinθ)
//! ```
//!
//! Small apertures (earphone, ~6 mm) are nearly omnidirectional even at
//! speech frequencies; a mouth-sized aperture (~25 mm) in a head baffle
//! beams noticeably at high frequencies; a PC loudspeaker cone (40–80 mm)
//! beams strongly. The sound-field verification component (§IV-B2) exploits
//! exactly this aperture dependence: sweeping the phone across the source
//! samples the directivity pattern, and an SVM separates mouth-like
//! patterns from everything else (Fig. 7/8).

use super::medium::wavenumber;

/// Bessel function of the first kind, order 1 — rational approximations
/// from Abramowitz & Stegun §9.4 (|error| < 1e-7 over the real line).
pub fn bessel_j1(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 8.0 {
        let y = x * x;
        let p1 = x
            * (72362614232.0
                + y * (-7895059235.0
                    + y * (242396853.1
                        + y * (-2972611.439 + y * (15704.48260 + y * -30.16036606)))));
        let p2 = 144725228442.0
            + y * (2300535178.0 + y * (18583304.74 + y * (99447.43394 + y * (376.9991397 + y))));
        p1 / p2
    } else {
        let z = 8.0 / ax;
        let y = z * z;
        let xx = ax - 2.356194491;
        let p1 = 1.0
            + y * (0.183105e-2
                + y * (-0.3516396496e-4 + y * (0.2457520174e-5 + y * -0.240337019e-6)));
        let p2 = 0.04687499995
            + y * (-0.2002690873e-3
                + y * (0.8449199096e-5 + y * (-0.88228987e-6 + y * 0.105787412e-6)));
        let ans = (std::f64::consts::FRAC_2_PI / ax).sqrt() * (xx.cos() * p1 - z * xx.sin() * p2);
        if x < 0.0 {
            -ans
        } else {
            ans
        }
    }
}

/// Piston pressure directivity `D(θ)` for aperture radius `a` (m) at
/// `freq_hz`; `theta` is the angle off the piston axis (radians).
///
/// Returns 1.0 on axis; values may be negative in sidelobes (pressure
/// inversion) — callers interested in level should take `abs()`.
pub fn piston_directivity(aperture_radius_m: f64, freq_hz: f64, theta: f64) -> f64 {
    let ka = wavenumber(freq_hz) * aperture_radius_m;
    let arg = ka * theta.sin();
    if arg.abs() < 1e-9 {
        return 1.0;
    }
    2.0 * bessel_j1(arg) / arg
}

/// −6 dB half-beamwidth (radians) of a piston: the angle where |D| first
/// drops to 0.5. Returns `π/2` for apertures too small to beam.
pub fn half_beamwidth(aperture_radius_m: f64, freq_hz: f64) -> f64 {
    let mut lo = 0.0f64;
    let mut hi = std::f64::consts::FRAC_PI_2;
    if piston_directivity(aperture_radius_m, freq_hz, hi).abs() > 0.5 {
        return hi;
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if piston_directivity(aperture_radius_m, freq_hz, mid).abs() > 0.5 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bessel_j1_reference_values() {
        // Reference values from tables.
        let cases = [
            (0.0, 0.0),
            (1.0, 0.4400505857),
            (2.0, 0.5767248078),
            (5.0, -0.3275791376),
            (10.0, 0.0434727462),
        ];
        for (x, expected) in cases {
            assert!(
                (bessel_j1(x) - expected).abs() < 1e-6,
                "J1({x}) = {} != {expected}",
                bessel_j1(x)
            );
        }
    }

    #[test]
    fn bessel_j1_is_odd() {
        for &x in &[0.5, 1.7, 9.3, 20.0] {
            assert!((bessel_j1(-x) + bessel_j1(x)).abs() < 1e-9);
        }
    }

    #[test]
    fn on_axis_directivity_is_unity() {
        assert_eq!(piston_directivity(0.02, 4000.0, 0.0), 1.0);
    }

    #[test]
    fn small_aperture_is_omnidirectional() {
        // 6 mm earphone at 2 kHz: nearly flat to 90°.
        let d = piston_directivity(0.003, 2000.0, std::f64::consts::FRAC_PI_2);
        assert!(d > 0.95, "earphone should not beam: {d}");
    }

    #[test]
    fn large_aperture_beams() {
        // 6 cm cone at 4 kHz: strong rolloff at 60°.
        let d = piston_directivity(0.06, 4000.0, 60f64.to_radians()).abs();
        assert!(d < 0.4, "cone should beam: {d}");
    }

    #[test]
    fn beamwidth_shrinks_with_aperture() {
        let small = half_beamwidth(0.003, 4000.0);
        let mouth = half_beamwidth(0.0125, 4000.0);
        let cone = half_beamwidth(0.06, 4000.0);
        assert!(small >= mouth && mouth > cone, "{small} {mouth} {cone}");
    }

    #[test]
    fn beamwidth_shrinks_with_frequency() {
        // Use a cone-sized aperture so both frequencies actually beam.
        let lo = half_beamwidth(0.06, 4000.0);
        let hi = half_beamwidth(0.06, 8000.0);
        assert!(
            hi < lo,
            "beamwidth at 8 kHz {hi} should be under 4 kHz {lo}"
        );
        // Rayleigh estimate: half-beam ≈ asin(2.2 / ka).
        let ka = super::super::medium::wavenumber(4000.0) * 0.06;
        let expected = (2.2 / ka).asin();
        assert!(
            (lo - expected).abs() < 0.05,
            "lo {lo} vs expected {expected}"
        );
    }
}

//! Acoustic sources with aperture, directivity and baffle shadowing.

use super::medium::air_absorption_db_per_m;
use super::piston::piston_directivity;
use magshield_simkit::units::{db_to_ratio, DbSpl};
use magshield_simkit::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Reference distance (m) at which a source's level is specified.
pub const REFERENCE_DISTANCE_M: f64 = 0.10;

/// A sound source modeled as a baffled piston.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcousticSource {
    /// Source position (meters).
    pub position: Vec3,
    /// Unit vector of the radiation axis.
    pub axis: Vec3,
    /// Piston radius (meters): ~12.5 mm for a mouth, ~3 mm for an earphone,
    /// 20–80 mm for loudspeaker cones.
    pub aperture_radius_m: f64,
    /// On-axis level at the 10 cm reference distance.
    pub level_at_ref: DbSpl,
    /// Rear-hemisphere shadowing in dB (head baffle for a mouth, cabinet
    /// for a boxed speaker); applied smoothly with angle.
    pub rear_shadow_db: f64,
    /// Off-axis angle (rad) where baffle/cheek shadowing begins.
    pub side_shadow_onset_rad: f64,
    /// Shadow slope beyond the onset (dB per radian). A mouth in a head
    /// rolls off from ~50° (Katz & d'Alessandro \[19\], the paper's cited
    /// radiation-pattern measurements); a bare earphone driver has none.
    pub side_shadow_db_per_rad: f64,
}

impl AcousticSource {
    /// A human mouth: ~25 mm aperture in a head baffle, conversational
    /// level ~70 dB SPL at 10 cm.
    pub fn human_mouth(position: Vec3, axis: Vec3) -> Self {
        Self {
            position,
            axis: axis.normalized(),
            aperture_radius_m: 0.0125,
            level_at_ref: DbSpl(70.0),
            rear_shadow_db: 10.0,
            side_shadow_onset_rad: 0.7,
            side_shadow_db_per_rad: 14.0,
        }
    }

    /// A generic speaker driver with explicit aperture.
    ///
    /// # Panics
    ///
    /// Panics if `aperture_radius_m <= 0`.
    pub fn speaker(
        position: Vec3,
        axis: Vec3,
        aperture_radius_m: f64,
        level_at_ref: DbSpl,
    ) -> Self {
        assert!(aperture_radius_m > 0.0, "aperture must be positive");
        Self {
            position,
            axis: axis.normalized(),
            aperture_radius_m,
            level_at_ref,
            rear_shadow_db: 14.0,
            side_shadow_onset_rad: 1.25,
            side_shadow_db_per_rad: 4.0,
        }
    }

    /// Linear amplitude gain (relative to on-axis at the reference
    /// distance) at `point` for frequency `freq_hz`.
    ///
    /// Combines spherical spreading, piston directivity, rear shadowing and
    /// air absorption. Returns 0 at the source position.
    pub fn gain_at(&self, point: Vec3, freq_hz: f64) -> f64 {
        let r_vec = point - self.position;
        let r = r_vec.norm();
        if r < 1e-6 {
            return 0.0;
        }
        let cos_theta = (r_vec / r).dot(self.axis).clamp(-1.0, 1.0);
        let theta = cos_theta.acos();
        let spreading = REFERENCE_DISTANCE_M / r;
        let directivity = piston_directivity(self.aperture_radius_m, freq_hz, theta).abs();
        // Smooth rear shadow: full at 180°, none at 90°; plus the side
        // (baffle/cheek) shadow ramping beyond its onset angle.
        let mut shadow_db = if cos_theta < 0.0 {
            self.rear_shadow_db * (-cos_theta)
        } else {
            0.0
        };
        if theta > self.side_shadow_onset_rad {
            shadow_db += self.side_shadow_db_per_rad * (theta - self.side_shadow_onset_rad);
        }
        let absorption_db = air_absorption_db_per_m(freq_hz) * r;
        spreading * directivity * db_to_ratio(-(shadow_db + absorption_db))
    }

    /// Sound pressure level at `point` for `freq_hz`.
    pub fn spl_at(&self, point: Vec3, freq_hz: f64) -> DbSpl {
        let g = self.gain_at(point, freq_hz);
        if g <= 0.0 {
            return DbSpl(-120.0);
        }
        DbSpl(self.level_at_ref.value() + 20.0 * g.log10())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_distance_law_on_axis() {
        let s = AcousticSource::human_mouth(Vec3::ZERO, Vec3::Y);
        let g10 = s.gain_at(Vec3::new(0.0, 0.10, 0.0), 1000.0);
        let g20 = s.gain_at(Vec3::new(0.0, 0.20, 0.0), 1000.0);
        assert!((g10 / g20 - 2.0).abs() < 0.01);
        // −6 dB per doubling.
        let spl10 = s.spl_at(Vec3::new(0.0, 0.10, 0.0), 1000.0).value();
        let spl20 = s.spl_at(Vec3::new(0.0, 0.20, 0.0), 1000.0).value();
        assert!((spl10 - spl20 - 6.02).abs() < 0.1);
    }

    #[test]
    fn reference_level_at_reference_distance() {
        let s = AcousticSource::human_mouth(Vec3::ZERO, Vec3::Y);
        let spl = s.spl_at(Vec3::new(0.0, 0.10, 0.0), 200.0).value();
        // Low frequency: directivity ≈ 1, absorption negligible.
        assert!((spl - 70.0).abs() < 0.2, "{spl}");
    }

    #[test]
    fn rear_shadow_attenuates_behind() {
        let s = AcousticSource::human_mouth(Vec3::ZERO, Vec3::Y);
        let front = s.spl_at(Vec3::new(0.0, 0.10, 0.0), 1000.0).value();
        let back = s.spl_at(Vec3::new(0.0, -0.10, 0.0), 1000.0).value();
        assert!(front - back > 6.0, "front {front} back {back}");
    }

    #[test]
    fn wide_cone_beams_more_than_mouth() {
        let mouth = AcousticSource::human_mouth(Vec3::ZERO, Vec3::Y);
        let cone = AcousticSource::speaker(Vec3::ZERO, Vec3::Y, 0.06, DbSpl(70.0));
        let off_axis = Vec3::new(0.1, 0.1, 0.0); // 45°
        let f = 4000.0;
        let mouth_drop = mouth.spl_at(Vec3::new(0.0, 0.1414, 0.0), f).value()
            - mouth.spl_at(off_axis, f).value();
        let cone_drop =
            cone.spl_at(Vec3::new(0.0, 0.1414, 0.0), f).value() - cone.spl_at(off_axis, f).value();
        assert!(
            cone_drop > mouth_drop + 3.0,
            "cone drop {cone_drop} vs mouth drop {mouth_drop}"
        );
    }

    #[test]
    fn gain_at_source_position_is_zero() {
        let s = AcousticSource::human_mouth(Vec3::ZERO, Vec3::Y);
        assert_eq!(s.gain_at(Vec3::ZERO, 1000.0), 0.0);
        assert_eq!(s.spl_at(Vec3::ZERO, 1000.0).value(), -120.0);
    }

    #[test]
    #[should_panic(expected = "aperture must be positive")]
    fn speaker_rejects_zero_aperture() {
        AcousticSource::speaker(Vec3::ZERO, Vec3::Y, 0.0, DbSpl(70.0));
    }
}
